#!/usr/bin/env python
"""Generate the EXPERIMENTS.md measurement data (all tables + Figure 2)."""
import json, sys, time

from repro.experiments.convergence import convergence_table, figure2_traces
from repro.experiments.selfishness import selfishness_table
from repro.experiments.rtt_validation import rtt_table

out = {}
t0 = time.time()

print("Table I/II grids...", flush=True)
SIZES = (20, 30, 50, 100)
AVGS = (10, 50, 1000)
for name, tol in (("table1", 0.02), ("table2", 0.001)):
    cells = convergence_table(tol, sizes=SIZES, avg_loads=AVGS, progress=True)
    out[name] = [vars(c) for c in cells]
    print(f"{name} done at {time.time()-t0:.0f}s", flush=True)

print("Table III...", flush=True)
cells = selfishness_table(sizes=(20, 30, 50), avg_loads=(10, 20, 50, 200, 1000), progress=True)
out["table3"] = [vars(c) for c in cells]
print(f"table3 done at {time.time()-t0:.0f}s", flush=True)

print("Table IV...", flush=True)
rows = rtt_table(servers=60, samples=300, seed=0)
out["table4"] = [{"tb": r.label, "mu": r.mu, "sigma": r.sigma} for r in rows]

print("Figure 2...", flush=True)
traces = figure2_traces(sizes=(500, 1000, 2000), iterations=20)
out["figure2"] = {str(k): v for k, v in traces.items()}
print(f"all done at {time.time()-t0:.0f}s", flush=True)

with open("/root/repo/results/experiments.json", "w") as f:
    json.dump(out, f, indent=1)
print("written /root/repo/results/experiments.json")
