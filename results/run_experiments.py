#!/usr/bin/env python
"""Generate the EXPERIMENTS.md measurement data (all tables + Figure 2).

Runs against the installed ``repro`` package (``pip install -e .``); when
run straight from a checkout it falls back to the ``src/`` layout (the
bootstrap, grids and CLI are shared with ``rerun_conv.py`` via
``_common.py``).  Grid execution goes through :mod:`repro.engine` — pass
``--backend process`` to use every core (results are identical to a
serial run).

Sharded grids: ``--shard k/N --store results/shard_k.jsonl`` makes this
invocation execute only every N-th pending cell (per grid) and persist
them; a coordinator merges the shard stores with
``JsonlStore.merge("results/shard_1.jsonl", ..., out="results/all.jsonl")``
and re-runs without ``--shard`` (``--store results/all.jsonl``), which
aggregates the full tables from the store without re-solving anything.

Usage::

    python results/run_experiments.py [--backend process] [--workers N]
                                      [--out results/experiments.json]
                                      [--store results/cells.jsonl]
                                      [--shard k/N]
"""

import json
import time

from _common import (
    FIGURE2_ITERATIONS,
    FIGURE2_SIZES,
    TABLE_AVGS,
    TABLE_SIZES,
    TABLE_TOLS,
    build_parser,
    exec_kwargs,
    is_primary_shard,
)
from repro.experiments.convergence import convergence_table, figure2_traces
from repro.experiments.rtt_validation import rtt_table
from repro.experiments.selfishness import selfishness_table
from repro.obs import logconf

log = logconf.get_logger("results.run_experiments")


def main(argv=None):
    args = build_parser(__doc__).parse_args(argv)
    logconf.configure(args.log_level, json=args.log_json)
    exec_kw = exec_kwargs(args)

    out = {}
    t0 = time.time()

    log.info("Table I/II grids...")
    for name, tol in TABLE_TOLS:
        cells = convergence_table(
            tol, sizes=TABLE_SIZES, avg_loads=TABLE_AVGS, progress=True,
            **exec_kw,
        )
        out[name] = [vars(c) for c in cells]
        log.info("%s done at %.0fs", name, time.time() - t0)

    log.info("Table III...")
    cells = selfishness_table(
        sizes=(20, 30, 50), avg_loads=(10, 20, 50, 200, 1000),
        progress=True, **exec_kw,
    )
    out["table3"] = [vars(c) for c in cells]
    log.info("table3 done at %.0fs", time.time() - t0)

    if is_primary_shard(args):
        # Too cheap to shard: only the first (or only) shard runs it.
        log.info("Table IV...")
        rows = rtt_table(servers=60, samples=300, seed=0)
        out["table4"] = [
            {"tb": r.label, "mu": r.mu, "sigma": r.sigma} for r in rows
        ]

    log.info("Figure 2...")
    traces = figure2_traces(
        sizes=FIGURE2_SIZES, iterations=FIGURE2_ITERATIONS, **exec_kw
    )
    out["figure2"] = {str(k): v for k, v in traces.items()}
    log.info("all done at %.0fs", time.time() - t0)

    with open(args.out, "w") as f:
        json.dump(out, f, indent=1)
    log.info("written %s", args.out)


if __name__ == "__main__":
    main()
