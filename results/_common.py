"""Shared bootstrap, CLI and grid definitions for the ``results/``
scripts, so :mod:`run_experiments` and :mod:`rerun_conv` cannot drift
apart.

Importing this module makes ``repro`` importable: it prefers the
installed package and falls back to the checkout's ``src/`` layout.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401,E402 - installed package
except ImportError:  # checkout without an install: use the src layout
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Tables I/II measurement grid (matching EXPERIMENTS.md).
TABLE_SIZES = (20, 30, 50, 100)
TABLE_AVGS = (10, 50, 1000)
TABLE_TOLS = (("table1", 0.02), ("table2", 0.001))

#: Figure 2 large-scale traces.
FIGURE2_SIZES = (500, 1000, 2000)
FIGURE2_ITERATIONS = 20

DEFAULT_OUT = str(REPO_ROOT / "results" / "experiments.json")


def build_parser(description: str) -> argparse.ArgumentParser:
    """The common CLI: execution backend, worker count, output path."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "threads", "process", "chunked"))
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--out", default=DEFAULT_OUT)
    return parser


def exec_kwargs(args: argparse.Namespace) -> dict:
    """The engine-execution keywords every grid function accepts."""
    return dict(backend=args.backend, max_workers=args.workers)
