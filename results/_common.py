"""Shared bootstrap, CLI and grid definitions for the ``results/``
scripts, so :mod:`run_experiments` and :mod:`rerun_conv` cannot drift
apart.

Importing this module makes ``repro`` importable: it prefers the
installed package and falls back to the checkout's ``src/`` layout.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401,E402 - installed package
except ImportError:  # checkout without an install: use the src layout
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Tables I/II measurement grid (matching EXPERIMENTS.md).
TABLE_SIZES = (20, 30, 50, 100)
TABLE_AVGS = (10, 50, 1000)
TABLE_TOLS = (("table1", 0.02), ("table2", 0.001))

#: Figure 2 large-scale traces.
FIGURE2_SIZES = (500, 1000, 2000)
FIGURE2_ITERATIONS = 20

DEFAULT_OUT = str(REPO_ROOT / "results" / "experiments.json")


def build_parser(description: str) -> argparse.ArgumentParser:
    """The common CLI: execution backend, worker count, output path,
    store/shard selection and the on-disk optimum cache."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "threads", "process", "chunked"))
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="JSONL result store: finished cells are appended as they "
             "complete and skipped on re-runs (resumable grids)")
    parser.add_argument(
        "--shard", default=None, metavar="K/N",
        help="run only every N-th pending cell starting at the K-th "
             "(1-based).  Each shard should write its own --store; merge "
             "them with JsonlStore.merge(shard1, shard2, ..., out=...) "
             "and re-run without --shard to aggregate")
    parser.add_argument(
        "--log-level", default="INFO", metavar="LEVEL",
        help="logging level for the repro.obs.logconf progress log "
             "(DEBUG, INFO, WARNING, ...)")
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit progress log records as one JSON object per line")
    return parser


def exec_kwargs(args: argparse.Namespace) -> dict:
    """The engine-execution keywords every grid function accepts.

    (Cross-process reuse for these grids comes from ``--store``: each
    finished cell is persisted whole.  The on-disk *optimum* cache —
    ``REPRO_CACHE_DIR`` / ``repro.workloads.set_cache_dir`` — applies to
    scenario-based cells, which solve through ``cached_optimum``.)"""
    if args.shard is not None and args.store is None:
        from repro.obs import logconf

        logconf.get_logger("results").warning(
            "--shard without --store computes the shard's cells but "
            "persists nothing for the coordinator to merge")
    kw = dict(backend=args.backend, max_workers=args.workers)
    if args.store is not None:
        kw["store"] = args.store
    if args.shard is not None:
        kw["shard"] = args.shard
    return kw


def is_primary_shard(args: argparse.Namespace) -> bool:
    """True when this invocation should run the unsharded extras (e.g.
    Table IV, which is too cheap to split): shard 1 or no shard."""
    if args.shard is None:
        return True
    from repro.engine.sweep import parse_shard

    return parse_shard(args.shard)[0] == 1
