#!/usr/bin/env python
"""Inspect an observability export: metrics tables and slowest spans.

Reads the artifacts an instrumented run writes —

* a **snapshot JSON** (``Observability.to_json`` /
  ``MetricsRegistry.to_json``): counters and gauges grouped by
  subsystem prefix, histogram summaries, and series lengths;
* a **trace JSONL** (``Tracer.to_jsonl``): one span per line, from
  which the top-k slowest spans (by ``dur``) are listed with their
  causal parents.

Usage::

    python results/inspect_run.py --snapshot metrics.json
    python results/inspect_run.py --trace trace.jsonl --top 15
    python results/inspect_run.py --snapshot metrics.json --trace trace.jsonl
"""

import argparse
import json
import sys
from collections import Counter as _TallyCounter


def load_snapshot(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def load_trace(path: str) -> list:
    spans = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def format_metrics(snap: dict) -> str:
    """Counters/gauges grouped by subsystem prefix, plus histograms."""
    out = []
    metrics = snap.get("metrics", {})
    if metrics:
        by_subsystem: dict = {}
        for name in sorted(metrics):
            prefix = name.split(".", 1)[0]
            by_subsystem.setdefault(prefix, []).append(name)
        out.append(f"{'metric':<32} {'value':>16}")
        out.append("-" * 49)
        for prefix in sorted(by_subsystem):
            for name in by_subsystem[prefix]:
                v = metrics[name]
                val = f"{v:>16.6g}" if isinstance(v, float) else f"{v:>16}"
                out.append(f"{name:<32} {val}")
            out.append("")
    hists = snap.get("histograms", {})
    if hists:
        out.append(f"{'histogram':<28} {'count':>8} {'mean':>12} "
                   f"{'min':>12} {'max':>12}")
        out.append("-" * 76)
        for name in sorted(hists):
            h = hists[name]
            mean = h.get("mean")
            fmt = (lambda x: f"{x:>12.4g}" if isinstance(x, (int, float))
                   else f"{'-':>12}")
            out.append(f"{name:<28} {h.get('count', 0):>8} "
                       f"{fmt(mean)} {fmt(h.get('min'))} {fmt(h.get('max'))}")
        out.append("")
    series = snap.get("series", {})
    if series:
        out.append(f"{'series':<32} {'points':>8} {'interval':>10}")
        out.append("-" * 52)
        for name in sorted(series):
            s = series[name]
            out.append(f"{name:<32} {len(s['points']):>8} "
                       f"{s['interval']:>10.3g}")
        out.append("")
    trace = snap.get("trace")
    if trace:
        out.append(f"trace: {trace.get('spans', 0)} spans in ring, "
                   f"{trace.get('dropped', 0)} dropped")
    return "\n".join(out)


def format_trace(spans: list, top: int = 10) -> str:
    """Span-name tally plus the top-k slowest complete spans."""
    out = []
    tally = _TallyCounter(s["name"] for s in spans)
    out.append(f"{'span name':<24} {'count':>8}")
    out.append("-" * 33)
    for name, n in tally.most_common():
        out.append(f"{name:<24} {n:>8}")
    out.append("")

    timed = [s for s in spans if "dur" in s]
    timed.sort(key=lambda s: (-s["dur"], s["sid"]))
    if timed:
        out.append(f"top {min(top, len(timed))} slowest spans (sim time):")
        out.append(f"{'sid':>7} {'name':<20} {'ts':>10} {'dur':>10} "
                   f"{'parent':>7} {'track':>6}")
        out.append("-" * 65)
        for s in timed[:top]:
            parent = s.get("parent", "-")
            track = s.get("track", "-")
            out.append(f"{s['sid']:>7} {s['name']:<20} {s['ts']:>10.3f} "
                       f"{s['dur']:>10.3f} {parent!s:>7} {track!s:>6}")
    else:
        out.append("no complete (timed) spans in trace")
    return "\n".join(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--snapshot", metavar="PATH",
                        help="metrics snapshot JSON (Observability.to_json)")
    parser.add_argument("--trace", metavar="PATH",
                        help="span trace JSONL (Tracer.to_jsonl)")
    parser.add_argument("--top", type=int, default=10, metavar="K",
                        help="how many slowest spans to list (default 10)")
    args = parser.parse_args(argv)
    if not args.snapshot and not args.trace:
        parser.error("nothing to inspect: pass --snapshot and/or --trace")

    if args.snapshot:
        print(f"== snapshot: {args.snapshot} ==")
        print(format_metrics(load_snapshot(args.snapshot)))
    if args.trace:
        if args.snapshot:
            print()
        print(f"== trace: {args.trace} ==")
        print(format_trace(load_trace(args.trace), top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
