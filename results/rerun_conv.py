import json, time
from repro.experiments.convergence import convergence_table, figure2_traces
d = json.load(open('/root/repo/results/experiments.json'))
t0 = time.time()
SIZES = (20, 30, 50, 100); AVGS = (10, 50, 1000)
for name, tol in (("table1", 0.02), ("table2", 0.001)):
    cells = convergence_table(tol, sizes=SIZES, avg_loads=AVGS)
    d[name] = [vars(c) for c in cells]
    print(name, 'done at', time.time()-t0, flush=True)
traces = figure2_traces(sizes=(500, 1000, 2000), iterations=20)
d['figure2'] = {str(k): v for k, v in traces.items()}
json.dump(d, open('/root/repo/results/experiments.json', 'w'), indent=1)
print('written', time.time()-t0)
