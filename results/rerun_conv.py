#!/usr/bin/env python
"""Refresh only the convergence entries (Tables I/II + Figure 2) of an
existing ``experiments.json`` — cheaper than a full
:mod:`results.run_experiments` rerun after a solver change.  The
bootstrap, grids and CLI are shared with ``run_experiments.py`` via
``_common.py``.

Usage::

    python results/rerun_conv.py [--backend process] [--workers N]
                                 [--out results/experiments.json]
                                 [--store results/cells.jsonl]
                                 [--shard k/N]

``--shard k/N`` computes only this shard's cells (see
``run_experiments.py`` for the shard/merge workflow).
"""

import json
import pathlib
import time

from _common import (
    FIGURE2_ITERATIONS,
    FIGURE2_SIZES,
    TABLE_AVGS,
    TABLE_SIZES,
    TABLE_TOLS,
    build_parser,
    exec_kwargs,
)
from repro.experiments.convergence import convergence_table, figure2_traces
from repro.obs import logconf

log = logconf.get_logger("results.rerun_conv")


def main(argv=None):
    args = build_parser(__doc__).parse_args(argv)
    logconf.configure(args.log_level, json=args.log_json)
    exec_kw = exec_kwargs(args)

    path = pathlib.Path(args.out)
    d = json.loads(path.read_text()) if path.exists() else {}
    t0 = time.time()
    for name, tol in TABLE_TOLS:
        cells = convergence_table(
            tol, sizes=TABLE_SIZES, avg_loads=TABLE_AVGS, **exec_kw
        )
        d[name] = [vars(c) for c in cells]
        log.info("%s done at %.0fs", name, time.time() - t0)
    traces = figure2_traces(
        sizes=FIGURE2_SIZES, iterations=FIGURE2_ITERATIONS, **exec_kw
    )
    d["figure2"] = {str(k): v for k, v in traces.items()}
    path.write_text(json.dumps(d, indent=1))
    log.info("written %s at %.0fs", path, time.time() - t0)


if __name__ == "__main__":
    main()
