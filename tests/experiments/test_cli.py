"""Smoke tests for the ``python -m repro.experiments.*`` entry points."""

import pytest

from repro.experiments import convergence, rtt_validation, selfishness


class TestConvergenceCli:
    def test_table_quick(self, capsys):
        convergence.main(["--table", "1", "--sizes", "20", "--quick"])
        out = capsys.readouterr().out
        assert "relative error" in out
        assert "uniform" in out
        assert "peak" in out

    def test_figure_quick(self, capsys):
        convergence.main(["--figure", "2", "--sizes", "50"])
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "m=   50" in out

    def test_rejects_bad_table(self):
        with pytest.raises(SystemExit):
            convergence.main(["--table", "9"])


class TestSelfishnessCli:
    def test_quick(self, capsys):
        selfishness.main(["--quick"])
        out = capsys.readouterr().out
        assert "Cost of selfishness" in out
        assert "lav" in out


class TestRttCli:
    def test_quick(self, capsys):
        rtt_validation.main(["--quick"])
        out = capsys.readouterr().out
        assert "RTT deviation" in out
        assert "MB/s" in out
