"""Smoke tests of the experiment harness on tiny grids (full grids run in
``benchmarks/`` and are recorded in EXPERIMENTS.md)."""

import numpy as np
import pytest

from repro.experiments.common import Setting
from repro.experiments.convergence import (
    convergence_table,
    figure2_traces,
    iterations_to_tolerance,
)
from repro.experiments.rtt_validation import render_table, rtt_table
from repro.experiments.selfishness import selfishness_ratio, selfishness_table
from repro.experiments.report import format_grouped_table, format_simple_table


class TestConvergenceHarness:
    def test_iterations_positive_and_bounded(self):
        s = Setting(20, "uniform", 50, "planetlab")
        it = iterations_to_tolerance(s, 0.02)
        assert 0 <= it <= 60

    def test_tighter_tolerance_needs_more_iterations(self):
        s = Setting(30, "exponential", 50, "planetlab")
        loose = iterations_to_tolerance(s, 0.02)
        tight = iterations_to_tolerance(s, 0.0001)
        assert tight >= loose

    def test_table_shape(self):
        cells = convergence_table(
            0.02, sizes=(20,), avg_loads=(50,), repetitions=1
        )
        kinds = {c.load_kind for c in cells}
        assert kinds == {"uniform", "exponential", "peak"}
        for c in cells:
            assert c.maximum >= c.average >= 0
            assert c.std >= 0
            assert c.samples >= 2  # two networks

    def test_figure2_trace_decreases(self):
        traces = figure2_traces(sizes=(60,), iterations=10)
        costs = traces[60]
        assert costs[0] > costs[-1]
        # near-monotone decrease
        for a, b in zip(costs, costs[1:]):
            assert b <= a * (1 + 1e-9)


class TestSelfishnessHarness:
    def test_ratio_at_least_one(self):
        r = selfishness_ratio(Setting(20, "uniform", 50, "homogeneous", "constant"))
        assert r >= 1.0

    def test_table_groups(self):
        cells = selfishness_table(sizes=(20,), avg_loads=(20, 200))
        bands = {c.load_band for c in cells}
        assert bands == {"lav <= 30", "lav >= 200"}
        speeds = {c.speed_kind for c in cells}
        assert speeds == {"constant", "uniform"}
        for c in cells:
            assert 1.0 <= c.average <= c.maximum
            assert c.maximum < 1.5  # the paper's "low cost of selfishness"

    def test_paper_claim_below_115(self):
        """Table III claim: worst observed ratio below 1.15."""
        cells = selfishness_table(sizes=(20, 50), avg_loads=(20, 50, 200))
        assert max(c.maximum for c in cells) < 1.2


class TestRttHarness:
    def test_rows_and_rendering(self):
        rows = rtt_table(servers=15, samples=30, seed=1)
        text = render_table(rows)
        assert "tb" in text
        assert "10 KB/s" in text
        assert len(rows) == 9


class TestReport:
    def test_simple_table_alignment(self):
        text = format_simple_table(
            "T", ("a", "bbb"), [("1", "2"), ("333", "4")]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, separator, two rows

    def test_grouped_table_hides_repeats(self):
        text = format_grouped_table(
            "T", ("g", "v"), [("x", "1"), ("x", "2"), ("y", "3")]
        )
        # second 'x' suppressed
        assert text.count("x") == 1
