"""Tests for the experiment settings grid."""

import numpy as np
import pytest

from repro.experiments.common import (
    PEAK_TOTAL,
    Setting,
    make_instance,
    paper_settings,
)


class TestMakeInstance:
    def test_deterministic(self):
        s = Setting(20, "uniform", 50, "planetlab")
        a = make_instance(s)
        b = make_instance(s)
        assert a == b

    def test_seed_changes_instance(self):
        a = make_instance(Setting(20, "uniform", 50, "planetlab", seed=0))
        b = make_instance(Setting(20, "uniform", 50, "planetlab", seed=1))
        assert a != b

    def test_uniform_load_range(self):
        inst = make_instance(Setting(200, "uniform", 50, "homogeneous"))
        assert inst.loads.max() <= 100.0
        assert inst.average_load == pytest.approx(50.0, rel=0.2)

    def test_exponential_load_mean(self):
        inst = make_instance(Setting(300, "exponential", 200, "homogeneous"))
        assert inst.average_load == pytest.approx(200.0, rel=0.25)

    def test_peak_load(self):
        inst = make_instance(Setting(50, "peak", PEAK_TOTAL / 50, "planetlab"))
        assert inst.total_load == PEAK_TOTAL
        assert (inst.loads > 0).sum() == 1

    def test_constant_speeds(self):
        inst = make_instance(Setting(30, "uniform", 50, "homogeneous", "constant"))
        assert np.all(inst.speeds == 1.0)

    def test_uniform_speeds_in_range(self):
        inst = make_instance(Setting(100, "uniform", 50, "homogeneous"))
        assert inst.speeds.min() >= 1.0
        assert inst.speeds.max() <= 5.0

    def test_homogeneous_network_delay(self):
        inst = make_instance(Setting(10, "uniform", 50, "homogeneous"))
        off = inst.latency[~np.eye(10, dtype=bool)]
        assert np.all(off == 20.0)

    def test_unknown_load_kind(self):
        with pytest.raises(ValueError):
            make_instance(Setting(10, "bogus", 50, "homogeneous"))


class TestSettingsGrid:
    def test_full_grid_size(self):
        settings = list(paper_settings(sizes=(20, 30)))
        # per size: uniform×5 + exponential×5 + peak×1 = 11, ×2 networks
        assert len(settings) == 2 * 11 * 2

    def test_peak_ignores_avg_loads(self):
        settings = [
            s
            for s in paper_settings(sizes=(50,), load_kinds=("peak",))
        ]
        assert all(s.avg_load == pytest.approx(PEAK_TOTAL / 50) for s in settings)

    def test_repetitions(self):
        settings = list(
            paper_settings(
                sizes=(20,),
                load_kinds=("uniform",),
                avg_loads=(50,),
                networks=("homogeneous",),
                repetitions=3,
            )
        )
        assert len(settings) == 3
        assert {s.seed for s in settings} == {0, 1, 2}

    def test_label_readable(self):
        s = Setting(20, "uniform", 50, "planetlab")
        assert "m=20" in s.label()
        assert "planetlab" in s.label()
