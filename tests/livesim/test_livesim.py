"""Tier-1 livesim suite: convergence, churn re-convergence, protocol
invariants and the evaluator/sweep integration.

The heavyweight 7-preset acceptance grid lives in
``benchmarks/test_livesim.py``; this file keeps sizes small so the
subsystem is exercised quickly on every PR.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AllocationState, get_evaluator
from repro.livesim import (
    LIVE_PRESETS,
    LiveCell,
    LiveConfig,
    LiveSimulation,
    evaluate_live_cell,
    get_live_preset,
    live_sweep,
)
from repro.workloads import cached_instance, cached_optimum, get_scenario

REL_TOL = 0.02  # the paper's Table I convergence bound (2 %)


@pytest.fixture(scope="module")
def small_cell():
    sc = get_scenario("paper-planetlab")
    inst = cached_instance(sc, 12, 0)
    opt_state, opt_cost, _, _ = cached_optimum(sc, 12, 0)
    return inst, opt_state, opt_cost


# ----------------------------------------------------------------------
# Convergence of the async control plane
# ----------------------------------------------------------------------
def test_ideal_plane_converges_within_paper_bound(small_cell):
    inst, opt_state, opt_cost = small_cell
    sim = LiveSimulation(inst, config=get_live_preset("ideal"), seed=0,
                         optimum=opt_state)
    report = sim.run(rounds=50)
    assert report.final_error <= REL_TOL
    assert report.agents.exchanges > 0
    # The trajectory is monotone non-increasing without churn: exchanges
    # are exact Algorithm 1 transfers on true state.
    assert np.all(np.diff(report.costs) <= 1e-9)
    t = report.time_to_within(REL_TOL)
    assert np.isfinite(t) and t <= report.horizon


def test_lossy_plane_still_converges(small_cell):
    inst, opt_state, _ = small_cell
    sim = LiveSimulation(inst, config=get_live_preset("lossy"), seed=1,
                         optimum=opt_state)
    report = sim.run(rounds=80)
    assert report.net.dropped > 0  # the losses actually happened
    assert report.final_error <= REL_TOL


def test_views_are_genuinely_stale(small_cell):
    """Async views lag by in-flight time: the mean view age is positive
    and of the order of the gossip interval."""
    inst, opt_state, _ = small_cell
    sim = LiveSimulation(inst, config=get_live_preset("ideal"), seed=2,
                         optimum=opt_state)
    report = sim.run(rounds=30)
    assert report.mean_view_age > 0
    assert report.mean_view_age < 20 * sim.config.gossip_interval


def test_per_server_error_reported(small_cell):
    inst, opt_state, _ = small_cell
    sim = LiveSimulation(inst, config=get_live_preset("ideal"), seed=0,
                         optimum=opt_state)
    report = sim.run(rounds=50)
    assert report.per_server_error is not None
    assert report.per_server_error.shape == (inst.m,)
    # Near-optimal cost implies near-optimal loads on this instance.
    assert report.per_server_error.max() <= 0.15 * inst.total_load


def test_request_traffic_routed_by_live_allocation(small_cell):
    inst, opt_state, _ = small_cell
    cfg = LiveConfig(arrival_rate_scale=0.002)
    sim = LiveSimulation(inst, config=cfg, seed=0, optimum=opt_state)
    report = sim.run(rounds=30)
    assert report.requests_submitted > 0
    assert report.requests_completed > 0
    assert np.isfinite(report.request_mean_latency)
    assert report.final_error <= REL_TOL  # traffic does not disturb control


# ----------------------------------------------------------------------
# Churn: failures perturb, the plane re-converges
# ----------------------------------------------------------------------
def test_churn_reconverges_after_each_failure(small_cell):
    inst, opt_state, _ = small_cell
    sim = LiveSimulation(inst, config=get_live_preset("churn"), seed=3,
                         optimum=opt_state)
    report = sim.run(rounds=150)
    # The preset produces real churn: >=5 % of servers restarted.
    assert len(report.failures) >= max(1, int(0.05 * inst.m))
    assert len(report.rejoins) >= 1
    # Every failure displaces load and spikes the cost...
    errs = report.relative_errors()
    assert errs.max() > REL_TOL
    # ...and the plane re-converges within the bound after each failure.
    for t in report.reconvergence_times(REL_TOL):
        assert np.isfinite(t)
    assert report.final_error <= REL_TOL


def test_failure_displaces_load_to_owners(small_cell):
    inst, _, _ = small_cell
    from repro.livesim import fail_server

    state = AllocationState.initial(inst)
    # Move some of org 0's load to server 1 so the failure has something
    # to displace.
    moved = state.R[0, 0] / 2
    state.R[0, 0] -= moved
    state.R[0, 1] += moved
    state.refresh_loads()
    displaced = fail_server(state, 1)
    assert displaced == pytest.approx(moved)
    state.check_invariants()
    assert state.loads[1] == pytest.approx(inst.loads[1])  # own load stays


# ----------------------------------------------------------------------
# Protocol invariants
# ----------------------------------------------------------------------
def test_allocation_invariants_hold_throughout(small_cell):
    inst, opt_state, _ = small_cell
    sim = LiveSimulation(inst, config=get_live_preset("churn"), seed=5,
                         optimum=opt_state)
    for _ in range(6):
        sim.run(rounds=15)
        sim.state.check_invariants()


def test_handshake_accounting_balances(small_cell):
    inst, opt_state, _ = small_cell
    sim = LiveSimulation(inst, config=get_live_preset("lossy"), seed=7,
                         optimum=opt_state)
    report = sim.run(rounds=60)
    a = report.agents
    # Every proposal resolves exactly one way at the proposer: accept
    # seen, reject seen, or timeout; accepted ones split into applied /
    # noop / aborted exchanges at most once each.
    assert a.proposals > 0
    assert a.exchanges + a.noop_exchanges + a.aborted <= a.accepts
    assert a.propose_timeouts <= a.proposals
    # Nothing ends the run still locked forever: all busy slots clear
    # once in-flight timeouts pass.
    sim.run(rounds=5)
    assert all(
        slot is None or slot[2] > 0 for slot in sim.agents.busy
    )


def test_unreachable_peers_never_gossiped(small_cell):
    """Forbidden (infinite-latency) links carry no control messages."""
    inst, _, _ = small_cell
    latency = inst.latency.copy()
    latency[0, 1] = latency[1, 0] = np.inf
    from repro import Instance

    inst2 = Instance(inst.speeds, inst.loads, latency)
    sim = LiveSimulation(inst2, config=get_live_preset("ideal"), seed=0)
    assert 1 not in sim.gossip.peers[0]
    assert 0 not in sim.gossip.peers[1]
    sim.run(rounds=20)
    assert sim.state.total_cost() > 0  # ran fine


# ----------------------------------------------------------------------
# Evaluator + sweep integration
# ----------------------------------------------------------------------
def test_livesim_evaluator_registered(small_cell):
    inst, opt_state, opt_cost = small_cell
    row = get_evaluator("livesim")(inst, opt_state, rng=0, rounds=50)
    assert row["converged"]
    assert row["final_error"] <= REL_TOL
    assert row["events_per_sec"] > 0
    assert row["exchanges"] > 0


def test_live_sweep_sync_vs_async():
    rows = live_sweep(
        ["paper-homogeneous"], sizes=[10], seeds=[0], rounds=50
    )
    assert len(rows) == 2  # one sync + one async cell
    by_mode = {r["mode"]: r for r in rows}
    assert by_mode["sync"]["converged"]
    assert by_mode["async"]["converged"]
    assert by_mode["async"]["events_per_sec"] > 0
    # Same offline optimum anchors both modes (shared memo cache).
    assert by_mode["sync"]["optimal_cost"] == by_mode["async"]["optimal_cost"]


def test_live_cell_validates_mode_and_preset():
    sc = get_scenario("paper-homogeneous")
    with pytest.raises(ValueError):
        LiveCell(scenario=sc, m=8, seed=0, mode="warp")
    with pytest.raises(KeyError):
        LiveCell(scenario=sc, m=8, seed=0, preset="nope")
    cell = LiveCell(scenario=sc, m=8, seed=0, rounds=30)
    row = evaluate_live_cell(cell)
    assert row["mode"] == "async"


def test_live_presets_cover_the_axes():
    assert set(LIVE_PRESETS) >= {"ideal", "lossy", "churn"}
    assert LIVE_PRESETS["churn"].churn_rate > 0
    assert LIVE_PRESETS["lossy"].p_drop > 0
    ideal = LIVE_PRESETS["ideal"]
    assert ideal.p_drop == 0 and ideal.churn_rate == 0


def test_optimum_as_float(small_cell):
    inst, _, opt_cost = small_cell
    sim = LiveSimulation(inst, seed=0, optimum=opt_cost)
    report = sim.run(rounds=40)
    assert report.optimum_cost == opt_cost
    assert report.per_server_error is None  # loads unknown from a float


def test_config_resolves_to_latency_scale():
    inst = get_scenario("datacenter-fattree").instance(12, seed=0)
    cfg = LiveConfig().resolve(inst)
    lat = inst.latency[np.isfinite(inst.latency) & (inst.latency > 0)]
    assert cfg.gossip_interval == pytest.approx(3 * max(float(np.median(lat)), 1e-3))
    assert cfg.agent_interval > cfg.gossip_interval
    assert cfg.accept_timeout > cfg.propose_timeout > 0
