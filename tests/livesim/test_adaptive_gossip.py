"""Adaptive gossip frequency: deterministic, neutral-safe, and useful.

The adaptive mechanism scales each server's gossip interval by a
merge-delta EMA (``repro.livesim.gossip.AsyncGossip._adapt``).  It must

* change **nothing** when off: ``gossip_adaptive=False`` pins every
  scale at 1.0 and skips the EMA update entirely, so the event sequence
  is bit-identical to releases that predate the knob (the PR-6 trace
  reproduction guarantee) — asserted here by running the neutral
  adaptive configuration (``adapt_min == adapt_max == 1``), whose only
  difference from "off" is that the new code path executes, on every
  registered scenario preset;
* stay a pure function of (instance, config, seed) when on — identical
  event traces, allocations and byte-identical trace JSONL across
  same-seed runs, because it draws no extra randomness;
* actually adapt: a converged fleet's mean effective interval stretches
  above the base interval.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.livesim import LiveConfig, LiveSimulation, get_live_preset
from repro.workloads import PRESETS, cached_instance, get_scenario


def _adaptive(cfg: LiveConfig, **over) -> LiveConfig:
    return dataclasses.replace(cfg, gossip_adaptive=True, **over)


def _run(inst, cfg, seed, rounds=40):
    sim = LiveSimulation(inst, config=cfg, seed=seed)
    rep = sim.run(rounds=rounds)
    return sim, rep


def _assert_same_run(sim_a, rep_a, sim_b, rep_b, label=""):
    assert rep_a.trace == rep_b.trace, f"{label}: traces diverged"
    assert rep_a.trace, f"{label}: trace should not be empty"
    assert rep_a.events_processed == rep_b.events_processed, (
        f"{label}: event counts diverged"
    )
    np.testing.assert_array_equal(sim_a.state.R, sim_b.state.R)
    np.testing.assert_array_equal(rep_a.costs, rep_b.costs)
    assert rep_a.net.sent == rep_b.net.sent
    assert rep_a.agents == rep_b.agents
    assert rep_a.gossip == rep_b.gossip


class TestOffIsLegacy:
    def test_neutral_adaptive_equals_off_on_all_presets(self):
        """``adapt_min = adapt_max = 1`` clamps every scale to 1.0, so
        the run must be indistinguishable from adaptive-off — proving
        the off path (scale pinned at 1.0, no EMA) reproduces the
        pre-knob event sequence on every registered preset."""
        cfg_off = get_live_preset("lossy")
        cfg_neutral = _adaptive(cfg_off, gossip_adapt_min=1.0, gossip_adapt_max=1.0)
        for sc in PRESETS:
            inst = cached_instance(sc, 12, 0)
            sim_a, rep_a = _run(inst, cfg_off, seed=5)
            sim_b, rep_b = _run(inst, cfg_neutral, seed=5)
            _assert_same_run(sim_a, rep_a, sim_b, rep_b, sc.name)

    def test_off_run_never_touches_scales(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        sim, _ = _run(inst, get_live_preset("ideal"), seed=3)
        assert sim.gossip._adapt_scale == [1.0] * inst.m
        assert sim.gossip.mean_interval() == sim.config.gossip_interval


class TestAdaptiveDeterminism:
    def test_same_seed_identical_on_all_presets(self):
        cfg = _adaptive(get_live_preset("lossy"))
        for sc in PRESETS:
            inst = cached_instance(sc, 12, 0)
            sim_a, rep_a = _run(inst, cfg, seed=11)
            sim_b, rep_b = _run(inst, cfg, seed=11)
            _assert_same_run(sim_a, rep_a, sim_b, rep_b, sc.name)

    def test_trace_jsonl_byte_identical(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        cfg = _adaptive(get_live_preset("lossy"))

        def trace_bytes(seed):
            o = obs.Observability(trace=True)
            sim = LiveSimulation(inst, config=cfg, seed=seed, obs=o)
            sim.run(rounds=40)
            return o.tracer.to_jsonl()

        text_a = trace_bytes(7)
        text_b = trace_bytes(7)
        assert text_a == text_b
        assert text_a.count("\n") > 10
        assert trace_bytes(8) != text_a

    def test_adaptive_with_churn_identical(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 16, 0)
        cfg = _adaptive(get_live_preset("churn"))
        sim_a, rep_a = _run(inst, cfg, seed=2, rounds=60)
        sim_b, rep_b = _run(inst, cfg, seed=2, rounds=60)
        _assert_same_run(sim_a, rep_a, sim_b, rep_b, "churn")
        assert rep_a.failures == rep_b.failures

    def test_split_run_matches_long_run(self):
        inst = cached_instance(get_scenario("paper-homogeneous"), 10, 0)
        cfg = _adaptive(get_live_preset("lossy"))
        sim_long = LiveSimulation(inst, config=cfg, seed=4)
        rep_long = sim_long.run(rounds=60)
        sim_split = LiveSimulation(inst, config=cfg, seed=4)
        sim_split.run(rounds=30)
        rep_split = sim_split.run(rounds=30)
        assert rep_long.trace == rep_split.trace
        np.testing.assert_array_equal(sim_long.state.R, sim_split.state.R)


class TestAdaptationBehavior:
    def test_converged_fleet_stretches_interval(self):
        """Once the fleet converges nothing merges with new values, the
        EMAs decay toward zero, and the mean effective interval climbs
        above the base interval (toward ``adapt_max`` × base)."""
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        cfg = _adaptive(get_live_preset("ideal"))
        sim, rep = _run(inst, cfg, seed=0, rounds=120)
        base = sim.config.gossip_interval
        assert sim.gossip.mean_interval() > 1.5 * base
        assert max(sim.gossip._adapt_scale) <= cfg.gossip_adapt_max
        assert min(sim.gossip._adapt_scale) >= cfg.gossip_adapt_min

    def test_still_converges(self):
        """Adaptive scheduling must not break convergence to the 2 %
        bound (gossip slows only where views stopped changing)."""
        from repro.workloads.cache import cached_optimum

        sc = get_scenario("paper-planetlab")
        inst = cached_instance(sc, 12, 0)
        _, opt_cost, _, _ = cached_optimum(sc, 12, 0)
        cfg = _adaptive(get_live_preset("ideal"))
        sim, rep = _run(inst, cfg, seed=1, rounds=120)
        err = (sim.state.total_cost() - opt_cost) / opt_cost
        assert err <= 0.02

    def test_interval_gauge_exposed(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        cfg = _adaptive(get_live_preset("ideal"))
        o = obs.Observability()
        sim = LiveSimulation(inst, config=cfg, seed=0, obs=o)
        sim.run(rounds=30)
        snap = o.metrics.snapshot()
        assert "gossip.interval" in snap["metrics"]
        assert snap["metrics"]["gossip.interval"] > 0

    def test_demand_refresh_resets_adaptation(self):
        """A demand shift snaps the EMAs back to the neutral operating
        point so the fleet re-spreads new loads at full rate."""
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        cfg = _adaptive(get_live_preset("ideal"))
        sim, _ = _run(inst, cfg, seed=0, rounds=120)
        assert sim.gossip.mean_interval() > sim.config.gossip_interval
        rng = np.random.default_rng(0)
        new_loads = inst.loads * rng.uniform(0.5, 2.0, size=inst.m)
        sim.apply_demand(new_loads)
        assert sim.gossip._adapt_scale == [1.0] * inst.m
        assert sim.gossip.mean_interval() == sim.config.gossip_interval
