"""Livesim over §II trust-restricted instances.

A trust-restricted scenario materializes with ``inf`` latency on every
untrusted pair, so the live control plane — gossip relays, handshakes
and transfers alike — only ever crosses trusted edges, and the fleet
converges to the *restricted* optimum (the best cost achievable without
untrusted relaying), not the unrestricted one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.livesim import LiveConfig, LiveSimulation
from repro.workloads import (
    TRUST_PRESETS,
    cached_instance,
    cached_optimum,
    get_scenario,
)
from repro.workloads.scenario import Scenario, TrustSpec

TRUST_NAMES = [sc.name for sc in TRUST_PRESETS]


@pytest.mark.parametrize("name", TRUST_NAMES)
def test_trust_instances_carry_inf_latency(name):
    inst = cached_instance(get_scenario(name), 16, 0)
    off_diag = ~np.eye(16, dtype=bool)
    assert np.isinf(inst.latency[off_diag]).any(), (
        f"{name}: restriction produced no inf edges at m=16"
    )
    assert np.isfinite(inst.latency[off_diag]).any(), (
        f"{name}: restriction removed every edge"
    )


@pytest.mark.parametrize("name", TRUST_NAMES)
def test_livesim_converges_to_restricted_optimum(name):
    sc = get_scenario(name)
    inst = cached_instance(sc, 16, 0)
    _, opt_cost, _, _ = cached_optimum(sc, 16, 0)
    sim = LiveSimulation(inst, config=LiveConfig(), seed=1, optimum=opt_cost)
    rep = sim.run(rounds=160)
    assert rep.final_error <= 0.02, (
        f"{name}: live error {rep.final_error:.4f} vs restricted optimum"
    )


def test_trust_presets_registered_but_not_in_default_matrix():
    from repro.workloads import PRESETS

    default = {sc.name for sc in PRESETS}
    for name in TRUST_NAMES:
        assert get_scenario(name).trust is not None
        assert name not in default, (
            "trust presets converge to a different optimum and must stay "
            "out of the default determinism/convergence matrix"
        )


def test_disconnected_trust_raises_at_materialization():
    sc = get_scenario("planetlab-random-trust").with_overrides(
        name="test-disconnected-trust", trust=TrustSpec(kind="random", p=0.0)
    )
    with pytest.raises(ValueError, match="disconnected"):
        sc.instance(12, seed=0)


def test_random_trust_uses_materialization_seed():
    """Two seeds of the same random-trust scenario draw different trust
    graphs (the entropy-separated stream is keyed by the cell seed)."""
    sc = get_scenario("planetlab-random-trust")
    inf_a = np.isinf(sc.instance(16, seed=0).latency)
    inf_b = np.isinf(sc.instance(16, seed=1).latency)
    assert inf_a.any() and inf_b.any()
    assert (inf_a != inf_b).any(), "trust graph ignored the cell seed"
    np.testing.assert_array_equal(
        inf_a, np.isinf(sc.instance(16, seed=0).latency)
    )


def test_trust_spec_validation():
    with pytest.raises(ValueError, match="unknown trust kind"):
        TrustSpec(kind="weird")
    spec = TrustSpec(kind="ring", hops=3)
    assert spec == TrustSpec(kind="ring", hops=3)
    assert hash(spec) == hash(TrustSpec(kind="ring", hops=3))
