"""Delta gossip: bit-identical merge results, strictly smaller payloads.

Delta mode is a wire-format optimization: a payload ships only entries
the receiver may lack, but every entry *strictly newer* at the receiver
is always included, so merges produce exactly the tables a full-table
exchange would.  These tests replay full-vs-delta on every registered
preset (Python-list representation), on a packed-ndarray fleet, under
churn, and across mid-run demand shifts, asserting identical event
traces, allocations, merged load views and update counts — and that the
delta wire format ships strictly fewer modelled payload bytes.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.livesim import LiveSimulation, get_live_preset
from repro.workloads import PRESETS, cached_instance, get_scenario


def _pair(inst, cfg, seed, rounds):
    sim_f = LiveSimulation(inst, config=cfg, seed=seed)
    rep_f = sim_f.run(rounds=rounds)
    sim_d = LiveSimulation(
        inst, config=dataclasses.replace(cfg, gossip_mode="delta"), seed=seed
    )
    rep_d = sim_d.run(rounds=rounds)
    return sim_f, rep_f, sim_d, rep_d


def _assert_identical(sim_f, rep_f, sim_d, rep_d, label=""):
    assert rep_f.trace == rep_d.trace, f"{label}: event traces diverged"
    assert rep_f.trace, f"{label}: trace should not be empty"
    np.testing.assert_array_equal(sim_f.state.R, sim_d.state.R)
    np.testing.assert_array_equal(rep_f.costs, rep_d.costs)
    np.testing.assert_array_equal(sim_f.gossip.values, sim_d.gossip.values)
    assert sim_f.gossip.update_counts == sim_d.gossip.update_counts
    assert rep_f.agents == rep_d.agents
    assert rep_f.net == rep_d.net  # same sends, drops, deliveries
    assert rep_f.failures == rep_d.failures


class TestMergeIdentity:
    def test_all_presets_identical_lossy(self):
        """All 7 scenario presets, list-mode tables, 10% message loss
        (lost acks force conservative superset payloads)."""
        cfg = get_live_preset("lossy")
        for sc in PRESETS:
            inst = cached_instance(sc, 12, 0)
            sim_f, rep_f, sim_d, rep_d = _pair(inst, cfg, seed=5, rounds=50)
            _assert_identical(sim_f, rep_f, sim_d, rep_d, sc.name)
            assert (
                rep_d.gossip.payload_bytes < rep_f.gossip.payload_bytes
            ), f"{sc.name}: delta shipped no fewer bytes"

    def test_packed_path_identical_with_churn(self):
        """m > 64 exercises the packed-ndarray payload/merge kernels;
        churn adds failures, dead letters and rejoin republishes."""
        inst = cached_instance(get_scenario("regional-surge"), 72, 0)
        cfg = get_live_preset("churn")
        sim_f, rep_f, sim_d, rep_d = _pair(inst, cfg, seed=3, rounds=60)
        _assert_identical(sim_f, rep_f, sim_d, rep_d, "m=72 churn")
        assert len(rep_f.failures) > 0
        assert rep_d.gossip.payload_bytes < rep_f.gossip.payload_bytes

    def test_demand_shift_identical(self):
        """apply_demand republishes everything; delta must ship the whole
        changed table once and then quiesce, staying bit-identical."""
        inst = cached_instance(get_scenario("regional-surge"), 72, 0)
        cfg = get_live_preset("lossy")
        sim_f, _, sim_d, _ = _pair(inst, cfg, seed=1, rounds=30)
        shift = inst.loads * np.random.default_rng(9).uniform(0.5, 2.0, inst.m)
        sim_f.apply_demand(shift)
        sim_d.apply_demand(shift)
        rep_f = sim_f.run(rounds=25)
        rep_d = sim_d.run(rounds=25)
        _assert_identical(sim_f, rep_f, sim_d, rep_d, "demand shift")


class TestPayloadEconomy:
    def test_converged_fleet_ships_near_nothing(self):
        """After convergence the tables stop changing: delta payloads
        collapse to headers while full mode keeps shipping m entries."""
        inst = cached_instance(get_scenario("paper-planetlab"), 16, 0)
        cfg = get_live_preset("ideal")
        sim = LiveSimulation(
            inst, config=dataclasses.replace(cfg, gossip_mode="delta"), seed=0
        )
        sim.run(rounds=80)  # converge
        before = dataclasses.replace(sim.gossip.stats)
        sim.run(rounds=20)
        entries = sim.gossip.stats.payload_entries - before.payload_entries
        packets = (
            sim.gossip.stats.pushes + sim.gossip.stats.pull_replies
            - before.pushes - before.pull_replies
        )
        # Far below the m-entries-per-packet of full mode.
        assert entries < 0.05 * packets * inst.m

    def test_payload_counters_track_full_mode_exactly(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        sim = LiveSimulation(inst, config=get_live_preset("ideal"), seed=0)
        rep = sim.run(rounds=10)
        packets = rep.gossip.pushes + rep.gossip.pull_replies
        assert rep.gossip.payload_entries == packets * inst.m
