"""Trace-driven churn: measured failure schedules replayed through the
live control plane.

A :class:`FailureTrace` carries explicit ``(t_rounds, server,
downtime_rounds)`` events; replay routes them through the same
``on_fail``/``on_rejoin`` driver callbacks as random churn, so queue
drops and owner re-submission couple identically — with *zero* RNG
involved, a trace replay is exactly as deterministic as the trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.livesim import (
    FailureTrace,
    LiveConfig,
    LiveSimulation,
)
from repro.workloads import cached_instance, get_scenario


def _run(cfg, seed=6, m=12, rounds=80):
    inst = cached_instance(get_scenario("paper-planetlab"), m, 0)
    sim = LiveSimulation(inst, config=cfg, seed=seed)
    return sim, sim.run(rounds=rounds)


class TestFailureTraceValidation:
    @pytest.mark.parametrize(
        "events,match",
        [
            (np.zeros((2, 2)), "\\(n, 3\\) matrix"),
            ([[np.inf, 0, 1.0]], "finite"),
            ([[-1.0, 0, 1.0]], "non-negative"),
            ([[1.0, 0.5, 1.0]], "integers"),
            ([[1.0, -2, 1.0]], "integers"),
            ([[1.0, 0, 0.0]], "positive"),
        ],
    )
    def test_bad_traces_raise(self, events, match):
        with pytest.raises(ValueError, match=match):
            FailureTrace(np.asarray(events, dtype=np.float64))

    def test_events_are_sorted_and_frozen(self):
        tr = FailureTrace([[9.0, 1, 2.0], [3.0, 0, 1.0], [3.0, 2, 1.0]])
        np.testing.assert_array_equal(tr.events[:, 0], [3.0, 3.0, 9.0])
        np.testing.assert_array_equal(tr.events[:, 1], [0.0, 2.0, 1.0])
        assert tr.n_events == 3
        with pytest.raises(ValueError):
            tr.events[0, 0] = 0.0  # read-only

    def test_csv_and_npz_roundtrip(self, tmp_path):
        tr = FailureTrace([[5.0, 2, 3.0], [12.0, 0, 1.5]])
        csv = tmp_path / "fail.csv"
        csv.write_text("5.0,2,3.0\n12.0,0,1.5\n")
        np.testing.assert_array_equal(FailureTrace.from_csv(csv).events,
                                      tr.events)
        npz = tmp_path / "fail.npz"
        np.savez(npz, events=tr.events)
        np.testing.assert_array_equal(FailureTrace.from_npz(npz).events,
                                      tr.events)


class TestFromMtbf:
    def test_deterministic_per_m_and_seed(self):
        a = FailureTrace.from_mtbf(10, mtbf_rounds=30.0, horizon_rounds=200.0)
        b = FailureTrace.from_mtbf(10, mtbf_rounds=30.0, horizon_rounds=200.0)
        np.testing.assert_array_equal(a.events, b.events)
        c = FailureTrace.from_mtbf(
            10, mtbf_rounds=30.0, horizon_rounds=200.0, seed=1
        )
        assert a.events.shape != c.events.shape or (a.events != c.events).any()

    def test_mean_interfailure_tracks_mtbf(self):
        tr = FailureTrace.from_mtbf(
            40, mtbf_rounds=25.0, horizon_rounds=2000.0, shape=0.7
        )
        per_server = np.bincount(tr.events[:, 1].astype(int), minlength=40)
        # ~2000/25 = 80 expected failures/server minus downtime dead-time.
        assert 30 < per_server.mean() < 85
        assert (tr.events[:, 0] < 2000.0).all()

    def test_quiet_horizon_gives_empty_trace(self):
        tr = FailureTrace.from_mtbf(4, mtbf_rounds=1e9, horizon_rounds=10.0)
        assert tr.n_events == 0
        assert tr.events.shape == (0, 3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mtbf_rounds": 0.0, "horizon_rounds": 10.0},
            {"mtbf_rounds": 10.0, "horizon_rounds": 0.0},
            {"mtbf_rounds": 10.0, "horizon_rounds": 10.0,
             "downtime_rounds": 0.0},
            {"mtbf_rounds": 10.0, "horizon_rounds": 10.0, "shape": 0.0},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            FailureTrace.from_mtbf(8, **kwargs)


class TestTraceReplay:
    def test_replay_fails_and_rejoins_on_schedule(self):
        tr = FailureTrace([[10.0, 3, 5.0], [20.0, 7, 5.0]])
        cfg = LiveConfig(churn_trace=tr)
        _, rep = _run(cfg)
        assert [j for _, j in rep.failures] == [3, 7]
        assert [j for _, j in rep.rejoins] == [3, 7]
        t_fail = [t for t, _ in rep.failures]
        interval = cfg.resolve(
            cached_instance(get_scenario("paper-planetlab"), 12, 0)
        ).agent_interval
        np.testing.assert_allclose(t_fail, [10.0 * interval, 20.0 * interval])

    def test_events_beyond_m_are_skipped(self):
        tr = FailureTrace([[10.0, 3, 5.0], [10.0, 99, 5.0]])
        _, rep = _run(LiveConfig(churn_trace=tr))
        assert [j for _, j in rep.failures] == [3]

    def test_replay_couples_with_request_plane(self):
        """A trace-driven failure drops the down server's queue and the
        owners re-submit — the same coupling as random churn."""
        tr = FailureTrace.from_mtbf(
            8, mtbf_rounds=10.0, horizon_rounds=50.0, downtime_rounds=3.0
        )
        assert tr.n_events > 0
        cfg = LiveConfig(churn_trace=tr, arrival_rate_scale=0.02)
        sim_a, rep_a = _run(cfg, m=8, rounds=60)
        assert rep_a.failures
        assert rep_a.requests_resubmitted > 0
        sim_b, rep_b = _run(cfg, m=8, rounds=60)
        assert rep_a.trace == rep_b.trace
        assert rep_a.requests_resubmitted == rep_b.requests_resubmitted
        np.testing.assert_array_equal(sim_a.state.R, sim_b.state.R)

    def test_no_trace_is_bit_identical_to_empty_trace(self):
        empty = FailureTrace(np.empty((0, 3)))
        sim_a, rep_a = _run(LiveConfig(), seed=9)
        sim_b, rep_b = _run(LiveConfig(churn_trace=empty), seed=9)
        assert rep_a.trace == rep_b.trace
        np.testing.assert_array_equal(sim_a.state.R, sim_b.state.R)

    def test_trace_stacks_with_random_churn(self):
        """Trace replay and the memoryless model are orthogonal planes:
        both can run, and the trace events appear among the failures."""
        tr = FailureTrace([[15.0, 5, 4.0]])
        cfg = LiveConfig(churn_trace=tr, churn_rate=0.01)
        _, rep = _run(cfg, rounds=60)
        assert 5 in [j for _, j in rep.failures]
