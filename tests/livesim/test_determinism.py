"""Determinism: the live simulation is a pure function of (instance,
config, seed).

Two runs with the same seed must produce the *identical* event trace
(every proposal, accept, exchange, timeout, failure and rejoin, with
exact times and improvements) and bit-identical final allocations; and
enabling churn at rate zero must change nothing at all versus churn
disabled.
"""

from __future__ import annotations

import numpy as np

from repro.livesim import LiveConfig, LiveSimulation, get_live_preset
from repro.workloads import cached_instance, get_scenario


def _run(inst, config, seed, rounds=60):
    sim = LiveSimulation(inst, config=config, seed=seed)
    report = sim.run(rounds=rounds)
    return sim, report


class TestSameSeedIdentical:
    def test_event_trace_and_allocation_identical(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        cfg = get_live_preset("churn")  # the most stochastic preset
        sim_a, rep_a = _run(inst, cfg, seed=11)
        sim_b, rep_b = _run(inst, cfg, seed=11)
        assert rep_a.trace == rep_b.trace
        assert rep_a.trace, "trace should not be empty"
        np.testing.assert_array_equal(sim_a.state.R, sim_b.state.R)
        np.testing.assert_array_equal(rep_a.times, rep_b.times)
        np.testing.assert_array_equal(rep_a.costs, rep_b.costs)
        assert rep_a.failures == rep_b.failures
        assert rep_a.net.sent == rep_b.net.sent
        assert rep_a.agents == rep_b.agents
        assert rep_a.gossip == rep_b.gossip

    def test_different_seeds_differ(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        cfg = get_live_preset("ideal")
        _, rep_a = _run(inst, cfg, seed=0)
        _, rep_b = _run(inst, cfg, seed=1)
        assert rep_a.trace != rep_b.trace

    def test_extending_a_run_matches_one_long_run(self):
        """run(rounds=30) twice equals run(rounds=60): the clock and all
        RNG streams continue rather than reset."""
        inst = cached_instance(get_scenario("paper-homogeneous"), 10, 0)
        cfg = get_live_preset("lossy")
        sim_long = LiveSimulation(inst, config=cfg, seed=4)
        rep_long = sim_long.run(rounds=60)
        sim_split = LiveSimulation(inst, config=cfg, seed=4)
        sim_split.run(rounds=30)
        rep_split = sim_split.run(rounds=30)
        assert rep_long.trace == rep_split.trace
        np.testing.assert_array_equal(sim_long.state.R, sim_split.state.R)


class TestChurnRateZeroIsChurnOff:
    def test_traces_identical(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        base = get_live_preset("ideal")
        zero_churn = LiveConfig(p_drop=base.p_drop, churn_rate=0.0)
        sim_off, rep_off = _run(inst, base, seed=9)
        sim_zero, rep_zero = _run(inst, zero_churn, seed=9)
        assert rep_off.trace == rep_zero.trace
        np.testing.assert_array_equal(sim_off.state.R, sim_zero.state.R)
        np.testing.assert_array_equal(rep_off.costs, rep_zero.costs)
        assert rep_zero.failures == []

    def test_identical_with_traffic(self):
        """Churn at rate zero must also leave the *request plane*
        untouched: no queue drops, no re-submissions, bit-identical
        request streams versus churn disabled."""
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        off = LiveConfig(arrival_rate_scale=0.05)
        zero = LiveConfig(arrival_rate_scale=0.05, churn_rate=0.0)
        sim_off, rep_off = _run(inst, off, seed=2)
        sim_zero, rep_zero = _run(inst, zero, seed=2)
        assert rep_off.trace == rep_zero.trace
        np.testing.assert_array_equal(sim_off.state.R, sim_zero.state.R)
        assert rep_off.requests_submitted == rep_zero.requests_submitted
        assert rep_off.requests_completed == rep_zero.requests_completed
        assert rep_zero.requests_resubmitted == 0
        assert rep_off.request_mean_latency == rep_zero.request_mean_latency


class TestChurnDropsQueuedRequests:
    def test_failures_resubmit_and_runs_replay(self):
        """A failed server drops its queued requests; owners re-submit
        them (the churn–traffic coupling), deterministically per seed."""
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        churn = get_live_preset("churn")
        cfg = LiveConfig(
            p_drop=churn.p_drop,
            churn_rate=0.02,
            arrival_rate_scale=0.05,
        )
        sim_a, rep_a = _run(inst, cfg, seed=6, rounds=120)
        assert rep_a.failures, "churn produced no failures"
        assert rep_a.requests_resubmitted > 0, (
            "no queued request was dropped and re-submitted across "
            f"{len(rep_a.failures)} failures"
        )
        assert rep_a.requests_completed > 0
        sim_b, rep_b = _run(inst, cfg, seed=6, rounds=120)
        assert rep_a.trace == rep_b.trace
        assert rep_a.requests_resubmitted == rep_b.requests_resubmitted
        assert rep_a.requests_completed == rep_b.requests_completed
        np.testing.assert_array_equal(sim_a.state.R, sim_b.state.R)

    def test_crashed_server_queue_empties(self):
        from repro.sim.events import Environment
        from repro.sim.server import Request, SimServer

        env = Environment()
        server = SimServer(env, 0, speed=1.0)
        for k in range(3):
            server.submit(Request(owner=k, server=0, t_submit=0.0))
        assert server.busy and server.backlog == 2
        dropped = server.fail()
        assert len(dropped) == 3  # in-service + queued
        assert not server.busy and server.backlog == 0
        env.run(until=10.0)  # stale completion event fires as a no-op
        assert server.completed == []
        # The server works again after "rejoining".
        server.submit(Request(owner=9, server=0, t_submit=env.now))
        env.run(until=20.0)
        assert [r.owner for r in server.completed] == [9]


class TestSchedulerIdentity:
    """The calendar-queue scheduler replays the heap's event order
    exactly: same trace, same event count, same final allocation, on
    every registered preset (the ISSUE-4 acceptance determinism suite)."""

    def test_all_presets_identical_across_schedulers(self):
        from repro.workloads import PRESETS

        cfg = get_live_preset("lossy")  # stochastic drops exercise RNG order
        for sc in PRESETS:
            inst = cached_instance(sc, 12, 0)
            sim_h = LiveSimulation(inst, config=cfg, seed=5, scheduler="heap")
            rep_h = sim_h.run(rounds=40)
            sim_c = LiveSimulation(inst, config=cfg, seed=5, scheduler="calendar")
            rep_c = sim_c.run(rounds=40)
            assert rep_h.trace == rep_c.trace, f"{sc.name}: traces diverged"
            assert rep_h.trace, f"{sc.name}: trace should not be empty"
            assert rep_h.events_processed == rep_c.events_processed
            np.testing.assert_array_equal(sim_h.state.R, sim_c.state.R)
            np.testing.assert_array_equal(rep_h.costs, rep_c.costs)
            assert rep_h.net.sent == rep_c.net.sent
            assert rep_h.agents == rep_c.agents
            assert rep_h.gossip == rep_c.gossip

    def test_churn_preset_identical_across_schedulers(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        cfg = get_live_preset("churn")
        sim_h = LiveSimulation(inst, config=cfg, seed=11, scheduler="heap")
        rep_h = sim_h.run(rounds=60)
        sim_c = LiveSimulation(inst, config=cfg, seed=11, scheduler="calendar")
        rep_c = sim_c.run(rounds=60)
        assert rep_h.trace == rep_c.trace
        assert rep_h.failures == rep_c.failures
        assert rep_h.rejoins == rep_c.rejoins
        np.testing.assert_array_equal(sim_h.state.R, sim_c.state.R)


class TestBufferedDraws:
    """The block-buffered RNG helpers hand out exactly the values that
    the same number of scalar draws of that kind would produce."""

    def test_uniform_blocks_match_scalar_stream(self):
        from repro.livesim._util import BufferedUniform

        buffered = BufferedUniform(np.random.default_rng(5), block=8)
        scalar = np.random.default_rng(5)
        got = [buffered.next() for _ in range(20)]
        want = [scalar.random() for _ in range(20)]
        assert got == want  # bitwise: block draws consume state identically

    def test_integer_blocks_match_scalar_stream(self):
        from repro.livesim._util import BufferedIntegers

        buffered = BufferedIntegers(np.random.default_rng(9), 13, block=8)
        scalar = np.random.default_rng(9)
        got = [int(buffered.next()) for _ in range(20)]
        want = [int(scalar.integers(13)) for _ in range(20)]
        assert got == want
