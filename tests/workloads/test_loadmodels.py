"""Unit tests for :mod:`repro.workloads.loadmodels`."""

import numpy as np
import pytest

from repro.workloads import (
    CorrelatedSurgeLoads,
    DiurnalLoads,
    ExponentialLoads,
    FlashCrowdLoads,
    LoadModel,
    LognormalLoads,
    ParetoLoads,
    UniformLoads,
    scale_to_average,
)

ALL_MODELS = [
    UniformLoads(),
    ExponentialLoads(),
    DiurnalLoads(),
    FlashCrowdLoads(),
    ParetoLoads(),
    LognormalLoads(),
    CorrelatedSurgeLoads(),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestAllModels:
    def test_sample_shape_and_positivity(self, model):
        loads = model.sample(37, np.random.default_rng(0))
        assert loads.shape == (37,)
        assert np.all(np.isfinite(loads))
        assert np.all(loads > 0)

    def test_deterministic_under_fixed_seed(self, model):
        a = model.sample(25, np.random.default_rng(42))
        b = model.sample(25, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, model):
        a = model.sample(25, np.random.default_rng(1))
        b = model.sample(25, np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_trace_shape(self, model):
        tr = model.trace(10, 5, np.random.default_rng(0))
        assert tr.shape == (5, 10)
        assert np.all(tr > 0)

    def test_satisfies_protocol(self, model):
        assert isinstance(model, LoadModel)


class TestSpecifics:
    def test_flash_crowd_has_hot_spot(self):
        loads = FlashCrowdLoads(base=10.0, magnitude=200.0).sample(
            40, np.random.default_rng(0)
        )
        # The spike dwarfs the exponential background.
        assert loads.max() > 20 * np.median(loads)

    def test_pareto_is_heavy_tailed(self):
        loads = ParetoLoads(shape=1.2, scale=10.0).sample(
            500, np.random.default_rng(0)
        )
        assert loads.max() > 10 * loads.mean()

    def test_diurnal_trace_oscillates(self):
        model = DiurnalLoads(base=100.0, amplitude=0.9, regions=1, noise_sigma=0.0)
        tr = model.trace(5, 24, np.random.default_rng(0))
        col = tr[:, 0]
        assert col.max() > 1.5 * col.min()

    def test_diurnal_rejects_bad_amplitude(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalLoads(amplitude=1.5)

    def test_correlated_surge_is_regionwise(self):
        model = CorrelatedSurgeLoads(
            regions=2, base=10.0, surge_prob=0.5, surge_factor=100.0,
            noise_sigma=0.01,
        )
        # Across seeds, samples are either unimodal (no/all surge) or split
        # into two well-separated groups; check the split case exists.
        found_split = False
        for seed in range(20):
            loads = model.sample(60, np.random.default_rng(seed))
            hot = loads > 100.0
            if 0 < hot.sum() < 60:
                found_split = True
                break
        assert found_split

    def test_scale_to_average(self):
        rng = np.random.default_rng(0)
        loads = ExponentialLoads(avg=5.0).sample(100, rng)
        scaled = scale_to_average(loads, 200.0)
        assert scaled.mean() == pytest.approx(200.0)
