"""The cross-sweep memo cache: identical results, skipped solves, and
the scenario-redefinition guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    ExponentialLoads,
    Scenario,
    ScenarioRunner,
    cache_stats,
    cached_instance,
    cached_optimum,
    clear_cache,
    get_scenario,
)
from repro.workloads.scenario import _homogeneous_20ms


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestInstanceCache:
    def test_same_object_on_hit(self):
        sc = get_scenario("paper-homogeneous")
        a = cached_instance(sc, 12, 0)
        b = cached_instance(sc, 12, 0)
        assert a is b
        stats = cache_stats()
        assert stats.instance_hits == 1 and stats.instance_misses == 1

    def test_matches_direct_materialization(self):
        sc = get_scenario("cdn-flashcrowd")
        inst = cached_instance(sc, 14, 3)
        direct = sc.instance(14, seed=3)
        np.testing.assert_array_equal(inst.speeds, direct.speeds)
        np.testing.assert_array_equal(inst.loads, direct.loads)
        np.testing.assert_array_equal(inst.latency, direct.latency)

    def test_distinct_cells_distinct_entries(self):
        sc = get_scenario("paper-homogeneous")
        assert cached_instance(sc, 12, 0) is not cached_instance(sc, 12, 1)
        assert cached_instance(sc, 12, 0) is not cached_instance(sc, 14, 0)

    def test_redefined_scenario_never_serves_stale(self):
        sc = Scenario(
            name="cache-guard",
            topology=_homogeneous_20ms,
            load_model=ExponentialLoads(avg=50.0),
            m=10,
        )
        a = cached_instance(sc, 10, 0)
        redefined = sc.with_overrides(load_model=ExponentialLoads(avg=500.0))
        b = cached_instance(redefined, 10, 0)
        assert b is not a
        assert b.total_load != pytest.approx(a.total_load)


class TestOptimumCache:
    def test_hit_skips_the_solve(self):
        sc = get_scenario("paper-planetlab")
        state1, cost1, wall1, hit1 = cached_optimum(sc, 12, 0)
        state2, cost2, wall2, hit2 = cached_optimum(sc, 12, 0)
        assert (hit1, hit2) == (False, True)
        assert wall2 == 0.0
        assert cost1 == cost2
        np.testing.assert_array_equal(state1.R, state2.R)

    def test_returns_fresh_copies(self):
        """Optimizers mutate states in place; a hit must not leak the
        cached arrays."""
        sc = get_scenario("paper-planetlab")
        state1, _, _, _ = cached_optimum(sc, 12, 0)
        state1.R[0, 0] += 123.0
        state2, _, _, _ = cached_optimum(sc, 12, 0)
        assert state2.R[0, 0] != state1.R[0, 0]

    def test_concurrent_threads_share_one_solve(self):
        """Under the threads backend, cells with the same key must wait
        for one solve rather than duplicate it."""
        from concurrent.futures import ThreadPoolExecutor

        sc = get_scenario("paper-planetlab")
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(lambda _: cached_optimum(sc, 14, 0), range(8))
            )
        assert cache_stats().optimum_misses == 1
        assert cache_stats().optimum_hits == 7
        costs = {cost for _, cost, _, _ in results}
        assert len(costs) == 1

    def test_tolerance_is_part_of_the_key(self):
        sc = get_scenario("paper-homogeneous")
        _, _, _, hit_a = cached_optimum(sc, 10, 0, tol=1e-9)
        _, _, _, hit_b = cached_optimum(sc, 10, 0, tol=1e-6)
        assert (hit_a, hit_b) == (False, False)


class TestRunnerIntegration:
    def test_rerun_hits_the_cache_and_matches(self):
        runner = ScenarioRunner(
            ["paper-homogeneous"], sizes=[10], seeds=[0, 1], metrics=("mine",)
        )
        first = runner.run()
        misses = cache_stats().optimum_misses
        second = runner.run()  # re-sweep: every optimum comes from cache
        assert cache_stats().optimum_misses == misses
        assert cache_stats().optimum_hits >= 2
        assert first == second


class TestDiskTier:
    def test_second_process_would_skip_the_solve(self, tmp_path):
        """A cleared in-process memo (= a fresh process / another shard)
        is served from the npz tier instead of re-solving."""
        from repro.workloads import get_cache_dir, set_cache_dir
        from repro.workloads.cache import cache_stats

        sc = get_scenario("paper-homogeneous")
        prev = set_cache_dir(tmp_path)
        try:
            clear_cache()
            st1, cost1, wall1, hit1 = cached_optimum(sc, 10, 0)
            assert not hit1 and cache_stats().disk_misses == 1
            assert len(list(tmp_path.glob("*.npz"))) == 1
            clear_cache()  # simulate a different process
            st2, cost2, wall2, hit2 = cached_optimum(sc, 10, 0)
            assert hit2 and wall2 == 0.0
            assert cache_stats().disk_hits == 1
            assert cache_stats().optimum_misses == 0
            assert cost2 == cost1
            np.testing.assert_array_equal(st1.R, st2.R)
            assert get_cache_dir() == str(tmp_path)
        finally:
            set_cache_dir(prev)
            clear_cache()

    def test_solver_params_and_instance_digest_in_file_name(self, tmp_path):
        from repro.workloads import set_cache_dir

        sc = get_scenario("paper-homogeneous")
        prev = set_cache_dir(tmp_path)
        try:
            clear_cache()
            cached_optimum(sc, 10, 0)
            cached_optimum(sc, 10, 0, tol=1e-6)   # different tolerance
            cached_optimum(sc, 10, 1)             # different seed
            assert len(list(tmp_path.glob("*.npz"))) == 3
        finally:
            set_cache_dir(prev)
            clear_cache()

    def test_corrupt_file_falls_back_to_solving(self, tmp_path):
        from repro.workloads import set_cache_dir
        from repro.workloads.cache import _disk_path

        sc = get_scenario("paper-homogeneous")
        prev = set_cache_dir(tmp_path)
        try:
            clear_cache()
            inst = cached_instance(sc, 10, 0)
            path = _disk_path(sc, inst, 10, 0, 1e-9, "auto")
            with open(path, "wb") as fh:
                fh.write(b"not an npz")
            clear_cache()
            st, cost, _, hit = cached_optimum(sc, 10, 0)
            assert not hit  # solved fresh, did not crash
            assert cost > 0
        finally:
            set_cache_dir(prev)
            clear_cache()

    def test_disabled_tier_writes_nothing(self, tmp_path):
        from repro.workloads import get_cache_dir, set_cache_dir

        prev = set_cache_dir(None)
        try:
            clear_cache()
            assert get_cache_dir() is None
            cached_optimum(get_scenario("paper-homogeneous"), 10, 0)
            assert list(tmp_path.glob("*.npz")) == []
        finally:
            set_cache_dir(prev)
            clear_cache()
