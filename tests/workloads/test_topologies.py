"""Unit tests for :mod:`repro.workloads.topologies`."""

import numpy as np
import pytest

from repro.net.latency import is_metric
from repro.workloads import (
    fat_tree_latency,
    measured_latency,
    ring_of_clusters_latency,
    star_hub_latency,
)

GENERATORS = [
    fat_tree_latency,
    ring_of_clusters_latency,
    star_hub_latency,
]


@pytest.mark.parametrize("gen", GENERATORS, ids=lambda g: g.__name__)
class TestAllGenerators:
    def test_valid_latency_matrix(self, gen):
        c = gen(30, rng=np.random.default_rng(0))
        assert c.shape == (30, 30)
        assert np.all(np.isfinite(c))
        assert np.all(np.diagonal(c) == 0)
        off = c[~np.eye(30, dtype=bool)]
        assert np.all(off > 0)
        np.testing.assert_allclose(c, c.T)

    def test_metric(self, gen):
        c = gen(25, rng=np.random.default_rng(3))
        assert is_metric(c)

    def test_deterministic(self, gen):
        a = gen(20, rng=np.random.default_rng(7))
        b = gen(20, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestFatTree:
    def test_hierarchy_levels(self):
        c = fat_tree_latency(
            16, hosts_per_rack=4, racks_per_pod=2, level_ms=(0.1, 0.5, 2.0)
        )
        assert c[0, 1] == pytest.approx(0.1)   # same rack
        assert c[0, 4] == pytest.approx(0.5)   # same pod, other rack
        assert c[0, 8] == pytest.approx(2.0)   # across the core
        assert is_metric(c)

    def test_jitter_keeps_metric(self):
        c = fat_tree_latency(
            24, rng=np.random.default_rng(0), jitter=0.9,
            hosts_per_rack=4, racks_per_pod=2,
        )
        assert is_metric(c)

    def test_rejects_decreasing_levels(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            fat_tree_latency(8, level_ms=(1.0, 0.5, 2.0))


class TestRing:
    def test_farther_clusters_cost_more(self):
        rng = np.random.default_rng(0)
        c = ring_of_clusters_latency(40, rng=rng, clusters=4, hop_ms=50.0)
        assert c.max() >= 50.0  # at least one max-arc pair exists


class TestStar:
    def test_structure(self):
        c = star_hub_latency(10, rng=np.random.default_rng(0), spoke_ms=(5.0, 50.0))
        # c_ij = h_i + h_j: the spoke delays are recoverable from any
        # triple, and they reconstruct the whole matrix.
        h = np.array([(c[i, (i + 1) % 10] + c[i, (i + 2) % 10] - c[(i + 1) % 10, (i + 2) % 10]) / 2 for i in range(10)])
        np.testing.assert_allclose(h[:, None] + h[None, :] - np.diag(2 * h), c, atol=1e-9)


class TestMeasured:
    def test_array_passthrough(self):
        c0 = star_hub_latency(8, rng=np.random.default_rng(0))
        c = measured_latency(c0)
        np.testing.assert_allclose(c, c0)

    def test_completes_missing_pairs(self):
        c0 = ring_of_clusters_latency(10, rng=np.random.default_rng(1))
        partial = c0.copy()
        partial[2, 5] = partial[5, 2] = np.nan
        c = measured_latency(partial)
        assert np.isfinite(c[2, 5])
        assert is_metric(c)

    def test_one_sided_measurement_covers_both(self):
        c0 = star_hub_latency(6, rng=np.random.default_rng(2))
        partial = c0.copy()
        partial[1, 3] = np.inf  # only the 3→1 direction measured
        c = measured_latency(partial)
        assert c[1, 3] == pytest.approx(c0[3, 1])

    def test_loads_npy_and_csv(self, tmp_path):
        c0 = fat_tree_latency(6)
        npy = tmp_path / "lat.npy"
        np.save(npy, c0)
        np.testing.assert_allclose(measured_latency(npy), c0)
        csv = tmp_path / "lat.csv"
        np.savetxt(csv, c0, delimiter=",")
        np.testing.assert_allclose(measured_latency(csv), c0)

    def test_rejects_negative(self):
        bad = np.zeros((3, 3))
        bad[0, 1] = bad[1, 0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            measured_latency(bad)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            measured_latency(np.zeros((2, 3)))

    def test_disconnected_raises(self):
        c = np.full((4, 4), np.inf)
        np.fill_diagonal(c, 0.0)
        c[0, 1] = c[1, 0] = 1.0
        c[2, 3] = c[3, 2] = 1.0
        with pytest.raises(ValueError, match="disconnected"):
            measured_latency(c)
