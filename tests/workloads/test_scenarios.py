"""Tests for the scenario registry and presets."""

import numpy as np
import pytest

from repro import Instance
from repro.net.latency import is_metric
from repro.workloads import (
    ExponentialLoads,
    Scenario,
    fat_tree_latency,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.workloads.scenario import _REGISTRY, PRESETS


class TestPresets:
    def test_expected_presets_registered(self):
        names = set(list_scenarios())
        assert {
            "paper-homogeneous",
            "paper-planetlab",
            "cdn-flashcrowd",
            "federation-diurnal",
            "datacenter-fattree",
        } <= names

    @pytest.mark.parametrize("name", sorted(s.name for s in PRESETS))
    def test_preset_produces_valid_instance(self, name):
        inst = get_scenario(name).instance(m=18, seed=0)
        assert isinstance(inst, Instance)
        assert inst.m == 18
        # positive loads everywhere...
        assert np.all(inst.loads > 0)
        # ...and a valid, metric latency matrix.
        c = inst.latency
        assert np.all(np.isfinite(c))
        assert np.all(np.diagonal(c) == 0)
        assert np.all(c[~np.eye(18, dtype=bool)] > 0)
        assert is_metric(c, atol=1e-6)

    @pytest.mark.parametrize("name", sorted(s.name for s in PRESETS))
    def test_preset_deterministic(self, name):
        sc = get_scenario(name)
        assert sc.instance(m=12, seed=3) == sc.instance(m=12, seed=3)

    def test_different_cells_differ(self):
        sc = get_scenario("paper-planetlab")
        assert sc.instance(m=12, seed=0) != sc.instance(m=12, seed=1)
        assert sc.instance(m=12, seed=0) != sc.instance(m=13, seed=0)
        other = get_scenario("cdn-flashcrowd")
        assert sc.instance(m=12, seed=0) != other.instance(m=12, seed=0)

    def test_paper_homogeneous_matches_section_via(self):
        inst = get_scenario("paper-homogeneous").instance(m=10, seed=0)
        off = inst.latency[~np.eye(10, dtype=bool)]
        np.testing.assert_array_equal(off, 20.0)


class TestScenario:
    def test_default_m_used(self):
        sc = get_scenario("paper-planetlab")
        assert sc.instance().m == sc.m

    def test_load_trace(self):
        tr = get_scenario("federation-diurnal").load_trace(4, m=9, seed=0)
        assert tr.shape == (4, 9)
        assert np.all(tr > 0)

    def test_with_overrides(self):
        sc = get_scenario("paper-planetlab").with_overrides(m=7, seed=9)
        assert sc.m == 7 and sc.seed == 9
        assert sc.instance().m == 7

    def test_constant_speeds(self):
        sc = Scenario(
            name="tmp-const",
            topology=fat_tree_latency,
            load_model=ExponentialLoads(10.0),
            m=6,
            speed_range=(2.0, 2.0),
        )
        np.testing.assert_array_equal(sc.instance().speeds, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one organization"):
            Scenario("bad", fat_tree_latency, ExponentialLoads(), m=0)
        with pytest.raises(ValueError, match="speed_range"):
            Scenario("bad", fat_tree_latency, ExponentialLoads(), speed_range=(0.0, 1.0))


class TestRegistry:
    def test_register_and_get(self):
        sc = Scenario(
            name="test-registry-entry",
            topology=fat_tree_latency,
            load_model=ExponentialLoads(5.0),
            m=5,
            description="temporary",
        )
        try:
            register_scenario(sc)
            assert get_scenario("test-registry-entry") is sc
            assert list_scenarios()["test-registry-entry"] == "temporary"
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(sc)
            register_scenario(sc, overwrite=True)  # allowed
        finally:
            _REGISTRY.pop("test-registry-entry", None)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")
