"""Tests for the config-driven batch runner."""

import math

import numpy as np
import pytest

from repro.workloads import (
    ExponentialLoads,
    Scenario,
    ScenarioReport,
    ScenarioResult,
    ScenarioRunner,
    fat_tree_latency,
    get_scenario,
)

FAST = dict(
    mine_max_iterations=8,
    mine_rel_tol=0.05,
    stream_horizon=2.0,
    stream_events_target=300.0,
    solver_tol=1e-8,
)


@pytest.fixture(scope="module")
def small_report() -> ScenarioReport:
    """The acceptance-criteria sweep: 4 presets × 2 sizes × 2 seeds."""
    runner = ScenarioRunner(
        [
            "paper-homogeneous",
            "paper-planetlab",
            "cdn-flashcrowd",
            "federation-diurnal",
        ],
        sizes=[8, 12],
        seeds=[0, 1],
        **FAST,
    )
    return runner.run()


class TestRunner:
    def test_one_row_per_cell(self, small_report):
        assert len(small_report) == 4 * 2 * 2
        cells = {(r.scenario, r.m, r.seed) for r in small_report}
        assert len(cells) == 16  # no duplicates

    def test_rows_carry_all_metrics(self, small_report):
        for r in small_report:
            assert r.optimal_cost > 0
            assert r.initial_cost >= r.optimal_cost * (1 - 1e-9)
            assert math.isfinite(r.mine_final_error) and r.mine_final_error >= 0
            assert r.mine_iterations >= 1
            assert math.isfinite(r.poa_ratio) and r.poa_ratio >= 1 - 1e-6
            assert math.isfinite(r.stream_mean_latency)
            assert r.stream_completed > 0

    def test_deterministic(self):
        kw = dict(sizes=[8], seeds=[3], **FAST)
        a = ScenarioRunner("hub-heavytail", **kw).run()
        b = ScenarioRunner("hub-heavytail", **kw).run()
        assert a[0].optimal_cost == b[0].optimal_cost
        assert a[0].mine_final_error == b[0].mine_final_error
        assert a[0].poa_ratio == b[0].poa_ratio
        assert a[0].stream_mean_latency == b[0].stream_mean_latency

    def test_accepts_scenario_objects_and_default_size(self):
        sc = Scenario(
            name="inline-object",
            topology=fat_tree_latency,
            load_model=ExponentialLoads(10.0),
            m=7,
        )
        report = ScenarioRunner(sc, metrics=(), **{
            k: v for k, v in FAST.items() if k.startswith(("mine", "solver"))
        }).run()
        assert len(report) == 1
        assert report[0].m == 7
        # disabled metrics are nan / neutral, the optimum is always there
        assert report[0].optimal_cost > 0
        assert math.isnan(report[0].poa_ratio)
        assert math.isnan(report[0].stream_mean_latency)

    def test_metric_subset(self):
        report = ScenarioRunner(
            "paper-homogeneous", sizes=[6], metrics=("poa",), **FAST
        ).run()
        assert math.isnan(report[0].mine_final_error)
        assert report[0].poa_ratio >= 1 - 1e-6

    def test_grid_in_declared_order(self):
        runner = ScenarioRunner(
            ["paper-homogeneous", "cdn-flashcrowd"], sizes=[12, 6], seeds=[0, 1]
        )
        cells = [(sc.name, m, seed) for sc, m, seed in runner.grid()]
        assert cells == [
            ("paper-homogeneous", 12, 0), ("paper-homogeneous", 12, 1),
            ("paper-homogeneous", 6, 0), ("paper-homogeneous", 6, 1),
            ("cdn-flashcrowd", 12, 0), ("cdn-flashcrowd", 12, 1),
            ("cdn-flashcrowd", 6, 0), ("cdn-flashcrowd", 6, 1),
        ]

    def test_progress_callback(self):
        seen = []
        ScenarioRunner("paper-homogeneous", sizes=[6], **FAST).run(
            progress=seen.append
        )
        assert len(seen) == 1 and isinstance(seen[0], ScenarioResult)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            ScenarioRunner("paper-homogeneous", metrics=("bogus",))
        with pytest.raises(ValueError, match="at least one seed"):
            ScenarioRunner("paper-homogeneous", seeds=())
        with pytest.raises(ValueError, match="at least one scenario"):
            ScenarioRunner([])
        with pytest.raises(KeyError, match="unknown scenario"):
            ScenarioRunner("no-such-scenario")

    def test_mine_agrees_with_optimum(self, small_report):
        # MinE runs to its rel_tol stop or stalls close to it on these
        # small instances; the certificate is loose, not wild.
        for r in small_report:
            assert r.mine_final_error < 0.5


class TestReport:
    def test_column_and_filter(self, small_report):
        costs = small_report.column("optimal_cost")
        assert costs.shape == (16,)
        sub = small_report.filter(scenario="cdn-flashcrowd", m=8)
        assert len(sub) == 2
        with pytest.raises(KeyError):
            small_report.column("nope")

    def test_summary_groups(self, small_report):
        summary = small_report.summary()
        assert len(summary) == 8  # 4 scenarios × 2 sizes
        assert all(s["runs"] == 2 for s in summary)

    def test_csv_roundtrip(self, small_report, tmp_path):
        path = tmp_path / "report.csv"
        text = small_report.to_csv(path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert len(lines) == 1 + 16
        assert lines[0].startswith("scenario,m,seed,")

    def test_as_dicts(self, small_report):
        dicts = small_report.as_dicts()
        assert dicts[0]["scenario"] == small_report[0].scenario
