"""Tests for the config-driven batch runner."""

import math

import numpy as np
import pytest

from repro.workloads import (
    PRESETS,
    ExponentialLoads,
    Scenario,
    ScenarioReport,
    ScenarioResult,
    ScenarioRunner,
    fat_tree_latency,
    get_scenario,
)
from repro.workloads.runner import TIMING_FIELDS

FAST = dict(
    mine_max_iterations=8,
    mine_rel_tol=0.05,
    stream_horizon=2.0,
    stream_events_target=300.0,
    solver_tol=1e-8,
)


@pytest.fixture(scope="module")
def small_report() -> ScenarioReport:
    """The acceptance-criteria sweep: 4 presets × 2 sizes × 2 seeds."""
    runner = ScenarioRunner(
        [
            "paper-homogeneous",
            "paper-planetlab",
            "cdn-flashcrowd",
            "federation-diurnal",
        ],
        sizes=[8, 12],
        seeds=[0, 1],
        **FAST,
    )
    return runner.run()


class TestRunner:
    def test_one_row_per_cell(self, small_report):
        assert len(small_report) == 4 * 2 * 2
        cells = {(r.scenario, r.m, r.seed) for r in small_report}
        assert len(cells) == 16  # no duplicates

    def test_rows_carry_all_metrics(self, small_report):
        for r in small_report:
            assert r.optimal_cost > 0
            assert r.initial_cost >= r.optimal_cost * (1 - 1e-9)
            assert math.isfinite(r.mine_final_error) and r.mine_final_error >= 0
            assert r.mine_iterations >= 1
            assert math.isfinite(r.poa_ratio) and r.poa_ratio >= 1 - 1e-6
            assert math.isfinite(r.stream_mean_latency)
            assert r.stream_completed > 0

    def test_deterministic(self):
        kw = dict(sizes=[8], seeds=[3], **FAST)
        a = ScenarioRunner("hub-heavytail", **kw).run()
        b = ScenarioRunner("hub-heavytail", **kw).run()
        assert a[0].optimal_cost == b[0].optimal_cost
        assert a[0].mine_final_error == b[0].mine_final_error
        assert a[0].poa_ratio == b[0].poa_ratio
        assert a[0].stream_mean_latency == b[0].stream_mean_latency

    def test_accepts_scenario_objects_and_default_size(self):
        sc = Scenario(
            name="inline-object",
            topology=fat_tree_latency,
            load_model=ExponentialLoads(10.0),
            m=7,
        )
        report = ScenarioRunner(sc, metrics=(), **{
            k: v for k, v in FAST.items() if k.startswith(("mine", "solver"))
        }).run()
        assert len(report) == 1
        assert report[0].m == 7
        # disabled metrics are nan / neutral, the optimum is always there
        assert report[0].optimal_cost > 0
        assert math.isnan(report[0].poa_ratio)
        assert math.isnan(report[0].stream_mean_latency)

    def test_metric_subset(self):
        report = ScenarioRunner(
            "paper-homogeneous", sizes=[6], metrics=("poa",), **FAST
        ).run()
        assert math.isnan(report[0].mine_final_error)
        assert report[0].poa_ratio >= 1 - 1e-6

    def test_grid_in_declared_order(self):
        runner = ScenarioRunner(
            ["paper-homogeneous", "cdn-flashcrowd"], sizes=[12, 6], seeds=[0, 1]
        )
        cells = [(sc.name, m, seed) for sc, m, seed in runner.grid()]
        assert cells == [
            ("paper-homogeneous", 12, 0), ("paper-homogeneous", 12, 1),
            ("paper-homogeneous", 6, 0), ("paper-homogeneous", 6, 1),
            ("cdn-flashcrowd", 12, 0), ("cdn-flashcrowd", 12, 1),
            ("cdn-flashcrowd", 6, 0), ("cdn-flashcrowd", 6, 1),
        ]

    def test_progress_callback(self):
        seen = []
        ScenarioRunner("paper-homogeneous", sizes=[6], **FAST).run(
            progress=seen.append
        )
        assert len(seen) == 1 and isinstance(seen[0], ScenarioResult)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            ScenarioRunner("paper-homogeneous", metrics=("bogus",))
        with pytest.raises(ValueError, match="at least one seed"):
            ScenarioRunner("paper-homogeneous", seeds=())
        with pytest.raises(ValueError, match="at least one scenario"):
            ScenarioRunner([])
        with pytest.raises(KeyError, match="unknown scenario"):
            ScenarioRunner("no-such-scenario")

    def test_mine_agrees_with_optimum(self, small_report):
        # MinE runs to its rel_tol stop or stalls close to it on these
        # small instances; the certificate is loose, not wild.
        for r in small_report:
            assert r.mine_final_error < 0.5


class TestReport:
    def test_column_and_filter(self, small_report):
        costs = small_report.column("optimal_cost")
        assert costs.shape == (16,)
        sub = small_report.filter(scenario="cdn-flashcrowd", m=8)
        assert len(sub) == 2
        with pytest.raises(KeyError):
            small_report.column("nope")

    def test_summary_groups(self, small_report):
        summary = small_report.summary()
        assert len(summary) == 8  # 4 scenarios × 2 sizes
        assert all(s["runs"] == 2 for s in summary)

    def test_csv_roundtrip(self, small_report, tmp_path):
        path = tmp_path / "report.csv"
        text = small_report.to_csv(path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert len(lines) == 1 + 16
        assert lines[0].startswith("scenario,m,seed,")

    def test_as_dicts(self, small_report):
        dicts = small_report.as_dicts()
        assert dicts[0]["scenario"] == small_report[0].scenario

    def test_from_csv_roundtrip_text_and_path(self, small_report, tmp_path):
        # text round-trip: every field survives, including the timings
        back = ScenarioReport.from_csv(small_report.to_csv())
        assert [r.as_dict() for r in back] == [r.as_dict() for r in small_report]
        # path round-trip
        path = tmp_path / "report.csv"
        small_report.to_csv(path)
        from_path = ScenarioReport.from_csv(str(path))
        assert from_path == small_report
        # truncated header is rejected
        with pytest.raises(ValueError, match="missing columns"):
            ScenarioReport.from_csv("scenario,m,seed\nx,1,0\n")

    def test_merged_partial_reports(self, small_report):
        first = ScenarioReport(small_report.rows[:10])
        second = ScenarioReport(small_report.rows[8:])
        merged = first.merged(second)
        assert merged == small_report

    def test_row_key_identifies_cell(self, small_report):
        keys = {r.key() for r in small_report}
        assert len(keys) == len(small_report)


class TestParallelBackends:
    """The tentpole guarantee: where a cell runs never changes what it
    computes."""

    @pytest.fixture(scope="class")
    def grid_runner(self) -> ScenarioRunner:
        """The full 7-preset scenario grid (small sizes keep it quick)."""
        return ScenarioRunner(
            sorted(s.name for s in PRESETS), sizes=[6, 9], seeds=[0, 1], **FAST
        )

    @pytest.fixture(scope="class")
    def serial_report(self, grid_runner) -> ScenarioReport:
        return grid_runner.run(backend="serial")

    @pytest.mark.parametrize("backend", ["process", "chunked"])
    def test_parallel_bitwise_identical_to_serial(
        self, grid_runner, serial_report, backend
    ):
        parallel = grid_runner.run(backend=backend, max_workers=2)
        assert len(parallel) == len(serial_report) == 7 * 2 * 2
        skip = set(TIMING_FIELDS)
        for a, b in zip(serial_report, parallel):
            for name in ScenarioReport.columns:
                if name in skip:
                    continue
                va, vb = getattr(a, name), getattr(b, name)
                both_nan = isinstance(va, float) and math.isnan(va) \
                    and isinstance(vb, float) and math.isnan(vb)
                assert va == vb or both_nan, (name, va, vb)

    def test_report_equality_ignores_timings(self, serial_report):
        jittered = ScenarioReport([
            ScenarioResult.from_dict({**r.as_dict(), "elapsed_s": r.elapsed_s + 1})
            for r in serial_report
        ])
        assert serial_report == jittered

    def test_unknown_backend_rejected(self, grid_runner):
        with pytest.raises(ValueError, match="unknown backend"):
            grid_runner.run(backend="fibers")


class TestStoreResume:
    def test_store_resume_and_crash_safety(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        kw = dict(sizes=[6], seeds=[0, 1], **FAST)
        partial = ScenarioRunner("paper-homogeneous", **kw).run(store=path)
        assert len(partial) == 2
        # Superset sweep resumes: stored cells load, new cells compute.
        runner = ScenarioRunner(
            ["paper-homogeneous", "hub-heavytail"], **kw
        )
        assert len(runner.engine(store=path).pending()) == 2
        full = runner.run(store=path)
        fresh = runner.run()
        assert full == fresh
        # Stored rows are the exact rows the partial sweep produced.
        assert [r.as_dict() for r in full.rows[:2]] == \
            [r.as_dict() for r in partial.rows]
