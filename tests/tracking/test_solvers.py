"""Stateful solvers: registry, warm-vs-cold sessions, budget capping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import reoptimize, retarget_allocation, retarget_rows
from repro.core.state import AllocationState
from repro.engine import (
    StatefulSolver,
    get_stateful_solver,
    list_stateful_solvers,
    register_stateful_solver,
)
from repro.tracking import trace_epochs
from repro.workloads import cached_instance, cached_optimum, get_scenario


def _epoch_instances(name="paper-planetlab", m=14, seed=0, trace="drift"):
    base = cached_instance(get_scenario(name), m, seed)
    return [base.with_loads(loads) for _, loads in trace_epochs(trace, m, seed)]


class TestRetarget:
    def test_fractions_preserved_rows_resum(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 10, 0)
        opt_state, _, _, _ = cached_optimum(get_scenario("paper-planetlab"), 10, 0)
        rng = np.random.default_rng(3)
        new = inst.with_loads(inst.loads * rng.uniform(0.5, 2.0, 10))
        warm = retarget_allocation(opt_state, new)
        np.testing.assert_allclose(warm.R.sum(axis=1), new.loads, rtol=1e-9)
        np.testing.assert_allclose(warm.fractions(), opt_state.fractions(), atol=1e-12)

    def test_zero_load_rows_pin_local(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 6, 0)
        zeroed = np.array(inst.loads)
        zeroed[2] = 0.0
        state = AllocationState.initial(inst.with_loads(zeroed))
        revived = np.array(inst.loads)
        warm = retarget_allocation(state, inst.with_loads(revived))
        assert warm.R[2, 2] == revived[2]
        np.testing.assert_allclose(warm.R.sum(axis=1), revived, rtol=1e-9)

    def test_size_mismatch_rejected(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 6, 0)
        other = cached_instance(get_scenario("paper-planetlab"), 8, 0)
        with pytest.raises(ValueError, match="retarget"):
            retarget_allocation(AllocationState.initial(inst), other)

    def test_retarget_rows_in_place(self):
        R = np.diag([2.0, 4.0])
        retarget_rows(R, np.array([2.0, 4.0]), np.array([6.0, 1.0]))
        np.testing.assert_allclose(R.sum(axis=1), [6.0, 1.0])


class TestReoptimize:
    def test_stops_at_bound(self):
        sc = get_scenario("paper-planetlab")
        inst = cached_instance(sc, 14, 0)
        _, opt_cost, _, _ = cached_optimum(sc, 14, 0)
        state = AllocationState.initial(inst)
        res = reoptimize(state, rng=0, optimum=opt_cost, rel_tol=0.02)
        assert res.converged
        assert res.exchanges_to_bound == res.exchanges
        assert (state.total_cost() - opt_cost) / opt_cost <= 0.02

    def test_exchange_budget_caps(self):
        sc = get_scenario("paper-planetlab")
        inst = cached_instance(sc, 14, 0)
        _, opt_cost, _, _ = cached_optimum(sc, 14, 0)
        state = AllocationState.initial(inst)
        res = reoptimize(
            state, rng=0, optimum=opt_cost, rel_tol=1e-12, exchange_budget=5,
            max_sweeps=50,
        )
        # Hard cap: the remaining allowance is threaded into each sweep,
        # which truncates mid-iteration — never a single exchange over.
        assert res.exchanges == 5
        assert not res.converged

    def test_budget_cap_is_sweep_prefix(self):
        """A truncated sweep applies exactly the first exchanges the
        unbounded sweep would have (same RNG, same server order)."""
        sc = get_scenario("paper-planetlab")
        inst = cached_instance(sc, 14, 0)
        free = AllocationState.initial(inst)
        reoptimize(free, rng=7, max_sweeps=1)
        capped = AllocationState.initial(inst)
        res = reoptimize(capped, rng=7, max_sweeps=1, exchange_budget=3)
        assert res.exchanges == 3
        # The capped state diverges from the free one only by the
        # exchanges it skipped — re-running without a budget from the
        # same RNG position is not asserted here; what matters is the
        # cap held exactly and the state is still a valid allocation.
        capped.check_invariants()

    def test_already_within_bound_is_free(self):
        sc = get_scenario("paper-planetlab")
        opt_state, opt_cost, _, _ = cached_optimum(sc, 14, 0)
        res = reoptimize(opt_state, rng=0, optimum=opt_cost, rel_tol=0.02)
        assert res.converged and res.exchanges == 0 and res.sweeps == 0


class TestStatefulRegistry:
    def test_builtins_registered(self):
        names = list_stateful_solvers()
        assert "mine-warm" in names and "mine-cold" in names

    def test_factory_makes_fresh_protocol_sessions(self):
        entry = get_stateful_solver("mine-warm")
        a, b = entry(), entry()
        assert a is not b
        assert isinstance(a, StatefulSolver)
        assert a.name == "mine-warm"

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_stateful_solver("mine-warm", lambda: None)

    def test_unknown_lists_known(self):
        with pytest.raises(KeyError, match="mine-warm"):
            get_stateful_solver("no-such-session")


class TestSessions:
    def test_warm_tracks_every_epoch(self):
        insts = _epoch_instances()
        session = get_stateful_solver("mine-warm")(rel_tol=0.02)
        from repro.core.qp import solve_coordinate_descent

        for k, inst in enumerate(insts):
            opt = solve_coordinate_descent(inst, tol=1e-9).total_cost()
            res = (
                session.start(inst, rng=0, optimum=opt)
                if k == 0
                else session.step(inst, optimum=opt)
            )
            assert res.converged, f"epoch {k} failed to re-track"
            assert res.relative_error(opt) <= 0.02 + 1e-12
            assert res.metadata["warm"] == (k > 0)
            assert res.metadata["epoch"] == k

    def test_warm_cheaper_than_cold_on_steps(self):
        insts = _epoch_instances(trace="drift-mild")
        from repro.core.qp import solve_coordinate_descent

        optima = [solve_coordinate_descent(i, tol=1e-9).total_cost() for i in insts]
        totals = {}
        for name in ("mine-warm", "mine-cold"):
            session = get_stateful_solver(name)(rel_tol=0.02)
            session.start(insts[0], rng=0, optimum=optima[0])
            totals[name] = sum(
                session.step(inst, optimum=opt).metadata["exchanges"]
                for inst, opt in zip(insts[1:], optima[1:])
            )
        assert totals["mine-warm"] < totals["mine-cold"]

    def test_cold_restart_ignores_history(self):
        insts = _epoch_instances()
        session = get_stateful_solver("mine-cold")()
        session.start(insts[0], rng=0)
        res = session.step(insts[1])
        # A cold step equals a fresh session solving the same epoch with
        # the same RNG position only in *shape*; what matters is that the
        # state was reinitialized from all-local, not retargeted.
        assert not res.metadata["warm"]
        np.testing.assert_allclose(
            session.state.R.sum(axis=1), insts[1].loads, rtol=1e-9
        )

    def test_step_before_start_autostarts(self):
        insts = _epoch_instances()
        session = get_stateful_solver("mine-warm")()
        res = session.step(insts[0], optimum=None)
        assert res.metadata["epoch"] == 0 and not res.metadata["warm"]

    def test_fleet_resize_rejected(self):
        session = get_stateful_solver("mine-warm")()
        session.start(cached_instance(get_scenario("paper-planetlab"), 8, 0), rng=0)
        with pytest.raises(ValueError, match="fleet size"):
            session.step(cached_instance(get_scenario("paper-planetlab"), 10, 0))
