"""TrackingSimulation determinism and metric semantics."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.livesim import get_live_preset
from repro.tracking import TrackingSimulation, tracking_sweep
from repro.workloads import cached_instance, get_scenario


def _make(seed=0, trace="drift", preset="ideal", m=12, **kw):
    inst = cached_instance(get_scenario("paper-planetlab"), m, 0)
    return TrackingSimulation(
        inst, trace, config=get_live_preset(preset), seed=seed, **kw
    )


class TestDeterminism:
    def test_same_seed_identical_runs(self):
        rep_a = _make(seed=7).run()
        rep_b = _make(seed=7).run()
        assert len(rep_a.epochs) == len(rep_b.epochs)
        np.testing.assert_array_equal(rep_a.epoch_optima, rep_b.epoch_optima)
        for ea, eb in zip(rep_a.epochs, rep_b.epochs):
            assert ea == eb
        ta, ra = rep_a.regret_series()
        tb, rb = rep_b.regret_series()
        np.testing.assert_array_equal(ta, tb)
        np.testing.assert_array_equal(ra, rb)
        assert rep_a.live.trace == rep_b.live.trace

    def test_different_seeds_differ(self):
        rep_a = _make(seed=0).run()
        rep_b = _make(seed=1).run()
        assert rep_a.live.trace != rep_b.live.trace

    def test_split_run_equals_long_run(self):
        sim_long = _make(seed=4, preset="lossy")
        rep_long = sim_long.run()
        sim_split = _make(seed=4, preset="lossy")
        first = sim_split.run(epochs=2)
        assert len(first.epochs) == 2
        rep_split = sim_split.run()
        assert len(rep_split.epochs) == len(rep_long.epochs)
        for ea, eb in zip(rep_long.epochs, rep_split.epochs):
            assert ea == eb
        assert rep_long.live.trace == rep_split.live.trace
        np.testing.assert_array_equal(
            sim_long.sim.state.R, sim_split.sim.state.R
        )

    def test_delta_gossip_tracking_identical_to_full(self):
        cfg = get_live_preset("lossy")
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        sim_f = TrackingSimulation(inst, "regime", config=cfg, seed=3)
        rep_f = sim_f.run()
        sim_d = TrackingSimulation(
            inst, "regime",
            config=dataclasses.replace(cfg, gossip_mode="delta"), seed=3,
        )
        rep_d = sim_d.run()
        assert rep_f.live.trace == rep_d.live.trace
        for ea, eb in zip(rep_f.epochs, rep_d.epochs):
            assert ea == eb
        np.testing.assert_array_equal(sim_f.sim.state.R, sim_d.sim.state.R)
        np.testing.assert_array_equal(
            sim_f.sim.gossip.values, sim_d.sim.gossip.values
        )
        assert (
            rep_d.live.gossip.payload_bytes < rep_f.live.gossip.payload_bytes
        )


class TestMetrics:
    def test_epochs_retrack_and_regret_integrates(self):
        rep = _make(seed=0).run()
        assert rep.all_retracked()
        assert rep.mean_final_error <= rep.rel_tol
        assert rep.cumulative_excess_cost > 0
        for e in rep.epochs:
            assert e.duration_rounds > 0
            assert np.isfinite(e.excess_cost)
            assert e.exchanges >= 0
        # Regret series: defined from epoch 0 on, piecewise vs C*_k.
        times, regret = rep.regret_series()
        assert np.isfinite(regret).all()
        assert regret[-1] <= rep.rel_tol + 1e-12

    def test_shift_perturbs_then_retracks(self):
        rep = _make(seed=0, trace="regime").run()
        # At least one regime switch knocked the plane out of the bound...
        assert any(e.start_error > rep.rel_tol for e in rep.epochs[1:])
        # ...and every epoch re-entered it.
        assert rep.all_retracked()

    def test_compute_optimum_off_gives_nan_metrics(self):
        rep = _make(seed=0, compute_optimum=False).run()
        assert not np.isfinite(rep.mean_final_error)
        assert len(rep.epochs) == 8  # the run itself still happens

    def test_precomputed_epoch_list_accepted(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 10, 0)
        rng = np.random.default_rng(0)
        epochs = [
            (0.0, rng.uniform(10, 100, 10)),
            (15.0, rng.uniform(10, 100, 10)),
        ]
        rep = TrackingSimulation(
            inst, epochs, config=get_live_preset("ideal"), seed=0
        ).run()
        assert len(rep.epochs) == 2
        assert rep.epochs[1].t_start_rounds == 15.0

    def test_traffic_rates_follow_demand(self):
        cfg = dataclasses.replace(
            get_live_preset("ideal"), arrival_rate_scale=0.02
        )
        inst = cached_instance(get_scenario("paper-planetlab"), 10, 0)
        sim = TrackingSimulation(inst, "drift", config=cfg, seed=1)
        rep = sim.run()
        assert rep.live.requests_submitted > 0
        np.testing.assert_allclose(
            sim.sim._traffic_rates,
            sim.sim.inst.loads * cfg.arrival_rate_scale,
        )

    def test_rate_toggle_never_doubles_arrival_loop(self):
        """An org whose demand bounces 0 -> + while its old arrival
        callback is still pending must not end up with two loops."""
        from repro.livesim import LiveSimulation

        cfg = dataclasses.replace(
            get_live_preset("ideal"), arrival_rate_scale=0.05
        )
        inst = cached_instance(get_scenario("paper-planetlab"), 8, 0)
        sim = LiveSimulation(inst, config=cfg, seed=0)
        sim.run(rounds=5)
        zeroed = np.array(inst.loads)
        zeroed[3] = 0.0
        sim.apply_demand(zeroed)          # rate 0: pending callback remains
        assert sim._traffic_armed[3]
        sim.apply_demand(inst.loads)      # rate back up before it fired
        assert sim._traffic_armed[3]      # still exactly one armed loop
        report = sim.run(rounds=60)
        # With a doubled loop org 3's arrivals would be ~2x its peers'
        # per unit load; assert its share stays in line.
        per_org = np.bincount(
            [r.owner for r in sim._requests], minlength=8
        ).astype(float)
        share = per_org / per_org.sum()
        expected = inst.loads / inst.loads.sum()
        assert share[3] < 1.5 * expected[3]
        assert report.requests_submitted > 0


class TestTrackingSweep:
    def test_grid_rows_and_store_resume(self, tmp_path):
        store = tmp_path / "track.jsonl"
        kw = dict(
            traces=["drift"], sizes=[10], seeds=[0],
            solvers=("mine-warm", "mine-cold"), max_sweeps=30,
        )
        rows = tracking_sweep(["paper-planetlab"], store=store, **kw)
        assert [r["solver"] for r in rows] == ["mine-warm", "mine-cold"]
        assert all(r["all_retracked"] for r in rows)
        again = tracking_sweep(["paper-planetlab"], store=store, **kw)
        assert again == rows  # all served from the store

    def test_sharded_union_covers_grid(self, tmp_path):
        from repro.engine import JsonlStore

        kw = dict(
            traces=["drift"], sizes=[10], seeds=[0, 1],
            solvers=("mine-warm",), max_sweeps=30,
        )
        s1, s2 = tmp_path / "s1.jsonl", tmp_path / "s2.jsonl"
        r1 = tracking_sweep(["paper-planetlab"], store=s1, shard="1/2", **kw)
        r2 = tracking_sweep(["paper-planetlab"], store=s2, shard="2/2", **kw)
        assert sum(r is not None for r in r1) == 1
        assert sum(r is not None for r in r2) == 1
        merged = JsonlStore.merge(s1, s2, out=tmp_path / "all.jsonl")
        assert len(merged) == 2
        full = tracking_sweep(
            ["paper-planetlab"], store=tmp_path / "all.jsonl", **kw
        )
        assert all(r is not None for r in full)
