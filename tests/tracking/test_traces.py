"""Trace generators: determinism, positivity, registry, measured I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tracking import (
    TRACE_PRESETS,
    DiurnalSweepTrace,
    DriftTrace,
    FlashCrowdReplay,
    MeasuredTrace,
    RegimeSwitchTrace,
    get_trace,
    list_traces,
    register_trace,
    trace_epochs,
)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(TRACE_PRESETS))
    def test_same_seed_bit_identical(self, name):
        a = trace_epochs(name, 12, seed=3)
        b = trace_epochs(name, 12, seed=3)
        assert len(a) == len(b) >= 1
        for (ta, la), (tb, lb) in zip(a, b):
            assert ta == tb
            np.testing.assert_array_equal(la, lb)

    @pytest.mark.parametrize("name", sorted(TRACE_PRESETS))
    def test_different_seeds_differ(self, name):
        a = trace_epochs(name, 12, seed=0)
        b = trace_epochs(name, 12, seed=1)
        assert any(
            not np.array_equal(la, lb) for (_, la), (_, lb) in zip(a, b)
        )

    @pytest.mark.parametrize("name", sorted(TRACE_PRESETS))
    def test_epochs_well_formed(self, name):
        epochs = trace_epochs(name, 20, seed=0)
        times = [t for t, _ in epochs]
        assert times[0] == 0.0
        assert all(b > a for a, b in zip(times, times[1:]))
        for _, loads in epochs:
            assert loads.shape == (20,)
            assert np.all(loads > 0)
            assert np.all(np.isfinite(loads))


class TestFamilies:
    def test_drift_renormalizes_total(self):
        epochs = trace_epochs(DriftTrace(drift_sigma=0.5, n_epochs=6), 15, seed=2)
        totals = [loads.sum() for _, loads in epochs]
        np.testing.assert_allclose(totals, totals[0], rtol=1e-6)
        # ...but the mix genuinely moves.
        assert not np.allclose(epochs[0][1], epochs[-1][1], rtol=0.05)

    def test_regime_switch_holds_between_switches(self):
        tr = RegimeSwitchTrace(n_epochs=12, switch_prob=0.5)
        epochs = trace_epochs(tr, 10, seed=4)
        held = sum(
            np.array_equal(epochs[k][1], epochs[k - 1][1])
            for k in range(1, len(epochs))
        )
        assert 0 < held < len(epochs) - 1  # some holds, some switches

    def test_flash_replay_rises_and_decays(self):
        tr = FlashCrowdReplay(n_epochs=10, onset=2, ramp_epochs=2, decay=0.3)
        epochs = trace_epochs(tr, 25, seed=1)
        totals = np.array([loads.sum() for _, loads in epochs])
        peak = int(np.argmax(totals))
        assert peak == tr.onset + tr.ramp_epochs - 1
        assert totals[0] < 0.5 * totals[peak]   # it ramps well above background
        assert totals[-1] < 1.05 * totals[0]    # and decays back to background

    def test_diurnal_phase_rolls(self):
        epochs = trace_epochs(DiurnalSweepTrace(noise_sigma=0.0), 24, seed=0)
        # With zero noise, each region's load follows a sine: the argmax
        # epoch differs across organizations in different regions.
        peaks = {int(np.argmax([l[i] for _, l in epochs])) for i in range(24)}
        assert len(peaks) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftTrace(n_epochs=0)
        with pytest.raises(ValueError):
            DriftTrace(epoch_rounds=0)
        with pytest.raises(ValueError):
            RegimeSwitchTrace(models=())
        with pytest.raises(ValueError):
            FlashCrowdReplay(onset=99)
        with pytest.raises(ValueError):
            DiurnalSweepTrace(amplitude=1.5)


class TestMeasuredTrace:
    def test_round_trip_csv(self, tmp_path):
        rng = np.random.default_rng(0)
        mat = rng.uniform(1, 100, size=(5, 8))
        path = tmp_path / "trace.csv"
        np.savetxt(path, mat, delimiter=",")
        tr = MeasuredTrace.from_csv(path, epoch_rounds=10.0)
        epochs = tr.epochs(8, rng)
        assert len(epochs) == 5
        assert epochs[1][0] == 10.0
        np.testing.assert_allclose(epochs[3][1], mat[3])

    def test_round_trip_npz(self, tmp_path):
        mat = np.arange(1, 13, dtype=np.float64).reshape(4, 3)
        path = tmp_path / "trace.npz"
        np.savez(path, loads=mat)
        tr = MeasuredTrace.from_npz(path)
        epochs = tr.epochs(3, np.random.default_rng(0))
        np.testing.assert_array_equal(epochs[2][1], mat[2])

    def test_wrong_width_rejected(self):
        tr = MeasuredTrace(np.ones((3, 4)))
        with pytest.raises(ValueError, match="cannot replay"):
            tr.epochs(5, np.random.default_rng(0))

    def test_loads_floored_positive(self):
        tr = MeasuredTrace(np.array([[0.0, 5.0], [1.0, 0.0]]))
        for _, loads in tr.epochs(2, np.random.default_rng(0)):
            assert np.all(loads > 0)

    def test_bad_matrix_rejected(self):
        with pytest.raises(ValueError):
            MeasuredTrace(np.ones(4))
        with pytest.raises(ValueError):
            MeasuredTrace(np.array([[np.inf, 1.0]]))


class TestRegistry:
    def test_presets_registered(self):
        names = list_traces()
        for name in TRACE_PRESETS:
            assert name in names

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_trace("drift", DriftTrace())

    def test_unknown_lists_known(self):
        with pytest.raises(KeyError, match="drift"):
            get_trace("no-such-trace")

    def test_custom_roundtrip(self):
        tr = DriftTrace(drift_sigma=0.01, n_epochs=2)
        register_trace("tiny-drift-test", tr)
        try:
            assert get_trace("tiny-drift-test") is tr
            assert len(trace_epochs("tiny-drift-test", 6, 0)) == 2
        finally:
            from repro.tracking.traces import _REGISTRY

            _REGISTRY.pop("tiny-drift-test", None)
