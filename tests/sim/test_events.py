"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim.events import Environment


class TestTimeouts:
    def test_time_advances(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5.0)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0, 7.5]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_run_until(self):
        env = Environment()
        log = []

        def proc():
            for _ in range(10):
                yield env.timeout(1.0)
                log.append(env.now)

        env.process(proc())
        env.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_timeout_value_passthrough(self):
        env = Environment()
        got = []

        def proc():
            v = yield env.timeout(1.0, value="payload")
            got.append(v)

        env.process(proc())
        env.run()
        assert got == ["payload"]


class TestEventOrdering:
    def test_fifo_at_equal_times(self):
        """Events scheduled at the same instant fire in creation order."""
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_interleaving(self):
        env = Environment()
        order = []

        def fast():
            for _ in range(3):
                yield env.timeout(1.0)
                order.append(("fast", env.now))

        def slow():
            for _ in range(2):
                yield env.timeout(1.5)
                order.append(("slow", env.now))

        env.process(fast())
        env.process(slow())
        env.run()
        # at t=3.0 both fire; slow scheduled its timeout earlier (at 1.5)
        # so it pops first (FIFO tie-break by scheduling order)
        assert order == [
            ("fast", 1.0),
            ("slow", 1.5),
            ("fast", 2.0),
            ("slow", 3.0),
            ("fast", 3.0),
        ]


class TestEvents:
    def test_manual_event_wakes_process(self):
        env = Environment()
        gate = env.event()
        log = []

        def waiter():
            v = yield gate
            log.append((env.now, v))

        def opener():
            yield env.timeout(4.0)
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert log == [(4.0, "open")]

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_callback_after_trigger_fires_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed(7)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        env.run()
        assert got == [7]

    def test_process_is_awaitable_event(self):
        """A process can wait for another process to finish."""
        env = Environment()
        log = []

        def child():
            yield env.timeout(2.0)
            return "done"

        def parent():
            result = yield env.process(child())
            log.append((env.now, result))

        env.process(parent())
        env.run()
        assert log == [(2.0, "done")]

    def test_non_event_yield_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(TypeError, match="yield Event"):
            env.run()
