"""Tests for the discrete-event simulation engine."""

import random
import time

import pytest

from repro.sim.events import CalendarQueue, Environment, HeapQueue


class TestTimeouts:
    def test_time_advances(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5.0)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0, 7.5]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_run_until(self):
        env = Environment()
        log = []

        def proc():
            for _ in range(10):
                yield env.timeout(1.0)
                log.append(env.now)

        env.process(proc())
        env.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_timeout_value_passthrough(self):
        env = Environment()
        got = []

        def proc():
            v = yield env.timeout(1.0, value="payload")
            got.append(v)

        env.process(proc())
        env.run()
        assert got == ["payload"]


class TestEventOrdering:
    def test_fifo_at_equal_times(self):
        """Events scheduled at the same instant fire in creation order."""
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_interleaving(self):
        env = Environment()
        order = []

        def fast():
            for _ in range(3):
                yield env.timeout(1.0)
                order.append(("fast", env.now))

        def slow():
            for _ in range(2):
                yield env.timeout(1.5)
                order.append(("slow", env.now))

        env.process(fast())
        env.process(slow())
        env.run()
        # at t=3.0 both fire; slow scheduled its timeout earlier (at 1.5)
        # so it pops first (FIFO tie-break by scheduling order)
        assert order == [
            ("fast", 1.0),
            ("slow", 1.5),
            ("fast", 2.0),
            ("slow", 3.0),
            ("fast", 3.0),
        ]


class TestEvents:
    def test_manual_event_wakes_process(self):
        env = Environment()
        gate = env.event()
        log = []

        def waiter():
            v = yield gate
            log.append((env.now, v))

        def opener():
            yield env.timeout(4.0)
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert log == [(4.0, "open")]

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_callback_after_trigger_fires_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed(7)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        env.run()
        assert got == [7]

    def test_process_is_awaitable_event(self):
        """A process can wait for another process to finish."""
        env = Environment()
        log = []

        def child():
            yield env.timeout(2.0)
            return "done"

        def parent():
            result = yield env.process(child())
            log.append((env.now, result))

        env.process(parent())
        env.run()
        assert log == [(2.0, "done")]

    def test_non_event_yield_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(TypeError, match="yield Event"):
            env.run()


class TestCallAt:
    def test_callback_receives_value_at_time(self):
        env = Environment()
        got = []
        env.call_at(2.5, lambda v: got.append((env.now, v)), "payload")
        env.run()
        assert got == [(2.5, "payload")]
        assert env.processed == 1

    def test_call_in_is_relative(self):
        env = Environment()
        got = []

        def chain(i):
            got.append((env.now, i))
            if i < 3:
                env.call_in(1.5, chain, i + 1)

        env.call_in(1.0, chain, 0)
        env.run()
        assert got == [(1.0, 0), (2.5, 1), (4.0, 2), (5.5, 3)]

    def test_past_and_negative_rejected(self):
        env = Environment()
        env.call_at(5.0, lambda _v: None)
        env.run()
        assert env.now == 5.0
        with pytest.raises(ValueError):
            env.call_at(4.0, lambda _v: None)
        with pytest.raises(ValueError):
            env.call_in(-1.0, lambda _v: None)

    def test_orders_against_events_by_scheduling(self):
        """Callbacks and process timeouts share one (time, seq) order.
        A process's first timeout is scheduled at its zero-delay boot,
        so a callback registered at setup time wins the t=1 tie; the
        processes then fire in creation order."""
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        env.process(proc("proc-first"))
        env.call_at(1.0, lambda _v: order.append("cb"))
        env.process(proc("proc-second"))
        env.run()
        assert order == ["cb", "proc-first", "proc-second"]


def _drive(scheduler: str, n_events: int = 6000, seed: int = 42):
    """A stochastic self-rescheduling workload, including zero-delay
    rescheduling storms (ties) and an until-bounded first phase."""
    env = Environment(scheduler=scheduler)
    log = []
    rnd = random.Random(seed)

    def tick(tag):
        log.append((env.now, tag))
        if len(log) < n_events:
            delay = rnd.random() * (1.0 if tag % 3 else 0.0)
            env.call_in(delay, tick, tag)

    for t in range(250):
        env.call_at(1.0, tick, t)  # massive tie at t = 1
    env.run(until=300.0)
    env.run()
    return log, env.processed, env.now


class TestSchedulerIdentity:
    """The calendar queue pops in exactly the heap's (time, seq) order."""

    def test_identical_event_traces(self):
        heap = _drive("heap")
        calendar = _drive("calendar")
        assert heap == calendar

    def test_auto_promotes_and_stays_identical(self, monkeypatch):
        import repro.sim.events as events_mod

        monkeypatch.setattr(events_mod, "CALENDAR_THRESHOLD", 1024)
        auto = _drive("auto", n_events=4096)
        heap = _drive("heap", n_events=4096)
        assert auto == heap

    def test_auto_promotion_trips_at_threshold(self, monkeypatch):
        import repro.sim.events as events_mod

        monkeypatch.setattr(events_mod, "CALENDAR_THRESHOLD", 500)
        env = Environment()
        assert env.scheduler_in_use == "heap"
        for i in range(501):
            env.call_at(1.0 + i * 0.25, lambda _v: None)
        assert env.scheduler_in_use == "calendar"
        assert env.queue_size == 501
        env.run()
        assert env.processed == 501

    def test_explicit_schedulers_respected(self):
        assert Environment(scheduler="heap").scheduler_in_use == "heap"
        assert Environment(scheduler="calendar").scheduler_in_use == "calendar"
        with pytest.raises(ValueError):
            Environment(scheduler="fifo")


class TestCalendarQueue:
    def test_pop_order_matches_heap_on_random_entries(self):
        rnd = random.Random(7)
        entries = [
            (rnd.choice([rnd.uniform(0, 100), float(rnd.randint(0, 20))]), seq)
            for seq in range(5000)
        ]
        cq = CalendarQueue(entries)
        hq = HeapQueue(entries)
        out_c = [cq.pop() for _ in range(len(entries))]
        out_h = [hq.pop() for _ in range(len(entries))]
        assert out_c == out_h == sorted(entries)

    def test_interleaved_push_pop(self):
        rnd = random.Random(3)
        cq, hq = CalendarQueue(), HeapQueue()
        seq = 0
        now = 0.0
        for _ in range(4000):
            if cq and rnd.random() < 0.5:
                a, b = cq.pop(), hq.pop()
                assert a == b
                now = a[0]
            else:
                e = (now + rnd.uniform(0, 10), seq)
                seq += 1
                cq.push(e)
                hq.push(e)
        assert sorted(cq.entries()) == sorted(hq.entries())

    def test_infinite_times_wait_in_overflow(self):
        cq = CalendarQueue()
        cq.push((float("inf"), 0))
        cq.push((2.0, 1))
        assert cq.pop() == (2.0, 1)
        assert cq.peek() == (float("inf"), 0)
        assert len(cq) == 1

    def test_sparse_far_future_jump(self):
        """Events far beyond the current lap are found via the direct
        search, not an endless scan."""
        cq = CalendarQueue([(0.5, 0)])
        assert cq.pop() == (0.5, 0)
        cq.push((1e9, 1))
        assert cq.pop() == (1e9, 1)


class TestDrainCallbacks:
    def test_callbacks_appended_during_drain_run_same_pass(self):
        env = Environment()
        log = []
        ev = env.event()

        def chain(e, depth=0):
            log.append(depth)
            if depth < 5:
                nxt = env.event()
                nxt.add_callback(lambda e2, d=depth + 1: chain(e2, d))
                nxt.succeed()

        ev.add_callback(chain)
        ev.succeed()
        env.run()
        assert log == [0, 1, 2, 3, 4, 5]

    def test_drain_is_linear_not_quadratic(self):
        """Regression: the pop(0)-per-callback drain was O(n²) — 40k
        simultaneously-triggered callbacks took tens of seconds."""
        env = Environment()
        hits = []
        events = [env.event() for _ in range(40_000)]
        for ev in events:
            ev.add_callback(lambda e: hits.append(1))
        t0 = time.perf_counter()
        for ev in events:
            ev.succeed()
        env.run()
        elapsed = time.perf_counter() - t0
        assert len(hits) == 40_000
        # Linear drain finishes in well under a second even on slow CI;
        # the quadratic one needs > 30 s for this size.
        assert elapsed < 5.0
