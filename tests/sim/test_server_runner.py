"""Tests for the request-processing simulation layer — validates the
paper's analytic congestion model empirically."""

import numpy as np
import pytest

from repro import AllocationState, Instance
from repro.core.qp import solve_coordinate_descent
from repro.net import planetlab_like_latency
from repro.sim.events import Environment
from repro.sim.runner import _integer_allocation, simulate_snapshot, simulate_stream
from repro.sim.server import Request, SimServer


class TestSimServer:
    def test_fifo_service(self):
        env = Environment()
        srv = SimServer(env, 0, speed=2.0)
        reqs = [Request(owner=0, server=0) for _ in range(4)]
        for r in reqs:
            srv.submit(r)
        env.run()
        # completion times 0.5, 1.0, 1.5, 2.0
        assert [r.t_complete for r in reqs] == [0.5, 1.0, 1.5, 2.0]

    def test_idle_then_work(self):
        env = Environment()
        srv = SimServer(env, 0, speed=1.0)

        def late_feeder():
            yield env.timeout(10.0)
            srv.submit(Request(owner=0, server=0, t_submit=env.now))

        env.process(late_feeder())
        env.run()
        assert srv.completed[0].t_complete == pytest.approx(11.0)

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            SimServer(Environment(), 0, speed=0.0)


class TestIntegerAllocation:
    def test_preserves_row_sums(self):
        rng = np.random.default_rng(0)
        R = rng.uniform(0, 10, (6, 6))
        counts = _integer_allocation(R, rng)
        assert np.all(counts >= 0)
        assert np.allclose(counts.sum(axis=1), np.round(R.sum(axis=1)), atol=1)

    def test_integer_input_unchanged(self):
        rng = np.random.default_rng(0)
        R = np.array([[3.0, 2.0], [0.0, 5.0]])
        counts = _integer_allocation(R, rng)
        assert np.array_equal(counts, R.astype(np.int64))


class TestSnapshotValidation:
    def test_matches_analytic_model(self):
        """Measured total latency ≈ ΣCi for large loads (the l/2s congestion
        model — Section II)."""
        rng = np.random.default_rng(1)
        m = 6
        inst = Instance(
            rng.uniform(1, 5, m),
            rng.uniform(800, 2000, m),
            planetlab_like_latency(m, rng=rng),
        )
        opt = solve_coordinate_descent(inst)
        report = simulate_snapshot(inst, opt, rng=2)
        # finite-size correction is O(m/l) ≈ 0.5%
        assert report.analytic_gap(opt.total_cost()) < 0.02

    def test_unbalanced_state_also_matches(self):
        rng = np.random.default_rng(3)
        m = 4
        inst = Instance(
            rng.uniform(1, 5, m),
            rng.uniform(500, 1500, m),
            planetlab_like_latency(m, rng=rng),
        )
        st = AllocationState.initial(inst)
        report = simulate_snapshot(inst, st, rng=4)
        assert report.analytic_gap(st.total_cost()) < 0.02

    def test_balancing_helps_in_simulation(self):
        """The optimizer's improvement is visible in the simulated system,
        not just in the analytic objective."""
        rng = np.random.default_rng(5)
        m = 8
        loads = np.zeros(m)
        loads[0] = 5000.0  # peak
        inst = Instance(
            rng.uniform(1, 5, m), loads, planetlab_like_latency(m, rng=rng)
        )
        naive = simulate_snapshot(inst, AllocationState.initial(inst), rng=6)
        opt = solve_coordinate_descent(inst)
        balanced = simulate_snapshot(inst, opt, rng=6)
        assert balanced.total_latency < 0.5 * naive.total_latency

    def test_per_org_totals_sum(self):
        rng = np.random.default_rng(7)
        m = 4
        inst = Instance(
            rng.uniform(1, 5, m),
            rng.uniform(100, 300, m),
            planetlab_like_latency(m, rng=rng),
        )
        report = simulate_snapshot(inst, AllocationState.initial(inst), rng=8)
        assert report.per_org_total.sum() == pytest.approx(report.total_latency)


class TestStream:
    def test_stable_system_completes_requests(self):
        rng = np.random.default_rng(9)
        m = 4
        # arrival rate scaled well below capacity
        inst = Instance(
            np.full(m, 2.0),
            np.full(m, 1.0),  # 1 request per unit time per org
            planetlab_like_latency(m, rng=rng) * 0.01,
        )
        st = AllocationState.initial(inst)
        report = simulate_stream(inst, st, horizon=200.0, rng=10)
        assert report.completed > 100
        # sojourn ≈ service time 0.5 plus light queueing
        assert report.mean_latency < 3.0

    def test_balancing_reduces_streaming_latency(self):
        """Overloaded server melts down; the balanced allocation keeps the
        same traffic stable."""
        rng = np.random.default_rng(11)
        m = 3
        loads = np.array([3.0, 0.1, 0.1])  # org 0 produces 3 req/s
        inst = Instance(
            np.full(m, 1.5),  # each server serves 1.5 req/s
            loads,
            np.full((m, m), 0.05) - 0.05 * np.eye(m),
        )
        naive = simulate_stream(
            inst, AllocationState.initial(inst), horizon=150.0, rng=12
        )
        opt = solve_coordinate_descent(inst)
        balanced = simulate_stream(inst, opt, horizon=150.0, rng=12)
        assert balanced.mean_latency < naive.mean_latency

    def test_zero_rate_org(self):
        inst = Instance(
            np.ones(2), np.array([0.0, 1.0]), np.zeros((2, 2))
        )
        report = simulate_stream(
            inst, AllocationState.initial(inst), horizon=50.0, rng=0
        )
        assert all(r.owner == 1 for r in [])  # trivially fine
        assert report.completed > 0
