"""Tests for the push–pull gossip dissemination layer."""

import numpy as np
import pytest

from repro.gossip import GossipNetwork


class TestBasics:
    def test_publish_and_view(self):
        g = GossipNetwork(4, rng=0)
        g.publish(2, 42.0)
        assert g.view(2)[2] == 42.0
        assert g.view(0)[2] == 0.0  # not yet disseminated

    def test_publish_all(self):
        g = GossipNetwork(5, rng=0)
        g.publish_all(np.arange(5.0))
        for i in range(5):
            assert g.view(i)[i] == float(i)

    def test_publish_all_shape_checked(self):
        g = GossipNetwork(3, rng=0)
        with pytest.raises(ValueError):
            g.publish_all(np.zeros(4))

    def test_needs_a_node(self):
        with pytest.raises(ValueError):
            GossipNetwork(0)

    def test_single_node_trivially_converged(self):
        g = GossipNetwork(1, rng=0)
        g.publish_all(np.array([3.0]))
        assert g.fully_converged()


class TestDissemination:
    def test_everyone_learns_everything(self):
        g = GossipNetwork(32, rng=0)
        g.publish_all(np.arange(32.0))
        rounds = g.rounds_to_convergence()
        assert g.fully_converged()
        assert rounds < 32  # far better than linear
        for i in range(32):
            assert np.array_equal(g.view(i), np.arange(32.0))

    def test_logarithmic_convergence(self):
        """Convergence rounds grow slowly (O(log m)-ish): going from 16 to
        256 nodes should much less than 16x the rounds."""
        rounds = {}
        for m in (16, 256):
            trials = []
            for seed in range(3):
                g = GossipNetwork(m, rng=seed)
                g.publish_all(np.zeros(m))
                trials.append(g.rounds_to_convergence())
            rounds[m] = np.mean(trials)
        assert rounds[256] <= rounds[16] * 4

    def test_staleness_decreases(self):
        g = GossipNetwork(24, rng=1)
        g.publish_all(np.arange(24.0))
        s0 = g.staleness()
        g.round()
        g.round()
        s1 = g.staleness()
        assert s1 < s0

    def test_fresher_version_wins(self):
        g = GossipNetwork(2, rng=0)
        g.publish(0, 1.0)
        g.rounds_to_convergence()
        g.publish(0, 2.0)  # newer value
        g.rounds_to_convergence()
        assert g.view(1)[0] == 2.0

    def test_fanout_accelerates(self):
        slow, fast = [], []
        for seed in range(3):
            g1 = GossipNetwork(64, fanout=1, rng=seed)
            g1.publish_all(np.zeros(64))
            slow.append(g1.rounds_to_convergence())
            g2 = GossipNetwork(64, fanout=3, rng=seed)
            g2.publish_all(np.zeros(64))
            fast.append(g2.rounds_to_convergence())
        assert np.mean(fast) <= np.mean(slow)


class TestMinEIntegration:
    def test_mine_with_gossiped_views(self):
        """MinE using per-server gossiped load views still converges when
        gossip runs a few rounds per sweep (the paper's O(log m) claim)."""
        import repro

        rng = np.random.default_rng(0)
        m = 12
        inst = repro.Instance(
            rng.uniform(1, 5, m),
            rng.exponential(50, m),
            repro.planetlab_like_latency(m, rng=rng),
        )
        ref = repro.solve_coordinate_descent(inst).total_cost()
        state = repro.AllocationState.initial(inst)
        gossip = GossipNetwork(m, rng=1)
        gossip.publish_all(state.loads)
        gossip.rounds_to_convergence()

        opt = repro.MinEOptimizer(state, rng=2, load_view=gossip.view)
        for _ in range(25):
            opt.sweep()
            gossip.publish_all(state.loads)
            for _ in range(5):  # ~log2(12)+1 rounds of gossip per sweep
                gossip.round()
        assert state.total_cost() <= ref * 1.02


class TestViewMetadata:
    """Per-entry version/age metadata (consumed by livesim staleness
    metrics)."""

    def test_view_versions_track_publishes(self):
        g = GossipNetwork(4, rng=0)
        assert np.all(g.view_versions(0) == -1)  # nothing published yet
        g.publish(2, 10.0)
        assert g.view_versions(2)[2] == g.clock
        assert g.view_versions(0)[2] == -1  # not yet disseminated
        g.rounds_to_convergence()
        assert g.view_versions(0)[2] == g.view_versions(2)[2]

    def test_ages_grow_between_publishes(self):
        g = GossipNetwork(5, rng=0)
        g.publish_all(np.arange(5.0))
        g.rounds_to_convergence()
        ages_before = g.view_ages(0).copy()
        # Other nodes keep publishing; node 0's un-refreshed entries age.
        g.publish(3, 99.0)
        g.publish(4, 77.0)
        ages_after = g.view_ages(0)
        assert np.all(ages_after >= ages_before)
        assert ages_after[1] > ages_before[1]  # grew by the new publishes
        # The most recent publisher's own entry is fresh again.
        assert g.view_ages(4)[4] == 0.0
        assert g.view_ages(3)[3] == 1.0  # one publish happened since

    def test_never_heard_entries_have_infinite_age(self):
        g = GossipNetwork(3, rng=0)
        g.publish(0, 1.0)
        ages = g.view_ages(1)
        assert np.isinf(ages[0])  # published but not yet heard by node 1
        assert np.isinf(ages[2])  # never published at all

    def test_dissemination_resets_age(self):
        g = GossipNetwork(4, rng=0)
        g.publish_all(np.ones(4))
        g.rounds_to_convergence()
        assert np.all(np.isfinite(g.view_ages(0)))
        assert np.all(g.view_ages(0) <= g.clock)
