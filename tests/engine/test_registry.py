"""Registry round-trip tests: every registered solver and evaluator."""

import math

import numpy as np
import pytest

from repro.core.state import AllocationState
from repro.engine import (
    FunctionSolver,
    SolveResult,
    Solver,
    get_evaluator,
    get_solver,
    list_evaluators,
    list_solvers,
    register_evaluator,
    register_solver,
)
from repro.engine.registry import _EVALUATORS, _SOLVERS
from repro.workloads import get_scenario

EXPECTED_SOLVERS = {
    "optimal",
    "mine-exact",
    "mine-screened",
    "mine-auto",
    "best-response",
    "round-robin",
    "nearest-server",
    "proportional-speed",
    "makespan-greedy",
}


@pytest.fixture(scope="module")
def inst():
    return get_scenario("paper-planetlab").instance(m=10, seed=0)


@pytest.fixture(scope="module")
def opt_cost(inst):
    return get_solver("optimal").solve(inst).total_cost


class TestRegistry:
    def test_every_expected_solver_is_registered(self):
        assert EXPECTED_SOLVERS <= set(list_solvers())

    def test_get_solver_roundtrip(self):
        for name in list_solvers():
            solver = get_solver(name)
            assert solver.name == name
            assert isinstance(solver, FunctionSolver)
            assert isinstance(solver, Solver)  # protocol runtime check

    def test_unknown_solver(self):
        with pytest.raises(KeyError, match="unknown solver"):
            get_solver("no-such-solver")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver("optimal", lambda inst, **kw: None)

    def test_decorator_registration_and_overwrite(self):
        @register_solver("test-identity", kind="baseline", description="test")
        def _identity(inst, *, rng=None, optimum=None, **options):
            return AllocationState.initial(inst)

        try:
            assert get_solver("test-identity").kind == "baseline"
            register_solver(
                "test-identity",
                lambda inst, **kw: AllocationState.initial(inst),
                overwrite=True,
            )
        finally:
            _SOLVERS.pop("test-identity", None)

    def test_list_solvers_by_kind(self):
        baselines = list_solvers(kind="baseline")
        assert set(baselines) == {
            "round-robin", "nearest-server", "proportional-speed",
            "makespan-greedy",
        }


class TestSolveResults:
    @pytest.mark.parametrize("name", sorted(EXPECTED_SOLVERS))
    def test_solver_returns_valid_result(self, name, inst, opt_cost):
        res = get_solver(name).solve(inst, rng=0, optimum=opt_cost)
        assert isinstance(res, SolveResult)
        assert res.solver == name
        assert res.inst is inst
        # the allocation is feasible: row sums preserve the owned loads
        np.testing.assert_allclose(
            res.state.R.sum(axis=1), inst.loads, rtol=1e-7, atol=1e-6
        )
        assert np.all(res.state.R >= -1e-9)
        assert res.total_cost == pytest.approx(res.state.total_cost())
        assert res.total_cost >= opt_cost * (1 - 1e-9)  # optimum is a lower bound
        assert res.wall_time_s >= 0
        assert res.iterations >= 0
        summary = res.summary()
        assert summary["solver"] == name and summary["m"] == inst.m

    def test_relative_error(self, inst, opt_cost):
        res = get_solver("round-robin").solve(inst)
        err = res.relative_error(opt_cost)
        assert err == pytest.approx((res.total_cost - opt_cost) / opt_cost)
        assert get_solver("optimal").solve(inst).relative_error(opt_cost) < 1e-9

    def test_mine_iterations_and_convergence(self, inst, opt_cost):
        res = get_solver("mine-exact").solve(
            inst, rng=0, optimum=opt_cost, max_iterations=50, rel_tol=0.02
        )
        assert res.converged
        assert 1 <= res.iterations <= 50
        assert res.relative_error(opt_cost) <= 0.02
        assert res.metadata["strategy"] == "exact"

    def test_mine_strategies_all_reach_optimum(self, inst, opt_cost):
        for strategy in ("exact", "screened", "auto"):
            res = get_solver(f"mine-{strategy}").solve(
                inst, rng=0, optimum=opt_cost, max_iterations=60, rel_tol=0.02
            )
            assert res.relative_error(opt_cost) <= 0.02, strategy

    def test_best_response_reports_poa(self, inst, opt_cost):
        res = get_solver("best-response").solve(inst, rng=0, optimum=opt_cost)
        assert res.metadata["poa_ratio"] >= 1 - 1e-6
        assert res.iterations >= 1

    def test_solver_determinism(self, inst, opt_cost):
        a = get_solver("mine-auto").solve(inst, rng=7, optimum=opt_cost)
        b = get_solver("mine-auto").solve(inst, rng=7, optimum=opt_cost)
        assert a.total_cost == b.total_cost
        np.testing.assert_array_equal(a.state.R, b.state.R)


class TestEvaluators:
    def test_stream_and_snapshot_registered(self):
        assert {"stream", "snapshot"} <= set(list_evaluators())

    def test_unknown_evaluator(self):
        with pytest.raises(KeyError, match="unknown evaluator"):
            get_evaluator("no-such-evaluator")

    def test_duplicate_evaluator_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_evaluator("stream", lambda inst, state, **kw: {})

    def test_stream_evaluator(self, inst):
        opt = get_solver("optimal").solve(inst)
        out = get_evaluator("stream")(
            inst, opt.state, rng=np.random.default_rng(0),
            horizon=2.0, events_target=300.0,
        )
        assert out["completed"] > 0
        assert math.isfinite(out["mean_latency"]) and out["mean_latency"] > 0

    def test_snapshot_evaluator_matches_analytic(self, inst):
        opt = get_solver("optimal").solve(inst)
        out = get_evaluator("snapshot")(inst, opt.state, rng=0)
        assert out["completed"] > 0
        assert out["analytic_gap"] < 0.5  # finite-size noise only

    def test_custom_evaluator_roundtrip(self):
        @register_evaluator("test-constant", description="test")
        def _const(inst, state, *, rng=None):
            return {"answer": 42}

        try:
            assert get_evaluator("test-constant")(None, None) == {"answer": 42}
        finally:
            _EVALUATORS.pop("test-constant", None)


class TestStatefulSolverRegistry:
    """The third registry: session factories for tracking solvers."""

    def test_builtin_sessions_listed_and_typed(self):
        from repro.engine import (
            StatefulSolver,
            get_stateful_solver,
            list_stateful_solvers,
        )

        listed = list_stateful_solvers()
        assert {"mine-warm", "mine-cold"} <= set(listed)
        assert all(listed.values())  # every entry carries a description
        session = get_stateful_solver("mine-warm")(rel_tol=0.05)
        assert isinstance(session, StatefulSolver)

    def test_custom_factory_roundtrip(self):
        from repro.engine import get_stateful_solver, register_stateful_solver
        from repro.engine.registry import _STATEFUL

        class _Null:
            name = "test-null"

            def start(self, inst, *, rng=None, optimum=None, **options):
                return None

            def step(self, inst, *, optimum=None, **options):
                return None

        register_stateful_solver("test-null", _Null, description="test")
        try:
            entry = get_stateful_solver("test-null")
            assert entry().name == "test-null"
            with pytest.raises(ValueError, match="already registered"):
                register_stateful_solver("test-null", _Null)
        finally:
            _STATEFUL.pop("test-null", None)
