"""The ``threads`` backend: bitwise identity with serial, no-pickle
requirement, and wiring through the scenario runner.

Numpy kernels release the GIL, so the thread pool overlaps array work
while skipping fork and pickling entirely — the backend the ROADMAP
asked for to serve many-tiny-cell sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.engine import SweepEngine, run_cells
from repro.workloads import ScenarioRunner


def _solve_tiny(seed: int) -> float:
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(32, 32))
    return float(np.linalg.matrix_power(a @ a.T, 3).trace())


class TestThreadsBackend:
    def test_bitwise_identical_to_serial(self):
        cells = list(range(24))
        serial = [r for _, r in run_cells(_solve_tiny, cells, backend="serial")]
        threaded = [
            r
            for _, r in run_cells(
                _solve_tiny, cells, backend="threads", max_workers=4
            )
        ]
        assert serial == threaded  # exact float equality, not approx

    def test_unpicklable_fn_is_fine(self):
        """Closures cannot cross a process boundary; threads don't care."""
        offset = 7
        fn = lambda x: x * x + offset  # noqa: E731
        out = [
            r
            for _, r in run_cells(fn, [1, 2, 3], backend="threads", max_workers=2)
        ]
        assert out == [8, 11, 16]

    def test_completion_order_mode(self):
        out = dict(
            run_cells(
                _solve_tiny,
                list(range(8)),
                backend="threads",
                max_workers=4,
                ordered=False,
            )
        )
        assert sorted(out) == list(range(8))
        assert out == {i: _solve_tiny(i) for i in range(8)}

    def test_chunk_size_honored(self):
        out = [
            r
            for _, r in run_cells(
                _solve_tiny,
                list(range(10)),
                backend="threads",
                max_workers=2,
                chunk_size=3,
            )
        ]
        assert out == [_solve_tiny(i) for i in range(10)]

    def test_sweep_engine_accepts_threads(self):
        engine = SweepEngine(_solve_tiny, list(range(6)), backend="threads")
        assert engine.run() == [_solve_tiny(i) for i in range(6)]


class TestScenarioRunnerThreads:
    def test_runner_threads_identical_to_serial(self):
        runner = ScenarioRunner(
            ["paper-homogeneous", "cdn-flashcrowd"],
            sizes=[10],
            seeds=[0, 1],
            metrics=("mine",),
            mine_max_iterations=15,
        )
        serial = runner.run(backend="serial")
        threaded = runner.run(backend="threads", max_workers=4)
        assert serial == threaded  # ScenarioReport.__eq__ skips timings
