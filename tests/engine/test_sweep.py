"""Sweep engine: backends, ordering, result store, resume."""

import json
import os
import time

import pytest

from repro.engine import BACKENDS, JsonlStore, SweepEngine, run_cells
from repro.engine.backends import resolve_workers


def _square(x):
    return x * x


def _boom(x):
    raise AssertionError("cell was re-executed despite being stored")


def _square_slow_zero(x):
    if x == 0:
        time.sleep(1.0)
    return x * x


class TestBackends:
    def test_backend_names(self):
        assert BACKENDS == ("serial", "threads", "process", "chunked")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            list(run_cells(_square, [1, 2], backend="fibers"))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_cell_order(self, backend):
        out = list(run_cells(_square, list(range(10)), backend=backend,
                             max_workers=2))
        assert out == [(i, i * i) for i in range(10)]

    def test_empty_grid(self):
        assert list(run_cells(_square, [], backend="process")) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unordered_yields_every_pair(self, backend):
        out = dict(run_cells(_square, list(range(10)), backend=backend,
                             max_workers=2, ordered=False))
        assert out == {i: i * i for i in range(10)}

    def test_chunked_matches_serial(self):
        cells = list(range(23))
        a = list(run_cells(_square, cells, backend="serial"))
        b = list(run_cells(_square, cells, backend="chunked", max_workers=2,
                           chunk_size=5))
        assert a == b

    def test_resolve_workers(self):
        assert resolve_workers(4, 100) == 4
        assert resolve_workers(8, 3) == 3  # never more workers than cells
        assert resolve_workers(None, 2) <= 2
        assert resolve_workers(0, 5) == 1


class TestSweepEngine:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_matches_map(self, backend):
        engine = SweepEngine(_square, list(range(7)), backend=backend,
                             max_workers=2)
        assert engine.run() == [i * i for i in range(7)]

    def test_progress_called_in_order(self):
        seen = []
        SweepEngine(_square, [3, 1, 2]).run(progress=seen.append)
        assert seen == [9, 1, 4]

    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SweepEngine(_square, [1], backend="gpu")


class TestJsonlStore:
    def test_append_load_roundtrip(self, tmp_path):
        store = JsonlStore(tmp_path / "r.jsonl")
        store.append("a", {"x": 1})
        store.append("b", [1, 2])
        fresh = JsonlStore(tmp_path / "r.jsonl")
        assert fresh.load() == {"a": {"x": 1}, "b": [1, 2]}
        assert "a" in fresh and len(fresh) == 2

    def test_last_write_wins(self, tmp_path):
        store = JsonlStore(tmp_path / "r.jsonl")
        store.append("k", 1)
        store.append("k", 2)
        assert JsonlStore(tmp_path / "r.jsonl").get("k") == 2

    def test_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = JsonlStore(path)
        store.append("ok", 7)
        with open(path, "a") as fh:
            fh.write('{"key": "torn", "resu')  # crash mid-write
        fresh = JsonlStore(path)
        assert fresh.load() == {"ok": 7}

    def test_missing_file_is_empty(self, tmp_path):
        assert JsonlStore(tmp_path / "absent.jsonl").load() == {}


class TestResume:
    def test_store_persists_every_result(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        engine = SweepEngine(_square, [1, 2, 3], store=str(path),
                             key=str)
        assert engine.run() == [1, 4, 9]
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert {rec["key"]: rec["result"] for rec in lines} == {
            "1": 1, "2": 4, "3": 9
        }

    def test_resume_skips_stored_cells(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SweepEngine(_square, [1, 2, 3], store=str(path), key=str).run()
        # A second engine over a superset: stored cells must NOT re-run
        # (fn raises if any of them does), fresh cells run normally.
        engine = SweepEngine(_boom, [1, 2, 3], store=str(path), key=str)
        assert engine.pending() == []
        assert engine.run() == [1, 4, 9]

    def test_partial_resume_runs_only_missing(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SweepEngine(_square, [1, 2], store=str(path), key=str).run()
        engine = SweepEngine(_square, [1, 2, 5], store=str(path), key=str)
        assert [c for _, c in engine.pending()] == [5]
        assert engine.run() == [1, 4, 25]

    def test_progress_in_order_with_stored_prefix(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        SweepEngine(_square, [2, 4], store=str(path), key=str).run()
        seen = []
        SweepEngine(_square, [2, 3, 4, 5], store=str(path), key=str).run(
            progress=seen.append
        )
        assert seen == [4, 9, 16, 25]

    def test_store_not_blocked_by_slow_head_cell(self, tmp_path):
        """Crash-safety on parallel backends: cells finished while an
        earlier cell is still running are persisted immediately."""
        path = tmp_path / "sweep.jsonl"
        engine = SweepEngine(
            _square_slow_zero, [0, 1, 2, 3], backend="process",
            max_workers=2, store=str(path), key=str,
        )
        assert engine.run() == [0, 1, 4, 9]
        keys = [json.loads(x)["key"] for x in path.read_text().splitlines()]
        assert sorted(keys) == ["0", "1", "2", "3"]
        if (os.cpu_count() or 1) >= 2:
            # The sleeping head cell must have landed in the store last.
            assert keys[-1] == "0"

    def test_encode_decode(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        engine = SweepEngine(
            _square, [3], store=str(path), key=str,
            encode=lambda r: {"value": r},
            decode=lambda p: p["value"],
        )
        assert engine.run() == [9]
        again = SweepEngine(
            _boom, [3], store=str(path), key=str,
            decode=lambda p: p["value"],
        )
        assert again.run() == [9]


class TestMerge:
    def test_two_shard_union_covers_grid(self, tmp_path):
        """The sharded-sweep workflow end to end: two engines, each owning
        every 2nd pending cell and its own store; the merged store covers
        the full grid with exactly the unsharded results."""
        cells = list(range(10))
        s1, s2 = tmp_path / "shard1.jsonl", tmp_path / "shard2.jsonl"
        r1 = SweepEngine(_square, cells, store=s1, shard="1/2").run()
        r2 = SweepEngine(_square, cells, store=s2, shard=(2, 2)).run()
        # Each shard computed exactly its half, Nones elsewhere.
        assert [x for x in r1 if x is not None] == [0, 4, 16, 36, 64]
        assert [x for x in r2 if x is not None] == [1, 9, 25, 49, 81]
        merged = JsonlStore.merge(s1, s2, out=tmp_path / "all.jsonl")
        assert len(merged) == 10
        # A coordinator run against the merged store executes nothing.
        out = SweepEngine(_boom, cells, store=tmp_path / "all.jsonl").run()
        assert out == [i * i for i in cells]

    def test_merge_in_memory_reads_but_rejects_append(self, tmp_path):
        s1 = JsonlStore(tmp_path / "a.jsonl")
        s1.append("k1", 1)
        s2 = JsonlStore(tmp_path / "b.jsonl")
        s2.append("k1", 100)  # later path wins
        s2.append("k2", 2)
        merged = JsonlStore.merge(s1.path, s2.path)
        assert merged.get("k1") == 100 and merged.get("k2") == 2
        with pytest.raises(ValueError, match="in-memory"):
            merged.append("k3", 3)

    def test_merge_skips_missing_shards(self, tmp_path):
        s1 = JsonlStore(tmp_path / "a.jsonl")
        s1.append("k", 7)
        merged = JsonlStore.merge(s1.path, tmp_path / "never-started.jsonl")
        assert merged.get("k") == 7 and len(merged) == 1

    def test_merged_out_store_is_appendable(self, tmp_path):
        s1 = JsonlStore(tmp_path / "a.jsonl")
        s1.append("k", 7)
        merged = JsonlStore.merge(s1.path, out=tmp_path / "out.jsonl")
        merged.append("k2", 8)
        assert JsonlStore(tmp_path / "out.jsonl").load() == {"k": 7, "k2": 8}


class TestShard:
    def test_shards_partition_pending_cells(self, tmp_path):
        cells = list(range(7))
        owned = [
            [i for i, r in enumerate(
                SweepEngine(_square, cells, shard=(k, 3)).run())
             if r is not None]
            for k in (1, 2, 3)
        ]
        flat = [i for part in owned for i in part]
        assert sorted(flat) == cells  # disjoint and complete
        assert owned[0] == [0, 3, 6]

    def test_shard_counts_over_pending_not_grid(self, tmp_path):
        """Cells already in a shared store are excluded before the k/N
        split, so shards stay balanced as the store fills up."""
        store = JsonlStore(tmp_path / "shared.jsonl")
        cells = list(range(6))
        for i in (0, 1, 2):
            store.append(repr(i), i * i)
        out = SweepEngine(_square, cells, store=store, shard="1/2").run()
        # Stored cells are returned regardless of shard; pending = [3,4,5],
        # shard 1/2 owns [3, 5].
        assert out == [0, 1, 4, 9, None, 25]

    def test_bad_specs_rejected(self):
        for spec in ("3/2", "0/2", "x/y", "1"):
            with pytest.raises(ValueError):
                SweepEngine(_square, [1], shard=spec)
