"""Structured-logging configuration: formats, idempotence, hierarchy."""

from __future__ import annotations

import json
import logging

from repro.obs import logconf


class TestConfigure:
    def test_human_format(self, capsys):
        logconf.configure("INFO")
        logconf.get_logger("results.test").info("hello %d", 42)
        out = capsys.readouterr().out
        assert out == "INFO repro.results.test: hello 42\n"

    def test_json_format(self, capsys):
        logconf.configure("INFO", json=True)
        logconf.get_logger("results.test").info("grid done")
        doc = json.loads(capsys.readouterr().out)
        assert doc == {
            "level": "INFO",
            "logger": "repro.results.test",
            "msg": "grid done",
        }

    def test_reconfigure_does_not_stack_handlers(self, capsys):
        for _ in range(3):
            logconf.configure("INFO")
        logconf.get_logger("x").info("once")
        assert capsys.readouterr().out.count("once") == 1

    def test_level_filters(self, capsys):
        logconf.configure("WARNING")
        log = logconf.get_logger("x")
        log.info("hidden")
        log.warning("shown")
        out = capsys.readouterr().out
        assert "hidden" not in out and "shown" in out

    def test_get_logger_prefixes_root(self):
        assert logconf.get_logger("foo").name == "repro.foo"
        assert logconf.get_logger("repro.bar").name == "repro.bar"
        assert logconf.get_logger("repro").name == "repro"

    def test_no_propagation_to_root_logger(self, capsys):
        logconf.configure("INFO")
        assert logging.getLogger("repro").propagate is False
