"""Unit coverage of the deterministic tracer and its exports."""

from __future__ import annotations

import json

from repro.obs.trace import Tracer


class TestRecording:
    def test_ids_are_consecutive_event_order(self):
        tr = Tracer()
        a = tr.instant("a", 0.0)
        b = tr.span("b", 1.0, 2.0)
        c = tr.begin("c", 3.0)
        assert (a, b, c) == (1, 2, 3)

    def test_begin_end_carries_duration_and_extra_args(self):
        tr = Tracer()
        sid = tr.begin("flight", 5.0, track=2, src=0, dst=1)
        tr.end(sid, 7.5, merged=True)
        (s,) = tr.spans()
        assert s.ts == 5.0 and s.dur == 2.5 and s.track == 2
        assert s.args == {"src": 0, "dst": 1, "merged": True}

    def test_end_unknown_id_is_ignored(self):
        tr = Tracer()
        tr.end(999, 1.0)
        assert len(tr) == 0

    def test_abandon_discards_open_span(self):
        tr = Tracer()
        sid = tr.begin("flight", 0.0)
        tr.abandon(sid)
        tr.end(sid, 1.0)  # already gone: no-op
        assert len(tr) == 0

    def test_ring_capacity_evicts_and_counts(self):
        tr = Tracer(capacity=3)
        for k in range(5):
            tr.instant("e", float(k))
        assert len(tr) == 3
        assert tr.dropped == 2
        assert [s.ts for s in tr.spans()] == [2.0, 3.0, 4.0]

    def test_clear_keeps_id_sequence_unique(self):
        tr = Tracer()
        tr.instant("a", 0.0)
        tr.clear()
        assert tr.instant("b", 0.0) == 2  # ids never recycle


class TestCorrelation:
    def test_bind_lookup_take(self):
        tr = Tracer()
        sid = tr.instant("merge", 0.0)
        tr.bind(("view", 3), sid)
        assert tr.lookup(("view", 3)) == sid
        assert tr.take(("view", 3)) == sid
        assert tr.lookup(("view", 3)) is None

    def test_missing_key_is_none(self):
        assert Tracer().lookup(("xchg", 42)) is None


class TestExports:
    def _populated(self):
        tr = Tracer()
        push = tr.begin("gossip.push", 10.0, track=0, src=0, dst=1)
        tr.end(push, 12.0)
        tr.instant("gossip.merge", 12.0, parent=push, track=1)
        return tr

    def test_jsonl_lines_and_byte_identity(self, tmp_path):
        tr = self._populated()
        text = tr.to_jsonl()
        lines = text.strip().split("\n")
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "sid": 1,
            "name": "gossip.push",
            "ts": 10.0,
            "dur": 2.0,
            "track": 0,
            "args": {"src": 0, "dst": 1},
        }
        path = tmp_path / "t.jsonl"
        assert self._populated().to_jsonl(path) == text
        assert path.read_text() == text

    def test_chrome_export_shape(self, tmp_path):
        tr = self._populated()
        doc = tr.to_chrome(tmp_path / "chrome.json")
        assert doc["displayTimeUnit"] == "ms"
        complete, instant = doc["traceEvents"]
        assert complete["ph"] == "X"
        assert complete["ts"] == 10000.0 and complete["dur"] == 2000.0
        assert complete["tid"] == 0
        assert complete["args"]["sid"] == 1
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert instant["args"]["parent"] == 1
        # the file is valid JSON and loads back to the same doc
        assert json.loads((tmp_path / "chrome.json").read_text()) == doc
