"""Observability must be a pure read-out: instrumented runs replay the
exact event trace of uninstrumented ones, and the exported trace bytes
are a pure function of (instance, config, seed).

These are the ISSUE-6 acceptance tests: obs-on vs obs-off identity on
every registered preset, and byte-identical trace JSONL across same-seed
runs under both gossip wire formats.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.livesim import LiveConfig, LiveSimulation, get_live_preset
from repro.workloads import PRESETS, cached_instance, get_scenario


def _assert_same_run(sim_a, rep_a, sim_b, rep_b, label=""):
    assert rep_a.trace == rep_b.trace, f"{label}: traces diverged"
    assert rep_a.trace, f"{label}: trace should not be empty"
    assert rep_a.events_processed == rep_b.events_processed, (
        f"{label}: event counts diverged"
    )
    np.testing.assert_array_equal(sim_a.state.R, sim_b.state.R)
    np.testing.assert_array_equal(rep_a.costs, rep_b.costs)
    assert rep_a.net.sent == rep_b.net.sent
    assert rep_a.agents == rep_b.agents
    assert rep_a.gossip == rep_b.gossip


class TestObsOnEqualsObsOff:
    def test_all_presets_identical(self):
        """Tracing + metrics + profiling changes nothing observable, on
        every registered scenario preset."""
        cfg = get_live_preset("lossy")  # stochastic drops exercise RNG order
        for sc in PRESETS:
            inst = cached_instance(sc, 12, 0)
            sim_off = LiveSimulation(inst, config=cfg, seed=5)
            rep_off = sim_off.run(rounds=40)
            o = obs.Observability(trace=True)
            sim_on = LiveSimulation(inst, config=cfg, seed=5, obs=o, profile=True)
            rep_on = sim_on.run(rounds=40)
            _assert_same_run(sim_off, rep_off, sim_on, rep_on, sc.name)
            assert len(o.tracer) > 0, f"{sc.name}: tracer recorded nothing"

    def test_churn_and_traffic_identical(self):
        """The request and churn planes — resubmits, drops, failures —
        are also untouched by instrumentation."""
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        cfg = LiveConfig(
            p_drop=get_live_preset("churn").p_drop,
            churn_rate=0.02,
            arrival_rate_scale=0.05,
        )
        sim_off = LiveSimulation(inst, config=cfg, seed=6)
        rep_off = sim_off.run(rounds=80)
        o = obs.Observability(trace=True)
        sim_on = LiveSimulation(inst, config=cfg, seed=6, obs=o)
        rep_on = sim_on.run(rounds=80)
        _assert_same_run(sim_off, rep_off, sim_on, rep_on, "churn+traffic")
        assert rep_off.failures == rep_on.failures
        assert rep_off.requests_submitted == rep_on.requests_submitted
        assert rep_off.requests_resubmitted == rep_on.requests_resubmitted
        assert rep_off.request_mean_latency == rep_on.request_mean_latency

    def test_global_enable_is_picked_up_and_harmless(self):
        inst = cached_instance(get_scenario("paper-homogeneous"), 10, 0)
        cfg = get_live_preset("ideal")
        sim_off = LiveSimulation(inst, config=cfg, seed=3)
        rep_off = sim_off.run(rounds=30)
        try:
            ctx = obs.enable(trace=True)
            assert obs.is_enabled()
            sim_on = LiveSimulation(inst, config=cfg, seed=3)
            assert sim_on.obs is ctx  # adopted as default
            rep_on = sim_on.run(rounds=30)
        finally:
            obs.disable()
        assert not obs.is_enabled()
        _assert_same_run(sim_off, rep_off, sim_on, rep_on, "global-enable")


class TestTraceBytesDeterministic:
    def _trace_bytes(self, cfg, seed=7):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        o = obs.Observability(trace=True)
        sim = LiveSimulation(inst, config=cfg, seed=seed, obs=o)
        sim.run(rounds=40)
        return o.tracer.to_jsonl()

    def test_full_gossip_byte_identical(self):
        cfg = get_live_preset("lossy")
        text_a = self._trace_bytes(cfg)
        text_b = self._trace_bytes(cfg)
        assert text_a == text_b
        assert text_a  # non-empty

    def test_delta_gossip_byte_identical(self):
        cfg = dataclasses.replace(get_live_preset("lossy"), gossip_mode="delta")
        text_a = self._trace_bytes(cfg)
        text_b = self._trace_bytes(cfg)
        assert text_a == text_b
        assert '"gossip.pull_reply"' in text_a  # delta replies traced too

    def test_different_seeds_differ(self):
        cfg = get_live_preset("lossy")
        assert self._trace_bytes(cfg, seed=7) != self._trace_bytes(cfg, seed=8)


class TestCausalChains:
    def test_gossip_merge_to_exchange_chain_exists(self):
        """At least one full causal chain gossip.merge → agent.propose →
        agent.exchange must thread through the trace (the acceptance
        criterion: a stale-view repair becoming an applied exchange)."""
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        o = obs.Observability(trace=True)
        sim = LiveSimulation(inst, config=get_live_preset("lossy"), seed=7, obs=o)
        sim.run(rounds=40)
        by_sid = {s.sid: s for s in o.tracer.spans()}
        chains = 0
        for s in o.tracer.spans():
            if s.name != "agent.exchange" or s.parent is None:
                continue
            propose = by_sid.get(s.parent)
            if propose is None or propose.name != "agent.propose":
                continue
            if propose.parent is None:
                continue
            merge = by_sid.get(propose.parent)
            if merge is not None and merge.name == "gossip.merge":
                chains += 1
        assert chains >= 1, "no gossip.merge -> agent.propose -> agent.exchange chain"

    def test_pull_reply_parents_are_pushes(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        o = obs.Observability(trace=True)
        sim = LiveSimulation(inst, config=get_live_preset("ideal"), seed=1, obs=o)
        sim.run(rounds=20)
        by_sid = {s.sid: s for s in o.tracer.spans()}
        replies = [s for s in o.tracer.spans() if s.name == "gossip.pull_reply"]
        assert replies
        for s in replies:
            parent = by_sid.get(s.parent)
            # parent may have fallen off the ring; when present it is a push
            if parent is not None:
                assert parent.name == "gossip.push"
