"""End-to-end observability: driver wiring, request spans, engine and
tracking instrumentation, sweep failure rows, and the inspect CLI."""

from __future__ import annotations

import json
import runpy
import sys
from pathlib import Path

import pytest

from repro import get_solver, obs
from repro.livesim import LiveConfig, LiveSimulation, get_live_preset
from repro.livesim.sweep import LiveCell, evaluate_live_cell
from repro.workloads import UniformLoads, cached_instance, get_scenario
from repro.workloads.scenario import Scenario

RESULTS_DIR = Path(__file__).resolve().parent.parent.parent / "results"


def _traced_run(cfg=None, seed=7, rounds=40, **obs_kw):
    inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
    o = obs.Observability(trace=True, **obs_kw)
    sim = LiveSimulation(
        inst, config=cfg or get_live_preset("lossy"), seed=seed, obs=o
    )
    rep = sim.run(rounds=rounds)
    return o, sim, rep


class TestDriverWiring:
    def test_metrics_mirror_report_stats(self):
        o, sim, rep = _traced_run()
        reg = o.metrics
        assert reg.get("gossip.payload_bytes").value == rep.gossip.payload_bytes
        assert reg.get("agents.exchanges").value == rep.agents.exchanges
        assert reg.get("net.drops").value == rep.net.dropped
        assert reg.get("net.sent").value == rep.net.sent
        # live gauges exist and read sane values
        assert reg.get("sched.queue_depth").value >= 0
        assert reg.get("livesim.cost").value > 0

    def test_series_sampled_on_cost_checkpoints(self):
        o, sim, rep = _traced_run()
        snap = o.snapshot()
        pts = snap["series"]["agents.exchanges"]["points"]
        assert len(pts) > 1
        values = [v for _, v in pts]
        assert values == sorted(values)  # counter series are monotone

    def test_snapshot_round_trips_through_json(self, tmp_path):
        o, _, _ = _traced_run()
        path = tmp_path / "snap.json"
        o.to_json(path)
        doc = json.loads(path.read_text())
        assert set(doc) >= {"metrics", "histograms", "series", "trace"}
        assert doc["trace"]["spans"] == len(o.tracer)

    def test_profile_attribution_in_report(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        sim = LiveSimulation(
            inst, config=get_live_preset("ideal"), seed=0, profile=True
        )
        rep = sim.run(rounds=20)
        assert rep.profile is not None
        kinds = [r["kind"] for r in rep.profile["rows"]]
        assert any("AsyncGossip._tick" in k for k in kinds)
        assert rep.profile["total_calls"] > 0
        # profile off by default
        sim2 = LiveSimulation(inst, config=get_live_preset("ideal"), seed=0)
        assert sim2.run(rounds=5).profile is None

    def test_churn_metrics(self):
        o, sim, rep = _traced_run(cfg=get_live_preset("churn"), rounds=80)
        reg = o.metrics
        assert reg.get("churn.failures").value == len(rep.failures)
        assert reg.get("churn.rejoins").value == len(rep.rejoins)
        hist = reg.get("churn.downtime")
        assert hist.count == len(rep.failures)


class TestRequestSpans:
    def test_submit_to_service_chain_and_latency_histogram(self):
        cfg = LiveConfig(arrival_rate_scale=0.05)
        o, sim, rep = _traced_run(cfg=cfg, seed=2, rounds=60)
        spans = o.tracer.spans()
        submits = {s.sid: s for s in spans if s.name == "request.submit"}
        services = [s for s in spans if s.name == "request.service"]
        assert submits and services
        linked = [s for s in services if s.parent in submits]
        assert linked, "no request.service span is parented by its submit"
        hist = o.metrics.get("request.latency")
        assert hist.count == rep.requests_completed
        assert hist.mean == pytest.approx(rep.request_mean_latency)

    def test_resubmit_chain_under_churn(self):
        # Aggressive churn over light traffic, with a ring big enough
        # that the (rare) resubmit instants cannot be evicted by the
        # (plentiful) submit/service spans.
        cfg = LiveConfig(
            p_drop=get_live_preset("churn").p_drop,
            churn_rate=0.05,
            arrival_rate_scale=0.01,
        )
        o, sim, rep = _traced_run(
            cfg=cfg, seed=6, rounds=40, trace_capacity=2_000_000
        )
        assert rep.requests_resubmitted > 0
        spans = o.tracer.spans()
        resubmits = [s for s in spans if s.name == "request.resubmit"]
        assert len(resubmits) == rep.requests_resubmitted
        assert all(s.parent is not None for s in resubmits)


class TestEngineInstrumentation:
    def test_solver_counters_with_global_context(self):
        inst = cached_instance(get_scenario("paper-homogeneous"), 10, 0)
        try:
            ctx = obs.enable()
            get_solver("mine-exact").solve(inst, rng=0)
            assert ctx.metrics.get("engine.solve.mine-exact").value == 1
            assert ctx.metrics.get("engine.solve_wall_s").count == 1
        finally:
            obs.disable()

    def test_no_context_no_instruments(self):
        inst = cached_instance(get_scenario("paper-homogeneous"), 10, 0)
        assert obs.get_active() is None
        res = get_solver("mine-exact").solve(inst, rng=0)
        assert res.total_cost > 0  # still solves fine without a context


class TestTrackingInstrumentation:
    def test_epoch_spans_and_counters(self):
        from repro.tracking import TrackingSimulation

        inst = cached_instance(get_scenario("paper-planetlab"), 10, 0)
        o = obs.Observability(trace=True)
        sim = TrackingSimulation(inst, "drift", seed=0, obs=o)
        rep = sim.run()
        epochs = [s for s in o.tracer.spans() if s.name == "tracking.epoch"]
        assert len(epochs) == o.metrics.get("tracking.epochs").value
        assert len(epochs) > 1
        for s in epochs:
            assert s.dur >= 0
            assert "retrack_rounds" in (s.args or {})


class TestSweepFailureRows:
    def test_success_row_has_empty_failure(self):
        cell = LiveCell(
            scenario=get_scenario("paper-homogeneous"),
            m=10,
            seed=0,
            mode="async",
            preset="ideal",
            rounds=20,
        )
        row = evaluate_live_cell(cell)
        assert row["failure"] == ""
        assert row["events_per_sec"] > 0

    def test_sync_mode_reports_zero_events_per_sec(self):
        cell = LiveCell(
            scenario=get_scenario("paper-homogeneous"),
            m=10,
            seed=0,
            mode="sync",
            rounds=10,
        )
        row = evaluate_live_cell(cell)
        assert row["failure"] == ""
        assert row["events_per_sec"] == 0.0  # lock-stepped, not NaN

    def test_failed_cell_records_reason_not_nan(self):
        def _boom(m, *, rng):
            raise RuntimeError("topology exploded")

        sc = Scenario(
            name="obs-test-boom",
            topology=_boom,
            load_model=UniformLoads(avg=10.0),
            m=8,
        )
        row = evaluate_live_cell(LiveCell(scenario=sc, m=8, seed=0))
        assert row["failure"] == "RuntimeError: topology exploded"
        assert row["events_per_sec"] == 0.0
        assert row["converged"] is False
        assert row["final_error"] == float("inf")


class TestInspectCli:
    def _artifacts(self, tmp_path):
        o, sim, rep = _traced_run(rounds=20)
        snap = tmp_path / "snap.json"
        trace = tmp_path / "trace.jsonl"
        o.to_json(snap)
        o.tracer.to_jsonl(trace)
        return snap, trace

    def _run_cli(self, argv, capsys):
        old = sys.argv
        sys.argv = ["inspect_run.py"] + argv
        try:
            with pytest.raises(SystemExit) as exc:
                runpy.run_path(str(RESULTS_DIR / "inspect_run.py"),
                               run_name="__main__")
            assert exc.value.code == 0
        finally:
            sys.argv = old
        return capsys.readouterr().out

    def test_snapshot_and_trace_render(self, tmp_path, capsys):
        snap, trace = self._artifacts(tmp_path)
        out = self._run_cli(
            ["--snapshot", str(snap), "--trace", str(trace), "--top", "3"],
            capsys,
        )
        assert "gossip.payload_bytes" in out
        assert "slowest spans" in out
        assert "gossip.push" in out

    def test_requires_an_input(self, capsys):
        old = sys.argv
        sys.argv = ["inspect_run.py"]
        try:
            with pytest.raises(SystemExit) as exc:
                runpy.run_path(str(RESULTS_DIR / "inspect_run.py"),
                               run_name="__main__")
            assert exc.value.code == 2  # argparse usage error
        finally:
            sys.argv = old
