"""Unit coverage of the metrics registry: instruments, series, binding."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.metrics import (
    BoundCounter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)


class TestSeries:
    def test_buckets_keep_last_value(self):
        s = Series(interval=10.0)
        s.record(1.0, 5.0)
        s.record(9.0, 7.0)  # same bucket: overwrite
        s.record(12.0, 9.0)  # next bucket: append
        assert s.points() == [(0.0, 7.0), (10.0, 9.0)]

    def test_capacity_bounds_memory(self):
        s = Series(interval=1.0, capacity=4)
        for k in range(10):
            s.record(float(k), float(k))
        assert len(s) == 4
        assert s.points()[0] == (6.0, 6.0)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Series(interval=0.0)


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_gauge_set_and_fn(self):
        g = Gauge("g")
        g.set(2.5)
        assert g.value == 2.5
        live = Gauge("g2", fn=lambda: 42)
        assert live.value == 42

    def test_histogram_summary(self):
        h = Histogram("h")
        for v in (0.5, 1.5, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == pytest.approx(6.0)
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 0.5 and s["max"] == 4.0
        assert h.value == 3  # series track the count

    def test_empty_histogram_summary_is_json_safe(self):
        s = Histogram("h").summary()
        assert s["min"] is None and s["max"] is None
        assert math.isnan(s["mean"])

    def test_bound_counter_reads_live(self):
        class Stats:
            def __init__(self):
                self.sent = 0

        st = Stats()
        b = BoundCounter("net.sent", st, "sent")
        assert b.value == 0
        st.sent += 7
        assert b.value == 7


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        c1 = reg.counter("a.b")
        c2 = reg.counter("a.b")
        assert c1 is c2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("a.b")

    def test_bind_auto_discovers_numeric_fields(self):
        class Stats:
            def __init__(self):
                self.sent = 3
                self.dropped = 1
                self._private = 9
                self.label = "not-numeric"

        reg = MetricsRegistry()
        reg.bind("net", Stats(), rename={"dropped": "drops"})
        assert reg.names() == ["net.drops", "net.sent"]
        assert reg.get("net.drops").value == 1

    def test_rebind_replaces_object(self):
        class Stats:
            def __init__(self, n):
                self.sent = n

        reg = MetricsRegistry()
        reg.bind("net", Stats(1))
        reg.bind("net", Stats(5))
        assert reg.get("net.sent").value == 5

    def test_configure_series_first_caller_wins_and_retrofits(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")  # registered before any interval exists
        assert c.series is None
        reg.configure_series(10.0)
        assert c.series is not None and c.series.interval == 10.0
        reg.configure_series(99.0)  # later caller must not re-bucket
        assert reg.series_interval == 10.0

    def test_sample_records_series_points(self):
        reg = MetricsRegistry(series_interval=10.0)
        c = reg.counter("a.b")
        c.inc(2)
        reg.sample(0.0)
        c.inc(3)
        reg.sample(15.0)
        snap = reg.snapshot()
        assert snap["series"]["a.b"]["points"] == [[0.0, 2], [10.0, 5]]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("gossip.pushes").inc(4)
        reg.gauge("sched.queue_depth", fn=lambda: 17)
        reg.histogram("request.latency").observe(1.0)
        snap = reg.snapshot()
        assert snap["metrics"]["gossip.pushes"] == 4
        assert snap["metrics"]["sched.queue_depth"] == 17
        assert snap["histograms"]["request.latency"]["count"] == 1

    def test_to_json_deterministic(self, tmp_path):
        def build():
            reg = MetricsRegistry(series_interval=5.0)
            reg.counter("z.c").inc(2)
            reg.counter("a.c").inc(1)
            reg.sample(0.0)
            return reg

        text_a = build().to_json()
        path = tmp_path / "m.json"
        text_b = build().to_json(path)
        assert text_a == text_b
        assert path.read_text() == text_b + "\n"
        json.loads(text_a)  # valid JSON
