"""Unit coverage of the opt-in callback profiler."""

from __future__ import annotations

import functools

from repro.obs.profile import CallbackProfiler
from repro.sim.events import Environment


class _Thing:
    def __init__(self):
        self.calls = 0

    def tick(self, _=None):
        self.calls += 1


class TestBuckets:
    def test_bound_methods_of_one_class_share_a_bucket(self):
        prof = CallbackProfiler()
        a, b = _Thing(), _Thing()
        prof.add(a.tick, 0.5)
        prof.add(b.tick, 0.25)
        (label,) = prof.buckets
        assert label.endswith("_Thing.tick")
        assert prof.buckets[label] == [2, 0.75]

    def test_plain_functions_and_partials(self):
        def cb(_):
            pass

        prof = CallbackProfiler()
        prof.add(cb, 0.1)
        prof.add(functools.partial(cb, 1), 0.1)
        assert prof.total_calls == 2

    def test_table_shares_and_order(self):
        prof = CallbackProfiler()
        prof.add(_Thing().tick, 3.0)

        def cheap(_):
            pass

        prof.add(cheap, 1.0)
        t = prof.table()
        assert t["total_calls"] == 2
        assert t["total_seconds"] == 4.0
        assert t["rows"][0]["kind"].endswith("_Thing.tick")  # hottest first
        assert t["rows"][0]["share"] == 0.75
        assert t["rows"][0]["events_per_sec"] == 1 / 3.0

    def test_format_table_renders(self):
        prof = CallbackProfiler()
        prof.add(_Thing().tick, 0.5)
        text = prof.format_table()
        assert "_Thing.tick" in text
        assert "TOTAL" in text

    def test_empty_table(self):
        t = CallbackProfiler().table()
        assert t == {"total_calls": 0, "total_seconds": 0.0, "rows": []}


class TestEngineIntegration:
    def test_environment_attributes_callback_time(self):
        env = Environment()
        prof = CallbackProfiler()
        env.set_profiler(prof)
        thing = _Thing()
        for k in range(5):
            env.call_at(float(k), thing.tick)
        env.run(until=10.0)
        assert thing.calls == 5
        (label,) = prof.buckets
        assert label.endswith("_Thing.tick")
        assert prof.buckets[label][0] == 5
        assert prof.buckets[label][1] >= 0.0

    def test_unprofiled_environment_unaffected(self):
        env = Environment()
        thing = _Thing()
        env.call_at(0.0, thing.tick)
        env.run(until=1.0)
        assert thing.calls == 1
