"""Test package (enables pytest package-relative imports)."""
