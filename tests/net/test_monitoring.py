"""Tests for the Vivaldi-style latency estimator."""

import numpy as np
import pytest

from repro.net.monitoring import VivaldiEstimator
from repro.net.topology import planetlab_like_latency


class TestVivaldi:
    def test_error_decreases_with_training(self):
        rtt = planetlab_like_latency(30, rng=0)
        est = VivaldiEstimator(rtt, rng=0)
        before = est.relative_error()
        est.fit(rounds=80)
        after = est.relative_error()
        assert after < before
        assert after < 0.25  # network coordinates get within ~25% median

    def test_euclidean_rtt_nearly_exact(self):
        """A genuinely Euclidean latency matrix embeds almost perfectly."""
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 100, size=(20, 2))
        diff = pos[:, None, :] - pos[None, :, :]
        rtt = np.sqrt((diff**2).sum(-1))
        est = VivaldiEstimator(rtt, rng=0)
        est.fit(rounds=200, probes_per_node=6)
        assert est.relative_error() < 0.12

    def test_predict_self_is_zero(self):
        rtt = planetlab_like_latency(5, rng=0)
        est = VivaldiEstimator(rtt, rng=0)
        assert est.predict(2, 2) == 0.0

    def test_predicted_matrix_symmetric_nonnegative(self):
        rtt = planetlab_like_latency(10, rng=0)
        est = VivaldiEstimator(rtt, rng=0)
        est.fit(rounds=10)
        p = est.predicted_matrix()
        assert np.allclose(p, p.T)
        assert np.all(p >= 0)
        assert np.all(np.diagonal(p) == 0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            VivaldiEstimator(np.zeros((2, 3)))

    def test_observe_self_is_noop(self):
        rtt = planetlab_like_latency(5, rng=0)
        est = VivaldiEstimator(rtt, rng=0)
        coords = est.coords.copy()
        est.observe(1, 1)
        assert np.array_equal(coords, est.coords)

    def test_usable_for_mine_partner_selection(self):
        """End-to-end: MinE run on Vivaldi-estimated latencies still finds
        a good allocation when evaluated on true latencies."""
        import repro

        rng = np.random.default_rng(2)
        m = 12
        rtt = planetlab_like_latency(m, rng=rng)
        speeds = rng.uniform(1, 5, m)
        loads = rng.exponential(50, m)
        true_inst = repro.Instance(speeds, loads, rtt)
        est = VivaldiEstimator(rtt, rng=0)
        est.fit(rounds=100)
        est_matrix = est.predicted_matrix()
        est_inst = repro.Instance(speeds, loads, est_matrix)

        state = repro.AllocationState.initial(est_inst)
        repro.MinEOptimizer(state, rng=0).run(max_iterations=20)
        # evaluate the found fractions on the *true* instance
        evaluated = repro.AllocationState(true_inst, state.R)
        opt = repro.solve_coordinate_descent(true_inst)
        assert evaluated.total_cost() <= opt.total_cost() * 1.25
