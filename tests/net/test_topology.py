"""Tests for the topology generators."""

import numpy as np
import pytest

from repro.net.latency import is_metric
from repro.net.topology import (
    homogeneous_latency,
    planetlab_like_latency,
    random_speeds,
)


class TestHomogeneous:
    def test_constant_offdiagonal(self):
        c = homogeneous_latency(5, 20.0)
        off = c[~np.eye(5, dtype=bool)]
        assert np.all(off == 20.0)
        assert np.all(np.diagonal(c) == 0.0)


class TestPlanetLabLike:
    def test_basic_shape_and_validity(self):
        c = planetlab_like_latency(30, rng=0)
        assert c.shape == (30, 30)
        assert np.all(np.diagonal(c) == 0)
        assert np.all(c >= 0)
        assert np.allclose(c, c.T)
        assert np.all(np.isfinite(c))

    def test_metric_after_completion(self):
        c = planetlab_like_latency(25, rng=1)
        assert is_metric(c, atol=1e-6)

    def test_heterogeneous(self):
        """Latencies span a wide range (clusters near, continents far)."""
        c = planetlab_like_latency(40, rng=2)
        off = c[~np.eye(40, dtype=bool)]
        assert off.max() / off.min() > 5.0

    def test_deterministic_in_seed(self):
        a = planetlab_like_latency(10, rng=7)
        b = planetlab_like_latency(10, rng=7)
        assert np.array_equal(a, b)

    def test_tiny_network(self):
        c = planetlab_like_latency(2, rng=0)
        assert c.shape == (2, 2)
        assert c[0, 1] > 0

    def test_single_node(self):
        c = planetlab_like_latency(1, rng=0)
        assert c.shape == (1, 1)

    def test_cluster_structure(self):
        """Same-cluster pairs are closer on average than cross-cluster."""
        rng = np.random.default_rng(3)
        c = planetlab_like_latency(60, rng=rng, clusters=4, missing_fraction=0.0)
        # nearest-neighbour latencies should be much smaller than the median
        near = np.sort(c + np.eye(60) * 1e9, axis=1)[:, 0]
        assert np.median(near) < 0.4 * np.median(c[~np.eye(60, dtype=bool)])


class TestRandomSpeeds:
    def test_range(self):
        s = random_speeds(1000, rng=0)
        assert s.min() >= 1.0
        assert s.max() <= 5.0
        assert s.mean() == pytest.approx(3.0, abs=0.15)

    def test_custom_range(self):
        s = random_speeds(100, rng=0, low=2.0, high=3.0)
        assert s.min() >= 2.0
        assert s.max() <= 3.0
