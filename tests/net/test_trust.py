"""Tests for neighbour-restricted relaying (the §II trust model)."""

import numpy as np
import pytest

import repro
from repro.net.trust import (
    is_trust_connected,
    k_nearest_trust,
    random_trust,
    restrict_latency,
    ring_trust,
)

from ..conftest import make_random_instance


class TestMasks:
    def test_restrict_sets_inf(self):
        lat = repro.homogeneous_latency(4, 5.0)
        allowed = np.eye(4, dtype=bool)
        allowed[0, 1] = True
        out = restrict_latency(lat, allowed)
        assert out[0, 1] == 5.0
        assert np.isinf(out[0, 2])
        assert out[2, 2] == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            restrict_latency(np.zeros((3, 3)), np.ones((2, 2), dtype=bool))

    def test_k_nearest_counts(self):
        rng = np.random.default_rng(0)
        lat = repro.planetlab_like_latency(10, rng=rng)
        allowed = k_nearest_trust(lat, 3)
        # self + exactly 3 peers per row
        assert np.all(allowed.sum(axis=1) == 4)
        assert np.all(np.diagonal(allowed))

    def test_k_nearest_picks_closest(self):
        lat = np.array(
            [
                [0.0, 1.0, 9.0, 9.0],
                [1.0, 0.0, 9.0, 9.0],
                [9.0, 9.0, 0.0, 1.0],
                [9.0, 9.0, 1.0, 0.0],
            ]
        )
        allowed = k_nearest_trust(lat, 1)
        assert allowed[0, 1] and allowed[1, 0]
        assert allowed[2, 3] and allowed[3, 2]
        assert not allowed[0, 2]

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            k_nearest_trust(np.zeros((3, 3)), 3)

    def test_ring(self):
        allowed = ring_trust(6, hops=1)
        assert allowed[0, 1] and allowed[0, 5]
        assert not allowed[0, 2]
        assert is_trust_connected(allowed)

    def test_ring_hops_validation(self):
        with pytest.raises(ValueError):
            ring_trust(5, hops=0)

    def test_random_trust_connectivity_probable(self):
        allowed = random_trust(30, 0.3, seed=0)
        assert is_trust_connected(allowed)

    def test_random_trust_seed_convention(self):
        """seed= derives an entropy-separated stream: deterministic per
        (m, seed), different across seeds, and rng= still works for
        callers that own their stream."""
        a = random_trust(20, 0.3, seed=7)
        b = random_trust(20, 0.3, seed=7)
        np.testing.assert_array_equal(a, b)
        c = random_trust(20, 0.3, seed=8)
        assert not np.array_equal(a, c)
        d = random_trust(20, 0.3, rng=np.random.default_rng(3))
        assert d.shape == a.shape

    def test_random_trust_rejects_ambiguous_seeding(self):
        with pytest.raises(ValueError):
            random_trust(10, 0.5, seed=0, rng=np.random.default_rng(0))
        with pytest.raises(TypeError):
            random_trust(10, 0.5, rng=0)

    def test_k_nearest_symmetric_variant(self):
        rng = np.random.default_rng(1)
        lat = repro.planetlab_like_latency(12, rng=rng)
        asym = k_nearest_trust(lat, 3)
        sym = k_nearest_trust(lat, 3, symmetric=True)
        np.testing.assert_array_equal(sym, asym | asym.T)
        assert np.array_equal(sym, sym.T)

    def test_disconnected_detected(self):
        allowed = np.eye(4, dtype=bool)
        assert not is_trust_connected(allowed)


class TestRestrictedOptimization:
    def test_solvers_respect_restriction(self, rng):
        inst = make_random_instance(8, rng)
        allowed = k_nearest_trust(inst.latency, 2)
        restricted = repro.Instance(
            inst.speeds, inst.loads, restrict_latency(inst.latency, allowed)
        )
        opt = repro.solve_coordinate_descent(restricted)
        assert np.all(opt.R[~allowed] == 0.0)
        assert np.isfinite(opt.total_cost())

    def test_restriction_costs_something(self, rng):
        """Fewer relay options can only worsen the optimum."""
        inst = make_random_instance(10, rng)
        free = repro.solve_coordinate_descent(inst).total_cost()
        allowed = k_nearest_trust(inst.latency, 2)
        restricted = repro.Instance(
            inst.speeds, inst.loads, restrict_latency(inst.latency, allowed)
        )
        capped = repro.solve_coordinate_descent(restricted).total_cost()
        assert capped >= free - 1e-6

    def test_mine_on_restricted_instance(self, rng):
        inst = make_random_instance(10, rng)
        allowed = ring_trust(10, hops=2)
        restricted = repro.Instance(
            inst.speeds, inst.loads, restrict_latency(inst.latency, allowed)
        )
        state = repro.AllocationState.initial(restricted)
        trace = repro.MinEOptimizer(state, rng=0).run(max_iterations=30)
        assert np.isfinite(state.total_cost())
        assert np.all(state.R[~allowed] <= 1e-9)
        ref = repro.solve_coordinate_descent(restricted).total_cost()
        assert state.total_cost() <= ref * 1.05

    def test_selfish_dynamics_on_restricted_instance(self, rng):
        inst = make_random_instance(8, rng)
        allowed = k_nearest_trust(inst.latency, 3)
        restricted = repro.Instance(
            inst.speeds, inst.loads, restrict_latency(inst.latency, allowed)
        )
        ne, trace = repro.best_response_dynamics(restricted, rng=0)
        assert trace.converged
        assert np.all(ne.R[~allowed] == 0.0)
