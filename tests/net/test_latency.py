"""Tests for Floyd–Warshall and latency-matrix completion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.sparse.csgraph import floyd_warshall as scipy_fw

from repro.net.latency import (
    complete_latency_matrix,
    floyd_warshall,
    is_metric,
    symmetrize,
)


class TestFloydWarshall:
    def test_simple_shortcut(self):
        d = np.array(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        out = floyd_warshall(d)
        assert out[0, 2] == pytest.approx(2.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            n = int(rng.integers(2, 12))
            d = rng.uniform(1, 100, (n, n))
            d = symmetrize(d)
            np.fill_diagonal(d, 0.0)
            mine = floyd_warshall(d)
            ref = scipy_fw(d)
            assert np.allclose(mine, ref)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            floyd_warshall(np.zeros((2, 3)))

    def test_result_is_metric(self):
        rng = np.random.default_rng(1)
        d = rng.uniform(1, 50, (8, 8))
        np.fill_diagonal(d, 0.0)
        assert is_metric(floyd_warshall(d))


class TestCompletion:
    def test_fills_missing_entries(self):
        d = np.array(
            [
                [0.0, 2.0, np.inf],
                [2.0, 0.0, 3.0],
                [np.inf, 3.0, 0.0],
            ]
        )
        full = complete_latency_matrix(d)
        assert full[0, 2] == pytest.approx(5.0)

    def test_nan_treated_as_missing(self):
        d = np.array([[0.0, 1.0], [np.nan, 0.0]])
        full = complete_latency_matrix(d)
        assert full[1, 0] == pytest.approx(1.0)

    def test_disconnected_raises(self):
        d = np.full((3, 3), np.inf)
        np.fill_diagonal(d, 0.0)
        with pytest.raises(ValueError, match="disconnected"):
            complete_latency_matrix(d)

    def test_preserves_measured_shortest(self):
        """Measured entries can only shrink (if a shorter path exists)."""
        rng = np.random.default_rng(2)
        d = rng.uniform(1, 20, (6, 6))
        d = symmetrize(d)
        np.fill_diagonal(d, 0.0)
        full = complete_latency_matrix(d)
        assert np.all(full <= d + 1e-12)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 10))
def test_completion_always_metric_property(seed, n):
    rng = np.random.default_rng(seed)
    d = rng.uniform(0.5, 100.0, (n, n))
    d = symmetrize(d)
    np.fill_diagonal(d, 0.0)
    mask = rng.uniform(size=(n, n)) < 0.3
    mask = np.triu(mask, 1)
    d[mask | mask.T] = np.inf
    np.fill_diagonal(d, 0.0)
    try:
        full = complete_latency_matrix(d)
    except ValueError:
        return  # disconnected, acceptable
    assert is_metric(full)
    assert np.all(np.diagonal(full) == 0)
    assert np.all(np.isfinite(full))
