"""Tests for the background-load RTT model (Table IV substrate)."""

import numpy as np
import pytest

from repro.net.rtt_model import BackgroundLoadExperiment, DeviationRow, RttModel


class TestRttModel:
    def test_flat_below_knee(self):
        m = RttModel(base_ms=50.0, noise_sigma=0.0)
        rng = np.random.default_rng(0)
        assert m.sample(0.0, rng)[0] == pytest.approx(50.0)
        assert m.sample(m.knee, rng)[0] == pytest.approx(50.0)

    def test_inflates_above_knee(self):
        m = RttModel(base_ms=50.0, noise_sigma=0.0)
        rng = np.random.default_rng(0)
        low = m.sample(m.knee + 0.1, rng)[0]
        high = m.sample(m.knee + 0.4, rng)[0]
        assert 50.0 < low < high

    def test_utilization_capped(self):
        m = RttModel(base_ms=10.0, noise_sigma=0.0)
        rng = np.random.default_rng(0)
        a = m.sample(m.u_max, rng)[0]
        b = m.sample(5.0, rng)[0]  # silly over-utilization
        assert a == pytest.approx(b)

    def test_noise_multiplicative(self):
        m = RttModel(base_ms=10.0, noise_sigma=0.5)
        rng = np.random.default_rng(0)
        samples = m.sample(0.0, rng, samples=2000)
        assert samples.std() > 1.0
        assert np.median(samples) == pytest.approx(10.0, rel=0.1)


class TestAchievedThroughput:
    def test_below_fair_share_passes_through(self):
        exp = BackgroundLoadExperiment(servers=10, rng=0)
        tb = 1e3
        actual = exp.achieved_throughput(tb)
        assert np.allclose(actual, tb)

    def test_collapse_above_fair_share(self):
        """Requesting far beyond the uplink *reduces* achieved throughput
        (the Table IV dip)."""
        exp = BackgroundLoadExperiment(servers=10, rng=0)
        fair = exp.uplink / exp.neighbors
        at_fair = exp.achieved_throughput(float(fair.mean()))
        way_over = exp.achieved_throughput(float(fair.mean() * 10))
        assert way_over.mean() < at_fair.mean()


class TestExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        exp = BackgroundLoadExperiment(servers=30, samples=80, rng=0)
        return exp.run()

    def test_row_per_throughput(self, rows):
        assert len(rows) == len(BackgroundLoadExperiment.DEFAULT_THROUGHPUTS)

    def test_baseline_row_is_zero(self, rows):
        assert rows[0].mu == pytest.approx(0.0, abs=0.02)

    def test_flat_up_to_200kbs(self, rows):
        """The paper's headline: constant latency below 0.2 MB/s."""
        for row in rows:
            if row.throughput_bps <= 200e3:
                assert abs(row.mu) < 0.05, row.label

    def test_inflation_at_high_load(self, rows):
        by_tb = {row.throughput_bps: row for row in rows}
        assert by_tb[2e6].mu > 0.1
        assert by_tb[2e6].sigma > by_tb[100e3].sigma

    def test_dip_at_unachievable_rate(self, rows):
        """5 MB/s is not achievable; deviation drops versus 2 MB/s."""
        by_tb = {row.throughput_bps: row for row in rows}
        assert by_tb[5e6].mu < by_tb[2e6].mu

    def test_labels(self):
        assert DeviationRow(10e3, 0, 0).label == "10 KB/s"
        assert DeviationRow(2e6, 0, 0).label == "2 MB/s"

    def test_needs_baseline(self):
        exp = BackgroundLoadExperiment(servers=10, samples=10, rng=0)
        with pytest.raises(ValueError):
            exp.run(throughputs=(10e3,))
