"""Smoke tests: the shipped examples must keep running against the public
API (guards against API drift).  Sizes are reduced via REPRO_EXAMPLE_M."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _small_examples(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_EXAMPLE_M", "8")
    monkeypatch.delenv("REPRO_SWEEP_CSV", raising=False)
    # custom_scenario.py registers a scenario; don't leak it into the
    # global registry of the rest of the test session.
    from repro.workloads.scenario import _REGISTRY

    snapshot = dict(_REGISTRY)
    yield
    _REGISTRY.clear()
    _REGISTRY.update(snapshot)


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "scenario_sweep.py",
        "custom_scenario.py",
        "solver_shootout.py",
        "live_rebalancing.py",
        "workload_tracking.py",
        "byzantine_robustness.py",
        "sharded_sweep_coordinator.py",
    ],
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it did


def test_quickstart_reaches_optimum(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "cooperative optimum" in out
    assert "DES validation" in out


def test_scenario_sweep_reports_every_cell(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "scenario_sweep.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "= 24 runs" in out  # 6 presets × 2 sizes × 2 seeds
    assert "per-scenario means" in out
