"""Tests for the from-scratch min-cost max-flow solver."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.graph import ResidualGraph
from repro.flow.mincost import min_cost_flow


class TestResidualGraph:
    def test_add_edge_and_mirror(self):
        g = ResidualGraph(3, 2)
        e = g.add_edge(0, 1, 5.0, 2.0)
        assert g.cap[e] == 5.0
        assert g.cap[e ^ 1] == 0.0
        assert g.cost[e ^ 1] == -2.0
        assert g.to[e] == 1
        assert g.to[e ^ 1] == 0

    def test_arc_budget_enforced(self):
        g = ResidualGraph(2, 1)
        g.add_edge(0, 1, 1.0, 0.0)
        with pytest.raises(IndexError):
            g.add_edge(1, 0, 1.0, 0.0)

    def test_negative_capacity_rejected(self):
        g = ResidualGraph(2, 1)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1.0, 0.0)

    def test_arcs_from_iteration(self):
        g = ResidualGraph(3, 3)
        g.add_edge(0, 1, 1.0, 0.0)
        g.add_edge(0, 2, 1.0, 0.0)
        arcs = list(g.arcs_from(0))
        assert len(arcs) == 2


class TestMinCostFlow:
    def test_single_path(self):
        g = ResidualGraph(3, 2)
        g.add_edge(0, 1, 4.0, 1.0)
        g.add_edge(1, 2, 4.0, 2.0)
        res = min_cost_flow(g, 0, 2)
        assert res.flow == pytest.approx(4.0)
        assert res.cost == pytest.approx(12.0)

    def test_prefers_cheap_path(self):
        g = ResidualGraph(4, 4)
        g.add_edge(0, 1, 10.0, 1.0)
        g.add_edge(1, 3, 10.0, 1.0)
        g.add_edge(0, 2, 10.0, 5.0)
        g.add_edge(2, 3, 10.0, 5.0)
        res = min_cost_flow(g, 0, 3, max_flow=10.0)
        assert res.cost == pytest.approx(20.0)

    def test_splits_when_capacity_binds(self):
        g = ResidualGraph(4, 4)
        g.add_edge(0, 1, 5.0, 1.0)
        g.add_edge(1, 3, 5.0, 1.0)
        g.add_edge(0, 2, 10.0, 3.0)
        g.add_edge(2, 3, 10.0, 3.0)
        res = min_cost_flow(g, 0, 3, max_flow=8.0)
        # 5 on the cheap path (cost 2), 3 on the expensive one (cost 6)
        assert res.flow == pytest.approx(8.0)
        assert res.cost == pytest.approx(5 * 2 + 3 * 6)

    def test_max_flow_limit(self):
        g = ResidualGraph(2, 1)
        g.add_edge(0, 1, 100.0, 1.0)
        res = min_cost_flow(g, 0, 1, max_flow=7.0)
        assert res.flow == pytest.approx(7.0)

    def test_disconnected_sink(self):
        g = ResidualGraph(3, 1)
        g.add_edge(0, 1, 1.0, 1.0)
        res = min_cost_flow(g, 0, 2)
        assert res.flow == 0.0

    def test_negative_costs_with_bootstrap(self):
        """Negative-cost arcs trigger the Bellman–Ford potential
        bootstrap and still give the optimal answer."""
        g = ResidualGraph(4, 4)
        g.add_edge(0, 1, 5.0, -2.0)
        g.add_edge(1, 3, 5.0, 1.0)
        g.add_edge(0, 2, 5.0, 2.0)
        g.add_edge(2, 3, 5.0, 2.0)
        res = min_cost_flow(g, 0, 3, max_flow=5.0)
        assert res.cost == pytest.approx(-5.0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_matches_networkx_on_random_dags(seed):
    """Property: min-cost flow agrees with networkx on random integer
    transportation-style instances."""
    rng = np.random.default_rng(seed)
    n_src = int(rng.integers(1, 5))
    n_dst = int(rng.integers(1, 5))
    supply = rng.integers(1, 15, n_src)
    dist = rng.dirichlet(np.ones(n_dst))
    demand = rng.multinomial(int(supply.sum()), dist)
    cost = rng.integers(0, 30, (n_src, n_dst))

    g = ResidualGraph(2 + n_src + n_dst, n_src + n_dst + n_src * n_dst)
    S, T = 0, 1
    for i in range(n_src):
        g.add_edge(S, 2 + i, float(supply[i]), 0.0)
    for j in range(n_dst):
        g.add_edge(2 + n_src + j, T, float(demand[j]), 0.0)
    for i in range(n_src):
        for j in range(n_dst):
            g.add_edge(2 + i, 2 + n_src + j, np.inf, float(cost[i, j]))
    res = min_cost_flow(g, S, T)

    G = nx.DiGraph()
    G.add_node("s", demand=-int(supply.sum()))
    G.add_node("t", demand=int(supply.sum()))
    for i in range(n_src):
        G.add_edge("s", ("u", i), capacity=int(supply[i]), weight=0)
    for j in range(n_dst):
        G.add_edge(("v", j), "t", capacity=int(demand[j]), weight=0)
    for i in range(n_src):
        for j in range(n_dst):
            G.add_edge(("u", i), ("v", j), weight=int(cost[i, j]))
    expected = nx.min_cost_flow_cost(G)
    assert res.flow == pytest.approx(float(supply.sum()))
    assert res.cost == pytest.approx(float(expected), abs=1e-6)
