"""Tests for the transportation reduction and negative-cycle removal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AllocationState, Instance
from repro.flow.transportation import (
    relay_graph_negative_cycle,
    remove_negative_cycles,
    solve_transportation,
)

from ..conftest import make_random_instance, random_state


class TestTransportation:
    def test_identity_when_single_pair(self):
        f = solve_transportation(
            np.array([5.0]), np.array([5.0]), np.array([[3.0]])
        )
        assert f[0, 0] == pytest.approx(5.0)

    def test_balances_required(self):
        with pytest.raises(ValueError, match="balance"):
            solve_transportation(np.array([5.0]), np.array([4.0]), np.ones((1, 1)))

    def test_zero_supply(self):
        f = solve_transportation(np.zeros(2), np.zeros(3), np.ones((2, 3)))
        assert np.all(f == 0)

    def test_picks_cheapest_assignment(self):
        cost = np.array([[1.0, 10.0], [10.0, 1.0]])
        f = solve_transportation(
            np.array([3.0, 4.0]), np.array([3.0, 4.0]), cost
        )
        assert f[0, 0] == pytest.approx(3.0)
        assert f[1, 1] == pytest.approx(4.0)

    def test_conservation(self):
        rng = np.random.default_rng(0)
        sup = rng.uniform(1, 10, 4)
        dem = rng.dirichlet(np.ones(5)) * sup.sum()
        cost = rng.uniform(0, 5, (4, 5))
        f = solve_transportation(sup, dem, cost)
        assert np.allclose(f.sum(axis=1), sup, atol=1e-6)
        assert np.allclose(f.sum(axis=0), dem, atol=1e-6)
        assert np.all(f >= -1e-9)

    def test_infinite_cost_blocks_route(self):
        cost = np.array([[np.inf, 1.0], [1.0, np.inf]])
        f = solve_transportation(
            np.array([2.0, 2.0]), np.array([2.0, 2.0]), cost
        )
        assert f[0, 0] == 0.0
        assert f[0, 1] == pytest.approx(2.0)


class TestNegativeCycleRemoval:
    def test_loads_preserved_and_cost_reduced(self, rng):
        for _ in range(5):
            inst = make_random_instance(7, rng)
            st = random_state(inst, rng)
            loads = st.loads.copy()
            cost = st.total_cost()
            saved = remove_negative_cycles(st)
            assert saved >= -1e-6
            assert np.allclose(st.loads, loads, atol=1e-6)
            assert st.total_cost() <= cost + 1e-6
            st.check_invariants()

    def test_self_execution_never_leaves_home(self, rng):
        """The reduction only re-wires relays: self-executed requests stay
        home, and relayed requests may *return* home (that is how 2-cycles
        dismantle), so the diagonal can only grow."""
        inst = make_random_instance(5, rng)
        st = random_state(inst, rng)
        diag = np.diagonal(st.R).copy()
        remove_negative_cycles(st)
        assert np.all(np.diagonal(st.R) >= diag - 1e-9)

    def test_noop_on_local_allocation(self, rng):
        inst = make_random_instance(5, rng)
        st = AllocationState.initial(inst)
        saved = remove_negative_cycles(st)
        assert saved == pytest.approx(0.0, abs=1e-9)

    def test_no_negative_cycle_after_removal(self, rng):
        """The whole point of the reduction: the relay graph has no
        negative cycle afterwards."""
        inst = make_random_instance(6, rng)
        st = random_state(inst, rng)
        remove_negative_cycles(st)
        assert relay_graph_negative_cycle(st) is None

    def test_crafted_negative_cycle_removed(self):
        """Two organizations pointlessly swapping requests is dismantled."""
        m = 2
        c = np.array([[0.0, 5.0], [5.0, 0.0]])
        inst = Instance(np.ones(m), np.array([10.0, 10.0]), c)
        R = np.array([[0.0, 10.0], [10.0, 0.0]])  # full swap
        st = AllocationState(inst, R)
        before = st.total_cost()
        saved = remove_negative_cycles(st)
        assert saved == pytest.approx(100.0)  # 20 requests × 5 ms
        assert st.total_cost() == pytest.approx(before - 100.0)
        assert np.allclose(st.R, np.diag([10.0, 10.0]))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), m=st.integers(2, 8))
def test_removal_idempotent_property(seed, m):
    rng = np.random.default_rng(seed)
    inst = make_random_instance(m, rng)
    st = random_state(inst, rng)
    remove_negative_cycles(st)
    saved_again = remove_negative_cycles(st)
    assert saved_again == pytest.approx(0.0, abs=1e-5)
