"""Tests for Bellman–Ford and negative-cycle detection."""

import numpy as np
import pytest

from repro.flow.bellman_ford import bellman_ford, find_negative_cycle


class TestShortestPaths:
    def test_simple_path(self):
        edges = [(0, 1, 2.0), (1, 2, 3.0), (0, 2, 10.0)]
        dist, pred = bellman_ford(3, edges, source=0)
        assert dist[2] == pytest.approx(5.0)
        assert pred[2] == 1

    def test_unreachable_is_inf(self):
        dist, _ = bellman_ford(3, [(0, 1, 1.0)], source=0)
        assert np.isinf(dist[2])

    def test_negative_edges_ok_without_cycle(self):
        edges = [(0, 1, 5.0), (1, 2, -3.0), (0, 2, 4.0)]
        dist, _ = bellman_ford(3, edges, source=0)
        assert dist[2] == pytest.approx(2.0)

    def test_negative_cycle_raises(self):
        edges = [(0, 1, 1.0), (1, 2, -3.0), (2, 1, 1.0)]
        with pytest.raises(ValueError, match="negative cycle"):
            bellman_ford(3, edges, source=0)

    def test_virtual_source(self):
        """source=None relaxes from every vertex (all dist ≤ 0)."""
        dist, _ = bellman_ford(3, [(0, 1, -2.0)], source=None)
        assert dist[1] == pytest.approx(-2.0)
        assert dist[2] == 0.0


class TestNegativeCycleDetection:
    def test_none_when_absent(self):
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]
        assert find_negative_cycle(3, edges) is None

    def test_finds_simple_cycle(self):
        edges = [(0, 1, 1.0), (1, 2, -3.0), (2, 0, 1.0)]
        cycle = find_negative_cycle(3, edges)
        assert cycle is not None
        assert sorted(cycle) == [0, 1, 2]

    def test_cycle_weight_is_negative(self):
        rng = np.random.default_rng(0)
        n = 8
        edges = []
        for _ in range(25):
            u, v = rng.integers(0, n, 2)
            if u != v:
                edges.append((int(u), int(v), float(rng.uniform(-2, 5))))
        cycle = find_negative_cycle(n, edges)
        if cycle is not None:
            # verify the reported cycle really is negative using the
            # cheapest edge between consecutive vertices
            w = {}
            for u, v, c in edges:
                w[(u, v)] = min(w.get((u, v), np.inf), c)
            total = sum(
                w[(cycle[k], cycle[(k + 1) % len(cycle)])]
                for k in range(len(cycle))
            )
            assert total < 0

    def test_disconnected_graph(self):
        assert find_negative_cycle(5, [(0, 1, 2.0)]) is None

    def test_self_loop_negative(self):
        cycle = find_negative_cycle(2, [(0, 0, -1.0)])
        assert cycle == [0]
