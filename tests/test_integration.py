"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

import repro


class TestFullPipeline:
    def test_cooperative_pipeline(self):
        """topology → instance → central solve → distributed solve →
        error certificate → DES validation, all consistent."""
        rng = np.random.default_rng(0)
        m = 10
        inst = repro.Instance(
            repro.random_speeds(m, rng=rng),
            rng.uniform(200, 800, m),
            repro.planetlab_like_latency(m, rng=rng),
        )
        opt = repro.solve_optimal(inst)
        state = repro.AllocationState.initial(inst)
        trace = repro.MinEOptimizer(state, rng=1).run(
            optimum=opt.total_cost(), rel_tol=0.001
        )
        assert trace.converged
        assert trace.iterations <= 12  # the paper's "a dozen messages"

        bound = repro.error_bound(inst, state)
        actual = float(np.abs(state.R - opt.R).sum())
        assert bound >= actual * (1 - 1e-9)

        report = repro.simulate_snapshot(inst, state, rng=2)
        assert report.analytic_gap(state.total_cost()) < 0.05

    def test_selfish_pipeline(self):
        """Nash dynamics + PoA + homogeneous theory agree."""
        inst = repro.Instance.homogeneous(10, speed=1.0, delay=2.0, loads=100.0)
        ratio, ne, opt = repro.price_of_anarchy(inst, rng=0, tol_change=1e-4)
        assert 1.0 <= ratio <= repro.poa_upper_bound(inst) + 1e-2
        assert repro.lemma3_violation(inst, ne) <= 1e-2
        assert repro.nash_gap(inst, ne) < 1e-2

    def test_cdn_pipeline(self):
        """Replication + discrete rounding: the CDN use-case of §VII."""
        rng = np.random.default_rng(3)
        m = 6
        speeds = repro.random_speeds(m, rng=rng)
        latency = repro.planetlab_like_latency(m, rng=rng)
        # Zipf-ish content popularity → task sizes
        sizes = 1.0 / np.arange(1, 41) ** 0.8
        task_sets = [repro.TaskSet(i, sizes * (1 + i)) for i in range(m)]
        opt, assignments = repro.solve_discrete(speeds, latency, task_sets)
        assert len(assignments) == m

        # replicated fractional solve obeys caps
        inst = opt.inst
        R = 2
        rep = repro.solve_replicated(inst, R)
        rho = rep.fractions()
        assert np.all(rho <= 1.0 / R + 1e-9)
        placement = repro.sample_replica_placement(rho[0], R, rng=rng)
        assert len(set(placement.tolist())) == R

    def test_gossip_driven_distributed_balancing(self):
        """The full distributed stack: gossip views + MinE + negative-cycle
        removal reach near-optimal cost."""
        rng = np.random.default_rng(4)
        m = 15
        inst = repro.Instance(
            repro.random_speeds(m, rng=rng),
            rng.exponential(100, m),
            repro.planetlab_like_latency(m, rng=rng),
        )
        ref = repro.solve_optimal(inst).total_cost()
        state = repro.AllocationState.initial(inst)
        gossip = repro.GossipNetwork(m, rng=5)
        gossip.publish_all(state.loads)
        gossip.rounds_to_convergence()
        opt = repro.MinEOptimizer(
            state, rng=6, load_view=gossip.view, cycle_removal_every=3
        )
        for _ in range(20):
            opt.sweep()
            gossip.publish_all(state.loads)
            for _ in range(5):
                gossip.round()
        assert state.total_cost() <= ref * 1.02
        state.check_invariants()

    def test_monitored_latency_pipeline(self):
        """Vivaldi-estimated latencies drive the optimizer; evaluated on
        the true network the solution is still good."""
        rng = np.random.default_rng(7)
        m = 10
        true_lat = repro.planetlab_like_latency(m, rng=rng)
        speeds = repro.random_speeds(m, rng=rng)
        loads = rng.uniform(100, 400, m)
        est = repro.VivaldiEstimator(true_lat, rng=8)
        est.fit(rounds=120)
        est_inst = repro.Instance(speeds, loads, est.predicted_matrix())
        state = repro.AllocationState.initial(est_inst)
        repro.MinEOptimizer(state, rng=9).run(max_iterations=25)
        true_inst = repro.Instance(speeds, loads, true_lat)
        achieved = repro.AllocationState(true_inst, state.R).total_cost()
        best = repro.solve_optimal(true_inst).total_cost()
        assert achieved <= best * 1.3


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        # pyproject.toml resolves its version from this attribute; keep it
        # a plain semver string.
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)
        assert tuple(map(int, parts)) >= (1, 1, 0)
