"""The adversary plane: config validation, deterministic selection,
and the f = 0 no-op guarantee.

The plane draws only from its own entropy-separated streams, so a run
with no adversaries (f = 0, or no model at all) must be bit-identical
to a run that never imported the module — asserted on the event trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.byz import ByzantineModel
from repro.livesim import LiveConfig, LiveSimulation
from repro.workloads import cached_instance, get_scenario


def _sim(cfg, seed=3, m=16, rounds=60):
    inst = cached_instance(get_scenario("paper-planetlab"), m, 0)
    sim = LiveSimulation(inst, config=cfg, seed=seed)
    rep = sim.run(rounds=rounds)
    return sim, rep


class TestModelValidation:
    def test_models_roundtrip(self):
        for name in ("stale-repeater", "load-underreporter",
                     "value-fabricator", "flapper"):
            assert ByzantineModel(model=name).model == name

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"model": "evil-twin"},
            {"model": "stale-repeater", "f": -1},
            {"model": "stale-repeater", "f": 2, "servers": (1,)},
            {"model": "load-underreporter", "underreport_factor": 1.0},
            {"model": "load-underreporter", "underreport_factor": -0.1},
            {"model": "value-fabricator", "fabricate_scale": 0.0},
            {"model": "value-fabricator", "fabricate_count": 0},
            {"model": "flapper", "flap_rounds": 0.0},
            {"model": "flapper", "flap_inner": "flapper"},
            {"model": "stale-repeater", "version_bump": 0},
            {"model": "stale-repeater", "cadence_scale": 0.0},
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            ByzantineModel(**kwargs)

    def test_explicit_servers_validated_at_attach(self):
        inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
        bad_range = LiveConfig(
            byzantine=ByzantineModel(
                model="stale-repeater", f=1, servers=(12,)
            )
        )
        with pytest.raises(ValueError, match="in \\[0, 12\\)"):
            LiveSimulation(inst, config=bad_range, seed=0)
        dup = LiveConfig(
            byzantine=ByzantineModel(
                model="stale-repeater", f=2, servers=(3, 3)
            )
        )
        with pytest.raises(ValueError, match="distinct"):
            LiveSimulation(inst, config=dup, seed=0)
        too_many = LiveConfig(
            byzantine=ByzantineModel(model="stale-repeater", f=13)
        )
        with pytest.raises(ValueError, match="f <= m"):
            LiveSimulation(inst, config=too_many, seed=0)


class TestSelectionDeterminism:
    def test_same_seed_same_servers(self):
        cfg = LiveConfig(byzantine=ByzantineModel(model="stale-repeater", f=3))
        sim_a, _ = _sim(cfg, seed=5, rounds=10)
        sim_b, _ = _sim(cfg, seed=5, rounds=10)
        assert sim_a.byz.servers == sim_b.byz.servers
        assert len(sim_a.byz.servers) == 3

    def test_selection_varies_with_seed(self):
        cfg = LiveConfig(byzantine=ByzantineModel(model="stale-repeater", f=3))
        picks = {
            _sim(cfg, seed=s, rounds=2)[0].byz.servers for s in range(5)
        }
        assert len(picks) > 1, "adversary pick ignored the run seed"

    def test_explicit_servers_respected(self):
        cfg = LiveConfig(
            byzantine=ByzantineModel(
                model="stale-repeater", f=2, servers=(1, 7)
            )
        )
        sim, _ = _sim(cfg, rounds=10)
        assert sim.byz.servers == (1, 7)


class TestFZeroIsANoOp:
    def test_f_zero_trace_identical_to_no_model(self):
        plain = LiveConfig()
        f0 = LiveConfig(byzantine=ByzantineModel(model="stale-repeater", f=0))
        sim_a, rep_a = _sim(plain, seed=11)
        sim_b, rep_b = _sim(f0, seed=11)
        assert sim_b.byz is None, "an f=0 model must not attach a plane"
        assert rep_a.trace == rep_b.trace
        assert rep_a.trace
        np.testing.assert_array_equal(sim_a.state.R, sim_b.state.R)

    def test_robust_merge_alone_converges(self):
        """The defense with nothing to defend against: robust merge on,
        zero adversaries, honest fleet still balances."""
        inst = cached_instance(get_scenario("paper-planetlab"), 16, 0)
        sim = LiveSimulation(
            inst, config=LiveConfig(merge_mode="robust"), seed=2
        )
        rep = sim.run(rounds=120)
        assert rep.costs[-1] <= rep.costs[0]
        assert rep.suspicion is not None
        assert rep.suspicion.shape == (16,)


class TestAdversariesMisbehave:
    def test_stale_repeater_counters(self):
        cfg = LiveConfig(byzantine=ByzantineModel(model="stale-repeater", f=2))
        sim, _ = _sim(cfg, rounds=40)
        assert sim.byz.stats.misreports > 0
        assert sim.byz.stats.injections > 0
        assert sim.byz.stats.forged_entries > 0

    def test_blackhole_refuses(self):
        cfg = LiveConfig(
            byzantine=ByzantineModel(
                model="load-underreporter", underreport_factor=0.0, f=2
            )
        )
        sim, _ = _sim(cfg, rounds=40)
        assert sim.byz.stats.misreports > 0
        assert sim.byz.stats.refusals > 0, (
            "no honest proposal was lured into the blackhole"
        )

    def test_flapper_alternates_phases(self):
        model = ByzantineModel(model="flapper", flap_rounds=4.0, f=1)
        sim, _ = _sim(LiveConfig(byzantine=model), rounds=40)
        plane = sim.byz
        (a,) = plane.servers
        period = model.flap_rounds * plane.agent_interval
        # Phase parity follows the phase clock: faulty first.
        env_now = plane.env.now
        assert plane._faulty_phase() == (
            (int(env_now / period) % 2) == 0
        )
        assert plane.stats.misreports > 0, "flapper never misbehaved"
