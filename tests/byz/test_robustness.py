"""The ``byzantine-*`` acceptance matrix.

Per preset: with the robust merge ON the live control plane converges
to within ``error_bound`` of the offline optimum for every
``f <= f_max``; with it OFF the same ``f_max`` adversaries measurably
break convergence (error above the bound).  All runs are deterministic
per seed — a split run equals one long run — and the per-server
suspicion scores identify the compromised servers on the presets where
the attack leaves a first-hand signature.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.byz import BYZ_PRESETS, error_vs_f, get_byz_preset, run_byz
from repro.livesim import LiveSimulation
from repro.workloads import cached_instance, cached_optimum, get_scenario

PRESET_NAMES = [p.name for p in BYZ_PRESETS]


@pytest.mark.parametrize("name", PRESET_NAMES)
def test_robust_merge_holds_up_to_f_max(name):
    p = get_byz_preset(name)
    for f in range(1, p.f_max + 1):
        r = run_byz(p, f=f, robust=True)
        assert r.within_bound, (
            f"{name}: robust merge failed at f={f} <= f_max={p.f_max}: "
            f"error {r.error:.4f} > bound {p.error_bound}"
        )
        assert len(r.adversaries) == f
        assert r.suspicion is not None


@pytest.mark.parametrize("name", PRESET_NAMES)
def test_legacy_merge_fails_at_f_max(name):
    p = get_byz_preset(name)
    r = run_byz(p, f=p.f_max, robust=False)
    assert r.error > p.error_bound, (
        f"{name}: the attack is too weak — legacy merge still converged "
        f"to {r.error:.4f} <= {p.error_bound} at f={p.f_max}"
    )
    assert r.suspicion is None, "legacy merge must not score suspicion"


@pytest.mark.parametrize(
    "name,f",
    [
        ("byzantine-stale", 1),
        ("byzantine-fabricator", 3),
        ("byzantine-flapper", 2),
        ("byzantine-underreport-delta", 3),
        ("byzantine-stale-random-trust", 1),
    ],
)
def test_suspicion_identifies_adversaries(name, f):
    """On presets whose attack leaves a first-hand signature (clamped
    self-lies, outlier claims, shunned blackholes), the top-f suspicion
    scores are exactly the compromised servers."""
    r = run_byz(name, f=f, robust=True)
    assert r.suspicion_ranks_adversaries(), (
        f"{name} f={f}: suspicion top-{f} {np.argsort(r.suspicion)[::-1][:f]}"
        f" != adversaries {r.adversaries}"
    )


class TestDeterminism:
    def test_split_run_equals_long_run(self):
        """The byz plane's streams continue across run() calls like every
        other engine stream: 2 x 120 rounds == 1 x 240 rounds."""
        p = get_byz_preset("byzantine-stale")
        inst = cached_instance(get_scenario(p.scenario), p.m, 0)
        cfg = p.config_for(2, robust=True)
        sim_long = LiveSimulation(inst, config=cfg, seed=0)
        rep_long = sim_long.run(rounds=240)
        sim_split = LiveSimulation(inst, config=cfg, seed=0)
        sim_split.run(rounds=120)
        rep_split = sim_split.run(rounds=120)
        assert rep_long.trace == rep_split.trace
        assert rep_long.trace
        np.testing.assert_array_equal(sim_long.state.R, sim_split.state.R)
        np.testing.assert_array_equal(
            sim_long.gossip.suspicion, sim_split.gossip.suspicion
        )

    def test_same_seed_same_result(self):
        a = run_byz("byzantine-fabricator", f=2, robust=True, seed=7)
        b = run_byz("byzantine-fabricator", f=2, robust=True, seed=7)
        assert a.error == b.error
        assert a.adversaries == b.adversaries
        np.testing.assert_array_equal(a.suspicion, b.suspicion)
        assert a.report.trace == b.report.trace


class TestHarness:
    def test_error_vs_f_sweeps_the_requested_cells(self):
        curve = error_vs_f("byzantine-fabricator", fs=(0, 1), robust=True)
        assert set(curve) == {0, 1}
        p = get_byz_preset("byzantine-fabricator")
        assert curve[0] <= p.error_bound, "honest baseline must converge"
        assert curve[1] <= p.error_bound

    def test_registry(self):
        from repro.byz import list_byz_presets

        names = list_byz_presets()
        assert set(names) == set(PRESET_NAMES)
        with pytest.raises(KeyError, match="unknown byz preset"):
            get_byz_preset("byzantine-nope")

    def test_family_covers_all_models_and_both_wire_formats(self):
        models = {p.model.model for p in BYZ_PRESETS}
        assert models == {
            "stale-repeater", "load-underreporter", "value-fabricator",
            "flapper",
        }
        assert {p.live.gossip_mode for p in BYZ_PRESETS} == {"full", "delta"}
        assert any(
            get_scenario(p.scenario).trust is not None for p in BYZ_PRESETS
        ), "the family must cover a trust-restricted scenario"

    def test_trust_preset_measures_against_restricted_optimum(self):
        p = get_byz_preset("byzantine-stale-random-trust")
        inst = cached_instance(get_scenario(p.scenario), p.m, 0)
        assert np.isinf(inst.latency).any(), (
            "trust preset lost its inf-latency restriction"
        )
        _, opt_cost, _, _ = cached_optimum(get_scenario(p.scenario), p.m, 0)
        r = run_byz(p, f=1, robust=True)
        assert r.optimum_cost == pytest.approx(opt_cost)
