"""Shared fixtures and instance factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AllocationState, Instance
from repro.net import homogeneous_latency, planetlab_like_latency


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_random_instance(
    m: int,
    rng: np.random.Generator,
    *,
    network: str = "planetlab",
    load_scale: float = 50.0,
    allow_zero_loads: bool = False,
) -> Instance:
    """A random instance in the paper's parameter ranges."""
    speeds = rng.uniform(1.0, 5.0, size=m)
    loads = rng.exponential(load_scale, size=m)
    if not allow_zero_loads:
        loads = np.maximum(loads, 1e-3)
    if network == "planetlab":
        latency = planetlab_like_latency(m, rng=rng)
    else:
        latency = homogeneous_latency(m, 20.0)
    return Instance(speeds, loads, latency)


def random_state(inst: Instance, rng: np.random.Generator) -> AllocationState:
    """A random feasible allocation (Dirichlet rows)."""
    rho = rng.dirichlet(np.ones(inst.m), size=inst.m)
    return AllocationState.from_fractions(inst, rho)


@pytest.fixture
def small_instance(rng) -> Instance:
    return make_random_instance(6, rng)


@pytest.fixture
def medium_instance(rng) -> Instance:
    return make_random_instance(25, rng)


@pytest.fixture
def homogeneous_instance() -> Instance:
    return Instance.homogeneous(8, speed=2.0, delay=5.0, loads=100.0)
