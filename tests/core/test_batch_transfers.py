"""Property tests for the batched multi-candidate transfer kernel.

``batch_best_transfers`` evaluates all of a server's screened candidates
in one closed-form pass; these tests pin it against the two per-pair
ground truths (``calc_best_transfer``, the vectorized closed form, and
``calc_best_transfer_reference``, the literal Algorithm 1 loop) on
randomized instances — including forbidden (infinite-latency) links and
zero-load organizations.

Columns are compared to a tight absolute tolerance rather than bitwise:
the batch kernel sums loads over the *union* support of all candidates,
and numpy's pairwise summation tree over a superset differs from the
per-pair one by O(ulp) — everything downstream (improvement, argmax,
moved mass) agrees to ~1e-9.
"""

import numpy as np
import pytest

from repro.core.distributed import (
    CandidateTransfers,
    KernelStats,
    MinEOptimizer,
    batch_best_transfers,
    best_partner_screened,
    screen_candidates,
)
from repro.core.instance import Instance
from repro.core.state import AllocationState
from repro.core.transfer import calc_best_transfer, calc_best_transfer_reference

from ..conftest import make_random_instance, random_state

#: Column entries are O(load_scale); 1e-9 absolute is ~1e6 ulps of
#: headroom over the observed O(1e-16) summation-tree dust.
COL_ATOL = 1e-9


def _random_inf_instance(m: int, rng: np.random.Generator) -> Instance:
    """A random instance where ~15 % of links are forbidden."""
    lat = rng.uniform(0.5, 30.0, size=(m, m))
    lat = (lat + lat.T) / 2
    mask = rng.random((m, m)) < 0.15
    mask |= mask.T
    lat[mask] = np.inf
    np.fill_diagonal(lat, 0.0)
    speeds = rng.uniform(1.0, 5.0, size=m)
    loads = rng.exponential(40.0, size=m)
    return Instance(speeds, loads, lat)


def _feasible_state(inst: Instance, rng: np.random.Generator) -> AllocationState:
    """A random allocation that never routes across forbidden links."""
    m = inst.m
    R = np.zeros((m, m))
    for k in range(m):
        finite = np.flatnonzero(np.isfinite(inst.latency[k]))
        R[k, finite] = rng.dirichlet(np.ones(finite.size)) * inst.loads[k]
    return AllocationState(inst, R, validate=False)


def _assert_candidate_parity(inst, R, i, cand, bt: CandidateTransfers):
    """Every candidate's (impr, columns, moved) matches both per-pair
    ground truths; the argmax partner matches whenever it is decisive."""
    best_ref = (-1, -np.inf)
    for pos, j in enumerate(cand):
        ex = calc_best_transfer(inst, R, int(i), int(j))
        ref = calc_best_transfer_reference(inst, R, int(i), int(j))
        assert bt.impr[pos] == pytest.approx(ex.improvement, rel=1e-9, abs=1e-9)
        assert bt.impr[pos] == pytest.approx(ref.improvement, rel=1e-9, abs=1e-6)
        bex = bt.exchange(pos)
        np.testing.assert_allclose(bex.col_i, ex.col_i, atol=COL_ATOL)
        np.testing.assert_allclose(bex.col_j, ex.col_j, atol=COL_ATOL)
        np.testing.assert_allclose(bex.col_i, ref.col_i, atol=1e-6)
        np.testing.assert_allclose(bex.col_j, ref.col_j, atol=1e-6)
        assert bex.moved == pytest.approx(ex.moved, rel=1e-9, abs=COL_ATOL)
        # Totals are conserved: pooled mass and per-org ownership.
        np.testing.assert_allclose(
            bex.col_i + bex.col_j, R[:, i] + R[:, j], atol=COL_ATOL
        )
        if ex.improvement > best_ref[1]:
            best_ref = (int(j), ex.improvement)
    pos, j, impr = bt.best()
    assert impr == pytest.approx(best_ref[1], rel=1e-9, abs=1e-9)
    assert cand[pos] == j
    # The argmax candidate must agree whenever the top two are separated
    # by more than the tolerance (exact ties may break either way).
    if cand.size > 1:
        top2 = np.sort(bt.impr)[-2:]
        if top2[1] - top2[0] > 1e-7:
            assert j == best_ref[0]


class TestBatchAgainstPerPair:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("m", [3, 7, 12])
    def test_all_candidates_match(self, seed, m):
        rng = np.random.default_rng(seed)
        inst = make_random_instance(m, rng)
        state = random_state(inst, rng)
        i = int(rng.integers(m))
        cand = np.array([j for j in range(m) if j != i], dtype=np.intp)
        bt = batch_best_transfers(inst, state.R, i, cand)
        _assert_candidate_parity(inst, state.R, i, cand, bt)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_inf_latency_links(self, seed):
        rng = np.random.default_rng(seed)
        inst = _random_inf_instance(10, rng)
        assert inst.has_inf_latency
        state = _feasible_state(inst, rng)
        i = int(rng.integers(inst.m))
        cand = np.array([j for j in range(inst.m) if j != i], dtype=np.intp)
        bt = batch_best_transfers(inst, state.R, i, cand)
        _assert_candidate_parity(inst, state.R, i, cand, bt)

    @pytest.mark.parametrize("seed", [8, 9])
    def test_zero_load_owners(self, seed):
        rng = np.random.default_rng(seed)
        inst = make_random_instance(9, rng, allow_zero_loads=True)
        loads = inst.loads.copy()
        loads[:: 3] = 0.0  # a third of the orgs own nothing
        inst = Instance(inst.speeds, loads, inst.latency)
        state = random_state(inst, rng)
        i = int(rng.integers(inst.m))
        cand = np.array([j for j in range(inst.m) if j != i], dtype=np.intp)
        bt = batch_best_transfers(inst, state.R, i, cand)
        _assert_candidate_parity(inst, state.R, i, cand, bt)

    def test_subset_of_candidates(self):
        rng = np.random.default_rng(11)
        inst = make_random_instance(14, rng)
        state = random_state(inst, rng)
        cand = np.array([1, 4, 9, 12], dtype=np.intp)
        bt = batch_best_transfers(inst, state.R, 0, cand)
        _assert_candidate_parity(inst, state.R, 0, cand, bt)

    def test_cached_and_support_paths_agree(self):
        """The static-cache slicing path (small fleets) and the
        union-support gather path (fleet scale) give identical answers."""
        rng = np.random.default_rng(12)
        inst = make_random_instance(10, rng)
        state = random_state(inst, rng)
        owners = np.flatnonzero(inst.loads > 0)
        cand = np.array([j for j in range(inst.m) if j != 2], dtype=np.intp)
        plain = batch_best_transfers(inst, state.R, 2, cand)
        order_cache, static_cache = {}, {}
        # Warm the caches exactly the way MinEOptimizer's exact path does.
        from repro.core.distributed import batch_exchange_stats

        rt = np.ascontiguousarray(state.R.T)
        ct = np.ascontiguousarray(inst.latency.T)
        batch_exchange_stats(
            inst, state.R, 2, owners,
            order_cache=order_cache, rt_full=rt, ct_full=ct,
            static_cache=static_cache,
        )
        assert 2 in static_cache
        cached = batch_best_transfers(
            inst, state.R, 2, cand, owners=owners,
            order_cache=order_cache, rt_full=rt, ct_full=ct,
            static_cache=static_cache,
        )
        np.testing.assert_allclose(cached.impr, plain.impr, atol=1e-9)
        p1, j1, _ = plain.best()
        p2, j2, _ = cached.best()
        assert j1 == j2
        e1, e2 = plain.exchange(p1), cached.exchange(p2)
        np.testing.assert_allclose(e1.col_i, e2.col_i, atol=COL_ATOL)
        np.testing.assert_allclose(e1.col_j, e2.col_j, atol=COL_ATOL)


class TestCandidateTransfers:
    def test_empty_candidates(self):
        rng = np.random.default_rng(0)
        inst = make_random_instance(5, rng)
        state = random_state(inst, rng)
        bt = batch_best_transfers(
            inst, state.R, 0, np.array([], dtype=np.intp)
        )
        assert bt.best() == (-1, -1, -np.inf)

    def test_self_candidate_is_minus_inf(self):
        rng = np.random.default_rng(1)
        inst = make_random_instance(6, rng)
        state = random_state(inst, rng)
        cand = np.arange(6, dtype=np.intp)
        bt = batch_best_transfers(inst, state.R, 3, cand)
        assert bt.impr[3] == -np.inf
        _, j, _ = bt.best()
        assert j != 3

    def test_kernel_stats_count_one_dispatch(self):
        rng = np.random.default_rng(2)
        inst = make_random_instance(8, rng)
        state = random_state(inst, rng)
        stats = KernelStats()
        cand = np.array([1, 2, 5], dtype=np.intp)
        batch_best_transfers(inst, state.R, 0, cand, stats=stats)
        batch_best_transfers(inst, state.R, 4, cand, stats=stats)
        assert stats.kernel_calls == 2
        assert stats.kernel_candidates == 6


class TestScreenedConsumers:
    def test_best_partner_screened_is_screened_argmax(self):
        """The screened choice is the true argmax over its candidates."""
        rng = np.random.default_rng(3)
        inst = make_random_instance(20, rng)
        state = random_state(inst, rng)
        loads = state.loads
        screen_cache: dict[int, np.ndarray] = {}
        for i in (0, 7, 13):
            cand = screen_candidates(
                inst, loads, i, screen_width=6, screen_cache=screen_cache
            )
            assert i not in cand
            j, impr = best_partner_screened(
                inst, state.R, i, loads, screen_width=6,
                screen_cache=screen_cache,
            )
            best = max(
                (calc_best_transfer(inst, state.R, i, int(k)).improvement, int(k))
                for k in cand
            )
            assert impr == pytest.approx(best[0], rel=1e-9, abs=1e-9)
        assert set(screen_cache) == {0, 7, 13}

    def test_screened_optimizer_applies_batch_columns(self):
        """A forced-screened optimizer still monotonically converges, its
        state stays consistent, and it dispatches one kernel call per
        screened evaluation."""
        rng = np.random.default_rng(4)
        inst = make_random_instance(15, rng)
        state = AllocationState.initial(inst)
        opt = MinEOptimizer(state, rng=0, strategy="screened", screen_width=5)
        prev = state.total_cost()
        for _ in range(6):
            stats = opt.sweep()
            assert stats.cost_after <= prev + 1e-9
            prev = stats.cost_after
        state.check_invariants()
        # Loads kept incrementally must match a fresh recompute.
        np.testing.assert_allclose(state.loads, state.R.sum(axis=0), atol=1e-8)
        ks = opt.kernel_stats
        assert ks.kernel_calls > 0
        # Screened evaluations batch several candidates per dispatch.
        assert ks.kernel_candidates > ks.kernel_calls

    def test_screened_matches_exact_on_easy_instance(self):
        """With screen_width >= m-1 screening keeps every candidate, so
        the screened sweep must pick the same partners as exact."""
        rng = np.random.default_rng(5)
        inst = make_random_instance(8, rng)
        s1 = AllocationState.initial(inst)
        s2 = AllocationState.initial(inst)
        exact = MinEOptimizer(s1, rng=0, strategy="exact")
        screened = MinEOptimizer(s2, rng=0, strategy="screened", screen_width=8)
        for _ in range(4):
            exact.sweep()
            screened.sweep()
        assert s2.total_cost() == pytest.approx(s1.total_cost(), rel=1e-6)
