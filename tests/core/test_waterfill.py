"""Unit and property tests for the water-filling kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.waterfill import waterfill, waterfill_value


def brute_force_check(s, a, total, r, upper=None, tol=1e-6):
    """Verify KKT conditions of a candidate solution: there is a level λ
    with r_j = clip(s_j (λ − a_j), 0, u_j) and Σ r_j = total."""
    assert np.all(r >= -tol)
    assert r.sum() == pytest.approx(total, rel=1e-9, abs=1e-6)
    # marginals of active coordinates must be equal (to λ) and no inactive
    # coordinate may have a smaller marginal.
    marg = r / s + a
    interior = r > tol
    if upper is not None:
        interior &= r < upper - tol
    if np.any(interior):
        lam = marg[interior]
        assert lam.max() - lam.min() < 1e-5
        level = float(lam.mean())
        inactive = r <= tol
        assert np.all(a[inactive] >= level - 1e-5)
        if upper is not None:
            saturated = r >= upper - tol
            assert np.all(marg[saturated] <= level + 1e-5)


class TestUnbounded:
    def test_single_destination(self):
        r = waterfill(np.array([2.0]), np.array([1.0]), 5.0)
        assert r[0] == pytest.approx(5.0)

    def test_zero_total(self):
        r = waterfill(np.ones(4), np.zeros(4), 0.0)
        assert np.all(r == 0.0)

    def test_prefers_cheap_destination(self):
        # tiny total goes entirely to the smallest offset
        r = waterfill(np.ones(3), np.array([0.0, 10.0, 20.0]), 1.0)
        assert r[0] == pytest.approx(1.0)
        assert r[1] == r[2] == 0.0

    def test_equal_offsets_split_by_speed(self):
        s = np.array([1.0, 3.0])
        r = waterfill(s, np.zeros(2), 8.0)
        # equal marginals r_j/s_j => proportional to speed
        assert r[0] == pytest.approx(2.0)
        assert r[1] == pytest.approx(6.0)

    def test_infinite_offset_excluded(self):
        a = np.array([0.0, np.inf, 1.0])
        r = waterfill(np.ones(3), a, 10.0)
        assert r[1] == 0.0
        assert r.sum() == pytest.approx(10.0)

    def test_all_infinite_raises(self):
        with pytest.raises(ValueError, match="forbidden"):
            waterfill(np.ones(2), np.full(2, np.inf), 1.0)

    def test_negative_total_raises(self):
        with pytest.raises(ValueError):
            waterfill(np.ones(2), np.zeros(2), -1.0)

    def test_matches_scipy_on_random_instance(self):
        from scipy.optimize import LinearConstraint, minimize

        rng = np.random.default_rng(0)
        m = 6
        s = rng.uniform(0.5, 5.0, m)
        a = rng.uniform(0.0, 10.0, m)
        total = 20.0
        r = waterfill(s, a, total)
        res = minimize(
            lambda x: (x**2 / (2 * s) + a * x).sum(),
            np.full(m, total / m),
            jac=lambda x: x / s + a,
            bounds=[(0, None)] * m,
            constraints=[LinearConstraint(np.ones((1, m)), total, total)],
            method="SLSQP",
        )
        assert waterfill_value(s, a, r) <= res.fun + 1e-6
        assert np.allclose(r, res.x, atol=1e-4)


class TestBounded:
    def test_caps_respected(self):
        u = np.array([1.0, 2.0, 3.0])
        r = waterfill(np.ones(3), np.zeros(3), 5.0, upper=u)
        assert np.all(r <= u + 1e-9)
        assert r.sum() == pytest.approx(5.0)

    def test_exactly_full(self):
        u = np.array([1.0, 2.0])
        r = waterfill(np.ones(2), np.array([0.0, 5.0]), 3.0, upper=u)
        assert np.allclose(r, u)

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            waterfill(np.ones(2), np.zeros(2), 5.0, upper=np.array([1.0, 2.0]))

    def test_cheap_destination_saturates_first(self):
        u = np.array([1.0, 10.0])
        r = waterfill(np.ones(2), np.array([0.0, 3.0]), 2.0, upper=u)
        assert r[0] == pytest.approx(1.0)
        assert r[1] == pytest.approx(1.0)

    def test_infinite_upper_equals_unbounded(self):
        rng = np.random.default_rng(3)
        s = rng.uniform(1, 5, 5)
        a = rng.uniform(0, 5, 5)
        r1 = waterfill(s, a, 12.0)
        r2 = waterfill(s, a, 12.0, upper=np.full(5, np.inf))
        assert np.allclose(r1, r2, atol=1e-9)


@settings(max_examples=200, deadline=None)
@given(
    data=st.data(),
    m=st.integers(min_value=1, max_value=12),
)
def test_waterfill_kkt_property(data, m):
    """Property: the solution always satisfies the KKT system."""
    s = np.array(
        data.draw(
            st.lists(
                st.floats(0.1, 10.0), min_size=m, max_size=m
            )
        )
    )
    a = np.array(
        data.draw(
            st.lists(
                st.floats(0.0, 100.0), min_size=m, max_size=m
            )
        )
    )
    total = data.draw(st.floats(0.0, 1000.0))
    r = waterfill(s, a, total)
    brute_force_check(s, a, total, r)


@settings(max_examples=150, deadline=None)
@given(data=st.data(), m=st.integers(min_value=1, max_value=10))
def test_bounded_waterfill_kkt_property(data, m):
    s = np.array(data.draw(st.lists(st.floats(0.1, 10.0), min_size=m, max_size=m)))
    a = np.array(data.draw(st.lists(st.floats(0.0, 50.0), min_size=m, max_size=m)))
    u = np.array(data.draw(st.lists(st.floats(0.1, 20.0), min_size=m, max_size=m)))
    frac = data.draw(st.floats(0.0, 1.0))
    total = float(u.sum() * frac)
    r = waterfill(s, a, total, upper=u)
    assert np.all(r <= u + 1e-6)
    brute_force_check(s, a, total, r, upper=u)


@settings(max_examples=100, deadline=None)
@given(data=st.data(), m=st.integers(min_value=2, max_value=8))
def test_waterfill_is_optimal_vs_random_feasible(data, m):
    """Property: no random feasible point beats the water-fill."""
    rng_seed = data.draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    s = rng.uniform(0.2, 5.0, m)
    a = rng.uniform(0.0, 20.0, m)
    total = float(rng.uniform(0.1, 100.0))
    r = waterfill(s, a, total)
    best = waterfill_value(s, a, r)
    for _ in range(10):
        x = rng.dirichlet(np.ones(m)) * total
        assert best <= waterfill_value(s, a, x) + 1e-6 * max(1.0, abs(best))
