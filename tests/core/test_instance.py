"""Unit tests for :mod:`repro.core.instance`."""

import numpy as np
import pytest

from repro import Instance


def _valid_args(m=3):
    s = np.ones(m)
    n = np.full(m, 10.0)
    c = np.full((m, m), 2.0)
    np.fill_diagonal(c, 0.0)
    return s, n, c


class TestValidation:
    def test_accepts_valid_instance(self):
        inst = Instance(*_valid_args())
        assert inst.m == 3
        assert inst.total_load == 30.0
        assert inst.average_load == 10.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one server"):
            Instance(np.array([]), np.array([]), np.zeros((0, 0)))

    def test_rejects_nonpositive_speed(self):
        s, n, c = _valid_args()
        s[1] = 0.0
        with pytest.raises(ValueError, match="speeds"):
            Instance(s, n, c)

    def test_rejects_negative_load(self):
        s, n, c = _valid_args()
        n[0] = -1.0
        with pytest.raises(ValueError, match="loads"):
            Instance(s, n, c)

    def test_rejects_negative_latency(self):
        s, n, c = _valid_args()
        c[0, 1] = -0.5
        with pytest.raises(ValueError, match="latencies"):
            Instance(s, n, c)

    def test_rejects_nonzero_diagonal(self):
        s, n, c = _valid_args()
        c[1, 1] = 3.0
        with pytest.raises(ValueError, match="diagonal"):
            Instance(s, n, c)

    def test_rejects_shape_mismatch(self):
        s, n, c = _valid_args()
        with pytest.raises(ValueError, match="loads"):
            Instance(s, n[:-1], c)
        with pytest.raises(ValueError, match="latency"):
            Instance(s, n, c[:-1])

    def test_allows_infinite_latency(self):
        s, n, c = _valid_args()
        c[0, 1] = np.inf  # "only relay to a subset of neighbours"
        inst = Instance(s, n, c)
        assert np.isinf(inst.latency[0, 1])

    def test_arrays_are_readonly(self):
        inst = Instance(*_valid_args())
        with pytest.raises(ValueError):
            inst.speeds[0] = 5.0


class TestProperties:
    def test_homogeneous_detection(self):
        inst = Instance.homogeneous(5, speed=2.0, delay=7.0, loads=10.0)
        assert inst.is_homogeneous()

    def test_heterogeneous_speeds_detected(self):
        s, n, c = _valid_args()
        s = np.array([1.0, 2.0, 3.0])
        assert not Instance(s, n, c).is_homogeneous()

    def test_heterogeneous_latency_detected(self):
        s, n, c = _valid_args()
        c[0, 1] = 5.0
        c[1, 0] = 5.0
        assert not Instance(s, n, c).is_homogeneous()

    def test_single_server_homogeneous(self):
        inst = Instance(np.array([1.0]), np.array([5.0]), np.zeros((1, 1)))
        assert inst.is_homogeneous()

    def test_equality_and_hash(self):
        a = Instance(*_valid_args())
        b = Instance(*_valid_args())
        assert a == b
        assert hash(a) == hash(b)
        c = a.with_loads(np.full(3, 11.0))
        assert a != c

    def test_with_speeds(self):
        inst = Instance(*_valid_args())
        inst2 = inst.with_speeds(np.array([2.0, 2.0, 2.0]))
        assert inst2.speeds[0] == 2.0
        assert np.array_equal(inst2.loads, inst.loads)


class TestBuilders:
    def test_homogeneous_builder_scalar_loads(self):
        inst = Instance.homogeneous(4, delay=20.0, loads=3.0)
        assert np.all(inst.loads == 3.0)
        assert inst.latency[0, 1] == 20.0
        assert inst.latency[2, 2] == 0.0

    def test_homogeneous_builder_vector_loads(self):
        inst = Instance.homogeneous(3, loads=np.array([1.0, 2.0, 3.0]))
        assert inst.loads[2] == 3.0

    def test_homogeneous_builder_default_zero_loads(self):
        inst = Instance.homogeneous(3)
        assert inst.total_load == 0.0
