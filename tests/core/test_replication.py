"""Tests for the Section VII replication extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qp import solve_coordinate_descent
from repro.core.replication import (
    replication_feasible,
    sample_replica_placement,
    solve_replicated,
)

from ..conftest import make_random_instance


class TestSolveReplicated:
    def test_caps_hold(self, rng):
        inst = make_random_instance(8, rng)
        for R in (2, 3, 8):
            st = solve_replicated(inst, R)
            rho = st.fractions()
            assert np.all(rho <= 1.0 / R + 1e-9)
            st.check_invariants()

    def test_r1_equals_unconstrained_when_slack(self, rng):
        """R=1 caps fractions at 1, i.e. no constraint at all."""
        inst = make_random_instance(6, rng)
        capped = solve_replicated(inst, 1).total_cost()
        free = solve_coordinate_descent(inst).total_cost()
        assert capped == pytest.approx(free, rel=1e-6)

    def test_cost_increases_with_replication(self, rng):
        """Tighter caps can only worsen the optimum."""
        inst = make_random_instance(6, rng)
        costs = [solve_replicated(inst, R).total_cost() for R in (1, 2, 3, 6)]
        for a, b in zip(costs, costs[1:]):
            assert b >= a - 1e-6 * max(1.0, a)

    def test_infeasible_factor_rejected(self, rng):
        inst = make_random_instance(4, rng)
        assert not replication_feasible(inst, 5)
        with pytest.raises(ValueError, match="infeasible"):
            solve_replicated(inst, 5)
        with pytest.raises(ValueError):
            solve_replicated(inst, 0)

    def test_full_replication_forces_uniform(self, rng):
        """R = m forces ρ_ij = 1/m exactly."""
        inst = make_random_instance(5, rng)
        st = solve_replicated(inst, 5)
        rho = st.fractions()
        owners = inst.loads > 0
        assert np.allclose(rho[owners], 1.0 / 5, atol=1e-9)


class TestPlacementSampling:
    def test_returns_distinct_servers(self, rng):
        m, R = 10, 3
        rho = rng.dirichlet(np.ones(m))
        # Project onto the capped simplex: clip at 1/R and hand the excess
        # to uncapped entries until the cap holds everywhere (feasible
        # since m/R > 1).  A plain renormalization would push clipped
        # entries back above the cap.
        for _ in range(m):
            excess = float(np.maximum(rho - 1.0 / R, 0.0).sum())
            rho = np.minimum(rho, 1.0 / R)
            if excess <= 1e-15:
                break
            uncapped = rho < 1.0 / R - 1e-12
            rho[uncapped] += excess / uncapped.sum()
        placement = sample_replica_placement(rho, R, rng=rng)
        assert placement.shape == (R,)
        assert np.unique(placement).shape[0] == R

    def test_marginals_match_probabilities(self):
        """Empirical inclusion frequencies converge to R·ρ_ij."""
        rng = np.random.default_rng(0)
        m, R = 6, 2
        rho = np.array([0.30, 0.25, 0.20, 0.15, 0.07, 0.03])
        trials = 4000
        counts = np.zeros(m)
        for _ in range(trials):
            for j in sample_replica_placement(rho, R, rng=rng):
                counts[j] += 1
        freq = counts / trials
        assert np.allclose(freq, R * rho, atol=0.03)

    def test_rejects_cap_violation(self):
        rho = np.array([0.9, 0.1])
        with pytest.raises(ValueError, match="exceed"):
            sample_replica_placement(rho, 2)

    def test_rejects_bad_sum(self):
        rho = np.array([0.2, 0.2])  # sums to 0.4, R*rho sums to 0.8 != 2
        with pytest.raises(ValueError, match="expected"):
            sample_replica_placement(rho, 2)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), m=st.integers(3, 10))
def test_placement_always_distinct_property(seed, m):
    rng = np.random.default_rng(seed)
    R = int(rng.integers(1, m))
    raw = rng.dirichlet(np.ones(m))
    # project onto the capped simplex via the replication water-fill trick
    from repro.core.waterfill import waterfill

    rho = waterfill(np.ones(m), -raw, 1.0, upper=np.full(m, 1.0 / R))
    placement = sample_replica_placement(rho, R, rng=rng)
    assert np.unique(placement).shape[0] == R
    assert np.all((0 <= placement) & (placement < m))
