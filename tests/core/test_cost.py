"""Tests for the cost functions and the Section III QP construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AllocationState, Instance
from repro.core.cost import (
    build_qp,
    cost_gradient,
    per_org_cost,
    qp_objective,
    selfish_marginal,
    server_loads,
    total_cost,
)

from ..conftest import make_random_instance, random_state


class TestTotalCost:
    def test_local_execution_only(self):
        """With everything run locally there is no communication cost."""
        inst = Instance.homogeneous(3, speed=2.0, delay=20.0, loads=10.0)
        st_ = AllocationState.initial(inst)
        # ΣCi = Σ l²/2s = 3 * 100/4
        assert st_.total_cost() == pytest.approx(75.0)

    def test_communication_term(self):
        inst = Instance.homogeneous(2, speed=1.0, delay=5.0, loads=4.0)
        R = np.array([[0.0, 4.0], [0.0, 4.0]])  # all on server 1
        st_ = AllocationState(inst, R)
        # congestion 8²/2 = 32, communication 4*5 = 20
        assert st_.total_cost() == pytest.approx(52.0)

    def test_per_org_sums_to_total(self, rng):
        inst = make_random_instance(7, rng)
        st_ = random_state(inst, rng)
        assert per_org_cost(inst, st_.R).sum() == pytest.approx(
            total_cost(inst, st_.R), rel=1e-12
        )

    def test_eq1_direct_evaluation(self, rng):
        """Ci matches a literal transcription of eq. (1)."""
        inst = make_random_instance(5, rng)
        st_ = random_state(inst, rng)
        l = server_loads(st_.R)
        expected = np.zeros(inst.m)
        for i in range(inst.m):
            for j in range(inst.m):
                expected[i] += st_.R[i, j] * (
                    l[j] / (2 * inst.speeds[j]) + inst.latency[i, j]
                )
        assert np.allclose(per_org_cost(inst, st_.R), expected)


class TestGradient:
    def test_gradient_matches_finite_differences(self, rng):
        inst = make_random_instance(4, rng)
        st_ = random_state(inst, rng)
        grad = cost_gradient(inst, st_.R)
        eps = 1e-5
        for i in range(inst.m):
            for j in range(inst.m):
                Rp = st_.R.copy()
                Rp[i, j] += eps
                Rm = st_.R.copy()
                Rm[i, j] -= eps
                fd = (total_cost(inst, Rp) - total_cost(inst, Rm)) / (2 * eps)
                assert grad[i, j] == pytest.approx(fd, rel=1e-4, abs=1e-4)

    def test_selfish_marginal_matches_finite_differences(self, rng):
        inst = make_random_instance(4, rng)
        st_ = random_state(inst, rng)
        i = 2
        marg = selfish_marginal(inst, st_.R, i)
        eps = 1e-5
        for j in range(inst.m):
            Rp = st_.R.copy()
            Rp[i, j] += eps
            Rm = st_.R.copy()
            Rm[i, j] -= eps
            fd = (
                per_org_cost(inst, Rp)[i] - per_org_cost(inst, Rm)[i]
            ) / (2 * eps)
            assert marg[j] == pytest.approx(fd, rel=1e-4, abs=1e-4)


class TestQpForm:
    def test_q_matrix_structure_figure1(self):
        """Q has the block-upper-triangular structure of Figure 1: only
        entries sharing the destination column are non-zero, diagonal
        n_i²/2s_j, above-diagonal n_i n_k/s_j."""
        inst = Instance(
            np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.array([[0.0, 1.0], [1.0, 0.0]])
        )
        Q, b, A = build_qp(inst)
        m = 2
        for i in range(m):
            for j in range(m):
                for k in range(m):
                    for l in range(m):
                        q = Q[i * m + j, k * m + l]
                        if j == l and i < k:
                            assert q == pytest.approx(
                                inst.loads[i] * inst.loads[k] / inst.speeds[j]
                            )
                        elif j == l and i == k:
                            assert q == pytest.approx(
                                inst.loads[i] ** 2 / (2 * inst.speeds[j])
                            )
                        else:
                            assert q == 0.0
        # b_{(i,j)} = c_ij n_i
        assert b[0 * m + 1] == pytest.approx(1.0 * 3.0)
        assert b[1 * m + 0] == pytest.approx(1.0 * 4.0)

    def test_constraint_matrix_eq6(self):
        inst = Instance.homogeneous(3, loads=1.0)
        _, _, A = build_qp(inst)
        assert A.shape == (3, 9)
        rho = np.full(9, 1.0 / 3.0)
        assert np.allclose(A @ rho, 1.0)

    def test_qp_objective_equals_total_cost(self, rng):
        """The paper's ρᵀQρ + bᵀρ equals ΣCi for random fractions."""
        for _ in range(10):
            inst = make_random_instance(5, rng)
            st_ = random_state(inst, rng)
            Q, b, _ = build_qp(inst)
            rho = st_.fractions().reshape(-1)
            assert qp_objective(Q, b, rho) == pytest.approx(
                st_.total_cost(), rel=1e-9
            )

    def test_q_positive_definite(self, rng):
        """Eigenvalues are the diagonal n_i²/2s_j, all positive (paper's
        positive-definiteness argument)."""
        inst = make_random_instance(4, rng)
        Q, _, _ = build_qp(inst)
        diag = np.diagonal(Q)
        assert np.all(diag > 0)
        # Q is upper triangular up to permutation: its eigenvalues are the
        # diagonal entries, and the symmetrized form is PSD on the feasible
        # cone; verify convexity via the symmetric part being PSD on
        # random directions that keep row sums zero.
        H = Q + Q.T
        rng_l = np.random.default_rng(0)
        for _ in range(20):
            d = rng_l.normal(size=16).reshape(4, 4)
            d -= d.mean(axis=1, keepdims=True)  # feasible directions
            v = d.reshape(-1)
            assert v @ H @ v >= -1e-9


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), m=st.integers(2, 7))
def test_cost_nonnegative_property(seed, m):
    rng = np.random.default_rng(seed)
    inst = make_random_instance(m, rng)
    st_ = random_state(inst, rng)
    assert st_.total_cost() >= 0
    assert np.all(per_org_cost(inst, st_.R) >= 0)
