"""Tests for the Section V-A theory: Theorem 1 and Lemma 3."""

import numpy as np
import pytest

from repro import Instance
from repro.core.game import best_response_dynamics, nash_gap, price_of_anarchy
from repro.core.theory import (
    homogeneous_nash_construction,
    lemma3_bound,
    lemma3_violation,
    poa_lower_bound,
    poa_upper_bound,
)


def homogeneous(m=10, speed=1.0, delay=2.0, lav=100.0) -> Instance:
    return Instance.homogeneous(m, speed=speed, delay=delay, loads=lav)


class TestBounds:
    def test_upper_bound_formula(self):
        inst = homogeneous(speed=2.0, delay=3.0, lav=60.0)
        x = 3.0 * 2.0 / 60.0
        assert poa_upper_bound(inst) == pytest.approx(1 + 2 * x + x * x)

    def test_lower_bound_formula(self):
        inst = homogeneous(speed=1.0, delay=2.0, lav=100.0)
        x = 2.0 / 100.0
        assert poa_lower_bound(inst) == pytest.approx(1 + 2 * x - 4 * x * x)

    def test_lower_never_exceeds_upper(self):
        for lav in (10.0, 50.0, 200.0, 1000.0):
            inst = homogeneous(lav=lav)
            assert poa_lower_bound(inst) <= poa_upper_bound(inst)

    def test_bounds_shrink_with_load(self):
        """PoA → 1 as servers get loaded (the paper's main message)."""
        gaps = [
            poa_upper_bound(homogeneous(lav=lav)) - 1.0
            for lav in (10.0, 100.0, 1000.0)
        ]
        assert gaps[0] > gaps[1] > gaps[2]
        assert gaps[2] < 0.01

    def test_rejects_heterogeneous(self):
        inst = Instance(
            np.array([1.0, 2.0]),
            np.array([5.0, 5.0]),
            np.array([[0.0, 1.0], [1.0, 0.0]]),
        )
        with pytest.raises(ValueError, match="homogeneous"):
            poa_upper_bound(inst)

    def test_zero_load_gives_one(self):
        inst = Instance.homogeneous(4, delay=3.0, loads=0.0)
        assert poa_upper_bound(inst) == 1.0
        assert poa_lower_bound(inst) == 1.0

    def test_empirical_poa_within_theorem1(self):
        """Measured price of anarchy respects the Theorem 1 window (up to
        the O((cs/lav)²) slack and the best-response approximation)."""
        for lav in (50.0, 200.0):
            inst = homogeneous(m=8, delay=2.0, lav=lav)
            ratio, _, _ = price_of_anarchy(inst, rng=0, tol_change=1e-4)
            assert ratio <= poa_upper_bound(inst) + 1e-3


class TestLemma3:
    def test_bound_value(self):
        inst = homogeneous(speed=3.0, delay=2.0)
        assert lemma3_bound(inst) == pytest.approx(6.0)

    def test_nash_equilibrium_satisfies_lemma3(self):
        """At an (approximate) NE loads differ by at most c·s."""
        rng = np.random.default_rng(0)
        loads = rng.uniform(0, 200, 10)
        inst = Instance.homogeneous(10, speed=1.0, delay=2.0, loads=loads)
        ne, _ = best_response_dynamics(inst, rng=0, tol_change=1e-5)
        # allow tiny numerical slack
        assert lemma3_violation(inst, ne) <= 1e-3 * lemma3_bound(inst) + 1e-6

    def test_violation_positive_for_unbalanced_state(self):
        from repro import AllocationState

        inst = homogeneous(m=3, delay=0.5, lav=90.0)
        st = AllocationState.initial(inst)
        st.set_row(0, np.array([0.0, 90.0, 0.0]))  # pile everything on 1
        assert lemma3_violation(inst, st) > 0


class TestConstruction:
    def test_construction_is_feasible_and_load_preserving(self):
        inst = homogeneous(m=6, speed=1.0, delay=2.0, lav=100.0)
        ne = homogeneous_nash_construction(inst)
        ne.check_invariants()
        assert np.allclose(ne.loads, 100.0)

    def test_construction_is_nash(self):
        """The explicit construction from the tightness proof is an
        equilibrium: no unilateral deviation helps."""
        inst = homogeneous(m=5, speed=1.0, delay=2.0, lav=100.0)
        ne = homogeneous_nash_construction(inst)
        assert nash_gap(inst, ne) < 1e-9

    def test_construction_cost_matches_tightness_ratio(self):
        """ΣCi of the construction approaches the PoA lower bound."""
        inst = homogeneous(m=40, speed=1.0, delay=2.0, lav=200.0)
        ne = homogeneous_nash_construction(inst)
        opt_cost = inst.m * 200.0**2 / 2.0  # balanced, no communication
        ratio = ne.total_cost() / opt_cost
        assert ratio >= poa_lower_bound(inst) - 1e-2
        assert ratio <= poa_upper_bound(inst) + 1e-9

    def test_construction_requires_enough_load(self):
        inst = homogeneous(m=4, speed=1.0, delay=10.0, lav=5.0)  # lav < 2cs
        with pytest.raises(ValueError, match="2·c·s"):
            homogeneous_nash_construction(inst)

    def test_construction_requires_equal_loads(self):
        inst = Instance.homogeneous(
            3, delay=1.0, loads=np.array([10.0, 20.0, 30.0])
        )
        with pytest.raises(ValueError, match="equal initial loads"):
            homogeneous_nash_construction(inst)
