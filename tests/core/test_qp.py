"""Tests for the centralized solvers (Section III)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance
from repro.core.cost import cost_gradient
from repro.core.qp import (
    project_simplex,
    solve_coordinate_descent,
    solve_fista,
    solve_optimal,
    solve_qp_scipy,
)

from ..conftest import make_random_instance


class TestProjectSimplex:
    def test_already_feasible(self):
        y = np.array([0.3, 0.7])
        assert np.allclose(project_simplex(y, 1.0), y)

    def test_projects_negative_away(self):
        r = project_simplex(np.array([-5.0, 1.0]), 1.0)
        assert np.allclose(r, [0.0, 1.0])

    def test_sum_constraint(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            y = rng.normal(size=7) * 10
            total = float(rng.uniform(0.1, 50))
            r = project_simplex(y, total)
            assert r.sum() == pytest.approx(total)
            assert np.all(r >= 0)

    def test_zero_total(self):
        assert np.all(project_simplex(np.array([1.0, 2.0]), 0.0) == 0)

    def test_is_euclidean_projection(self):
        """Check against scipy for a random point."""
        from scipy.optimize import LinearConstraint, minimize

        rng = np.random.default_rng(1)
        y = rng.normal(size=5) * 3
        r = project_simplex(y, 2.0)
        res = minimize(
            lambda x: ((x - y) ** 2).sum(),
            np.full(5, 0.4),
            bounds=[(0, None)] * 5,
            constraints=[LinearConstraint(np.ones((1, 5)), 2.0, 2.0)],
        )
        assert np.allclose(r, res.x, atol=1e-5)


class TestSolverAgreement:
    def test_three_solvers_agree_small(self, rng):
        inst = make_random_instance(5, rng)
        cd = solve_coordinate_descent(inst)
        fi = solve_fista(inst, max_iterations=5000)
        qp = solve_qp_scipy(inst)
        c_cd, c_fi, c_qp = cd.total_cost(), fi.total_cost(), qp.total_cost()
        assert c_cd == pytest.approx(c_qp, rel=1e-5)
        assert c_fi == pytest.approx(c_qp, rel=1e-4)

    def test_qp_scipy_rejects_large(self, rng):
        inst = make_random_instance(13, rng)
        with pytest.raises(ValueError, match="m > 12"):
            solve_qp_scipy(inst)

    def test_solve_optimal_dispatch(self, rng):
        inst = make_random_instance(4, rng)
        a = solve_optimal(inst, method="cd").total_cost()
        b = solve_optimal(inst, method="auto").total_cost()
        c = solve_optimal(inst, method="fista").total_cost()
        d = solve_optimal(inst, method="qp").total_cost()
        assert a == b
        assert a == pytest.approx(c, rel=1e-5)
        assert a == pytest.approx(d, rel=1e-5)
        with pytest.raises(ValueError):
            solve_optimal(inst, method="nope")


class TestOptimalityConditions:
    def test_kkt_at_cd_optimum(self, rng):
        """At the optimum every owner's active destinations share the
        minimum marginal cost l_j/s_j + c_ij (first-order condition)."""
        inst = make_random_instance(8, rng)
        opt = solve_coordinate_descent(inst)
        grad = cost_gradient(inst, opt.R)
        for i in range(inst.m):
            if inst.loads[i] <= 0:
                continue
            active = opt.R[i] > 1e-7 * inst.loads[i]
            lam = grad[i][active]
            assert lam.max() - lam.min() < 1e-5 * max(1.0, lam.max())
            assert np.all(grad[i][~active] >= lam.max() - 1e-5 * max(1.0, lam.max()))

    def test_optimum_beats_initial_and_random(self, rng):
        from ..conftest import random_state

        inst = make_random_instance(9, rng)
        opt_cost = solve_coordinate_descent(inst).total_cost()
        from repro import AllocationState

        assert opt_cost <= AllocationState.initial(inst).total_cost() + 1e-9
        for _ in range(5):
            assert opt_cost <= random_state(inst, rng).total_cost() + 1e-9

    def test_homogeneous_equal_loads_stay_local(self):
        """With equal loads/speeds/delays, running locally is optimal: no
        communication can help."""
        inst = Instance.homogeneous(5, speed=1.0, delay=10.0, loads=50.0)
        opt = solve_coordinate_descent(inst)
        assert np.allclose(opt.R, np.diag(inst.loads), atol=1e-6)

    def test_zero_latency_balances_weighted_loads(self, rng):
        """With no latency the optimum equalizes l_j/s_j across servers."""
        m = 6
        speeds = rng.uniform(1, 5, m)
        loads = rng.uniform(10, 100, m)
        inst = Instance(speeds, loads, np.zeros((m, m)))
        opt = solve_coordinate_descent(inst)
        ratio = opt.loads / speeds
        assert ratio.max() - ratio.min() < 1e-6 * ratio.max()

    def test_infinite_latency_respected(self):
        """Servers behind an infinite latency never receive requests."""
        m = 3
        c = np.array(
            [
                [0.0, np.inf, np.inf],
                [np.inf, 0.0, 1.0],
                [np.inf, 1.0, 0.0],
            ]
        )
        inst = Instance(np.ones(m), np.array([90.0, 10.0, 10.0]), c)
        opt = solve_coordinate_descent(inst)
        assert opt.R[0, 1] == 0.0
        assert opt.R[0, 2] == 0.0
        assert opt.R[1, 0] == 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), m=st.integers(2, 7))
def test_cd_vs_fista_property(seed, m):
    rng = np.random.default_rng(seed)
    inst = make_random_instance(m, rng)
    cd = solve_coordinate_descent(inst).total_cost()
    fi = solve_fista(inst, max_iterations=4000).total_cost()
    assert cd <= fi * (1 + 1e-4) + 1e-9
    assert fi <= cd * (1 + 1e-3) + 1e-6
