"""Tests for :mod:`repro.core.state`."""

import numpy as np
import pytest

from repro import AllocationState, Instance

from ..conftest import make_random_instance, random_state


class TestConstruction:
    def test_initial_is_diagonal(self, small_instance):
        st = AllocationState.initial(small_instance)
        assert np.allclose(st.R, np.diag(small_instance.loads))
        assert np.allclose(st.loads, small_instance.loads)

    def test_from_fractions(self, small_instance):
        m = small_instance.m
        rho = np.full((m, m), 1.0 / m)
        st = AllocationState.from_fractions(small_instance, rho)
        expected = small_instance.loads[:, None] / m
        assert np.allclose(st.R, expected)

    def test_from_fractions_rejects_bad_rows(self, small_instance):
        m = small_instance.m
        rho = np.full((m, m), 1.0 / m)
        rho[0, 0] += 0.5
        with pytest.raises(ValueError, match="sum to 1"):
            AllocationState.from_fractions(small_instance, rho)

    def test_rejects_negative_entries(self, small_instance):
        R = np.diag(small_instance.loads)
        R[0, 1] = -1.0
        R[0, 0] += 1.0
        with pytest.raises(ValueError, match="non-negative"):
            AllocationState(small_instance, R)

    def test_rejects_row_sum_drift(self, small_instance):
        R = np.diag(small_instance.loads * 1.5)
        with pytest.raises(ValueError, match="row sums"):
            AllocationState(small_instance, R)

    def test_rejects_wrong_shape(self, small_instance):
        with pytest.raises(ValueError, match="R must be"):
            AllocationState(small_instance, np.zeros((2, 2)))


class TestMutation:
    def test_set_row_updates_loads(self, small_instance, rng):
        st = AllocationState.initial(small_instance)
        m = small_instance.m
        new_row = rng.dirichlet(np.ones(m)) * small_instance.loads[0]
        st.set_row(0, new_row)
        assert np.allclose(st.loads, st.R.sum(axis=0))
        st.check_invariants()

    def test_apply_pair_columns(self, small_instance):
        st = AllocationState.initial(small_instance)
        i, j = 0, 1
        col_i = st.R[:, i] * 0.5
        col_j = st.R[:, j] + st.R[:, i] * 0.5
        st.apply_pair_columns(i, j, col_i, col_j)
        assert np.allclose(st.loads, st.R.sum(axis=0))
        st.check_invariants()

    def test_copy_is_independent(self, small_instance):
        st = AllocationState.initial(small_instance)
        cp = st.copy()
        cp.R[0, 0] += 1.0
        assert st.R[0, 0] != cp.R[0, 0]

    def test_refresh_loads(self, small_instance):
        st = AllocationState.initial(small_instance)
        st.loads[0] += 123.0  # simulate drift
        st.refresh_loads()
        assert np.allclose(st.loads, st.R.sum(axis=0))


class TestFractions:
    def test_roundtrip(self, rng):
        inst = make_random_instance(5, rng)
        st = random_state(inst, rng)
        rho = st.fractions()
        st2 = AllocationState.from_fractions(inst, rho)
        assert np.allclose(st.R, st2.R)

    def test_zero_load_rows_get_identity_convention(self):
        inst = Instance(
            np.ones(3),
            np.array([0.0, 5.0, 0.0]),
            np.zeros((3, 3)),
        )
        st = AllocationState.initial(inst)
        rho = st.fractions()
        assert rho[0, 0] == 1.0
        assert rho[2, 2] == 1.0
        assert np.allclose(rho.sum(axis=1), 1.0)

    def test_check_invariants_catches_negative(self, small_instance):
        st = AllocationState.initial(small_instance)
        st.R[0, 1] = -1.0
        with pytest.raises(AssertionError):
            st.check_invariants()
