"""Edge cases and failure injection across the core modules."""

import numpy as np
import pytest

import repro
from repro import AllocationState, Instance
from repro.core.distributed import MinEOptimizer
from repro.core.qp import solve_coordinate_descent


class TestDegenerateInstances:
    def test_single_server(self):
        inst = Instance(np.array([2.0]), np.array([50.0]), np.zeros((1, 1)))
        opt = solve_coordinate_descent(inst)
        assert opt.R[0, 0] == pytest.approx(50.0)
        assert opt.total_cost() == pytest.approx(50.0**2 / 4.0)
        ratio, _, _ = repro.price_of_anarchy(inst, rng=0)
        assert ratio == pytest.approx(1.0)

    def test_two_servers_one_loaded(self):
        """Classic sanity: Lemma 1 split between a loaded and an idle
        server with latency cost."""
        c = np.array([[0.0, 4.0], [4.0, 0.0]])
        inst = Instance(np.ones(2), np.array([100.0, 0.0]), c)
        opt = solve_coordinate_descent(inst)
        # KKT: l_0 = l_1 + c  (marginals equal: l0/s = l1/s + c)
        assert opt.loads[0] - opt.loads[1] == pytest.approx(4.0, abs=1e-6)

    def test_identical_servers_identical_loads(self):
        inst = Instance.homogeneous(6, speed=3.0, delay=7.0, loads=30.0)
        opt = solve_coordinate_descent(inst)
        # nothing to gain: everyone stays local
        assert np.allclose(opt.R, np.diag(inst.loads), atol=1e-9)

    def test_huge_latency_isolates(self):
        m = 4
        c = repro.homogeneous_latency(m, 1e12)
        inst = Instance(np.ones(m), np.array([1000.0, 1.0, 1.0, 1.0]), c)
        opt = solve_coordinate_descent(inst)
        assert np.allclose(opt.R, np.diag(inst.loads), atol=1e-6)

    def test_zero_latency_is_pure_load_balancing(self):
        m = 5
        rng = np.random.default_rng(0)
        inst = Instance(
            rng.uniform(1, 5, m), rng.uniform(10, 100, m), np.zeros((m, m))
        )
        opt = solve_coordinate_descent(inst)
        state = AllocationState.initial(inst)
        MinEOptimizer(state, rng=0).run(max_iterations=30)
        assert state.total_cost() == pytest.approx(opt.total_cost(), rel=1e-6)

    def test_tiny_loads_numerics(self):
        inst = Instance(
            np.array([1.0, 2.0]),
            np.array([1e-9, 1e-9]),
            np.array([[0.0, 1.0], [1.0, 0.0]]),
        )
        opt = solve_coordinate_descent(inst)
        opt.check_invariants(atol=1e-12)
        assert opt.total_cost() >= 0

    def test_huge_loads_numerics(self):
        inst = Instance(
            np.array([1.0, 2.0]),
            np.array([1e12, 1e10]),
            np.array([[0.0, 20.0], [20.0, 0.0]]),
        )
        state = AllocationState.initial(inst)
        trace = MinEOptimizer(state, rng=0).run(max_iterations=20)
        assert trace.costs[-1] < trace.costs[0]
        state.check_invariants(atol=1.0)  # absolute slack scaled to 1e12 loads


class TestAdversarialStates:
    def test_everything_on_slowest_server(self):
        rng = np.random.default_rng(1)
        m = 8
        speeds = np.ones(m)
        speeds[3] = 0.1  # crippled server
        inst = Instance(
            speeds, rng.uniform(10, 50, m), repro.homogeneous_latency(m, 1.0)
        )
        rho = np.zeros((m, m))
        rho[:, 3] = 1.0  # adversarial: everything on the slow server
        state = AllocationState.from_fractions(inst, rho)
        MinEOptimizer(state, rng=0).run(max_iterations=40)
        ref = solve_coordinate_descent(inst).total_cost()
        assert state.total_cost() <= ref * 1.01

    def test_mine_recovers_from_random_restart(self):
        rng = np.random.default_rng(2)
        m = 10
        inst = Instance(
            rng.uniform(1, 5, m),
            rng.exponential(40, m),
            repro.planetlab_like_latency(m, rng=rng),
        )
        ref = solve_coordinate_descent(inst).total_cost()
        for seed in range(3):
            local = np.random.default_rng(seed)
            rho = local.dirichlet(np.ones(m), size=m)
            state = AllocationState.from_fractions(inst, rho)
            MinEOptimizer(state, rng=seed).run(max_iterations=40)
            assert state.total_cost() <= ref * 1.01
