"""Tests for the distributed MinE algorithm (Algorithms 1 + 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AllocationState
from repro.core.distributed import (
    MinEOptimizer,
    batch_exchange_stats,
    best_partner_exact,
)
from repro.core.qp import solve_coordinate_descent
from repro.core.transfer import calc_best_transfer

from ..conftest import make_random_instance, random_state


class TestBatchExchange:
    def test_matches_per_pair_evaluation(self, rng):
        """Batched impr/moved equal per-pair calc_best_transfer results."""
        inst = make_random_instance(9, rng)
        state = random_state(inst, rng)
        owners = np.flatnonzero(inst.loads > 0)
        i = 3
        impr, moved = batch_exchange_stats(inst, state.R, i, owners)
        for j in range(inst.m):
            if j == i:
                continue
            ex = calc_best_transfer(inst, state.R, i, j)
            assert impr[j] == pytest.approx(ex.improvement, rel=1e-9, abs=1e-6)
            assert moved[j] == pytest.approx(ex.moved, rel=1e-9, abs=1e-6)

    def test_self_column_is_minus_inf(self, rng):
        inst = make_random_instance(5, rng)
        state = random_state(inst, rng)
        owners = np.flatnonzero(inst.loads > 0)
        impr, moved = batch_exchange_stats(inst, state.R, 2, owners)
        assert impr[2] == -np.inf
        assert moved[2] == 0.0

    def test_best_partner_is_argmax(self, rng):
        inst = make_random_instance(7, rng)
        state = random_state(inst, rng)
        owners = np.flatnonzero(inst.loads > 0)
        j, val = best_partner_exact(inst, state.R, 0, owners)
        for k in range(1, inst.m):
            ex = calc_best_transfer(inst, state.R, 0, k)
            assert ex.improvement <= val + 1e-6


class TestSweep:
    def test_cost_monotonically_decreases(self, rng):
        inst = make_random_instance(12, rng)
        state = AllocationState.initial(inst)
        opt = MinEOptimizer(state, rng=0)
        prev = state.total_cost()
        for _ in range(5):
            stats = opt.sweep()
            assert stats.cost_after <= prev + 1e-6
            prev = stats.cost_after
        state.check_invariants()

    def test_converges_to_cd_optimum(self, rng):
        inst = make_random_instance(10, rng)
        ref = solve_coordinate_descent(inst).total_cost()
        state = AllocationState.initial(inst)
        trace = MinEOptimizer(state, rng=0).run(
            max_iterations=50, optimum=ref, rel_tol=1e-3
        )
        assert trace.converged
        assert state.total_cost() <= ref * 1.001 + 1e-9

    def test_strategies_agree(self, rng):
        """Exact and screened (wide) strategies reach the same cost."""
        inst = make_random_instance(10, rng)
        costs = {}
        for strategy in ("exact", "screened"):
            state = AllocationState.initial(inst)
            opt = MinEOptimizer(
                state, rng=1, strategy=strategy, screen_width=inst.m - 1
            )
            opt.run(max_iterations=20)
            costs[strategy] = state.total_cost()
        assert costs["exact"] == pytest.approx(costs["screened"], rel=1e-6)

    def test_narrow_screening_still_converges(self, rng):
        inst = make_random_instance(12, rng)
        ref = solve_coordinate_descent(inst).total_cost()
        state = AllocationState.initial(inst)
        MinEOptimizer(state, rng=1, strategy="screened", screen_width=3).run(
            max_iterations=40
        )
        assert state.total_cost() <= ref * 1.02

    def test_snapshot_partner_selection_converges(self, rng):
        inst = make_random_instance(10, rng)
        ref = solve_coordinate_descent(inst).total_cost()
        state = AllocationState.initial(inst)
        trace = MinEOptimizer(
            state, rng=1, snapshot_partner_selection=True
        ).run(max_iterations=50, optimum=ref, rel_tol=0.01)
        assert trace.converged

    def test_cycle_removal_does_not_hurt(self, rng):
        inst = make_random_instance(9, rng)
        state_a = AllocationState.initial(inst)
        state_b = AllocationState.initial(inst)
        MinEOptimizer(state_a, rng=2).run(max_iterations=15)
        MinEOptimizer(state_b, rng=2, cycle_removal_every=2).run(max_iterations=15)
        assert state_b.total_cost() <= state_a.total_cost() * (1 + 1e-6) + 1e-6
        state_b.check_invariants()

    def test_trace_records_costs(self, rng):
        inst = make_random_instance(6, rng)
        state = AllocationState.initial(inst)
        trace = MinEOptimizer(state, rng=0).run(max_iterations=10)
        assert len(trace.costs) == trace.iterations + 1
        assert trace.costs[0] >= trace.costs[-1] - 1e-9
        errs = trace.relative_errors(trace.costs[-1])
        assert errs[-1] == pytest.approx(0.0, abs=1e-12)

    def test_invalid_strategy_rejected(self, rng):
        inst = make_random_instance(4, rng)
        with pytest.raises(ValueError):
            MinEOptimizer(AllocationState.initial(inst), strategy="bogus")

    def test_peak_distribution_spreads_load(self, rng):
        """Peak load on one server gets distributed across the network."""
        import repro

        m = 15
        loads = np.zeros(m)
        loads[4] = 10_000.0
        inst = repro.Instance(
            rng.uniform(1, 5, m), loads, repro.planetlab_like_latency(m, rng=rng)
        )
        state = AllocationState.initial(inst)
        MinEOptimizer(state, rng=0).run(max_iterations=30)
        # most servers should carry some load at the end
        assert (state.loads > 1.0).sum() >= m - 2
        ref = solve_coordinate_descent(inst).total_cost()
        assert state.total_cost() <= ref * 1.01

    def test_zero_load_instance_is_noop(self):
        import repro

        inst = repro.Instance(
            np.ones(4), np.zeros(4), repro.homogeneous_latency(4, 2.0)
        )
        state = AllocationState.initial(inst)
        trace = MinEOptimizer(state, rng=0).run(max_iterations=5)
        assert state.total_cost() == 0.0
        assert trace.iterations <= 1


class TestLoadView:
    def test_stale_view_still_converges(self, rng):
        """Partner selection from a stale load vector slows but does not
        break convergence (exchange itself uses true state)."""
        inst = make_random_instance(10, rng)
        ref = solve_coordinate_descent(inst).total_cost()
        state = AllocationState.initial(inst)
        stale = {"loads": state.loads.copy()}

        def view(_i: int) -> np.ndarray:
            return stale["loads"]

        opt = MinEOptimizer(state, rng=0, load_view=view)
        for _ in range(25):
            opt.sweep()
            stale["loads"] = state.loads.copy()  # refresh once per sweep
        assert state.total_cost() <= ref * 1.02


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), m=st.integers(2, 10))
def test_mine_never_increases_cost_property(seed, m):
    rng = np.random.default_rng(seed)
    inst = make_random_instance(m, rng)
    state = random_state(inst, rng)
    opt = MinEOptimizer(state, rng=seed)
    before = state.total_cost()
    stats = opt.sweep()
    assert stats.cost_after <= before + 1e-6
    state.check_invariants()
