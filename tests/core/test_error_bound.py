"""Tests for the Proposition 1 error certificate."""

import numpy as np
import pytest

from repro import AllocationState
from repro.core.distributed import MinEOptimizer
from repro.core.error_bound import delta_r, error_bound, pending_transfer_volumes
from repro.core.qp import solve_coordinate_descent
from repro.flow.transportation import remove_negative_cycles

from ..conftest import make_random_instance, random_state


class TestPendingVolumes:
    def test_shape_and_nonnegativity(self, rng):
        inst = make_random_instance(6, rng)
        st = random_state(inst, rng)
        vols = pending_transfer_volumes(inst, st)
        assert vols.shape == (6, 6)
        assert np.all(vols >= 0)
        assert np.all(np.diagonal(vols) == 0)

    def test_zero_at_optimum(self, rng):
        """At the optimum no pair wants to exchange anything."""
        inst = make_random_instance(7, rng)
        opt = solve_coordinate_descent(inst, tol=1e-14)
        vols = pending_transfer_volumes(inst, opt)
        assert vols.max() < 1e-3 * inst.total_load

    def test_subset_of_servers(self, rng):
        inst = make_random_instance(5, rng)
        st = random_state(inst, rng)
        full = pending_transfer_volumes(inst, st)
        sub = pending_transfer_volumes(inst, st, servers=np.array([1, 3]))
        assert np.allclose(sub[0], full[1])
        assert np.allclose(sub[1], full[3])


class TestBound:
    def test_bound_dominates_true_distance(self, rng):
        """Proposition 1: the certificate upper-bounds the L1 distance to
        the optimum (after negative cycles are removed)."""
        for _ in range(5):
            inst = make_random_instance(6, rng)
            st = random_state(inst, rng)
            remove_negative_cycles(st)
            opt = solve_coordinate_descent(inst, tol=1e-14)
            actual = float(np.abs(st.R - opt.R).sum())
            assert error_bound(inst, st) >= actual * (1 - 1e-9)

    def test_bound_shrinks_along_mine_run(self, rng):
        inst = make_random_instance(8, rng)
        st = AllocationState.initial(inst)
        opt = MinEOptimizer(st, rng=0)
        b0 = error_bound(inst, st)
        for _ in range(6):
            opt.sweep()
        b1 = error_bound(inst, st)
        assert b1 <= b0 * 1.001 + 1e-6
        # near the optimum the bound is tiny relative to the initial one
        assert b1 < 0.05 * b0 + 1e-6

    def test_delta_r_zero_iff_locally_optimal(self, rng):
        inst = make_random_instance(6, rng)
        st = AllocationState.initial(inst)
        MinEOptimizer(st, rng=0).run(max_iterations=50)
        assert delta_r(inst, st) < 1e-4 * max(1.0, inst.total_load)

    def test_bound_scales_with_m_factor(self, rng):
        inst = make_random_instance(5, rng)
        st = random_state(inst, rng)
        dr = delta_r(inst, st)
        expected = (4 * inst.m + 1) * dr * inst.speeds.sum()
        assert error_bound(inst, st) == pytest.approx(expected, rel=1e-12)
