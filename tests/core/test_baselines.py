"""Tests for the baseline allocation policies."""

import numpy as np
import pytest

import repro
from repro.core.baselines import (
    all_baselines,
    makespan,
    makespan_greedy,
    nearest_server,
    proportional_speed,
    round_robin,
)
from repro.core.qp import solve_coordinate_descent

from ..conftest import make_random_instance


class TestPolicies:
    def test_round_robin_uniform(self, small_instance):
        st = round_robin(small_instance)
        m = small_instance.m
        assert np.allclose(st.fractions()[small_instance.loads > 0], 1.0 / m)

    def test_nearest_server_is_local_with_zero_diagonal(self, small_instance):
        st = nearest_server(small_instance)
        # c_ii = 0 is always the minimum, so nearest == local execution
        assert np.allclose(st.R, np.diag(small_instance.loads))

    def test_proportional_speed_equalizes_weighted_load(self, rng):
        inst = make_random_instance(7, rng)
        st = proportional_speed(inst)
        ratio = st.loads / inst.speeds
        assert ratio.max() - ratio.min() < 1e-9 * max(1.0, ratio.max())

    def test_makespan_greedy_feasible(self, rng):
        inst = make_random_instance(6, rng)
        st = makespan_greedy(inst)
        st.check_invariants()

    def test_all_baselines_keys(self, small_instance):
        d = all_baselines(small_instance)
        assert set(d) == {
            "round-robin",
            "nearest-server",
            "proportional-speed",
            "makespan-greedy",
        }


class TestDominance:
    def test_optimum_beats_every_baseline(self, rng):
        """The delay-aware optimum never loses to any baseline on ΣCi."""
        for _ in range(5):
            inst = make_random_instance(10, rng)
            opt_cost = solve_coordinate_descent(inst).total_cost()
            for name, st in all_baselines(inst).items():
                assert opt_cost <= st.total_cost() + 1e-6, name

    def test_proportional_wins_without_latency(self, rng):
        """With zero latency the congestion-only baseline IS optimal."""
        m = 6
        inst = repro.Instance(
            rng.uniform(1, 5, m), rng.uniform(10, 100, m), np.zeros((m, m))
        )
        opt = solve_coordinate_descent(inst).total_cost()
        assert proportional_speed(inst).total_cost() == pytest.approx(
            opt, rel=1e-9
        )

    def test_nearest_wins_with_huge_latency(self, rng):
        """With overwhelming latency, staying local IS optimal."""
        m = 5
        inst = repro.Instance(
            rng.uniform(1, 5, m),
            rng.uniform(10, 30, m),
            repro.homogeneous_latency(m, 1e9),
        )
        opt = solve_coordinate_descent(inst).total_cost()
        assert nearest_server(inst).total_cost() == pytest.approx(opt, rel=1e-9)


class TestMakespan:
    def test_makespan_of_local_execution(self):
        inst = repro.Instance(
            np.array([1.0, 2.0]),
            np.array([10.0, 10.0]),
            np.array([[0.0, 3.0], [3.0, 0.0]]),
        )
        st = repro.AllocationState.initial(inst)
        assert makespan(inst, st) == pytest.approx(10.0)  # slower server

    def test_makespan_counts_arrival_latency(self):
        inst = repro.Instance(
            np.array([1.0, 1.0]),
            np.array([10.0, 0.0]),
            np.array([[0.0, 7.0], [7.0, 0.0]]),
        )
        R = np.array([[0.0, 10.0], [0.0, 0.0]])
        st = repro.AllocationState(inst, R)
        assert makespan(inst, st) == pytest.approx(7.0 + 10.0)

    def test_greedy_improves_makespan_over_local_on_peak(self, rng):
        m = 6
        loads = np.zeros(m)
        loads[2] = 600.0
        inst = repro.Instance(
            rng.uniform(1, 5, m), loads, repro.planetlab_like_latency(m, rng=rng)
        )
        local = makespan(inst, repro.AllocationState.initial(inst))
        greedy = makespan(inst, makespan_greedy(inst))
        assert greedy < local

    def test_objectives_rank_policies_differently(self, rng):
        """The paper's Cmax-vs-ΣCi discussion: each optimizer wins on its
        own objective.  The ΣCi optimum strictly beats the makespan
        heuristic on ΣCi, while the heuristic stays competitive (within a
        small factor) on makespan."""
        worst_ms_ratio = 0.0
        strict_cost_win = False
        for seed in range(5):
            local = np.random.default_rng(seed)
            m = 8
            inst = repro.Instance(
                local.uniform(1, 5, m),
                local.exponential(80, m),
                repro.planetlab_like_latency(m, rng=local),
            )
            opt = solve_coordinate_descent(inst)
            greedy = makespan_greedy(inst)
            if greedy.total_cost() > opt.total_cost() * (1 + 1e-6):
                strict_cost_win = True
            worst_ms_ratio = max(
                worst_ms_ratio,
                makespan(inst, greedy) / max(makespan(inst, opt), 1e-12),
            )
        assert strict_cost_win
        assert worst_ms_ratio < 1.5
