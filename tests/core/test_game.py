"""Tests for the selfish regime (Section V): best responses, Nash
equilibria and the price of anarchy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AllocationState, Instance
from repro.core.game import (
    best_response_dynamics,
    nash_gap,
    price_of_anarchy,
    selfish_best_response,
)
from repro.core.cost import per_org_cost

from ..conftest import make_random_instance, random_state


class TestBestResponse:
    def test_best_response_minimizes_private_cost(self, rng):
        """No alternative row gives the organization a lower Ci."""
        inst = make_random_instance(7, rng)
        state = random_state(inst, rng)
        i = 3
        br = selfish_best_response(inst, state, i)
        trial = state.copy()
        trial.set_row(i, br)
        base = per_org_cost(inst, trial.R)[i]
        for _ in range(20):
            alt = rng.dirichlet(np.ones(inst.m)) * inst.loads[i]
            t2 = state.copy()
            t2.set_row(i, alt)
            assert per_org_cost(inst, t2.R)[i] >= base - 1e-6 * max(1.0, base)

    def test_best_response_preserves_total(self, rng):
        inst = make_random_instance(5, rng)
        state = random_state(inst, rng)
        br = selfish_best_response(inst, state, 1)
        assert br.sum() == pytest.approx(inst.loads[1], rel=1e-9)
        assert np.all(br >= 0)

    def test_isolated_org_keeps_everything_local(self):
        """Infinite latency to everyone: the best response is r_ii = n_i."""
        m = 3
        c = np.full((m, m), np.inf)
        np.fill_diagonal(c, 0.0)
        inst = Instance(np.ones(m), np.full(m, 10.0), c)
        state = AllocationState.initial(inst)
        br = selfish_best_response(inst, state, 0)
        assert br[0] == pytest.approx(10.0)


class TestDynamics:
    def test_reaches_approximate_equilibrium(self, rng):
        inst = make_random_instance(10, rng)
        ne, trace = best_response_dynamics(inst, rng=0, tol_change=0.001)
        assert trace.converged
        assert nash_gap(inst, ne) < 1e-3

    def test_cost_trajectory_recorded(self, rng):
        inst = make_random_instance(6, rng)
        _, trace = best_response_dynamics(inst, rng=0)
        assert len(trace.costs) == trace.rounds + 1

    def test_equilibrium_stability_under_continuation(self, rng):
        """Running more rounds from an equilibrium changes almost nothing."""
        inst = make_random_instance(8, rng)
        ne, _ = best_response_dynamics(inst, rng=0, tol_change=1e-4)
        cost1 = ne.total_cost()
        ne2, _ = best_response_dynamics(
            inst, state=ne, rng=1, tol_change=1e-4, max_rounds=20
        )
        assert ne2.total_cost() == pytest.approx(cost1, rel=1e-3)

    def test_handles_zero_load_orgs(self):
        inst = Instance(
            np.ones(4),
            np.array([100.0, 0.0, 50.0, 0.0]),
            np.full((4, 4), 2.0) - 2.0 * np.eye(4),
        )
        ne, trace = best_response_dynamics(inst, rng=0)
        assert trace.converged
        assert np.all(ne.R[1] == 0)
        assert np.all(ne.R[3] == 0)


class TestPriceOfAnarchy:
    def test_poa_at_least_one(self, rng):
        for _ in range(5):
            inst = make_random_instance(8, rng)
            ratio, _, _ = price_of_anarchy(inst, rng=0)
            assert ratio >= 1.0 - 1e-6

    def test_poa_low_as_paper_claims(self, rng):
        """Section VI-C: the observed cost of selfishness stays below 1.15."""
        worst = 0.0
        for seed in range(6):
            local = np.random.default_rng(seed)
            inst = make_random_instance(12, local)
            ratio, _, _ = price_of_anarchy(inst, rng=0)
            worst = max(worst, ratio)
        assert worst < 1.15

    def test_selfish_never_beats_optimum(self, rng):
        inst = make_random_instance(9, rng)
        ratio, ne, opt = price_of_anarchy(inst, rng=0)
        assert ne.total_cost() >= opt.total_cost() - 1e-6

    def test_zero_load_system(self):
        inst = Instance(np.ones(3), np.zeros(3), np.zeros((3, 3)))
        ratio, _, _ = price_of_anarchy(inst, rng=0)
        assert ratio == 1.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), m=st.integers(2, 8))
def test_best_response_never_hurts_the_player(seed, m):
    """Property: playing the best response never increases own cost."""
    rng = np.random.default_rng(seed)
    inst = make_random_instance(m, rng)
    state = random_state(inst, rng)
    i = int(rng.integers(0, m))
    before = per_org_cost(inst, state.R)[i]
    state.set_row(i, selfish_best_response(inst, state, i))
    after = per_org_cost(inst, state.R)[i]
    assert after <= before + 1e-6 * max(1.0, before)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_nash_gap_zero_after_tight_dynamics(seed):
    rng = np.random.default_rng(seed)
    inst = make_random_instance(6, rng)
    ne, _ = best_response_dynamics(inst, rng=seed, tol_change=1e-5, max_rounds=300)
    assert nash_gap(inst, ne) < 1e-4
