"""Infinite-latency (neighbour-restricted) arithmetic across the kernels.

The §II trust model is expressed as ``c_ij = inf``; these tests pin down
the inf-safe conventions (``0 · inf = 0``; forbidden moves never happen)
in every hot path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.distributed import batch_exchange_stats
from repro.core.transfer import calc_best_transfer, calc_best_transfer_reference
from repro.net.trust import k_nearest_trust, restrict_latency


def restricted_instance(seed: int, m: int = 8, k: int = 3):
    rng = np.random.default_rng(seed)
    lat = repro.planetlab_like_latency(m, rng=rng)
    allowed = k_nearest_trust(lat, k)
    return (
        repro.Instance(
            rng.uniform(1, 5, m),
            np.maximum(rng.exponential(40, m), 1e-3),
            restrict_latency(lat, allowed),
        ),
        allowed,
    )


def legal_random_state(inst, allowed, rng):
    """A random allocation that respects the trust mask."""
    m = inst.m
    R = np.zeros((m, m))
    for i in range(m):
        options = np.flatnonzero(allowed[i])
        share = rng.dirichlet(np.ones(options.size)) * inst.loads[i]
        R[i, options] = share
    return repro.AllocationState(inst, R)


class TestInstanceFlag:
    def test_flag_set(self):
        inst, _ = restricted_instance(0)
        assert inst.has_inf_latency

    def test_flag_clear(self):
        inst = repro.Instance.homogeneous(3, loads=1.0)
        assert not inst.has_inf_latency


class TestFiniteCosts:
    def test_cost_finite_on_legal_states(self):
        rng = np.random.default_rng(1)
        inst, allowed = restricted_instance(1)
        state = legal_random_state(inst, allowed, rng)
        assert np.isfinite(state.total_cost())
        assert np.all(np.isfinite(state.per_org_cost()))

    def test_cost_infinite_on_illegal_state(self):
        inst, allowed = restricted_instance(2)
        i = 0
        j = int(np.flatnonzero(~allowed[i])[0])
        R = np.diag(inst.loads).astype(float)
        R[i, i] -= 1.0
        R[i, j] += 1.0
        state = repro.AllocationState(inst, R)
        assert state.total_cost() == np.inf


class TestKernelsNoNan:
    def test_batch_matches_per_pair_under_inf(self):
        rng = np.random.default_rng(3)
        inst, allowed = restricted_instance(3)
        state = legal_random_state(inst, allowed, rng)
        owners = np.flatnonzero(inst.loads > 0)
        for i in range(inst.m):
            impr, moved = batch_exchange_stats(inst, state.R, i, owners)
            assert not np.any(np.isnan(impr))
            for j in range(inst.m):
                if j == i:
                    continue
                ex = calc_best_transfer(inst, state.R, i, j)
                assert impr[j] == pytest.approx(
                    ex.improvement, rel=1e-9, abs=1e-6
                )

    def test_exchange_never_uses_forbidden_link(self):
        rng = np.random.default_rng(4)
        inst, allowed = restricted_instance(4)
        state = legal_random_state(inst, allowed, rng)
        for i in range(inst.m):
            for j in range(inst.m):
                if i == j:
                    continue
                ex = calc_best_transfer(inst, state.R, i, j)
                assert np.all(ex.col_i[~allowed[:, i]] <= 1e-12)
                assert np.all(ex.col_j[~allowed[:, j]] <= 1e-12)
                assert np.isfinite(ex.improvement)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_closed_form_equals_reference_under_inf(seed):
    rng = np.random.default_rng(seed)
    inst, allowed = restricted_instance(seed % 1000, m=6, k=2)
    state = legal_random_state(inst, allowed, rng)
    i, j = rng.choice(inst.m, size=2, replace=False)
    fast = calc_best_transfer(inst, state.R, int(i), int(j))
    ref = calc_best_transfer_reference(inst, state.R, int(i), int(j))
    assert np.allclose(fast.col_i, ref.col_i, atol=1e-6)
    assert np.allclose(fast.col_j, ref.col_j, atol=1e-6)
