"""Tests for the Section VII sized-task rounding extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rounding import (
    TaskSet,
    round_tasks_bruteforce,
    round_tasks_greedy,
    rounding_error,
    solve_discrete,
)
from repro.net import planetlab_like_latency


class TestTaskSet:
    def test_total(self):
        ts = TaskSet(0, np.array([1.0, 2.0, 3.0]))
        assert ts.total == 6.0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            TaskSet(0, np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            TaskSet(0, np.array([[1.0]]))


class TestGreedyRounding:
    def test_perfect_fit(self):
        sizes = np.array([3.0, 2.0, 1.0])
        targets = np.array([3.0, 3.0])
        assign = round_tasks_greedy(sizes, targets)
        assert rounding_error(sizes, targets, assign) == pytest.approx(0.0)

    def test_single_bin(self):
        sizes = np.array([1.0, 2.0])
        targets = np.array([3.0])
        assign = round_tasks_greedy(sizes, targets)
        assert np.all(assign == 0)

    def test_error_bounded_by_largest_task(self):
        """Greedy + refinement error never exceeds twice the largest task
        on balanced targets (sanity bound)."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            k = int(rng.integers(3, 12))
            m = int(rng.integers(2, 5))
            sizes = rng.uniform(0.5, 5.0, k)
            split = rng.dirichlet(np.ones(m)) * sizes.sum()
            assign = round_tasks_greedy(sizes, split)
            err = rounding_error(sizes, split, assign)
            assert err <= 2 * sizes.max() + 1e-9

    def test_close_to_bruteforce(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            k = int(rng.integers(2, 7))
            m = int(rng.integers(2, 4))
            sizes = rng.uniform(0.5, 4.0, k)
            targets = rng.dirichlet(np.ones(m)) * sizes.sum()
            greedy = rounding_error(sizes, targets, round_tasks_greedy(sizes, targets))
            exact = rounding_error(
                sizes, targets, round_tasks_bruteforce(sizes, targets)
            )
            # The greedy heuristic carries an *additive* guarantee (its
            # error is within O(max task size) of optimal); a
            # multiplicative one is impossible — the optimum can be
            # arbitrarily close to 0 while any greedy misplacement costs
            # a constant.
            assert greedy <= exact + 2 * sizes.max() + 1e-6

    def test_bruteforce_guard(self):
        with pytest.raises(ValueError, match="brute force"):
            round_tasks_bruteforce(np.ones(30), np.ones(4) * 7.5)


class TestSolveDiscrete:
    def test_end_to_end(self):
        rng = np.random.default_rng(2)
        m = 5
        speeds = rng.uniform(1, 5, m)
        latency = planetlab_like_latency(m, rng=rng)
        task_sets = [
            TaskSet(i, rng.uniform(0.5, 3.0, int(rng.integers(5, 15))))
            for i in range(m)
        ]
        opt, assignments = solve_discrete(speeds, latency, task_sets)
        assert len(assignments) == m
        for ts, da in zip(task_sets, assignments):
            # every task placed on a real server
            assert np.all((0 <= da.assignment) & (da.assignment < m))
            # relative rounding error small versus the org's total load
            assert da.error(ts.sizes) <= 2 * ts.sizes.max() + 1e-9

    def test_discrete_cost_close_to_fractional(self):
        """The rounded allocation's ΣCi is close to the fractional optimum
        when tasks are small relative to totals."""
        from repro import AllocationState, Instance
        from repro.core.cost import total_cost

        rng = np.random.default_rng(3)
        m = 4
        speeds = rng.uniform(1, 5, m)
        latency = planetlab_like_latency(m, rng=rng)
        task_sets = [TaskSet(i, rng.uniform(0.5, 1.5, 60)) for i in range(m)]
        opt, assignments = solve_discrete(speeds, latency, task_sets)
        R = np.zeros((m, m))
        for ts, da in zip(task_sets, assignments):
            np.add.at(R[da.owner], da.assignment, ts.sizes)
        frac_cost = opt.total_cost()
        disc_cost = total_cost(opt.inst, R)
        assert disc_cost <= frac_cost * 1.05

    def test_bad_owner_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            solve_discrete(
                np.ones(2),
                np.zeros((2, 2)),
                [TaskSet(5, np.array([1.0]))],
            )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_greedy_rounding_assigns_every_task(seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(1, 15))
    m = int(rng.integers(1, 6))
    sizes = rng.uniform(0.1, 5.0, k)
    targets = rng.dirichlet(np.ones(m)) * sizes.sum()
    assign = round_tasks_greedy(sizes, targets)
    assert assign.shape == (k,)
    assert np.all((0 <= assign) & (assign < m))
    # conservation: bin sums equal the total size
    bins = np.zeros(m)
    np.add.at(bins, assign, sizes)
    assert bins.sum() == pytest.approx(sizes.sum())
