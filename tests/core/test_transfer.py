"""Tests for Algorithm 1 (pairwise exchange) — Lemmas 1 and 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AllocationState
from repro.core.transfer import (
    calc_best_transfer,
    calc_best_transfer_reference,
    lemma1_transfer,
)

from ..conftest import make_random_instance, random_state


class TestLemma1:
    def test_balances_equal_speeds_no_latency(self):
        # two servers, same speed, no latency difference: split the load
        t = lemma1_transfer(1.0, 1.0, 10.0, 0.0, 0.0, 0.0, 10.0)
        assert t == pytest.approx(5.0)

    def test_latency_shifts_the_split(self):
        # moving to j costs 2 more than staying: move less than half
        t = lemma1_transfer(1.0, 1.0, 10.0, 0.0, 0.0, 2.0, 10.0)
        assert t == pytest.approx((10.0 - 2.0) / 2.0)

    def test_clamped_at_available(self):
        t = lemma1_transfer(1.0, 1.0, 100.0, 0.0, 0.0, 0.0, 3.0)
        assert t == 3.0

    def test_never_negative(self):
        t = lemma1_transfer(1.0, 1.0, 0.0, 100.0, 0.0, 0.0, 5.0)
        assert t == 0.0

    def test_speed_weighted_balance(self):
        # s_i=1, s_j=3: optimum puts 3/4 of the pooled load on j
        t = lemma1_transfer(1.0, 3.0, 8.0, 0.0, 0.0, 0.0, 8.0)
        assert t == pytest.approx(6.0)

    def test_transfer_minimizes_pair_objective(self):
        """The Lemma 1 amount minimizes f(Δ) over a dense grid."""
        s_i, s_j = 1.3, 2.7
        l_i, l_j = 40.0, 5.0
        c_ki, c_kj = 2.0, 7.0
        r_ki = 20.0
        t = lemma1_transfer(s_i, s_j, l_i, l_j, c_ki, c_kj, r_ki)

        def f(d):
            return (
                (l_i - d) ** 2 / (2 * s_i)
                + (l_j + d) ** 2 / (2 * s_j)
                - d * c_ki
                + d * c_kj
            )

        grid = np.linspace(0.0, r_ki, 2001)
        assert f(t) <= np.min([f(d) for d in grid]) + 1e-8


class TestAlgorithm1:
    def test_improvement_never_negative(self, rng):
        for _ in range(20):
            inst = make_random_instance(8, rng)
            state = random_state(inst, rng)
            i, j = rng.choice(8, size=2, replace=False)
            ex = calc_best_transfer(inst, state.R, int(i), int(j))
            assert ex.improvement >= -1e-7

    def test_conserves_per_org_totals(self, rng):
        inst = make_random_instance(6, rng)
        state = random_state(inst, rng)
        old = state.R[:, 0] + state.R[:, 1]
        ex = calc_best_transfer(inst, state.R, 0, 1)
        assert np.allclose(ex.col_i + ex.col_j, old, atol=1e-9)

    def test_applying_improves_total_cost_exactly(self, rng):
        inst = make_random_instance(6, rng)
        state = random_state(inst, rng)
        before = state.total_cost()
        ex = calc_best_transfer(inst, state.R, 2, 4)
        state.apply_pair_columns(2, 4, ex.col_i, ex.col_j)
        after = state.total_cost()
        assert before - after == pytest.approx(ex.improvement, rel=1e-9, abs=1e-7)

    def test_lemma2_local_optimality(self, rng):
        """After Algorithm 1 no single-organization move between i and j
        can improve ΣCi (Lemma 2)."""
        inst = make_random_instance(6, rng)
        state = random_state(inst, rng)
        i, j = 1, 3
        ex = calc_best_transfer(inst, state.R, i, j)
        state.apply_pair_columns(i, j, ex.col_i, ex.col_j)
        base = state.total_cost()
        for k in range(inst.m):
            for frac in (0.25, 1.0):
                for src, dst in ((i, j), (j, i)):
                    amount = state.R[k, src] * frac
                    if amount <= 0:
                        continue
                    trial = state.copy()
                    trial.R[k, src] -= amount
                    trial.R[k, dst] += amount
                    trial.refresh_loads()
                    assert trial.total_cost() >= base - 1e-6

    def test_self_pair_rejected(self, rng):
        inst = make_random_instance(4, rng)
        state = random_state(inst, rng)
        with pytest.raises(ValueError):
            calc_best_transfer(inst, state.R, 2, 2)
        with pytest.raises(ValueError):
            calc_best_transfer_reference(inst, state.R, 2, 2)

    def test_empty_pair_is_noop(self):
        import repro

        inst = repro.Instance(
            np.ones(3), np.array([0.0, 0.0, 5.0]), repro.homogeneous_latency(3, 1.0)
        )
        state = AllocationState.initial(inst)
        ex = calc_best_transfer(inst, state.R, 0, 1)
        assert ex.improvement == 0.0
        assert ex.moved == 0.0


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), m=st.integers(2, 12))
def test_closed_form_equals_reference(seed, m):
    """Property: the vectorized closed form reproduces the literal
    pseudo-code transcription on random states."""
    rng = np.random.default_rng(seed)
    inst = make_random_instance(m, rng)
    state = random_state(inst, rng)
    i, j = rng.choice(m, size=2, replace=False)
    fast = calc_best_transfer(inst, state.R, int(i), int(j))
    ref = calc_best_transfer_reference(inst, state.R, int(i), int(j))
    assert np.allclose(fast.col_i, ref.col_i, atol=1e-6)
    assert np.allclose(fast.col_j, ref.col_j, atol=1e-6)
    assert fast.improvement == pytest.approx(ref.improvement, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_exchange_is_idempotent(seed):
    """Property: re-running Algorithm 1 on an already balanced pair moves
    (essentially) nothing."""
    rng = np.random.default_rng(seed)
    inst = make_random_instance(6, rng)
    state = random_state(inst, rng)
    ex = calc_best_transfer(inst, state.R, 0, 1)
    state.apply_pair_columns(0, 1, ex.col_i, ex.col_j)
    again = calc_best_transfer(inst, state.R, 0, 1)
    assert again.improvement <= 1e-6
