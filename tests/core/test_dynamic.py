"""Tests for dynamic-load tracking."""

import numpy as np
import pytest

import repro
from repro.core.dynamic import DynamicBalancer, LoadProcess

from ..conftest import make_random_instance


class TestLoadProcess:
    def test_nonnegative_and_varying(self):
        proc = LoadProcess(np.full(10, 100.0), rng=0)
        a = proc.sample(0.0)
        b = proc.sample(6.0)
        assert np.all(a >= 0)
        assert not np.allclose(a, b)

    def test_rejects_negative_base(self):
        with pytest.raises(ValueError):
            LoadProcess(np.array([-1.0]))

    def test_zero_base_stays_zero(self):
        proc = LoadProcess(np.zeros(4), spike_rate=0.0, rng=0)
        assert np.all(proc.sample(3.0) == 0.0)

    def test_diurnal_wave_visible(self):
        """With noise off, the sample follows the sine."""
        proc = LoadProcess(
            np.full(1, 100.0),
            amplitude=0.5,
            period=24.0,
            noise_sigma=0.0,
            spike_rate=0.0,
            rng=0,
        )
        samples = [proc.sample(t)[0] for t in np.linspace(0, 24, 25)]
        assert max(samples) > 120.0
        assert min(samples) < 80.0

    def test_spikes_occur(self):
        proc = LoadProcess(
            np.full(5, 10.0), spike_rate=0.2, spike_factor=50.0,
            noise_sigma=0.0, amplitude=0.0, rng=1,
        )
        maxima = [proc.sample(t).max() for t in range(50)]
        assert max(maxima) > 100.0  # at least one flash crowd


class TestDynamicBalancer:
    @pytest.fixture
    def balancer(self, rng):
        inst = make_random_instance(10, rng)
        proc = LoadProcess(inst.loads * 4 + 20.0, rng=1)
        return DynamicBalancer(inst, proc, sweeps_per_epoch=3)

    def test_tracks_within_tolerance(self, balancer):
        records = balancer.run(8)
        assert len(records) == 8
        errs = [r.tracking_error for r in records]
        # a few sweeps per epoch keep the allocation near-optimal
        assert np.mean(errs) < 0.05
        assert balancer.mean_tracking_error() == pytest.approx(np.mean(errs))

    def test_warm_start_cheaper_than_cold(self, rng):
        """After the first epoch the warm-started balancer moves far less
        volume than a cold start would."""
        inst = make_random_instance(8, rng)
        proc = LoadProcess(
            inst.loads * 2 + 50.0, noise_sigma=0.02, amplitude=0.1,
            spike_rate=0.0, rng=2,
        )
        bal = DynamicBalancer(inst, proc, sweeps_per_epoch=4)
        bal.run(1)
        warm = bal.run(3)
        total_load = float(np.mean([r.cost for r in warm])) ** 0.5  # scale ref
        for r in warm:
            assert r.moved >= 0.0
        # warm epochs need at most the configured sweeps and usually stop
        # early on the stall criterion
        assert all(r.sweeps_used <= 4 for r in warm)

    def test_history_accumulates(self, balancer):
        balancer.run(2)
        balancer.run(3)
        assert len(balancer.history) == 5
        assert [r.epoch for r in balancer.history] == [0, 1, 2, 3, 4]

    def test_without_optimum_computation(self, balancer):
        records = balancer.run(2, compute_optimum=False)
        assert all(r.optimum == 0.0 for r in records)
        assert all(r.tracking_error == 0.0 for r in records)

    def test_survives_spike_epochs(self, rng):
        inst = make_random_instance(8, rng)
        proc = LoadProcess(
            inst.loads + 10.0, spike_rate=0.3, spike_factor=30.0, rng=3
        )
        bal = DynamicBalancer(inst, proc, sweeps_per_epoch=4)
        records = bal.run(6)
        assert np.mean([r.tracking_error for r in records]) < 0.10
