"""Table II — iterations of the distributed algorithm to reach a 0.1 %
relative error in ΣCi (the high-precision variant of Table I)."""

from __future__ import annotations

from repro.experiments.convergence import convergence_table

from .conftest import full_run

SIZES = (20, 30, 50, 100, 200, 300) if full_run() else (20, 30, 50)
AVG_LOADS = (10, 20, 50, 200, 1000) if full_run() else (20, 200)


def test_table2_convergence_01pct(benchmark):
    cells = benchmark.pedantic(
        lambda: convergence_table(0.001, sizes=SIZES, avg_loads=AVG_LOADS),
        rounds=1,
        iterations=1,
    )
    print()
    print("Table II (0.1% relative error):")
    for c in cells:
        print(
            f"  {c.group:<9} {c.load_kind:<12} avg={c.average:5.2f} "
            f"max={c.maximum:2d} std={c.std:4.2f}  (n={c.samples})"
        )
    # Paper finding: even at 0.1% precision the algorithm converges in at
    # most ~11 iterations ("a dozen of messages sent by each server").
    assert max(c.maximum for c in cells) <= 25

    # Consistency with Table I: higher precision cannot need fewer
    # iterations on the same grid.
    loose = convergence_table(0.02, sizes=SIZES, avg_loads=AVG_LOADS)
    loose_by = {(c.group, c.load_kind): c for c in loose}
    for c in cells:
        assert c.average >= loose_by[(c.group, c.load_kind)].average - 1e-9
