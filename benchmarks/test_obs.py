"""Observability overhead bench + trace artifacts — ``BENCH_obs.json``.

Two questions, answered every bench run:

1. **What does the instrumentation cost?**  The same deterministic
   simulation is driven with observability disabled (the default: every
   hook is a ``None`` check) and fully enabled (metrics + tracing +
   profiling); best-of-N events/s for both go to ``BENCH_obs.json``.
   The *disabled* figure is the one the perf gate protects — it must
   stay within threshold of the committed pre-instrumentation baseline
   (``check_perf.py`` compares it like every other events/s metric).
   The enabled run must also replay the identical event trace, which is
   asserted here (count equality; the determinism suite does the rest).

2. **Where do the events/s go?**  A profiled run's callback attribution
   table is merged into ``BENCH_livesim.json`` under ``"profile"`` so
   the hot-spot ranking is versioned alongside the throughput numbers.

The traced run also exports ``benchmarks/artifacts/trace_lossy.json``
(Chrome trace-event JSON, loadable at https://ui.perfetto.dev) and the
metrics snapshot next to it; CI uploads the directory, so every run
leaves an inspectable trace behind.
"""

from __future__ import annotations

import json
import pathlib

from repro import obs
from repro.livesim import LiveSimulation, get_live_preset
from repro.workloads import cached_instance, get_scenario

from .conftest import full_run, merge_bench
from .test_event_engine import calibrate_ops_per_sec

BENCH_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_obs.json"
LIVESIM_BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent / "BENCH_livesim.json"
)
ARTIFACTS_DIR = pathlib.Path(__file__).resolve().parent / "artifacts"


def _merge_bench(section: str, payload: dict) -> None:
    merge_bench(BENCH_PATH, section, payload)


def test_obs_overhead_disabled_vs_enabled():
    """Events/s with the hooks dormant vs fully armed.

    The disabled figure guards the ≤5 %-overhead goal through the perf
    gate; the enabled figure documents the cost of turning everything
    on.  Event counts must match exactly — instrumentation that changes
    the simulation is a bug regardless of speed.
    """
    sc = get_scenario("paper-planetlab")
    m = 500 if full_run() else 200
    rounds = 20 if full_run() else 12
    inst = cached_instance(sc, m, 0)
    cfg = get_live_preset("ideal")

    def make_disabled():
        return LiveSimulation(inst, config=cfg, seed=0)

    def make_enabled():
        o = obs.Observability(trace=True)
        return LiveSimulation(inst, config=cfg, seed=0, obs=o, profile=True)

    # Interleave the two configurations (after one untimed warm-up) and
    # alternate which goes first in each pair, so cache/allocator
    # warm-up cannot systematically favour either side.
    make_disabled().run(rounds=rounds)
    rep_off = rep_on = None
    for k in range(4):
        pair = [("off", make_disabled), ("on", make_enabled)]
        if k % 2:
            pair.reverse()
        for which, make in pair:
            rep = make().run(rounds=rounds)
            if which == "off":
                if rep_off is None or rep.wall_s < rep_off.wall_s:
                    rep_off = rep
            else:
                if rep_on is None or rep.wall_s < rep_on.wall_s:
                    rep_on = rep

    assert rep_on.events_processed == rep_off.events_processed, (
        "instrumentation changed the event count"
    )
    overhead = 1.0 - rep_on.events_per_sec / rep_off.events_per_sec
    # Fully-enabled tracing is allowed real cost, but the bench fails
    # loudly if it ever makes the simulator pathologically slow.
    assert rep_on.events_per_sec > 0.2 * rep_off.events_per_sec

    _merge_bench(
        "overhead",
        {
            "m": m,
            "rounds": rounds,
            "events_processed": rep_off.events_processed,
            "events_per_sec_disabled": rep_off.events_per_sec,
            "events_per_sec_enabled": rep_on.events_per_sec,
            "enabled_overhead_frac": overhead,
            "calibration_ops_per_sec": calibrate_ops_per_sec(),
        },
    )


def test_obs_trace_artifact_is_perfetto_loadable():
    """A traced lossy run exports valid Chrome trace JSON containing at
    least one full gossip.merge → agent.propose → agent.exchange causal
    chain (the acceptance criterion), plus the metrics snapshot."""
    inst = cached_instance(get_scenario("paper-planetlab"), 12, 0)
    o = obs.Observability(trace=True)
    sim = LiveSimulation(inst, config=get_live_preset("lossy"), seed=7, obs=o)
    sim.run(rounds=40)

    ARTIFACTS_DIR.mkdir(exist_ok=True)
    trace_path = ARTIFACTS_DIR / "trace_lossy.json"
    snap_path = ARTIFACTS_DIR / "snapshot_lossy.json"
    doc = o.tracer.to_chrome(trace_path)
    o.to_json(snap_path)

    loaded = json.loads(trace_path.read_text())
    assert loaded["traceEvents"], "empty trace export"
    assert loaded == doc
    names = {e["name"] for e in loaded["traceEvents"]}
    assert {"gossip.push", "gossip.merge", "agent.propose",
            "agent.exchange"} <= names

    by_sid = {s.sid: s for s in o.tracer.spans()}
    chains = 0
    for s in o.tracer.spans():
        if s.name != "agent.exchange" or s.parent is None:
            continue
        propose = by_sid.get(s.parent)
        if propose is None or propose.name != "agent.propose":
            continue
        merge = by_sid.get(propose.parent) if propose.parent else None
        if merge is not None and merge.name == "gossip.merge":
            chains += 1
    assert chains >= 1, "no merge -> propose -> exchange chain in artifact"

    _merge_bench(
        "trace_artifact",
        {
            "spans": len(o.tracer),
            "dropped": o.tracer.dropped,
            "causal_chains": chains,
            "span_names": sorted(names),
        },
    )


def test_obs_profile_attribution():
    """The profiler's callback table lands in ``BENCH_livesim.json``:
    per callback kind, calls / seconds / share, next to the throughput
    figures it explains."""
    sc = get_scenario("paper-planetlab")
    m = 500 if full_run() else 200
    inst = cached_instance(sc, m, 0)
    sim = LiveSimulation(
        inst, config=get_live_preset("ideal"), seed=0, profile=True
    )
    rep = sim.run(rounds=12 if not full_run() else 20)

    assert rep.profile is not None
    assert rep.profile["total_calls"] > 0
    kinds = [r["kind"] for r in rep.profile["rows"]]
    assert any("AsyncGossip._tick" in k for k in kinds)
    shares = [r["share"] for r in rep.profile["rows"]]
    assert abs(sum(shares) - 1.0) < 1e-9

    merge_bench(
        LIVESIM_BENCH_PATH,
        "profile",
        {
            "m": m,
            "events_processed": rep.events_processed,
            "rows": [
                {
                    "kind": r["kind"],
                    "calls": r["calls"],
                    "share": round(r["share"], 4),
                }
                for r in rep.profile["rows"][:8]
            ],
        },
    )
