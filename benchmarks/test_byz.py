"""Byzantine robustness benches — ``BENCH_byz.json``.

Two sections, refreshed every bench run:

1. **Degradation curves.**  ``error_vs_f`` per preset with the robust
   merge on (flat and under the bound up to ``f_max``), plus the legacy
   merge's error at ``f_max`` — the headline number showing what the
   robust merge buys.  Under ``REPRO_FULL=1`` the sweep extends past
   ``f_max`` to record where even the robust merge breaks (colluding
   quorums), rather than hiding it.

2. **Robust-merge overhead.**  The same honest run (no adversaries)
   under ``merge_mode="legacy"`` vs ``"robust"``; best-of-N events/s
   for both go through the perf gate (``check_perf.py`` compares every
   ``events_per_sec`` key), so neither the legacy fast path nor the
   claim-buffer machinery can silently regress.
"""

from __future__ import annotations

import pathlib

from repro.byz import BYZ_PRESETS, error_vs_f, get_byz_preset, run_byz
from repro.livesim import LiveConfig, LiveSimulation
from repro.workloads import cached_instance, get_scenario

from .conftest import full_run, merge_bench
from .test_event_engine import calibrate_ops_per_sec

BENCH_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_byz.json"

#: trimmed default grid: one self-lie model and one third-party-forgery
#: model; REPRO_FULL=1 sweeps the whole registered family.
_QUICK_PRESETS = ("byzantine-stale", "byzantine-fabricator")


def test_byz_error_vs_f_curves():
    names = (
        [p.name for p in BYZ_PRESETS] if full_run() else list(_QUICK_PRESETS)
    )
    curves = {}
    for name in names:
        p = get_byz_preset(name)
        tail = 2 if full_run() else 0
        fs = tuple(range(p.f_max + 1 + tail))
        robust = error_vs_f(p, fs=fs, robust=True)
        legacy = run_byz(p, f=p.f_max, robust=False)
        for f in range(p.f_max + 1):
            assert robust[f] <= p.error_bound, (
                f"{name}: robust error {robust[f]:.4f} at f={f}"
            )
        assert legacy.error > p.error_bound, (
            f"{name}: legacy merge no longer fails at f={p.f_max}"
        )
        curves[name] = {
            "f_max": p.f_max,
            "error_bound": p.error_bound,
            "rounds": p.rounds,
            "robust": {str(f): robust[f] for f in fs},
            "legacy_at_f_max": legacy.error,
        }
    merge_bench(BENCH_PATH, "error_vs_f", curves)


def test_byz_robust_merge_overhead():
    """Honest-run throughput cost of the claim-buffer merge path."""
    m = 500 if full_run() else 200
    rounds = 20 if full_run() else 12
    inst = cached_instance(get_scenario("paper-planetlab"), m, 0)

    def make(mode):
        return LiveSimulation(
            inst, config=LiveConfig(merge_mode=mode), seed=0
        )

    make("legacy").run(rounds=rounds)  # untimed warm-up
    rep_legacy = rep_robust = None
    for k in range(4):
        pair = [("legacy", rep_legacy), ("robust", rep_robust)]
        if k % 2:
            pair.reverse()
        for mode, _ in pair:
            rep = make(mode).run(rounds=rounds)
            if mode == "legacy":
                if rep_legacy is None or rep.wall_s < rep_legacy.wall_s:
                    rep_legacy = rep
            else:
                if rep_robust is None or rep.wall_s < rep_robust.wall_s:
                    rep_robust = rep

    # The robust path may cost real throughput, but the bench fails
    # loudly if it ever makes the simulator pathologically slow.
    assert rep_robust.events_per_sec > 0.1 * rep_legacy.events_per_sec
    merge_bench(
        BENCH_PATH,
        "robust_merge_overhead",
        {
            "m": m,
            "rounds": rounds,
            "events_per_sec_legacy": rep_legacy.events_per_sec,
            "events_per_sec_robust": rep_robust.events_per_sec,
            "robust_overhead_frac": 1.0
            - rep_robust.events_per_sec / rep_legacy.events_per_sec,
            "calibration_ops_per_sec": calibrate_ops_per_sec(),
        },
    )
