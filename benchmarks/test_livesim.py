"""Livesim acceptance + throughput bench — ``BENCH_livesim.json``.

Two benches cover the subsystem's acceptance criteria:

* :func:`test_livesim_all_presets_converge` — on every registered
  scenario preset, the *asynchronous* control plane (zero churn, zero
  message loss) converges to a total cost within the paper's 2 % error
  bound of the offline optimum, entirely through RTT-delayed gossip and
  propose/accept handshakes.
* :func:`test_livesim_churn_reconverges` — under the ``churn`` preset
  (≥5 % of servers restarting, plus message loss) the plane re-converges
  to within the bound after every failure event.

Both write their measurements — events/sec throughput, time-to-within-
bound per preset (in sim time and agent rounds) and cost-vs-time curves
— into ``benchmarks/BENCH_livesim.json`` so the perf trajectory is
tracked PR-over-PR.  ``REPRO_FULL=1`` runs each scenario at its native
production size.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.livesim import LiveSimulation, get_live_preset
from repro.workloads import PRESETS, cached_instance, cached_optimum

from .conftest import full_run

REL_TOL = 0.02  # the paper's Table I convergence bound
ROUNDS = 120 if full_run() else 80
CHURN_ROUNDS = 240 if full_run() else 160

BENCH_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_livesim.json"


def _size(sc) -> int:
    return sc.m if full_run() else 16


def _merge_bench(section: str, payload: dict) -> None:
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _curve(report, stride: int = 4) -> list[list[float]]:
    """The (t, ΣCi) trajectory, thinned for the JSON."""
    pts = list(zip(report.times.tolist(), report.costs.tolist()))
    return [list(p) for p in pts[::stride]] + [list(pts[-1])]


def test_livesim_all_presets_converge():
    rows = {}
    for sc in PRESETS:
        m = _size(sc)
        inst = cached_instance(sc, m, 0)
        opt_state, opt_cost, _, _ = cached_optimum(sc, m, 0)
        sim = LiveSimulation(
            inst, config=get_live_preset("ideal"), seed=0, optimum=opt_state
        )
        report = sim.run(rounds=ROUNDS)
        interval = sim.config.agent_interval
        ttw = report.time_to_within(REL_TOL)

        assert report.final_error <= REL_TOL, (
            f"{sc.name}: async MinE ended {report.final_error:.3%} above "
            f"the offline optimum (bound {REL_TOL:.0%})"
        )
        assert np.isfinite(ttw)

        rows[sc.name] = {
            "m": m,
            "optimal_cost": opt_cost,
            "final_error": report.final_error,
            "time_to_bound": ttw,
            "rounds_to_bound": ttw / interval,
            "exchanges": report.agents.exchanges,
            "proposals": report.agents.proposals,
            "messages": report.net.sent,
            "events_processed": report.events_processed,
            "events_per_sec": report.events_per_sec,
            "mean_view_age_rounds": report.mean_view_age / interval,
            "cost_curve": _curve(report),
        }
        print(
            f"  {sc.name:<22} m={m:<3d} err={report.final_error:9.2e} "
            f"t_bound={ttw / interval:6.1f} rounds "
            f"ev/s={report.events_per_sec:9.0f}"
        )

    _merge_bench(
        "async_ideal",
        {"rel_tol": REL_TOL, "rounds": ROUNDS, "presets": rows},
    )


def test_livesim_churn_reconverges():
    sc = next(s for s in PRESETS if s.name == "paper-planetlab")
    m = _size(sc)
    inst = cached_instance(sc, m, 0)
    opt_state, _, _, _ = cached_optimum(sc, m, 0)
    sim = LiveSimulation(
        inst, config=get_live_preset("churn"), seed=3, optimum=opt_state
    )
    report = sim.run(rounds=CHURN_ROUNDS)
    interval = sim.config.agent_interval

    # Real churn happened: at least 5 % of the fleet restarted.
    assert len(report.failures) >= max(1, int(0.05 * m))
    # Failures genuinely perturbed the allocation...
    assert report.relative_errors().max() > REL_TOL
    # ...and the plane re-converged within the bound after every one.
    reconv = report.reconvergence_times(REL_TOL)
    assert all(np.isfinite(t) for t in reconv), (
        f"unrecovered failures: {[f for f, t in zip(report.failures, reconv) if not np.isfinite(t)]}"
    )
    assert report.final_error <= REL_TOL

    lags = [
        (t_re - t_f) / interval for (t_f, _), t_re in zip(report.failures, reconv)
    ]
    _merge_bench(
        "churn",
        {
            "rel_tol": REL_TOL,
            "rounds": CHURN_ROUNDS,
            "scenario": sc.name,
            "m": m,
            "restarts": len(report.failures),
            "restart_fraction": len(report.failures) / m,
            "message_drop_rate": get_live_preset("churn").p_drop,
            "reconvergence_lag_rounds_mean": float(np.mean(lags)),
            "reconvergence_lag_rounds_max": float(np.max(lags)),
            "final_error": report.final_error,
            "events_per_sec": report.events_per_sec,
            "cost_curve": _curve(report),
        },
    )
    print(
        f"  churn: {len(report.failures)} restarts "
        f"({len(report.failures) / m:.0%} of fleet), mean reconvergence "
        f"{np.mean(lags):.1f} rounds, final err {report.final_error:.2e}"
    )
