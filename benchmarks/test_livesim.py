"""Livesim acceptance + throughput bench — ``BENCH_livesim.json``.

Three benches cover the subsystem's acceptance criteria:

* :func:`test_livesim_all_presets_converge` — on every registered
  scenario preset, the *asynchronous* control plane (zero churn, zero
  message loss) converges to a total cost within the paper's 2 % error
  bound of the offline optimum, entirely through RTT-delayed gossip and
  propose/accept handshakes.  Each preset row also records
  ``speedup_vs_pr3`` — its events/s over the PR-3 control plane's
  (generator processes, unbatched gossip, fixed agent intervals, heap
  drain), whose measurements are frozen below.
* :func:`test_livesim_churn_reconverges` — under the ``churn`` preset
  (≥5 % of servers restarting, plus message loss) the plane re-converges
  to within the bound after every failure event.
* :func:`test_livesim_m2000_scale` — the fast-path acceptance case: a
  production-sized fleet (m = 2000, ``lossy`` preset, screened partner
  proposals) converging to the same 2 % bound inside the CI budget.
  Also the batched-kernel speedup gate: its events/s must stay ≥1.5x
  the frozen PR-6 figure (calibration-normalized), recorded as
  ``speedup_vs_pr6``.
* :func:`test_livesim_m5000_scale` — the batched-kernel scale case:
  m = 5000 on the lossy preset to the same bound, asserting the
  per-proposal kernel dispatch count collapsed (≥10 candidates per
  Algorithm 1 call, from the ``agents.kernel_calls`` /
  ``agents.kernel_candidates`` counters).

All write their measurements — events/sec throughput, time-to-within-
bound per preset (in sim time and agent rounds) and cost-vs-time curves
— into ``benchmarks/BENCH_livesim.json`` so the perf trajectory is
tracked PR-over-PR (``benchmarks/check_perf.py`` gates regressions).
``REPRO_FULL=1`` runs each scenario at its native production size.
"""

from __future__ import annotations

import dataclasses
import pathlib

import numpy as np

from repro.livesim import LiveSimulation, get_live_preset
from repro.workloads import PRESETS, cached_instance, cached_optimum

from .conftest import full_run, merge_bench, scale_only
from .test_event_engine import calibrate_ops_per_sec

REL_TOL = 0.02  # the paper's Table I convergence bound
ROUNDS = 120 if full_run() else 80
CHURN_ROUNDS = 240 if full_run() else 160

#: m = 2000 scale case: round budget and the screened candidate count
#: (width 8 converges a hair slower in rounds but much faster in wall
#: time than the default 16 at this size).
M2000_ROUNDS_MAX = 90
M2000_SCREEN_WIDTH = 8

#: m = 5000 scale case: the default screened width (16) — the batched
#: kernel evaluates the whole candidate set in one dispatch, so the
#: wider screen costs almost nothing and converges in fewer rounds.
M5000_ROUNDS_MAX = 90
#: Minimum candidates per Algorithm 1 dispatch at m = 5000 (screen
#: width 16 yields ~16–24 per proposal; ~20 per-pair calls pre-batch).
M5000_KERNEL_BATCH_MIN = 10.0

#: The PR-6 m=2000 lossy figures (events/s and the same-run machine
#: calibration), frozen so the batched-kernel speedup survives
#: ``BENCH_livesim.json`` being overwritten with fresh numbers.
PR6_M2000 = {
    "events_per_sec": 9742.52317537061,
    "calibration_ops_per_sec": 25411470.470989317,
}
#: ISSUE-7 acceptance: the m=2000 lossy bench must run ≥1.5x the PR-6
#: events/s after calibration normalization.
M2000_MIN_SPEEDUP_VS_PR6 = 1.5

#: events/s of the PR-3 control plane on the same m=16/80-round preset
#: grid, frozen here so the recorded speedup survives the BENCH file
#: being overwritten with fresh numbers.  Measured as a same-machine,
#: same-session A/B: the PR-3 code checked out into a worktree and run
#: with the identical best-of-3 loop minutes before the PR-4 numbers
#: were recorded, so machine-speed drift cancels out of the ratio.
PR3_EVENTS_PER_SEC = {
    "paper-homogeneous": 31830.0,
    "paper-planetlab": 32877.0,
    "cdn-flashcrowd": 30618.0,
    "federation-diurnal": 30963.0,
    "datacenter-fattree": 32509.0,
    "hub-heavytail": 25348.0,
    "regional-surge": 32440.0,
}

BENCH_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_livesim.json"


def _size(sc) -> int:
    return sc.m if full_run() else 16


def _merge_bench(section: str, payload: dict) -> None:
    merge_bench(BENCH_PATH, section, payload)


def _curve(report, stride: int = 4) -> list[list[float]]:
    """The (t, ΣCi) trajectory, thinned for the JSON."""
    pts = list(zip(report.times.tolist(), report.costs.tolist()))
    return [list(p) for p in pts[::stride]] + [list(pts[-1])]


def _best_of(n: int, make_sim, rounds: int):
    """Run the same deterministic simulation ``n`` times and return the
    (sim, report) of the fastest run: the trace is identical every time,
    so the minimum wall clock is the least-interference measurement."""
    best = None
    for _ in range(n):
        sim = make_sim()
        report = sim.run(rounds=rounds)
        if best is None or report.wall_s < best[1].wall_s:
            best = (sim, report)
    return best


def test_livesim_all_presets_converge():
    rows = {}
    for sc in PRESETS:
        m = _size(sc)
        inst = cached_instance(sc, m, 0)
        opt_state, opt_cost, _, _ = cached_optimum(sc, m, 0)
        sim, report = _best_of(
            3,
            lambda: LiveSimulation(
                inst, config=get_live_preset("ideal"), seed=0, optimum=opt_state
            ),
            ROUNDS,
        )
        interval = sim.config.agent_interval
        ttw = report.time_to_within(REL_TOL)

        assert report.final_error <= REL_TOL, (
            f"{sc.name}: async MinE ended {report.final_error:.3%} above "
            f"the offline optimum (bound {REL_TOL:.0%})"
        )
        assert np.isfinite(ttw)

        pr3 = PR3_EVENTS_PER_SEC.get(sc.name) if m == 16 else None
        rows[sc.name] = {
            "m": m,
            "optimal_cost": opt_cost,
            "final_error": report.final_error,
            "time_to_bound": ttw,
            "rounds_to_bound": ttw / interval,
            "exchanges": report.agents.exchanges,
            "proposals": report.agents.proposals,
            "skipped_proposals": report.agents.skipped_proposals,
            "messages": report.net.sent,
            "events_processed": report.events_processed,
            "events_per_sec": report.events_per_sec,
            "speedup_vs_pr3": (
                report.events_per_sec / pr3 if pr3 is not None else None
            ),
            "mean_view_age_rounds": report.mean_view_age / interval,
            "cost_curve": _curve(report),
        }
        print(
            f"  {sc.name:<22} m={m:<3d} err={report.final_error:9.2e} "
            f"t_bound={ttw / interval:6.1f} rounds "
            f"ev/s={report.events_per_sec:9.0f}"
            + (f" ({report.events_per_sec / pr3:.1f}x PR-3)" if pr3 else "")
        )

    _merge_bench(
        "async_ideal",
        {"rel_tol": REL_TOL, "rounds": ROUNDS, "presets": rows},
    )


def test_livesim_churn_reconverges():
    sc = next(s for s in PRESETS if s.name == "paper-planetlab")
    m = _size(sc)
    inst = cached_instance(sc, m, 0)
    opt_state, _, _, _ = cached_optimum(sc, m, 0)
    sim, report = _best_of(
        2,
        lambda: LiveSimulation(
            inst, config=get_live_preset("churn"), seed=3, optimum=opt_state
        ),
        CHURN_ROUNDS,
    )
    interval = sim.config.agent_interval

    # Real churn happened: at least 5 % of the fleet restarted.
    assert len(report.failures) >= max(1, int(0.05 * m))
    # Failures genuinely perturbed the allocation...
    assert report.relative_errors().max() > REL_TOL
    # ...and the plane re-converged within the bound after every one.
    reconv = report.reconvergence_times(REL_TOL)
    assert all(np.isfinite(t) for t in reconv), (
        f"unrecovered failures: {[f for f, t in zip(report.failures, reconv) if not np.isfinite(t)]}"
    )
    assert report.final_error <= REL_TOL

    lags = [
        (t_re - t_f) / interval for (t_f, _), t_re in zip(report.failures, reconv)
    ]
    _merge_bench(
        "churn",
        {
            "rel_tol": REL_TOL,
            "rounds": CHURN_ROUNDS,
            "scenario": sc.name,
            "m": m,
            "restarts": len(report.failures),
            "restart_fraction": len(report.failures) / m,
            "message_drop_rate": get_live_preset("churn").p_drop,
            "reconvergence_lag_rounds_mean": float(np.mean(lags)),
            "reconvergence_lag_rounds_max": float(np.max(lags)),
            "final_error": report.final_error,
            "events_per_sec": report.events_per_sec,
            "cost_curve": _curve(report),
        },
    )
    print(
        f"  churn: {len(report.failures)} restarts "
        f"({len(report.failures) / m:.0%} of fleet), mean reconvergence "
        f"{np.mean(lags):.1f} rounds, final err {report.final_error:.2e}"
    )


def test_livesim_m2000_scale():
    """The ISSUE-4 scale acceptance case: a production-sized fleet on the
    lossy preset converges to the paper's 2 % bound in CI time.

    m = 2000 exercises every fast-path layer at once: the screened O(m)
    partner proposals (exact evaluation would cost seconds per
    proposal), the packed-ndarray gossip tables, the transposed-R
    transfer kernel, adaptive back-off, and the scheduler auto-promotion
    machinery.
    """
    sc = next(s for s in PRESETS if s.name == "regional-surge")
    m = 2000
    inst = cached_instance(sc, m, 0)
    opt_state, opt_cost, solve_wall, _ = cached_optimum(sc, m, 0)
    cfg = dataclasses.replace(
        get_live_preset("lossy"), agent_screen_width=M2000_SCREEN_WIDTH
    )
    sim = LiveSimulation(inst, config=cfg, seed=0, optimum=opt_state)
    # Chunked run with early exit: identical to one long run (the
    # determinism suite asserts split == long), but CI stops paying the
    # moment the bound is reached.
    report = sim.run(rounds=30)
    while report.final_error > REL_TOL and report.horizon < (
        M2000_ROUNDS_MAX * sim.config.agent_interval
    ):
        report = sim.run(rounds=10)
    interval = sim.config.agent_interval
    ttw = report.time_to_within(REL_TOL)

    assert report.net.dropped > 0  # the lossy preset really dropped messages
    assert report.final_error <= REL_TOL, (
        f"m=2000 lossy run ended {report.final_error:.3%} above the "
        f"offline optimum (bound {REL_TOL:.0%}) after "
        f"{report.horizon / interval:.0f} rounds"
    )
    assert np.isfinite(ttw)

    # The batched-kernel speedup gate: normalize the frozen PR-6 figure
    # to this machine's speed, then require >= 1.5x over it.
    cal = calibrate_ops_per_sec()
    pr6_here = PR6_M2000["events_per_sec"] * (
        cal / PR6_M2000["calibration_ops_per_sec"]
    )
    speedup_vs_pr6 = report.events_per_sec / pr6_here
    assert speedup_vs_pr6 >= M2000_MIN_SPEEDUP_VS_PR6, (
        f"m=2000 lossy ran {report.events_per_sec:.0f} ev/s vs a "
        f"calibration-normalized PR-6 baseline of {pr6_here:.0f} — only "
        f"{speedup_vs_pr6:.2f}x (need >= {M2000_MIN_SPEEDUP_VS_PR6}x)"
    )

    agents = report.agents
    _merge_bench(
        "m2000",
        {
            "scenario": sc.name,
            "m": m,
            "preset": "lossy",
            "rel_tol": REL_TOL,
            "screen_width": M2000_SCREEN_WIDTH,
            "optimal_cost": opt_cost,
            "optimum_solve_wall_s": solve_wall,
            "final_error": report.final_error,
            "rounds_to_bound": ttw / interval,
            "rounds_run": report.horizon / interval,
            "exchanges": agents.exchanges,
            "proposals": agents.proposals,
            "skipped_proposals": agents.skipped_proposals,
            "kernel_calls": agents.kernel_calls,
            "kernel_candidates": agents.kernel_candidates,
            "kernel_candidates_per_call": (
                agents.kernel_candidates / max(1, agents.kernel_calls)
            ),
            "messages": report.net.sent,
            "dropped": report.net.dropped,
            "events_processed": report.events_processed,
            "events_per_sec": report.events_per_sec,
            "speedup_vs_pr6": speedup_vs_pr6,
            "sim_wall_s": report.wall_s,
            "scheduler_in_use": sim.env.scheduler_in_use,
            "mean_view_age_rounds": report.mean_view_age / interval,
            "cost_curve": _curve(report, stride=16),
        },
    )
    print(
        f"  m=2000 {sc.name} lossy: err={report.final_error:.2e} at "
        f"{report.horizon / interval:.0f} rounds "
        f"(bound hit at {ttw / interval:.0f}), "
        f"{report.events_processed} events in {report.wall_s:.0f}s "
        f"({report.events_per_sec:.0f} ev/s, {speedup_vs_pr6:.2f}x PR-6)"
    )


@scale_only
def test_livesim_m5000_scale():
    """The ISSUE-7 scale acceptance case: m = 5000 on the lossy preset
    converges to the 2 % bound in CI, with the batched transfer kernel
    collapsing ~20 per-pair dispatches per proposal into one.

    Runs at the *default* screen width (16): pre-batch, m = 2000 needed
    width 8 to stay inside the CI budget; the batched kernel makes the
    wider screen nearly free, so the larger fleet still converges in a
    comparable round count.  Adaptive gossip trims steady-state traffic
    once views stop churning.
    """
    sc = next(s for s in PRESETS if s.name == "regional-surge")
    m = 5000
    inst = cached_instance(sc, m, 0)
    opt_state, opt_cost, solve_wall, _ = cached_optimum(sc, m, 0)
    cfg = dataclasses.replace(get_live_preset("lossy"), gossip_adaptive=True)
    sim = LiveSimulation(inst, config=cfg, seed=0, optimum=opt_state)
    report = sim.run(rounds=30)
    while report.final_error > REL_TOL and report.horizon < (
        M5000_ROUNDS_MAX * sim.config.agent_interval
    ):
        report = sim.run(rounds=10)
    interval = sim.config.agent_interval
    ttw = report.time_to_within(REL_TOL)

    assert report.net.dropped > 0
    assert report.final_error <= REL_TOL, (
        f"m=5000 lossy run ended {report.final_error:.3%} above the "
        f"offline optimum (bound {REL_TOL:.0%}) after "
        f"{report.horizon / interval:.0f} rounds"
    )
    assert np.isfinite(ttw)

    # The kernel-dispatch collapse: one batched call covers the whole
    # screened candidate set (~20 per-pair calls before this kernel).
    agents = report.agents
    batchiness = agents.kernel_candidates / max(1, agents.kernel_calls)
    assert batchiness >= M5000_KERNEL_BATCH_MIN, (
        f"batched kernel averaged {batchiness:.1f} candidates per "
        f"dispatch (need >= {M5000_KERNEL_BATCH_MIN}): the per-proposal "
        f"kernel-call collapse regressed"
    )

    _merge_bench(
        "m5000",
        {
            "scenario": sc.name,
            "m": m,
            "preset": "lossy",
            "rel_tol": REL_TOL,
            "screen_width": cfg.agent_screen_width,
            "gossip_adaptive": True,
            "optimal_cost": opt_cost,
            "optimum_solve_wall_s": solve_wall,
            "final_error": report.final_error,
            "rounds_to_bound": ttw / interval,
            "rounds_run": report.horizon / interval,
            "exchanges": agents.exchanges,
            "proposals": agents.proposals,
            "skipped_proposals": agents.skipped_proposals,
            "kernel_calls": agents.kernel_calls,
            "kernel_candidates": agents.kernel_candidates,
            "kernel_candidates_per_call": batchiness,
            "messages": report.net.sent,
            "dropped": report.net.dropped,
            "payload_bytes": report.gossip.payload_bytes,
            "gossip_interval_final": sim.gossip.mean_interval(),
            "events_processed": report.events_processed,
            "events_per_sec": report.events_per_sec,
            "sim_wall_s": report.wall_s,
            "scheduler_in_use": sim.env.scheduler_in_use,
            "mean_view_age_rounds": report.mean_view_age / interval,
            "cost_curve": _curve(report, stride=16),
        },
    )
    print(
        f"  m=5000 {sc.name} lossy: err={report.final_error:.2e} at "
        f"{report.horizon / interval:.0f} rounds "
        f"(bound hit at {ttw / interval:.0f}), "
        f"{report.events_processed} events in {report.wall_s:.0f}s "
        f"({report.events_per_sec:.0f} ev/s, "
        f"{batchiness:.1f} candidates/kernel call)"
    )


@scale_only
def test_livesim_m5000_split_equals_long():
    """m = 5000 determinism: a chunked run (the early-exit loop above)
    replays one long run event-for-event, adaptive gossip included."""
    sc = next(s for s in PRESETS if s.name == "regional-surge")
    inst = cached_instance(sc, 5000, 0)
    cfg = dataclasses.replace(get_live_preset("lossy"), gossip_adaptive=True)

    sim_long = LiveSimulation(inst, config=cfg, seed=0)
    rep_long = sim_long.run(rounds=6)
    trace_long = rep_long.trace
    R_long = sim_long.state.R.copy()
    agents_long = sim_long.agents.stats
    del sim_long  # ~1 GB of gossip tables: free before the second fleet

    sim_split = LiveSimulation(inst, config=cfg, seed=0)
    sim_split.run(rounds=3)
    rep_split = sim_split.run(rounds=3)
    assert trace_long == rep_split.trace
    np.testing.assert_array_equal(R_long, sim_split.state.R)
    assert agents_long == sim_split.agents.stats
