"""Workload sweep — throughput of the engine-driven batch runner.

Two benches:

* :func:`test_workload_sweep_all_presets` sweeps every registered preset
  through the full solver + simulator stack and reports per-cell wall
  time (the historical throughput bench).
* :func:`test_sweep_backend_speedup` runs the same 7-preset grid on the
  ``serial`` and ``process`` backends, asserts the results are
  identical, and writes ``benchmarks/BENCH_sweep.json`` — per-cell and
  per-solver wall times plus the parallel speedup — so the perf
  trajectory is tracked PR-over-PR.  The ≥2× speedup assertion only
  applies on machines with ≥4 cores (a single-core box cannot speed up).

The trimmed grid keeps the default suite fast; ``REPRO_FULL=1`` runs
production-sized networks.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.workloads import PRESETS, ScenarioRunner, clear_cache

from .conftest import full_run

SIZES = (50, 100, 200) if full_run() else (12, 20)
SEEDS = (0, 1, 2) if full_run() else (0, 1)

#: Grid of the backend-speedup bench: all 7 presets.  The full grid's
#: cells are big enough that per-cell solver work dwarfs process-pool
#: overhead, which is where the >=2x assertion applies.
SPEEDUP_SIZES = (50, 100, 200) if full_run() else (24, 40)
SPEEDUP_SEEDS = (0, 1, 2) if full_run() else (0,)


def assert_speedup() -> bool:
    """Enforce the >=2x criterion: on by default for REPRO_FULL runs
    (whose cells amortize pool startup), opt-in/out via
    ``REPRO_ASSERT_SPEEDUP`` — wall-clock asserts on tiny grids or noisy
    shared runners are a flake source, so the default suite only
    *measures*."""
    explicit = os.environ.get("REPRO_ASSERT_SPEEDUP")
    if explicit is not None:
        return explicit == "1"
    return full_run()

BENCH_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_sweep.json"


def test_workload_sweep_all_presets(benchmark):
    names = sorted(s.name for s in PRESETS)
    runner = ScenarioRunner(
        names,
        sizes=SIZES,
        seeds=SEEDS,
        mine_max_iterations=30,
        mine_rel_tol=0.01,
        stream_events_target=1000.0,
    )
    report = benchmark.pedantic(runner.run, rounds=1, iterations=1)

    assert len(report) == len(names) * len(SIZES) * len(SEEDS)
    print()
    print(f"scenario sweep: {len(report)} cells "
          f"({len(names)} scenarios × {SIZES} × {len(SEEDS)} seeds)")
    for row in report.summary():
        print(
            f"  {row['scenario']:<22} m={row['m']:<4d} "
            f"opt={row['optimal_cost']:12.1f} "
            f"MinE err={row['mine_final_error']:7.4f} "
            f"PoA={row['poa_ratio']:6.3f} "
            f"latency={row['stream_mean_latency']:7.2f} ms"
        )
    # Every cell produced a full metric row.
    assert all(r.optimal_cost > 0 for r in report)
    assert all(r.mine_iterations >= 1 for r in report)
    assert all(r.stream_completed > 0 for r in report)
    # The distributed algorithm lands near the optimum on every scenario
    # family, not just the paper's two.
    assert max(r.mine_final_error for r in report) < 0.25

    total = sum(r.elapsed_s for r in report)
    slowest = max(report, key=lambda r: r.elapsed_s)
    print(f"  total solver time {total:.2f} s; slowest cell "
          f"{slowest.scenario} m={slowest.m} at {slowest.elapsed_s:.2f} s")


def test_sweep_backend_speedup():
    names = sorted(s.name for s in PRESETS)
    runner = ScenarioRunner(
        names,
        sizes=SPEEDUP_SIZES,
        seeds=SPEEDUP_SEEDS,
        mine_max_iterations=30,
        mine_rel_tol=0.01,
        stream_events_target=1000.0,
    )

    # Each timed run starts from a cold memo cache: forked workers would
    # otherwise inherit the serial run's warm optima and the "speedup"
    # would measure cache hits instead of parallel solving.
    clear_cache()
    t0 = time.perf_counter()
    serial = runner.run(backend="serial")
    serial_wall = time.perf_counter() - t0

    cores = os.cpu_count() or 1
    clear_cache()
    t0 = time.perf_counter()
    parallel = runner.run(backend="process")
    process_wall = time.perf_counter() - t0

    # The tentpole guarantee: where a cell runs never changes what it
    # computes (ScenarioReport equality ignores wall-clock fields).
    assert serial == parallel

    if cores >= 4 and assert_speedup():
        # Best of two on multi-core machines: the first run pays the
        # one-off interpreter/numpy warm-up in every worker, and shared
        # CI runners are noisy.
        clear_cache()
        t0 = time.perf_counter()
        again = runner.run(backend="process")
        process_wall = min(process_wall, time.perf_counter() - t0)
        assert serial == again

    speedup = serial_wall / process_wall if process_wall > 0 else float("inf")

    per_solver = {
        stage: float(sum(getattr(r, f"{stage}_s") for r in serial))
        for stage in ("optimal", "mine", "poa", "stream")
    }
    bench = {
        "bench": "test_sweep_backend_speedup",
        "full_run": full_run(),
        "cpu_count": cores,
        "grid": {
            "scenarios": names,
            "sizes": list(SPEEDUP_SIZES),
            "seeds": list(SPEEDUP_SEEDS),
            "cells": len(serial),
        },
        "serial_wall_s": serial_wall,
        "process_wall_s": process_wall,
        "speedup": speedup,
        "per_solver_wall_s": per_solver,
        "per_cell": [
            {
                "scenario": r.scenario,
                "m": r.m,
                "seed": r.seed,
                "elapsed_s": r.elapsed_s,
                "optimal_s": r.optimal_s,
                "mine_s": r.mine_s,
                "poa_s": r.poa_s,
                "stream_s": r.stream_s,
            }
            for r in serial
        ],
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=1) + "\n")

    print()
    print(f"backend speedup: {len(serial)} cells on {cores} cores — "
          f"serial {serial_wall:.2f} s, process {process_wall:.2f} s "
          f"({speedup:.2f}x)")
    print(f"  per-solver serial totals: "
          + ", ".join(f"{k}={v:.2f}s" for k, v in per_solver.items()))
    print(f"  wrote {BENCH_PATH}")

    # Acceptance criterion: >=2x wall-clock on a >=4-core machine
    # (enforced on the full grid / explicit opt-in; see assert_speedup).
    if cores >= 4 and assert_speedup():
        assert speedup >= 2.0, (
            f"expected >=2x process-backend speedup on {cores} cores, "
            f"got {speedup:.2f}x"
        )
