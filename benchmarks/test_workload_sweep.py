"""Workload sweep — throughput of the config-driven batch runner.

Sweeps every registered preset through the full solver + simulator stack
and reports per-cell wall time.  The trimmed grid keeps the default suite
fast; ``REPRO_FULL=1`` runs production-sized networks.
"""

from __future__ import annotations

from repro.workloads import PRESETS, ScenarioRunner

from .conftest import full_run

SIZES = (50, 100, 200) if full_run() else (12, 20)
SEEDS = (0, 1, 2) if full_run() else (0, 1)


def test_workload_sweep_all_presets(benchmark):
    names = sorted(s.name for s in PRESETS)
    runner = ScenarioRunner(
        names,
        sizes=SIZES,
        seeds=SEEDS,
        mine_max_iterations=30,
        mine_rel_tol=0.01,
        stream_events_target=1000.0,
    )
    report = benchmark.pedantic(runner.run, rounds=1, iterations=1)

    assert len(report) == len(names) * len(SIZES) * len(SEEDS)
    print()
    print(f"scenario sweep: {len(report)} cells "
          f"({len(names)} scenarios × {SIZES} × {len(SEEDS)} seeds)")
    for row in report.summary():
        print(
            f"  {row['scenario']:<22} m={row['m']:<4d} "
            f"opt={row['optimal_cost']:12.1f} "
            f"MinE err={row['mine_final_error']:7.4f} "
            f"PoA={row['poa_ratio']:6.3f} "
            f"latency={row['stream_mean_latency']:7.2f} ms"
        )
    # Every cell produced a full metric row.
    assert all(r.optimal_cost > 0 for r in report)
    assert all(r.mine_iterations >= 1 for r in report)
    assert all(r.stream_completed > 0 for r in report)
    # The distributed algorithm lands near the optimum on every scenario
    # family, not just the paper's two.
    assert max(r.mine_final_error for r in report) < 0.25

    total = sum(r.elapsed_s for r in report)
    slowest = max(report, key=lambda r: r.elapsed_s)
    print(f"  total solver time {total:.2f} s; slowest cell "
          f"{slowest.scenario} m={slowest.m} at {slowest.elapsed_s:.2f} s")
