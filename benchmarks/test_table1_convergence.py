"""Table I — iterations of the distributed algorithm to reach a 2 %
relative error in ΣCi.

The benchmarked callable regenerates the table; the assertions check the
paper's qualitative findings: convergence within a dozen iterations, peak
distribution slowest, iteration counts growing (weakly) with precision.
"""

from __future__ import annotations

from repro.experiments.convergence import convergence_table

from .conftest import full_run

SIZES = (20, 30, 50, 100, 200, 300) if full_run() else (20, 30, 50)
AVG_LOADS = (10, 20, 50, 200, 1000) if full_run() else (20, 200)


def test_table1_convergence_2pct(benchmark):
    cells = benchmark.pedantic(
        lambda: convergence_table(0.02, sizes=SIZES, avg_loads=AVG_LOADS),
        rounds=1,
        iterations=1,
    )
    print()
    print("Table I (2% relative error):")
    for c in cells:
        print(
            f"  {c.group:<9} {c.load_kind:<12} avg={c.average:5.2f} "
            f"max={c.maximum:2d} std={c.std:4.2f}  (n={c.samples})"
        )
    by = {(c.group, c.load_kind): c for c in cells}
    # Paper finding: every setting converges within a dozen iterations.
    assert max(c.maximum for c in cells) <= 15
    # Paper finding: the peak distribution needs at least as many
    # iterations as the uniform one for each size group.
    for group in {c.group for c in cells}:
        assert by[(group, "peak")].average >= by[(group, "uniform")].average - 1e-9
