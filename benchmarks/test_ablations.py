"""Ablation benches for the design choices called out in DESIGN.md.

A1 — negative-cycle removal on/off (the paper found it unnecessary in
     practice, Section VI-B);
A2 — partner screening width versus the exact argmax;
A3 — gossip-stale load views versus oracle loads;
A4 — solver shoot-out: the distributed algorithm versus the centralized
     FISTA / coordinate-descent solvers (the paper's claim that the
     distributed algorithm outperforms standard solvers).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.core.distributed import MinEOptimizer
from repro.experiments.common import Setting, make_instance


@pytest.fixture(scope="module")
def instance():
    return make_instance(Setting(40, "exponential", 100, "planetlab"))


@pytest.fixture(scope="module")
def optimum(instance):
    return repro.solve_coordinate_descent(instance).total_cost()


def test_a1_negative_cycle_removal(benchmark, instance, optimum):
    """Removal is at best a small help (paper, §VI-B: 'the number of
    iterations ... were exactly the same in all 6000 experiments').  The
    dismantled relays can save an intermediate sweep, so we assert removal
    never *hurts*: no extra iterations and an equally good final cost."""

    def run(cycle_every):
        st = repro.AllocationState.initial(instance)
        trace = MinEOptimizer(st, rng=3, cycle_removal_every=cycle_every).run(
            max_iterations=40, optimum=optimum, rel_tol=0.001
        )
        return trace.iterations, st.total_cost()

    it_with, cost_with = benchmark.pedantic(
        lambda: run(2), rounds=1, iterations=1
    )
    it_without, cost_without = run(None)
    print(f"\nA1: iterations with removal={it_with}, without={it_without}")
    assert it_with <= it_without
    # Both runs stop at the same 0.1% relative-error criterion.
    assert cost_with <= cost_without * (1 + 2e-3)
    assert cost_with == pytest.approx(optimum, rel=2e-3)


def test_a2_screening_width(benchmark, instance, optimum):
    """Narrow screening reaches (nearly) the same quality as the exact
    argmax: same final cost within 1 %, a handful of extra iterations at
    the 2 % precision level."""

    def run(strategy, width=16):
        st = repro.AllocationState.initial(instance)
        trace = MinEOptimizer(
            st, rng=3, strategy=strategy, screen_width=width
        ).run(max_iterations=40, optimum=optimum, rel_tol=0.02)
        return trace.iterations, st.total_cost()

    exact_it, exact_cost = run("exact")
    screened_it, screened_cost = benchmark.pedantic(
        lambda: run("screened", width=8), rounds=1, iterations=1
    )
    print(
        f"\nA2: exact {exact_it} it -> {exact_cost:.6g}; "
        f"screened(8) {screened_it} it -> {screened_cost:.6g}"
    )
    assert screened_cost <= optimum * 1.03
    assert screened_it <= exact_it + 10


def test_a3_gossip_staleness(benchmark, instance, optimum):
    """Partner selection from gossiped (stale) views converges to the same
    optimum, within a couple of extra iterations."""

    def run():
        st = repro.AllocationState.initial(instance)
        gossip = repro.GossipNetwork(instance.m, rng=4)
        gossip.publish_all(st.loads)
        gossip.rounds_to_convergence()
        opt = MinEOptimizer(st, rng=5, load_view=gossip.view)
        iters = 0
        for _ in range(40):
            opt.sweep()
            iters += 1
            gossip.publish_all(st.loads)
            for _ in range(6):
                gossip.round()
            if (st.total_cost() - optimum) / optimum <= 0.001:
                break
        return iters, st.total_cost()

    iters, cost = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nA3: gossip-driven convergence in {iters} iterations")
    assert (cost - optimum) / optimum <= 0.005


def test_a4_solver_shootout(benchmark):
    """Wall-clock comparison on one instance: the distributed algorithm
    versus FISTA, with coordinate descent as the reference optimum."""
    inst = make_instance(Setting(60, "exponential", 100, "planetlab"))
    ref = repro.solve_coordinate_descent(inst).total_cost()
    target = ref * 1.001

    def time_mine():
        st = repro.AllocationState.initial(inst)
        t0 = time.perf_counter()
        MinEOptimizer(st, rng=0).run(
            max_iterations=60, optimum=ref, rel_tol=0.001
        )
        return time.perf_counter() - t0, st.total_cost()

    def time_fista():
        t0 = time.perf_counter()
        st = repro.solve_fista(inst, max_iterations=20000, tol=1e-13)
        return time.perf_counter() - t0, st.total_cost()

    t_mine, c_mine = benchmark.pedantic(time_mine, rounds=1, iterations=1)
    t_fista, c_fista = time_fista()
    print(
        f"\nA4: MinE {t_mine*1e3:.1f} ms -> {c_mine:.6g}; "
        f"FISTA {t_fista*1e3:.1f} ms -> {c_fista:.6g}; CD optimum {ref:.6g}"
    )
    assert c_mine <= target
    # The paper's claim: the distributed algorithm is competitive with
    # (here: at least 2x faster than) a standard first-order solver.
    assert t_mine < t_fista * 2.0
