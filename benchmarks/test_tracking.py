"""Tracking-plane acceptance + throughput bench — ``BENCH_tracking.json``.

These benches cover the ``repro.tracking`` acceptance criteria:

* :func:`test_tracking_trace_families` — on every built-in trace family
  the live control plane (lossy preset, delta gossip) re-tracks to the
  paper's 2 % bound after every epoch shift; per-family regret,
  retrack-time and events/s rows feed the perf gate.
* :func:`test_tracking_warm_vs_cold_m500` — the stateful-solver
  acceptance case: on a drifting m = 500 fleet the warm-start solver
  re-tracks each epoch with **≥3x fewer exchanges** than the
  cold-restart control, and the live m = 500 lossy plane re-tracks every
  epoch too.
* :func:`test_delta_gossip_payload_m2000` — the wire-format acceptance
  case: at m = 2000 (lossy preset, including a mid-run demand shift)
  delta gossip is bit-identical to full-table gossip while shipping
  **≤20 % of its payload bytes**.
* :func:`test_tracking_m5000_drift` — the batched-kernel scale case
  (``REPRO_SCALE=1``, the CI perf job): a m = 5000 live plane (lossy,
  delta + adaptive gossip, screened batched proposals) re-tracks every
  epoch of a sigma = 0.35 demand drift to the 2 % bound.

Measurements land in ``benchmarks/BENCH_tracking.json``;
``benchmarks/check_perf.py`` gates the events/s figures against the
committed baseline (calibration-normalized).  ``REPRO_FULL=1`` scales
the family grid to native scenario sizes.
"""

from __future__ import annotations

import dataclasses
import pathlib

import numpy as np

from repro.livesim import LiveSimulation, get_live_preset
from repro.tracking import TrackingSimulation, tracking_sweep, trace_epochs
from repro.workloads import cached_instance, get_scenario

from .conftest import full_run, merge_bench, scale_only

REL_TOL = 0.02  # the paper's Table I convergence bound

#: family -> scenario whose topology/speeds host the trace
FAMILY_SCENARIOS = {
    "drift": "regional-surge",
    "regime": "cdn-flashcrowd",
    "flash-replay": "paper-planetlab",
    "diurnal": "federation-diurnal",
}

#: m = 500 stateful-solver acceptance case
M500 = 500
M500_TRACE = "drift-mild"
WARM_VS_COLD_MIN_RATIO = 3.0

#: m = 2000 delta-gossip acceptance case
M2000 = 2000
M2000_ROUNDS = 4           #: rounds before and after the demand shift
DELTA_MAX_BYTES_FRACTION = 0.20

#: m = 5000 batched-kernel tracking case.  Epoch 0 starts all-local and
#: needs the full cold convergence budget; the drift epochs start from a
#: converged plane and only have to absorb one sigma = 0.35 shift each
#: (the ``drift`` family's step — mild sigma = 0.1 steps average out at
#: m = 5000 and never leave the bound, which would make re-tracking
#: trivially true).
M5000 = 5000
M5000_TRACE = "drift"
M5000_EPOCH0_ROUNDS = 90.0
M5000_DRIFT_ROUNDS = 50.0
M5000_KERNEL_BATCH_MIN = 10.0  #: candidates folded into each dispatch

BENCH_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_tracking.json"


def _merge_bench(section: str, payload: dict) -> None:
    merge_bench(BENCH_PATH, section, payload)


def test_tracking_trace_families():
    m = None if full_run() else 16
    cfg = dataclasses.replace(get_live_preset("lossy"), gossip_mode="delta")
    rows = {}
    for family, sc_name in FAMILY_SCENARIOS.items():
        sc = get_scenario(sc_name)
        size = sc.m if m is None else m
        inst = cached_instance(sc, size, 0)
        sim = TrackingSimulation(inst, family, config=cfg, seed=0, rel_tol=REL_TOL)
        report = sim.run()

        stuck = [
            e.index for e in report.epochs if not np.isfinite(e.retrack_rounds)
        ]
        assert report.all_retracked(), (
            f"{family}: epochs {stuck} never re-tracked to {REL_TOL:.0%}"
        )
        assert report.mean_final_error <= REL_TOL

        rows[family] = {
            "scenario": sc_name,
            "m": size,
            "epochs": len(report.epochs),
            "mean_final_error": report.mean_final_error,
            "max_final_error": report.max_final_error,
            "mean_retrack_rounds": float(
                np.mean([e.retrack_rounds for e in report.epochs])
            ),
            "max_retrack_rounds": float(
                np.max([e.retrack_rounds for e in report.epochs])
            ),
            "mean_regret": float(np.mean([e.mean_regret for e in report.epochs])),
            "cumulative_excess_cost": report.cumulative_excess_cost,
            "total_exchanges": report.total_exchanges,
            "events_per_sec": report.live.events_per_sec,
            "payload_bytes": report.live.gossip.payload_bytes,
            "per_epoch": [
                {
                    "optimum": e.optimum_cost,
                    "start_error": e.start_error,
                    "final_error": e.final_error,
                    "retrack_rounds": e.retrack_rounds,
                    "exchanges": e.exchanges,
                }
                for e in report.epochs
            ],
        }
        print(
            f"  {family:<14} m={size:<4d} epochs={len(report.epochs):<3d} "
            f"retrack={rows[family]['mean_retrack_rounds']:5.1f}r "
            f"err={report.mean_final_error:.2e} "
            f"ev/s={report.live.events_per_sec:9.0f}"
        )

    _merge_bench("families", {"rel_tol": REL_TOL, "presets": rows})


def test_tracking_warm_vs_cold_m500():
    """Warm-start vs cold-restart stateful solvers on a drifting m = 500
    fleet, plus the live lossy plane re-tracking the same trace."""
    sc = get_scenario("regional-surge")

    # Offline plane: the two stateful solvers through the sweep engine.
    rows = tracking_sweep(
        [sc], traces=[M500_TRACE], sizes=[M500], seeds=[0],
        solvers=("mine-warm", "mine-cold"), rel_tol=REL_TOL, max_sweeps=40,
    )
    warm, cold = rows
    assert warm["all_retracked"], "warm-start failed to re-track an epoch"
    assert cold["all_retracked"], "cold-restart failed to re-track an epoch"
    ratio = cold["mean_step_exchanges"] / warm["mean_step_exchanges"]
    assert ratio >= WARM_VS_COLD_MIN_RATIO, (
        f"warm-start used {warm['mean_step_exchanges']:.0f} exchanges per "
        f"epoch shift vs cold's {cold['mean_step_exchanges']:.0f} — only "
        f"{ratio:.2f}x better (need >= {WARM_VS_COLD_MIN_RATIO}x)"
    )

    # Live plane: event-driven agents on the same trace, lossy preset,
    # delta gossip, screened proposals (the fleet-scale configuration).
    cfg = dataclasses.replace(
        get_live_preset("lossy"), gossip_mode="delta", agent_strategy="screened"
    )
    inst = cached_instance(sc, M500, 0)
    sim = TrackingSimulation(inst, M500_TRACE, config=cfg, seed=0, rel_tol=REL_TOL)
    report = sim.run()
    assert report.all_retracked(), (
        "live m=500 lossy plane failed to re-track after a shift"
    )

    _merge_bench(
        "warmcold_m500",
        {
            "scenario": sc.name,
            "m": M500,
            "trace": M500_TRACE,
            "rel_tol": REL_TOL,
            "warm_step_exchanges": warm["mean_step_exchanges"],
            "cold_step_exchanges": cold["mean_step_exchanges"],
            "exchange_ratio": ratio,
            "warm_mean_error": warm["mean_error"],
            "cold_mean_error": cold["mean_error"],
            "warm_wall_s": warm["solve_wall_s"],
            "cold_wall_s": cold["solve_wall_s"],
            "live_preset": "lossy+delta",
            "live_mean_retrack_rounds": float(
                np.mean([e.retrack_rounds for e in report.epochs])
            ),
            "live_mean_final_error": report.mean_final_error,
            "live_events_per_sec": report.live.events_per_sec,
        },
    )
    print(
        f"  m=500 {M500_TRACE}: warm {warm['mean_step_exchanges']:.0f} vs "
        f"cold {cold['mean_step_exchanges']:.0f} exchanges/shift "
        f"({ratio:.1f}x); live retrack "
        f"{np.mean([e.retrack_rounds for e in report.epochs]):.1f} rounds"
    )


def test_delta_gossip_payload_m2000():
    """Full vs delta wire format at m = 2000 across a demand shift:
    bit-identical behavior, ≤20 % of the payload bytes."""
    sc = get_scenario("regional-surge")
    inst = cached_instance(sc, M2000, 0)
    shifted = next(
        loads for t, loads in trace_epochs("drift-mild", M2000, 0) if t > 0
    )
    base_cfg = get_live_preset("lossy")

    reports = {}
    for mode in ("full", "delta"):
        cfg = dataclasses.replace(base_cfg, gossip_mode=mode)
        sim = LiveSimulation(inst, config=cfg, seed=0)
        sim.run(rounds=M2000_ROUNDS)
        pre_bytes = sim.gossip.stats.payload_bytes
        sim.apply_demand(shifted)
        report = sim.run(rounds=M2000_ROUNDS)
        reports[mode] = {
            "payload_bytes": report.gossip.payload_bytes,
            "payload_bytes_post_shift": report.gossip.payload_bytes - pre_bytes,
            "payload_entries": report.gossip.payload_entries,
            "events_processed": report.events_processed,
            "events_per_sec": report.events_per_sec,
            "trace": report.trace,
            "R": sim.state.R.copy(),
            "values": np.asarray(sim.gossip.values).copy(),
        }
        del sim  # 100+ MB of gossip tables per mode: free eagerly

    full, delta = reports["full"], reports["delta"]
    assert full["trace"] == delta["trace"], "delta diverged from full mode"
    np.testing.assert_array_equal(full["R"], delta["R"])
    np.testing.assert_array_equal(full["values"], delta["values"])
    frac = delta["payload_bytes"] / full["payload_bytes"]
    assert frac <= DELTA_MAX_BYTES_FRACTION, (
        f"delta gossip shipped {frac:.1%} of full-table payload bytes "
        f"(bound {DELTA_MAX_BYTES_FRACTION:.0%})"
    )

    _merge_bench(
        "delta_gossip_m2000",
        {
            "scenario": sc.name,
            "m": M2000,
            "preset": "lossy",
            "rounds": 2 * M2000_ROUNDS,
            "demand_shift_trace": M500_TRACE,
            "payload_bytes_full": full["payload_bytes"],
            "payload_bytes_delta": delta["payload_bytes"],
            "payload_fraction": frac,
            "payload_fraction_post_shift": (
                delta["payload_bytes_post_shift"]
                / full["payload_bytes_post_shift"]
            ),
            "payload_entries_full": full["payload_entries"],
            "payload_entries_delta": delta["payload_entries"],
            "events_per_sec_full": full["events_per_sec"],
            "events_per_sec_delta": delta["events_per_sec"],
        },
    )
    print(
        f"  m=2000 lossy: delta ships {frac:.1%} of full payload bytes "
        f"({delta['payload_bytes'] / 2**20:.0f} vs "
        f"{full['payload_bytes'] / 2**20:.0f} MiB across "
        f"{2 * M2000_ROUNDS} rounds + demand shift); "
        f"ev/s {delta['events_per_sec']:.0f} vs {full['events_per_sec']:.0f}"
    )


@scale_only
def test_tracking_m5000_drift():
    """Per-epoch re-tracking at m = 5000 under the fleet-scale config
    (lossy network, delta + adaptive gossip, screened batched agents).

    The built-in traces use uniform epoch grids, but at m = 5000 epoch 0
    must first converge *cold* from the all-local allocation (~70 agent
    rounds) while the drift epochs re-track a mild shift in a handful of
    rounds — so the epoch list is hand-timed: one long cold epoch, two
    short drift epochs, all using the deterministic ``drift`` family's
    load vectors (sigma = 0.35 steps, strong enough to knock a converged
    m = 5000 plane out of the bound).  Asserts every epoch re-enters the 2 % bound before it ends
    and that proposals stay batched (≥10 candidates per kernel call).
    """
    sc = get_scenario("regional-surge")
    inst = cached_instance(sc, M5000, 0)
    drift_loads = [loads for _, loads in trace_epochs(M5000_TRACE, M5000, 0)]
    spec = [
        (0.0, drift_loads[0]),
        (M5000_EPOCH0_ROUNDS, drift_loads[1]),
        (M5000_EPOCH0_ROUNDS + M5000_DRIFT_ROUNDS, drift_loads[2]),
    ]
    cfg = dataclasses.replace(
        get_live_preset("lossy"),
        gossip_mode="delta",
        gossip_adaptive=True,
        agent_strategy="screened",
    )
    sim = TrackingSimulation(
        inst, spec, config=cfg, seed=0, rel_tol=REL_TOL,
        tail_rounds=M5000_DRIFT_ROUNDS,
    )
    report = sim.run()

    stuck = [e.index for e in report.epochs if not np.isfinite(e.retrack_rounds)]
    assert report.all_retracked(), (
        f"m=5000 epochs {stuck} never re-tracked to {REL_TOL:.0%}"
    )
    assert report.mean_final_error <= REL_TOL
    # The drift epochs must be non-trivial: each shift actually knocks
    # the converged plane out of the bound before it re-tracks.
    for e in report.epochs[1:]:
        assert e.start_error > REL_TOL, (
            f"epoch {e.index} started at {e.start_error:.2%} — inside the "
            f"bound, so 're-tracking' it proves nothing"
        )
    agents = report.live.agents
    batchiness = agents.kernel_candidates / max(1, agents.kernel_calls)
    assert batchiness >= M5000_KERNEL_BATCH_MIN, (
        f"batched kernel averaged {batchiness:.1f} candidates per dispatch "
        f"at m=5000 (need >= {M5000_KERNEL_BATCH_MIN:.0f})"
    )

    _merge_bench(
        "m5000",
        {
            "scenario": sc.name,
            "m": M5000,
            "trace": f"{M5000_TRACE} (hand-timed epochs)",
            "preset": "lossy+delta+adaptive",
            "rel_tol": REL_TOL,
            "epochs": len(report.epochs),
            "epoch_rounds": [e.duration_rounds for e in report.epochs],
            "mean_final_error": report.mean_final_error,
            "max_final_error": report.max_final_error,
            "start_errors": [e.start_error for e in report.epochs],
            "retrack_rounds": [e.retrack_rounds for e in report.epochs],
            "mean_regret": float(
                np.mean([e.mean_regret for e in report.epochs])
            ),
            "cumulative_excess_cost": report.cumulative_excess_cost,
            "total_exchanges": report.total_exchanges,
            "events_per_sec": report.live.events_per_sec,
            "payload_bytes": report.live.gossip.payload_bytes,
            "kernel_calls": agents.kernel_calls,
            "kernel_candidates": agents.kernel_candidates,
            "kernel_candidates_per_call": batchiness,
        },
    )
    print(
        f"  m=5000 drift: retrack "
        f"{[round(e.retrack_rounds, 1) for e in report.epochs]} rounds, "
        f"err={report.mean_final_error:.2e}, "
        f"{batchiness:.1f} cand/kernel-call, "
        f"ev/s={report.live.events_per_sec:.0f}"
    )
