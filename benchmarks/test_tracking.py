"""Tracking-plane acceptance + throughput bench — ``BENCH_tracking.json``.

Three benches cover the ``repro.tracking`` acceptance criteria:

* :func:`test_tracking_trace_families` — on every built-in trace family
  the live control plane (lossy preset, delta gossip) re-tracks to the
  paper's 2 % bound after every epoch shift; per-family regret,
  retrack-time and events/s rows feed the perf gate.
* :func:`test_tracking_warm_vs_cold_m500` — the stateful-solver
  acceptance case: on a drifting m = 500 fleet the warm-start solver
  re-tracks each epoch with **≥3x fewer exchanges** than the
  cold-restart control, and the live m = 500 lossy plane re-tracks every
  epoch too.
* :func:`test_delta_gossip_payload_m2000` — the wire-format acceptance
  case: at m = 2000 (lossy preset, including a mid-run demand shift)
  delta gossip is bit-identical to full-table gossip while shipping
  **≤20 % of its payload bytes**.

Measurements land in ``benchmarks/BENCH_tracking.json``;
``benchmarks/check_perf.py`` gates the events/s figures against the
committed baseline (calibration-normalized).  ``REPRO_FULL=1`` scales
the family grid to native scenario sizes.
"""

from __future__ import annotations

import dataclasses
import pathlib

import numpy as np

from repro.livesim import LiveSimulation, get_live_preset
from repro.tracking import TrackingSimulation, tracking_sweep, trace_epochs
from repro.workloads import cached_instance, get_scenario

from .conftest import full_run, merge_bench

REL_TOL = 0.02  # the paper's Table I convergence bound

#: family -> scenario whose topology/speeds host the trace
FAMILY_SCENARIOS = {
    "drift": "regional-surge",
    "regime": "cdn-flashcrowd",
    "flash-replay": "paper-planetlab",
    "diurnal": "federation-diurnal",
}

#: m = 500 stateful-solver acceptance case
M500 = 500
M500_TRACE = "drift-mild"
WARM_VS_COLD_MIN_RATIO = 3.0

#: m = 2000 delta-gossip acceptance case
M2000 = 2000
M2000_ROUNDS = 4           #: rounds before and after the demand shift
DELTA_MAX_BYTES_FRACTION = 0.20

BENCH_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_tracking.json"


def _merge_bench(section: str, payload: dict) -> None:
    merge_bench(BENCH_PATH, section, payload)


def test_tracking_trace_families():
    m = None if full_run() else 16
    cfg = dataclasses.replace(get_live_preset("lossy"), gossip_mode="delta")
    rows = {}
    for family, sc_name in FAMILY_SCENARIOS.items():
        sc = get_scenario(sc_name)
        size = sc.m if m is None else m
        inst = cached_instance(sc, size, 0)
        sim = TrackingSimulation(inst, family, config=cfg, seed=0, rel_tol=REL_TOL)
        report = sim.run()

        stuck = [
            e.index for e in report.epochs if not np.isfinite(e.retrack_rounds)
        ]
        assert report.all_retracked(), (
            f"{family}: epochs {stuck} never re-tracked to {REL_TOL:.0%}"
        )
        assert report.mean_final_error <= REL_TOL

        rows[family] = {
            "scenario": sc_name,
            "m": size,
            "epochs": len(report.epochs),
            "mean_final_error": report.mean_final_error,
            "max_final_error": report.max_final_error,
            "mean_retrack_rounds": float(
                np.mean([e.retrack_rounds for e in report.epochs])
            ),
            "max_retrack_rounds": float(
                np.max([e.retrack_rounds for e in report.epochs])
            ),
            "mean_regret": float(np.mean([e.mean_regret for e in report.epochs])),
            "cumulative_excess_cost": report.cumulative_excess_cost,
            "total_exchanges": report.total_exchanges,
            "events_per_sec": report.live.events_per_sec,
            "payload_bytes": report.live.gossip.payload_bytes,
            "per_epoch": [
                {
                    "optimum": e.optimum_cost,
                    "start_error": e.start_error,
                    "final_error": e.final_error,
                    "retrack_rounds": e.retrack_rounds,
                    "exchanges": e.exchanges,
                }
                for e in report.epochs
            ],
        }
        print(
            f"  {family:<14} m={size:<4d} epochs={len(report.epochs):<3d} "
            f"retrack={rows[family]['mean_retrack_rounds']:5.1f}r "
            f"err={report.mean_final_error:.2e} "
            f"ev/s={report.live.events_per_sec:9.0f}"
        )

    _merge_bench("families", {"rel_tol": REL_TOL, "presets": rows})


def test_tracking_warm_vs_cold_m500():
    """Warm-start vs cold-restart stateful solvers on a drifting m = 500
    fleet, plus the live lossy plane re-tracking the same trace."""
    sc = get_scenario("regional-surge")

    # Offline plane: the two stateful solvers through the sweep engine.
    rows = tracking_sweep(
        [sc], traces=[M500_TRACE], sizes=[M500], seeds=[0],
        solvers=("mine-warm", "mine-cold"), rel_tol=REL_TOL, max_sweeps=40,
    )
    warm, cold = rows
    assert warm["all_retracked"], "warm-start failed to re-track an epoch"
    assert cold["all_retracked"], "cold-restart failed to re-track an epoch"
    ratio = cold["mean_step_exchanges"] / warm["mean_step_exchanges"]
    assert ratio >= WARM_VS_COLD_MIN_RATIO, (
        f"warm-start used {warm['mean_step_exchanges']:.0f} exchanges per "
        f"epoch shift vs cold's {cold['mean_step_exchanges']:.0f} — only "
        f"{ratio:.2f}x better (need >= {WARM_VS_COLD_MIN_RATIO}x)"
    )

    # Live plane: event-driven agents on the same trace, lossy preset,
    # delta gossip, screened proposals (the fleet-scale configuration).
    cfg = dataclasses.replace(
        get_live_preset("lossy"), gossip_mode="delta", agent_strategy="screened"
    )
    inst = cached_instance(sc, M500, 0)
    sim = TrackingSimulation(inst, M500_TRACE, config=cfg, seed=0, rel_tol=REL_TOL)
    report = sim.run()
    assert report.all_retracked(), (
        "live m=500 lossy plane failed to re-track after a shift"
    )

    _merge_bench(
        "warmcold_m500",
        {
            "scenario": sc.name,
            "m": M500,
            "trace": M500_TRACE,
            "rel_tol": REL_TOL,
            "warm_step_exchanges": warm["mean_step_exchanges"],
            "cold_step_exchanges": cold["mean_step_exchanges"],
            "exchange_ratio": ratio,
            "warm_mean_error": warm["mean_error"],
            "cold_mean_error": cold["mean_error"],
            "warm_wall_s": warm["solve_wall_s"],
            "cold_wall_s": cold["solve_wall_s"],
            "live_preset": "lossy+delta",
            "live_mean_retrack_rounds": float(
                np.mean([e.retrack_rounds for e in report.epochs])
            ),
            "live_mean_final_error": report.mean_final_error,
            "live_events_per_sec": report.live.events_per_sec,
        },
    )
    print(
        f"  m=500 {M500_TRACE}: warm {warm['mean_step_exchanges']:.0f} vs "
        f"cold {cold['mean_step_exchanges']:.0f} exchanges/shift "
        f"({ratio:.1f}x); live retrack "
        f"{np.mean([e.retrack_rounds for e in report.epochs]):.1f} rounds"
    )


def test_delta_gossip_payload_m2000():
    """Full vs delta wire format at m = 2000 across a demand shift:
    bit-identical behavior, ≤20 % of the payload bytes."""
    sc = get_scenario("regional-surge")
    inst = cached_instance(sc, M2000, 0)
    shifted = next(
        loads for t, loads in trace_epochs("drift-mild", M2000, 0) if t > 0
    )
    base_cfg = get_live_preset("lossy")

    reports = {}
    for mode in ("full", "delta"):
        cfg = dataclasses.replace(base_cfg, gossip_mode=mode)
        sim = LiveSimulation(inst, config=cfg, seed=0)
        sim.run(rounds=M2000_ROUNDS)
        pre_bytes = sim.gossip.stats.payload_bytes
        sim.apply_demand(shifted)
        report = sim.run(rounds=M2000_ROUNDS)
        reports[mode] = {
            "payload_bytes": report.gossip.payload_bytes,
            "payload_bytes_post_shift": report.gossip.payload_bytes - pre_bytes,
            "payload_entries": report.gossip.payload_entries,
            "events_processed": report.events_processed,
            "events_per_sec": report.events_per_sec,
            "trace": report.trace,
            "R": sim.state.R.copy(),
            "values": np.asarray(sim.gossip.values).copy(),
        }
        del sim  # 100+ MB of gossip tables per mode: free eagerly

    full, delta = reports["full"], reports["delta"]
    assert full["trace"] == delta["trace"], "delta diverged from full mode"
    np.testing.assert_array_equal(full["R"], delta["R"])
    np.testing.assert_array_equal(full["values"], delta["values"])
    frac = delta["payload_bytes"] / full["payload_bytes"]
    assert frac <= DELTA_MAX_BYTES_FRACTION, (
        f"delta gossip shipped {frac:.1%} of full-table payload bytes "
        f"(bound {DELTA_MAX_BYTES_FRACTION:.0%})"
    )

    _merge_bench(
        "delta_gossip_m2000",
        {
            "scenario": sc.name,
            "m": M2000,
            "preset": "lossy",
            "rounds": 2 * M2000_ROUNDS,
            "demand_shift_trace": M500_TRACE,
            "payload_bytes_full": full["payload_bytes"],
            "payload_bytes_delta": delta["payload_bytes"],
            "payload_fraction": frac,
            "payload_fraction_post_shift": (
                delta["payload_bytes_post_shift"]
                / full["payload_bytes_post_shift"]
            ),
            "payload_entries_full": full["payload_entries"],
            "payload_entries_delta": delta["payload_entries"],
            "events_per_sec_full": full["events_per_sec"],
            "events_per_sec_delta": delta["events_per_sec"],
        },
    )
    print(
        f"  m=2000 lossy: delta ships {frac:.1%} of full payload bytes "
        f"({delta['payload_bytes'] / 2**20:.0f} vs "
        f"{full['payload_bytes'] / 2**20:.0f} MiB across "
        f"{2 * M2000_ROUNDS} rounds + demand shift); "
        f"ev/s {delta['events_per_sec']:.0f} vs {full['events_per_sec']:.0f}"
    )
