"""Event-engine micro-benchmarks — ``BENCH_events.json``.

Measures the two axes the ISSUE-4 fast-path work optimizes:

* **Scheduler**: events/s of the heap versus the slotted calendar queue
  at several pending-set sizes (the auto mode promotes at
  :data:`repro.sim.events.CALENDAR_THRESHOLD`, the measured crossover);
* **API**: events/s of generator ``Process`` ticks versus the
  ``call_at`` callback fast path — the same workload, so the ratio is
  the per-event cost of the generator machinery.

Both sections assert the structural properties (identical event
traces; callbacks meaningfully faster than processes) and record the
raw numbers, plus a machine-speed calibration constant, into
``benchmarks/BENCH_events.json``.  ``benchmarks/check_perf.py`` diffs
that file (and ``BENCH_livesim.json``) against the committed baseline
and fails CI on a >30 % events/s regression, using the calibration to
normalize runner speed.
"""

from __future__ import annotations

import pathlib
import time

from repro.sim.events import CALENDAR_THRESHOLD, Environment

from .conftest import merge_bench

BENCH_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_events.json"

SCHED_EVENTS = 200_000
API_EVENTS = 150_000


def _merge_bench(section: str, payload: dict) -> None:
    merge_bench(BENCH_PATH, section, payload)


def calibrate_ops_per_sec(n: int = 2_000_000) -> float:
    """Machine-speed constant: plain-python loop iterations per second.
    Recorded next to every events/s figure so the regression check can
    compare runs from differently-provisioned machines."""
    t0 = time.perf_counter()
    x = 0
    for i in range(n):
        x += i
    return n / (time.perf_counter() - t0)


def _drive_scheduler(scheduler: str, n_pending: int, total: int):
    """Self-rescheduling callback storm with a deterministic
    pseudo-random delay pattern; returns (events/s, processed, now).
    Best wall of two identical runs (least-interference measurement)."""
    best = None
    for _ in range(2):
        env = Environment(scheduler=scheduler)
        count = [0]

        def tick(i):
            count[0] += 1
            if count[0] + n_pending <= total:
                env.call_in(1.0 + ((i * 2654435761) & 1023) / 1024.0, tick, i)

        for i in range(n_pending):
            env.call_at(1.0 + i / n_pending, tick, i)
        t0 = time.perf_counter()
        env.run()
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, env.processed, env.now)
    return total / best[0], best[1], best[2]


def test_scheduler_heap_vs_calendar():
    rows = {}
    for n_pending in (512, 8192, 65536):
        heap = _drive_scheduler("heap", n_pending, SCHED_EVENTS)
        cal = _drive_scheduler("calendar", n_pending, SCHED_EVENTS)
        # Identical trace end state: same event count, same final clock.
        assert heap[1:] == cal[1:]
        rows[str(n_pending)] = {
            "heap_events_per_sec": heap[0],
            "calendar_events_per_sec": cal[0],
            "calendar_over_heap": cal[0] / heap[0],
        }
        print(
            f"  pending={n_pending:6d}: heap {heap[0]:9.0f} ev/s  "
            f"calendar {cal[0]:9.0f} ev/s  ratio {cal[0] / heap[0]:.2f}"
        )
        # The calendar queue must stay in the heap's ballpark everywhere
        # (it wins past the promotion threshold, where heap depth bites).
        assert cal[0] > 0.4 * heap[0]
    _merge_bench(
        "scheduler",
        {
            "events": SCHED_EVENTS,
            "auto_threshold": CALENDAR_THRESHOLD,
            "by_pending": rows,
            "calibration_ops_per_sec": calibrate_ops_per_sec(),
        },
    )


def _drive_process_api(total: int) -> float:
    env = Environment(scheduler="heap")
    count = [0]

    def ticker(i):
        while count[0] < total:
            count[0] += 1
            yield env.timeout(1.0 + (i % 7) * 0.1)

    for i in range(100):
        env.process(ticker(i))
    t0 = time.perf_counter()
    env.run()
    return env.processed / (time.perf_counter() - t0)


def _drive_callback_api(total: int) -> float:
    env = Environment(scheduler="heap")
    count = [0]

    def tick(i):
        count[0] += 1
        if count[0] < total:
            env.call_in(1.0 + (i % 7) * 0.1, tick, i)

    for i in range(100):
        env.call_at(0.0, tick, i)
    t0 = time.perf_counter()
    env.run()
    return env.processed / (time.perf_counter() - t0)


def test_process_vs_callback_api():
    proc = max(_drive_process_api(API_EVENTS) for _ in range(2))
    cb = max(_drive_callback_api(API_EVENTS) for _ in range(2))
    speedup = cb / proc
    print(
        f"  process API {proc:9.0f} ev/s   callback API {cb:9.0f} ev/s   "
        f"callback speedup {speedup:.2f}x"
    )
    # The whole point of call_at: no Timeout + Event + generator resume
    # per step.  Keep the bound loose enough for noisy CI runners.
    assert speedup > 1.3
    _merge_bench(
        "api",
        {
            "events": API_EVENTS,
            "process_events_per_sec": proc,
            "callback_events_per_sec": cb,
            "callback_speedup": speedup,
            "calibration_ops_per_sec": calibrate_ops_per_sec(),
        },
    )
