"""Table IV (appendix) — relative RTT deviation versus background
throughput on the synthetic link substrate."""

from __future__ import annotations

from repro.experiments.rtt_validation import render_table, rtt_table

from .conftest import full_run

SERVERS = 60 if full_run() else 30
SAMPLES = 300 if full_run() else 100


def test_table4_rtt_validation(benchmark):
    rows = benchmark.pedantic(
        lambda: rtt_table(servers=SERVERS, samples=SAMPLES, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows))
    by = {r.throughput_bps: r for r in rows}
    # Paper headline: the RTT is flat up to 0.2 MB/s of per-flow
    # background traffic — the basis of the constant-latency assumption.
    for tb in (10e3, 20e3, 50e3, 100e3, 200e3):
        assert abs(by[tb].mu) < 0.05
    # Above the knee the deviation and its variance grow...
    assert by[2e6].mu > 0.1
    assert by[2e6].sigma > by[200e3].sigma
    # ...and the unachievable 5 MB/s target collapses below the 2 MB/s
    # deviation (the paper's non-monotone tail).
    assert by[5e6].mu < by[2e6].mu
