"""Benchmark configuration.

Every table/figure of the paper has a bench here.  By default the grids
are trimmed so the whole suite runs in a few minutes; set ``REPRO_FULL=1``
to run the paper's complete parameter grids (matching EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest


def full_run() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


def scale_run() -> bool:
    """The m = 5000 fleet-scale benches: ~30 min of single-core wall
    clock, so they run only where ``REPRO_SCALE=1`` (the CI perf job)
    or under ``REPRO_FULL=1``, not in the tier-1 test matrix."""
    return os.environ.get("REPRO_SCALE", "0") == "1" or full_run()


#: decorator for the m = 5000 benches
scale_only = pytest.mark.skipif(
    not scale_run(),
    reason="m=5000 scale bench: set REPRO_SCALE=1 (CI perf job) to run",
)


@pytest.fixture(scope="session")
def is_full_run() -> bool:
    return full_run()


def merge_bench(path, section: str, payload: dict) -> None:
    """Insert/replace one section of a ``BENCH_*.json`` file, keeping the
    others (shared by the bench modules so the file format cannot drift)."""
    import json

    data = {}
    if path.exists():
        data = json.loads(path.read_text())
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
