"""Benchmark configuration.

Every table/figure of the paper has a bench here.  By default the grids
are trimmed so the whole suite runs in a few minutes; set ``REPRO_FULL=1``
to run the paper's complete parameter grids (matching EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest


def full_run() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def is_full_run() -> bool:
    return full_run()


def merge_bench(path, section: str, payload: dict) -> None:
    """Insert/replace one section of a ``BENCH_*.json`` file, keeping the
    others (shared by the bench modules so the file format cannot drift)."""
    import json

    data = {}
    if path.exists():
        data = json.loads(path.read_text())
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
