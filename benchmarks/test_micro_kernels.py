"""Micro-benchmarks of the hot kernels (pytest-benchmark timing)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.distributed import batch_exchange_stats
from repro.core.transfer import calc_best_transfer, calc_best_transfer_reference
from repro.core.waterfill import waterfill
from repro.experiments.common import Setting, make_instance


@pytest.fixture(scope="module")
def inst():
    return make_instance(Setting(200, "exponential", 100, "planetlab"))


@pytest.fixture(scope="module")
def state(inst):
    rng = np.random.default_rng(0)
    rho = rng.dirichlet(np.ones(inst.m), size=inst.m)
    return repro.AllocationState.from_fractions(inst, rho)


def test_bench_waterfill(benchmark, inst):
    rng = np.random.default_rng(1)
    a = rng.uniform(0, 50, inst.m)
    r = benchmark(waterfill, inst.speeds, a, 1000.0)
    assert r.sum() == pytest.approx(1000.0)


def test_bench_waterfill_bounded(benchmark, inst):
    rng = np.random.default_rng(2)
    a = rng.uniform(0, 50, inst.m)
    u = np.full(inst.m, 20.0)
    r = benchmark(waterfill, inst.speeds, a, 1000.0, u)
    assert r.sum() == pytest.approx(1000.0)


def test_bench_calc_best_transfer_closed_form(benchmark, inst, state):
    ex = benchmark(calc_best_transfer, inst, state.R, 3, 17)
    assert ex.improvement >= -1e-9


def test_bench_calc_best_transfer_reference(benchmark, inst, state):
    """The literal pseudo-code loop — shows the closed form's speedup."""
    ex = benchmark(calc_best_transfer_reference, inst, state.R, 3, 17)
    assert ex.improvement >= -1e-9


def test_bench_batch_exchange_all_partners(benchmark, inst, state):
    owners = np.flatnonzero(inst.loads > 0)
    impr, moved = benchmark(batch_exchange_stats, inst, state.R, 3, owners)
    assert impr.shape == (inst.m,)


def test_bench_mine_sweep(benchmark, inst):
    def one_sweep():
        st = repro.AllocationState.initial(inst)
        return repro.MinEOptimizer(st, rng=0).sweep()

    stats = benchmark.pedantic(one_sweep, rounds=3, iterations=1)
    assert stats.improvement >= 0


def test_bench_coordinate_descent(benchmark, inst):
    st = benchmark.pedantic(
        lambda: repro.solve_coordinate_descent(inst), rounds=3, iterations=1
    )
    assert st.total_cost() > 0


def test_bench_best_response_round(benchmark, inst):
    def one_round():
        ne, trace = repro.best_response_dynamics(inst, rng=0, max_rounds=1)
        return ne

    ne = benchmark.pedantic(one_round, rounds=3, iterations=1)
    assert ne.total_cost() > 0


def test_bench_snapshot_simulation(benchmark):
    inst = make_instance(Setting(20, "uniform", 200, "planetlab"))
    opt = repro.solve_coordinate_descent(inst)
    report = benchmark.pedantic(
        lambda: repro.simulate_snapshot(inst, opt, rng=0), rounds=1, iterations=1
    )
    assert report.completed > 0
