"""Baseline shoot-out — quantifies the introduction's motivation.

The paper argues that deployed policies (round-robin spreading,
proximity-only mirror selection, congestion-only diffusive balancing)
each ignore half the latency; this bench measures how much the
delay-aware optimum buys over every one of them, on both network kinds.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.baselines import all_baselines
from repro.experiments.common import Setting, make_instance


@pytest.mark.parametrize("network", ["homogeneous", "planetlab"])
def test_delay_aware_vs_baselines(benchmark, network):
    if network == "homogeneous":
        inst = make_instance(Setting(40, "exponential", 50, "homogeneous"))
    else:
        inst = make_instance(Setting(40, "exponential", 50, "planetlab"))

    def solve_and_compare():
        opt = repro.solve_coordinate_descent(inst)
        rows = {"delay-aware": opt.total_cost()}
        for name, st in all_baselines(inst).items():
            rows[name] = st.total_cost()
        return rows

    rows = benchmark.pedantic(solve_and_compare, rounds=1, iterations=1)
    opt_cost = rows["delay-aware"]
    print(f"\nΣCi on {network} (m=40, exponential lav=50):")
    for name, cost in sorted(rows.items(), key=lambda kv: kv[1]):
        print(f"  {name:<20} {cost:12.1f}  ({cost / opt_cost:5.2f}x)")
    # the delay-aware optimum dominates every baseline
    for name, cost in rows.items():
        assert opt_cost <= cost + 1e-6, name
    # and the round-robin strawman pays for its blindness on the
    # heterogeneous network (needless WAN hops for every request)
    if network == "planetlab":
        assert rows["round-robin"] > 1.2 * opt_cost
