"""Figure 2 — convergence of the distributed algorithm on large
heterogeneous networks under the peak load distribution.

The paper plots ΣCi per iteration for m ∈ {500, …, 5000}: the total
processing time decreases (roughly) exponentially and flattens within
~20 iterations.  The default bench runs m ∈ {200, 500}; REPRO_FULL=1
enables the paper's sizes up to 5000.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.convergence import figure2_traces

from .conftest import full_run

SIZES = (500, 1000, 2000, 3000, 5000) if full_run() else (200, 500)


def test_figure2_largescale_peak_convergence(benchmark):
    traces = benchmark.pedantic(
        lambda: figure2_traces(sizes=SIZES, iterations=20),
        rounds=1,
        iterations=1,
    )
    print()
    print("Figure 2: ΣCi per iteration (peak load, PlanetLab-like net):")
    for m, costs in traces.items():
        head = " ".join(f"{c:.3g}" for c in costs[:8])
        print(f"  m={m:5d}: {head} ... final={costs[-1]:.3g}")
    for m, costs in traces.items():
        costs = np.asarray(costs)
        # monotone non-increasing trajectory
        assert np.all(np.diff(costs) <= 1e-6 * costs[:-1] + 1e-6)
        # large total improvement: the initial single-server pile-up is
        # orders of magnitude worse than the balanced state
        assert costs[-1] < 0.05 * costs[0]
        # fast early progress (exponential-looking decrease): after 5
        # iterations at least 90% of the achievable improvement is done
        achieved = costs[0] - costs[-1]
        assert costs[0] - costs[min(5, len(costs) - 1)] >= 0.9 * achieved
