"""Table III — the cost of selfishness: ΣCi(NE)/ΣCi(OPT) ratios over the
{speed kind} × {load band} × {network} grid."""

from __future__ import annotations

from repro.experiments.selfishness import selfishness_table

from .conftest import full_run

SIZES = (20, 30, 50, 100) if full_run() else (20, 30)
AVG_LOADS = (10, 20, 50, 200, 1000) if full_run() else (20, 50, 200)


def test_table3_cost_of_selfishness(benchmark):
    cells = benchmark.pedantic(
        lambda: selfishness_table(sizes=SIZES, avg_loads=AVG_LOADS),
        rounds=1,
        iterations=1,
    )
    print()
    print("Table III (cost of selfishness, NE/OPT):")
    for c in cells:
        print(
            f"  {c.speed_kind:<9} {c.load_band:<10} {c.network:<9} "
            f"avg={c.average:.3f} max={c.maximum:.3f} std={c.std:.3f} (n={c.samples})"
        )
    # Paper headline: the average is below 1.06 and the max below 1.15.
    # Allow modest slack for the synthetic topology.
    avg_all = sum(c.average * c.samples for c in cells) / sum(
        c.samples for c in cells
    )
    assert avg_all < 1.08
    assert max(c.maximum for c in cells) < 1.2

    # Paper finding: for constant speeds the cost of selfishness peaks at
    # *medium* loads (lav ≈ 50, about twice the mean delay) — high loads
    # drown the latency term and PoA → 1.
    by = {(c.speed_kind, c.load_band, c.network): c for c in cells}
    for net in ("cij = 20", "PL"):
        mid = by.get(("constant", "lav = 50", net))
        high = by.get(("constant", "lav >= 200", net))
        if mid is not None and high is not None:
            assert mid.average >= high.average - 0.02
