#!/usr/bin/env python
"""Perf-regression gate: fresh ``BENCH_*.json`` vs the committed baseline.

Run *after* the benchmark suite has rewritten ``benchmarks/BENCH_events.json``,
``benchmarks/BENCH_livesim.json`` and ``benchmarks/BENCH_tracking.json`` in
the working tree.  Every events/s metric present in both the fresh file and
the committed (``git show HEAD:...``) baseline is compared; the script fails
(exit 1) if any metric regresses by more than ``--threshold`` (default 30 %).

Machines differ: both BENCH files carry a ``calibration_ops_per_sec``
constant (a plain-python loop measured in the same run), and each baseline
figure is scaled by ``fresh_calibration / baseline_calibration`` before
comparison, so a slower CI runner is not mistaken for a code regression.

Usage::

    python -m pytest benchmarks/test_event_engine.py benchmarks/test_livesim.py
    python benchmarks/check_perf.py [--threshold 0.30] [--ref HEAD]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
FILES = (
    "BENCH_events.json",
    "BENCH_livesim.json",
    "BENCH_tracking.json",
    "BENCH_obs.json",
    "BENCH_byz.json",
)


def committed(name: str, ref: str) -> dict | None:
    """The committed version of a bench file (None if absent at ref)."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:benchmarks/{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def walk_metrics(node, prefix=""):
    """Yield (dotted-path, value) for every events/s figure in a BENCH
    tree (any numeric leaf whose key mentions events_per_sec)."""
    if isinstance(node, dict):
        for k, v in node.items():
            path = f"{prefix}.{k}" if prefix else k
            if isinstance(v, (int, float)) and "events_per_sec" in k:
                yield path, float(v)
            else:
                yield from walk_metrics(v, path)


def find_calibration(tree: dict) -> float | None:
    """First calibration_ops_per_sec found anywhere in the tree."""
    if isinstance(tree, dict):
        for k, v in tree.items():
            if k == "calibration_ops_per_sec" and isinstance(v, (int, float)):
                return float(v)
        for v in tree.values():
            if isinstance(v, dict):
                got = find_calibration(v)
                if got is not None:
                    return got
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated fractional regression")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the committed baseline")
    args = parser.parse_args(argv)

    # Calibration: prefer the fresh engine-bench constant; fall back to 1:1.
    events_path = BENCH_DIR / "BENCH_events.json"
    fresh_events = (
        json.loads(events_path.read_text()) if events_path.exists() else {}
    )
    base_events = committed("BENCH_events.json", args.ref)
    fresh_cal = find_calibration(fresh_events)
    base_cal = find_calibration(base_events or {})
    scale = (fresh_cal / base_cal) if fresh_cal and base_cal else 1.0
    print(f"machine-speed scale (fresh/baseline): {scale:.3f}")

    failures = []
    compared = 0
    for name in FILES:
        fresh_path = BENCH_DIR / name
        if not fresh_path.exists():
            print(f"  {name}: no fresh file (did the bench suite run?)")
            failures.append((name, "missing fresh file"))
            continue
        fresh = dict(walk_metrics(json.loads(fresh_path.read_text())))
        base_tree = committed(name, args.ref)
        if base_tree is None:
            print(f"  {name}: no committed baseline at {args.ref}; skipping")
            continue
        base = dict(walk_metrics(base_tree))
        for path in sorted(set(fresh) & set(base)):
            expected = base[path] * scale
            ratio = fresh[path] / expected if expected > 0 else float("inf")
            compared += 1
            flag = ""
            if ratio < 1.0 - args.threshold:
                failures.append((f"{name}:{path}", f"{ratio:.2f}x of baseline"))
                flag = "  <-- REGRESSION"
            print(
                f"  {name}:{path}: {fresh[path]:12.0f} vs expected "
                f"{expected:12.0f}  ({ratio:5.2f}x){flag}"
            )

    if failures:
        print(f"\n{len(failures)} perf-gate failure(s) "
              f"(threshold {args.threshold:.0%}):")
        for where, what in failures:
            print(f"  {where}: {what}")
        return 1
    if compared == 0:
        print("no comparable events/s metrics found — baseline predates the "
              "bench format; passing")
        return 0
    print(f"\nall {compared} events/s metrics within {args.threshold:.0%} "
          "of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
