"""RTT-delayed, lossy control-message transport for the live simulator.

Every control message (gossip push/pull, propose/accept/reject/done) is
scheduled on the shared :class:`repro.sim.events.Environment` heap with a
delivery delay equal to the one-way latency ``c[src, dst]`` of the
instance's RTT matrix — so views and handshakes are stale by genuine
in-flight time, not by round count.  Messages are dropped with
probability ``p_drop`` at send time (one shared, deterministic RNG
stream) and are lost when the destination is down at *delivery* time —
a message sent to a live server can still arrive at a dead one.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isfinite
from typing import Any, Callable

import numpy as np

from ..sim.events import Environment

__all__ = ["ControlNetwork", "NetStats"]


@dataclass
class NetStats:
    """Counters of the control-plane transport."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0        #: lost in flight (probability ``p_drop``)
    dead_letters: int = 0   #: delivered to a server that was down
    unreachable: int = 0    #: no finite-latency path between the pair


class ControlNetwork:
    """Point-to-point message delivery over the instance's latency matrix.

    ``handler(payload)`` runs at ``now + latency[src, dst]`` if the
    message survives the loss draw and the destination is alive when it
    arrives.  The loss draw consumes exactly one variate per send from
    the dedicated ``drop_rng`` stream, keeping event traces deterministic
    for a fixed seed.
    """

    def __init__(
        self,
        env: Environment,
        latency: np.ndarray,
        alive: np.ndarray,
        *,
        p_drop: float = 0.0,
        drop_rng: np.random.Generator | None = None,
    ):
        if not 0.0 <= p_drop < 1.0:
            raise ValueError("p_drop must be in [0, 1)")
        self.env = env
        self.latency = latency
        self.alive = alive
        self.p_drop = float(p_drop)
        self.drop_rng = drop_rng if drop_rng is not None else np.random.default_rng(0)
        self.stats = NetStats()
        # Plain-float latency rows: Python list indexing is ~7x cheaper
        # than a numpy scalar read on the per-message fast path.  Beyond
        # ~1k servers the boxed-float copy would cost real memory, so
        # large fleets stay on the ndarray.
        self._lat_rows = latency.tolist() if latency.shape[0] <= 1024 else None

    def send(
        self,
        src: int,
        dst: int,
        handler: Callable[[Any], None],
        payload: Any,
    ) -> bool:
        """Schedule ``handler(payload)`` at the destination after the
        one-way delay; may drop the message.  Returns whether the
        message was put in flight (``False``: dropped at send time or no
        path — tracing callers abandon the flight span).

        Runs on the engine's callback fast path: one queue entry per
        message, no event object and no per-send closure.
        """
        rows = self._lat_rows
        delay: float = (
            rows[src][dst] if rows is not None else self.latency[src, dst].item()
        )
        if not isfinite(delay):
            self.stats.unreachable += 1
            return False
        self.stats.sent += 1
        if self.p_drop > 0.0 and self.drop_rng.random() < self.p_drop:
            self.stats.dropped += 1
            return False
        self.env.call_in(delay, self._deliver, (dst, handler, payload))
        return True

    def _deliver(self, msg: tuple) -> None:
        dst, handler, payload = msg
        if not self.alive[dst]:
            self.stats.dead_letters += 1
            return
        self.stats.delivered += 1
        handler(payload)
