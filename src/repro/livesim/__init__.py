"""Event-driven asynchronous control plane inside the stream simulator.

The lock-stepped layers — :class:`repro.gossip.GossipNetwork` rounds and
:class:`repro.core.distributed.MinEOptimizer` sweeps — model Section IV's
*conclusions*; this package models its *mechanism*.  Gossip exchanges,
MinE partner proposals and the exchanges themselves all run as
discrete-event processes on one shared event heap, with control messages
delayed by the instance's RTT matrix, dropped with probability ``p`` and
subject to server churn — so load views are stale by genuine in-flight
time, and pairwise exchanges are a two-message handshake racing against
everyone else's.

Layers (bottom-up):

* :mod:`repro.livesim.net` — RTT-delayed, lossy control-message
  transport over the shared event heap;
* :mod:`repro.livesim.gossip` — per-server async push–pull gossip with
  versioned, time-stamped entries (view age = staleness metric);
* :mod:`repro.livesim.agents` — async MinE agents: propose/accept
  handshake with timeouts, one in-flight exchange per server, conflicts
  resolved by server id;
* :mod:`repro.livesim.churn` — servers crash (shedding their remote
  load), stay down, rejoin;
* :mod:`repro.livesim.driver` — :class:`LiveSimulation`, coupling the
  control plane with Poisson request traffic routed by the *live*
  allocation, recording the ΣCi trajectory, per-server error versus the
  offline optimum and convergence/re-convergence times;
* :mod:`repro.livesim.sweep` — sync-vs-async convergence sweeps through
  :class:`repro.engine.SweepEngine`.

Quickstart:

>>> from repro.livesim import LiveSimulation, get_live_preset
>>> from repro.workloads import get_scenario
>>> inst = get_scenario("paper-planetlab").instance(16, seed=0)
>>> sim = LiveSimulation(inst, config=get_live_preset("ideal"), seed=0)
>>> report = sim.run(rounds=40)                          # doctest: +SKIP
>>> report.final_error, report.events_per_sec            # doctest: +SKIP
"""

from .agents import AgentStats, ExchangeAgents
from .churn import (
    ChurnModel,
    FailureTrace,
    fail_server,
    rejoin_server,
    start_churn,
    start_trace_churn,
)
from .driver import (
    LIVE_PRESETS,
    LiveConfig,
    LiveReport,
    LiveSimulation,
    get_live_preset,
)
from .gossip import GOSSIP_MODES, MERGE_MODES, AsyncGossip, GossipStats
from .net import ControlNetwork, NetStats
from .sweep import LiveCell, evaluate_live_cell, live_sweep

__all__ = [
    "LiveSimulation",
    "LiveConfig",
    "LiveReport",
    "LIVE_PRESETS",
    "get_live_preset",
    "AsyncGossip",
    "GossipStats",
    "GOSSIP_MODES",
    "MERGE_MODES",
    "ExchangeAgents",
    "AgentStats",
    "ControlNetwork",
    "NetStats",
    "ChurnModel",
    "FailureTrace",
    "start_churn",
    "start_trace_churn",
    "fail_server",
    "rejoin_server",
    "LiveCell",
    "evaluate_live_cell",
    "live_sweep",
]
