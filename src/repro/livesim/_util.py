"""Small performance helpers for the live-simulation hot path."""

from __future__ import annotations

import numpy as np

__all__ = ["BufferedUniform", "BufferedIntegers"]


class BufferedUniform:
    """Scalar uniforms drawn in blocks.

    ``Generator.random(size=n)`` consumes the generator state exactly
    like ``n`` scalar ``random()`` calls, so the values this buffer
    hands out are bit-identical to unbuffered draws *of this kind on
    this generator* (pinned by a test in the determinism suite) while
    amortizing the per-call Generator dispatch overhead.  Note that when
    two buffers share one generator, block pre-fetching interleaves the
    underlying stream differently than alternating per-call draws would
    — still fully deterministic, just not call-for-call comparable with
    unbuffered code.
    """

    __slots__ = ("rng", "_buf", "_idx", "_block")

    def __init__(self, rng: np.random.Generator, block: int = 32):
        self.rng = rng
        self._block = block
        self._buf = rng.random(block)
        self._idx = 0

    def next(self) -> float:
        i = self._idx
        if i == self._block:
            self._buf = self.rng.random(self._block)
            i = 0
        self._idx = i + 1
        return self._buf[i]


class BufferedIntegers:
    """Scalar bounded integers drawn in blocks (fixed exclusive bound);
    same stream semantics as :class:`BufferedUniform`."""

    __slots__ = ("rng", "bound", "_buf", "_idx", "_block")

    def __init__(self, rng: np.random.Generator, bound: int, block: int = 32):
        self.rng = rng
        self.bound = int(bound)
        self._block = block
        self._buf = rng.integers(self.bound, size=block)
        self._idx = 0

    def next(self) -> int:
        i = self._idx
        if i == self._block:
            self._buf = self.rng.integers(self.bound, size=self._block)
            i = 0
        self._idx = i + 1
        return self._buf[i]
