"""`LiveSimulation` — the full control plane inside one event heap.

Couples, on a single :class:`repro.sim.events.Environment`:

* the async gossip layer (:class:`repro.livesim.gossip.AsyncGossip`),
* the async MinE exchange agents
  (:class:`repro.livesim.agents.ExchangeAgents`),
* the churn/failure model (:mod:`repro.livesim.churn`),
* optional Poisson request traffic routed by the *live* allocation
  (the :mod:`repro.sim.runner` stream model, but with routing fractions
  that change as exchanges apply).

Everything is deterministic given ``seed``: one event heap orders all
events, and every stochastic process (gossip jitter per server, agent
jitter per server, churn per server, traffic per organization, message
loss) draws from its own :class:`numpy.random.SeedSequence`-spawned
stream, so adding or removing one subsystem never perturbs the others.

Control-plane intervals default to multiples of the instance's latency
scale, so the same :class:`LiveConfig` means the same thing on a 0.5 ms
fat-tree and a 90 ms WAN ring.  Named presets (``"ideal"``, ``"lossy"``,
``"churn"``) cover the sweep axes of the benchmarks.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace

import numpy as np

from typing import TYPE_CHECKING

from .. import obs as _obs
from ..core.instance import Instance
from ..core.state import AllocationState
from ..sim.events import Environment
from ..sim.server import Request, SimServer
from .agents import AgentStats, ExchangeAgents
from .churn import (
    ChurnModel,
    FailureTrace,
    fail_server,
    rejoin_server,
    start_churn,
    start_trace_churn,
)
from .gossip import AsyncGossip, GossipStats
from .net import ControlNetwork, NetStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.byz)
    from ..byz.adversaries import ByzantineModel

__all__ = [
    "LiveConfig",
    "LiveReport",
    "LiveSimulation",
    "LIVE_PRESETS",
    "get_live_preset",
]

_LIVESIM_ENTROPY = 0x11FE5137


@dataclass(frozen=True)
class LiveConfig:
    """Control-plane parameters of one live simulation.

    Interval/timeout fields left at ``None`` are resolved against the
    instance's latency scale (median finite positive latency ``base``,
    maximum finite latency ``far``):

    * ``gossip_interval = 3·base`` — views refresh a few times per agent
      round, the paper's "gossip O(log m) times more frequently";
    * ``agent_interval = 6·base`` — one expected proposal per server per
      round;
    * ``propose_timeout = 3·far + base`` — covers the round trip to the
      farthest peer with slack;
    * ``accept_timeout = 2·propose_timeout`` — the acceptor always
      outlives the proposer's retry, so locks cannot leak.

    ``churn_rate`` is restarts per server per agent round (see
    :class:`repro.livesim.churn.ChurnModel`); ``arrival_rate_scale``
    scales the Poisson request traffic exactly as in
    :func:`repro.sim.runner.simulate_stream` (0 disables traffic).
    """

    gossip_interval: float | None = None
    agent_interval: float | None = None
    propose_timeout: float | None = None
    accept_timeout: float | None = None
    p_drop: float = 0.0
    churn_rate: float = 0.0
    churn_downtime_rounds: float = 3.0
    min_improvement: float = 1e-9
    #: Relative improvement floor: exchanges expected to improve ΣCi by
    #: less than ``min_improvement_rel · initial_cost / m`` are not
    #: proposed, so the *total* improvement a fleet can forgo is about
    #: ``min_improvement_rel`` of the initial cost regardless of fleet
    #: size — at the default, orders of magnitude below the paper's 2 %
    #: bound.  Keeps a converged fleet from grinding out float-dust
    #: exchanges forever (each perturbs views, defeating back-off).
    #: Set 0 to propose down to the absolute ``min_improvement``.
    min_improvement_rel: float = 3e-4
    arrival_rate_scale: float = 0.0
    #: Gossip wire format: ``"full"`` ships whole tables, ``"delta"``
    #: ships version-vector diffs (O(changes) payloads, bit-identical
    #: merge results — see :mod:`repro.livesim.gossip`).
    gossip_mode: str = "full"
    #: Adaptive gossip frequency: scale each server's interval by a
    #: merge-delta EMA — between ``gossip_adapt_min`` × interval while
    #: its view churns and ``gossip_adapt_max`` × interval once
    #: converged (``gossip_adapt_alpha`` is the EMA weight).  Off by
    #: default; an adaptive-off run is bit-identical to earlier
    #: releases.  Deterministic per seed either way.
    gossip_adaptive: bool = False
    gossip_adapt_min: float = 0.5
    gossip_adapt_max: float = 4.0
    gossip_adapt_alpha: float = 0.3
    #: Partner-selection strategy of the agents ("auto" = exact on small
    #: fleets, O(m) screened beyond ``EXACT_BUDGET``) and the screened
    #: candidate count.
    agent_strategy: str = "auto"
    agent_screen_width: int = 16
    #: Adaptive agent intervals: a failing agent's interval is multiplied
    #: by ``backoff_factor`` per failure up to ``backoff_max`` and reset
    #: on accept (or on fresh gossip/allocation information).
    #: ``backoff_max=1`` disables the mechanism.
    backoff_factor: float = 2.0
    backoff_max: float = 8.0
    #: Gossip accept rule: ``"legacy"`` trusts every entry by version;
    #: ``"robust"`` adds quorum + trimmed-mean filtering, placement
    #: clamps, pair-sync observations and per-server suspicion scores
    #: (see :mod:`repro.livesim.gossip`).  Legacy runs are bit-identical
    #: to earlier releases.
    merge_mode: str = "legacy"
    robust_quorum: int = 3
    robust_trim: int = 1
    robust_tolerance: float = 0.2
    robust_observe_margin: int = 8
    #: Adversary plane (:class:`repro.byz.ByzantineModel`): ``None`` (or
    #: ``f = 0``) leaves the honest path untouched — the adversaries'
    #: RNG streams are entropy-separated, so honest traces never shift.
    byzantine: "ByzantineModel | None" = None
    #: Replay an explicit failure schedule (:class:`repro.livesim.churn.
    #: FailureTrace`) on top of (or instead of) the memoryless
    #: ``churn_rate`` process; both route through the same fail/rejoin
    #: path, so queue drops and owner re-submission couple identically.
    churn_trace: FailureTrace | None = None

    def resolve(self, inst: Instance) -> "LiveConfig":
        """A copy with every ``None`` interval filled from the latency
        scale of ``inst``."""
        lat = inst.latency[np.isfinite(inst.latency) & (inst.latency > 0)]
        base = float(np.median(lat)) if lat.size else 1.0
        base = max(base, 1e-3)
        far = float(lat.max()) if lat.size else 1.0
        gossip = self.gossip_interval if self.gossip_interval is not None else 3.0 * base
        agent = self.agent_interval if self.agent_interval is not None else 6.0 * base
        propose = (
            self.propose_timeout
            if self.propose_timeout is not None
            else 3.0 * far + base
        )
        accept = (
            self.accept_timeout
            if self.accept_timeout is not None
            else 2.0 * propose
        )
        return replace(
            self,
            gossip_interval=float(gossip),
            agent_interval=float(agent),
            propose_timeout=float(propose),
            accept_timeout=float(accept),
        )


#: Named control-plane presets swept by the benchmarks: the ideal
#: asynchronous plane, a lossy WAN, and a churning fleet (message loss
#: plus server restarts — the re-convergence acceptance case).
LIVE_PRESETS: dict[str, LiveConfig] = {
    "ideal": LiveConfig(),
    "lossy": LiveConfig(p_drop=0.10),
    "churn": LiveConfig(p_drop=0.02, churn_rate=0.004, churn_downtime_rounds=3.0),
}


def get_live_preset(name: str) -> LiveConfig:
    """Look up a named control-plane preset."""
    try:
        return LIVE_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(LIVE_PRESETS))
        raise KeyError(f"unknown live preset {name!r}; known: {known}") from None


@dataclass
class LiveReport:
    """Everything one :meth:`LiveSimulation.run` measured."""

    horizon: float
    times: np.ndarray             #: sample times of the ΣCi trajectory
    costs: np.ndarray             #: ΣCi at those times
    initial_cost: float
    final_cost: float
    optimum_cost: float           #: offline optimum (``nan`` if not given)
    final_loads: np.ndarray
    per_server_error: np.ndarray | None  #: |l_final − l*| when optimum known
    failures: list[tuple[float, int]]
    rejoins: list[tuple[float, int]]
    net: NetStats
    gossip: GossipStats
    agents: AgentStats
    mean_view_age: float
    events_processed: int
    wall_s: float
    requests_submitted: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    requests_resubmitted: int = 0  #: dropped by a crash, re-sent by owners
    request_mean_latency: float = float("nan")
    trace: list = field(default_factory=list, repr=False)
    #: Wall-clock attribution table by callback kind (only with
    #: ``LiveSimulation(..., profile=True)``; see ``repro.obs.profile``).
    profile: dict | None = field(default=None, repr=False)
    #: Per-server suspicion scores of the robust merge (``None`` under
    #: the legacy merge).
    suspicion: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def events_per_sec(self) -> float:
        return self.events_processed / self.wall_s if self.wall_s > 0 else float("inf")

    def relative_errors(self) -> np.ndarray:
        """Per-sample relative error of the trajectory vs the optimum."""
        if not np.isfinite(self.optimum_cost) or self.optimum_cost <= 0:
            return np.full_like(self.costs, np.nan)
        return (self.costs - self.optimum_cost) / self.optimum_cost

    @property
    def final_error(self) -> float:
        errs = self.relative_errors()
        return float(errs[-1]) if errs.size else float("nan")

    def time_to_within(self, rel_tol: float) -> float:
        """Earliest sample time from which the trajectory *stays* within
        ``rel_tol`` of the optimum (``nan`` if it never settles there)."""
        errs = self.relative_errors()
        if errs.size == 0 or not np.isfinite(errs[-1]) or errs[-1] > rel_tol:
            return float("nan")
        above = np.flatnonzero(errs > rel_tol)
        idx = 0 if above.size == 0 else int(above[-1]) + 1
        return float(self.times[idx])

    def reconvergence_times(self, rel_tol: float) -> list[float]:
        """For each failure event, the first sample time at which the
        trajectory is back within ``rel_tol`` (``nan`` if never)."""
        errs = self.relative_errors()
        out = []
        for t_fail, _j in self.failures:
            after = np.flatnonzero((self.times >= t_fail) & (errs <= rel_tol))
            out.append(float(self.times[after[0]]) if after.size else float("nan"))
        return out


class LiveSimulation:
    """Run gossip + MinE + churn (+ request traffic) as one live system.

    Parameters
    ----------
    inst:
        The problem instance.
    config:
        Control-plane parameters; ``None`` intervals resolve against the
        instance's latency scale.
    seed:
        Single integer seeding every per-process RNG stream; two
        simulations with equal ``(inst, config, seed)`` produce identical
        event traces and final allocations.
    state:
        Starting allocation (default: everyone runs locally).
    optimum:
        Offline optimum for error/convergence metrics — a cost, or an
        :class:`AllocationState` (also enabling per-server load errors).
    scheduler:
        Event-queue scheduler (``"auto"``, ``"heap"``, ``"calendar"`` —
        see :class:`repro.sim.events.Environment`); all three produce
        identical traces, which the determinism suite asserts.
    obs:
        An :class:`repro.obs.Observability` context; defaults to the
        process-global one installed by :func:`repro.obs.enable` (usually
        ``None`` — the whole plane off).  Instrumentation never draws
        randomness or schedules events, so an observed run replays the
        exact event trace of an unobserved one.
    profile:
        Arm the wall-clock callback profiler; the attribution table is
        returned in :attr:`LiveReport.profile`.
    """

    def __init__(
        self,
        inst: Instance,
        *,
        config: LiveConfig | None = None,
        seed: int = 0,
        state: AllocationState | None = None,
        optimum: "AllocationState | float | None" = None,
        scheduler: str = "auto",
        obs: "_obs.Observability | None" = None,
        profile: bool = False,
    ):
        self.inst = inst
        self.config = (config if config is not None else LiveConfig()).resolve(inst)
        self.state = state.copy() if state is not None else AllocationState.initial(inst)
        if isinstance(optimum, AllocationState):
            self.optimum_cost = optimum.total_cost()
            self.optimum_loads: np.ndarray | None = optimum.loads.copy()
        elif optimum is not None:
            self.optimum_cost = float(optimum)
            self.optimum_loads = None
        else:
            self.optimum_cost = float("nan")
            self.optimum_loads = None

        m = inst.m
        cfg = self.config
        self.obs = obs if obs is not None else _obs.get_active()
        self._tracer = self.obs.tracer if self.obs is not None else None
        self.env = Environment(scheduler=scheduler)
        if profile:
            self._profiler = _obs.CallbackProfiler()
            self.env.set_profiler(self._profiler)
        else:
            self._profiler = None
        self.alive = np.ones(m, dtype=bool)
        self.trace: list = []
        self.failures: list[tuple[float, int]] = []
        self.rejoins: list[tuple[float, int]] = []
        self._cost_times: list[tuple[float, float]] = []
        self._wall = 0.0
        # Cost sampling: small fleets recompute ΣCi exactly at every
        # sample (cheap, keeps the trajectory monotone to the last ulp);
        # large fleets track it incrementally from the exact per-exchange
        # improvements (an O(m²) recompute per exchange would dominate
        # the run) and re-anchor exactly at run boundaries and churn
        # events.
        self._incremental_cost = m > 256
        self._running_cost = 0.0

        root = np.random.SeedSequence(
            entropy=_LIVESIM_ENTROPY, spawn_key=(int(seed),)
        )
        gossip_par, agent_par, churn_par, traffic_par, drop_seq = root.spawn(5)

        self.net = ControlNetwork(
            self.env,
            inst.latency,
            self.alive,
            p_drop=cfg.p_drop,
            drop_rng=np.random.default_rng(drop_seq),
        )
        self.gossip = AsyncGossip(
            self.env,
            self.net,
            inst,
            self.state,
            self.alive,
            gossip_par.spawn(m),
            interval=cfg.gossip_interval,
            mode=cfg.gossip_mode,
            adaptive=cfg.gossip_adaptive,
            adapt_min=cfg.gossip_adapt_min,
            adapt_max=cfg.gossip_adapt_max,
            adapt_alpha=cfg.gossip_adapt_alpha,
            merge_mode=cfg.merge_mode,
            robust_quorum=cfg.robust_quorum,
            robust_trim=cfg.robust_trim,
            robust_tolerance=cfg.robust_tolerance,
            observe_margin=cfg.robust_observe_margin,
            obs=self.obs,
        )
        initial_cost = self.state.total_cost()
        self.agents = ExchangeAgents(
            self.env,
            self.net,
            self.state,
            self.gossip,
            self.alive,
            agent_par.spawn(m),
            interval=cfg.agent_interval,
            propose_timeout=cfg.propose_timeout,
            accept_timeout=cfg.accept_timeout,
            min_improvement=max(
                cfg.min_improvement, cfg.min_improvement_rel * initial_cost / m
            ),
            strategy=cfg.agent_strategy,
            screen_width=cfg.agent_screen_width,
            backoff_factor=cfg.backoff_factor,
            backoff_max=cfg.backoff_max,
            on_exchange=self._on_exchange,
            trace=self.trace,
            obs=self.obs,
        )
        start_churn(
            self.env,
            ChurnModel(
                rate=cfg.churn_rate,
                downtime_rounds=cfg.churn_downtime_rounds,
            ),
            churn_par.spawn(m),
            agent_interval=cfg.agent_interval,
            on_fail=self._fail,
            on_rejoin=self._rejoin,
            metrics=self.obs.metrics if self.obs is not None else None,
        )
        if cfg.churn_trace is not None:
            start_trace_churn(
                self.env,
                cfg.churn_trace,
                m=m,
                agent_interval=cfg.agent_interval,
                on_fail=self._fail,
                on_rejoin=self._rejoin,
                metrics=self.obs.metrics if self.obs is not None else None,
            )

        # Adversary plane: attached last so its publish wrap covers every
        # later publish (rejoin announcements included) but never the
        # honest t = 0 bootstrap.  Entropy-separated streams; with no
        # model (or f = 0) nothing is wrapped or scheduled at all.
        self.byz = None
        if cfg.byzantine is not None and cfg.byzantine.f > 0:
            from ..byz.adversaries import AdversaryPlane  # lazy: cycle

            self.byz = AdversaryPlane(
                self.env,
                self.gossip,
                self.state,
                self.alive,
                cfg.byzantine,
                seed=seed,
                agent_interval=cfg.agent_interval,
                agents=self.agents,
            )

        self._requests: list[Request] = []
        self._requests_generated = 0
        self._requests_failed = 0
        self._requests_resubmitted = 0
        if cfg.arrival_rate_scale > 0:
            self.servers = [
                SimServer(self.env, j, float(inst.speeds[j]), obs=self.obs)
                for j in range(m)
            ]
            self._traffic_rngs: dict[int, np.random.Generator] = {}
            # Seeds are kept for all organizations: a demand shift can
            # hand load (and thus an arrival process) to an org that
            # started at zero, whose stream must still be deterministic.
            self._traffic_seeds = traffic_par.spawn(m)
            self._traffic_rates = inst.loads * cfg.arrival_rate_scale
            # One self-re-arming loop per org, never more: a loop whose
            # rate dropped to zero stays "armed" until its pending
            # callback fires and retires it, and apply_demand must not
            # arm a second one in the meantime.
            self._traffic_armed = np.zeros(m, dtype=bool)
            for i in range(m):
                if self._traffic_rates[i] > 0:
                    self._start_traffic(i)
        else:
            self.servers = []

        if self.obs is not None:
            # One surface over every subsystem's counters: the Stats
            # dataclasses stay the record sites, the registry reads them
            # live.  Series sample on the agent-interval grid.
            reg = self.obs.metrics
            reg.configure_series(cfg.agent_interval)
            reg.bind("net", self.net.stats, rename={"dropped": "drops"})
            reg.bind("gossip", self.gossip.stats)
            reg.bind("agents", self.agents.stats)
            reg.gauge("sched.queue_depth", fn=lambda: self.env.queue_size)
            reg.gauge("livesim.cost", fn=lambda: self._running_cost)
            reg.gauge("gossip.interval", fn=self.gossip.mean_interval)
            if self.gossip.suspicion is not None:
                view = self.gossip.suspicion_view
                reg.gauge("byz.suspicion.max", fn=lambda: float(view().max()))
                reg.gauge("byz.suspicion.mean", fn=lambda: float(view().mean()))
                if m <= 64:
                    for j in range(m):
                        reg.gauge(
                            f"byz.suspicion.{j}",
                            fn=lambda j=j: float(view()[j]),
                        )
            if self.byz is not None:
                reg.bind("byz", self.byz.stats)

        self._sample_cost(exact=True)  # t = 0 anchor

    # ------------------------------------------------------------------
    def _sample_cost(self, exact: bool = False) -> None:
        if exact or not self._incremental_cost:
            self._running_cost = self.state.total_cost()
        self._cost_times.append((self.env.now, self._running_cost))
        if self.obs is not None:
            self.obs.sample(self.env.now)

    def _on_exchange(self, ex) -> None:
        # The improvement is exact (computed from the applied columns),
        # so the running cost tracks ΣCi without the O(m²) recompute.
        self._running_cost -= ex.improvement
        self._sample_cost()

    def _fail(self, j: int) -> None:
        if not self.alive[j]:
            return
        self.alive[j] = False
        self.agents.cancel(j)
        displaced = fail_server(self.state, j)
        self.agents.notify_allocation_changed()
        self.failures.append((self.env.now, j))
        self.trace.append(("fail", self.env.now, j, displaced))
        if self._tracer is not None:
            self._tracer.instant(
                "churn.fail", self.env.now, track=j, displaced=float(displaced)
            )
        if self.servers:
            # A restart loses the server's request queue too: the owners
            # re-submit every dropped request, routed by the live (post-
            # failover) fractions — the churn model and the request
            # plane close the loop.
            for req in self.servers[j].fail():
                self._resubmit(req)
        self._sample_cost(exact=True)

    def _rejoin(self, j: int) -> None:
        if self.alive[j]:
            return
        self.alive[j] = True
        rejoin_server(self.state, j)
        self.agents.notify_allocation_changed()
        # Announce the comeback: the empty server republishes itself so
        # gossip spreads the rebalancing opportunity.
        self.gossip.publish(j)
        self.rejoins.append((self.env.now, j))
        self.trace.append(("rejoin", self.env.now, j))
        if self._tracer is not None:
            self._tracer.instant("churn.rejoin", self.env.now, track=j)
        self._sample_cost(exact=True)

    def _start_traffic(self, i: int) -> None:
        """Arm organization ``i``'s Poisson arrival loop — at most one
        loop per org (each org's stream comes from its own pre-spawned
        seed, so re-arming later is still deterministic)."""
        if self._traffic_armed[i]:
            return
        self._traffic_armed[i] = True
        rng = self._traffic_rngs.get(i)
        if rng is None:
            rng = self._traffic_rngs[i] = np.random.default_rng(
                self._traffic_seeds[i]
            )
        self.env.call_in(
            rng.exponential(1.0 / self._traffic_rates[i]), self._traffic_fire, i
        )

    def _route(self, i: int, rng: np.random.Generator) -> int:
        # Live routing fractions; clip float dust from incremental
        # column updates so the probabilities stay a distribution.
        p = np.clip(self.state.R[i], 0.0, None) / float(self.inst.loads[i])
        p = p / p.sum()
        return int(rng.choice(self.inst.m, p=p))

    def _traffic_fire(self, i: int) -> None:
        rate = self._traffic_rates[i]
        if rate <= 0:
            self._traffic_armed[i] = False
            return  # demand shifted away from this org: loop retires
        rng = self._traffic_rngs[i]
        self._requests_generated += 1
        j = self._route(i, rng)
        delay = float(self.inst.latency[i, j])
        tracer = self._tracer
        if not self.alive[j] or not np.isfinite(delay):
            self._requests_failed += 1
            if tracer is not None:
                tracer.instant(
                    "request.drop", self.env.now, track=i, owner=i, server=j
                )
        else:
            req = Request(owner=i, server=j, t_submit=self.env.now)
            if tracer is not None:
                # submit → route as one instant: routing is synchronous.
                req.trace_id = tracer.instant(
                    "request.submit", self.env.now, track=i, owner=i, server=j
                )
            self._requests.append(req)
            self.env.call_in(delay, self._request_arrives, req)
        self.env.call_in(rng.exponential(1.0 / rate), self._traffic_fire, i)

    def _resubmit(self, req: Request) -> None:
        """Re-submit a request dropped by a server crash from its owner,
        keeping the original submit time so the measured latency covers
        the whole journey including the lost attempt."""
        i = req.owner
        self._requests_resubmitted += 1
        tracer = self._tracer
        if tracer is not None:
            resub_sid = tracer.instant(
                "request.resubmit",
                self.env.now,
                parent=req.trace_id or None,
                track=i,
                owner=i,
            )
        if self.inst.loads[i] <= 0:
            self._requests_failed += 1
            return
        j = self._route(i, self._traffic_rngs[i])
        delay = float(self.inst.latency[i, j])
        if not self.alive[j] or not np.isfinite(delay):
            self._requests_failed += 1
            if tracer is not None:
                tracer.instant(
                    "request.drop", self.env.now,
                    parent=resub_sid, track=i, owner=i, server=j,
                )
            return
        retry = Request(owner=i, server=j, t_submit=req.t_submit)
        if tracer is not None:
            retry.trace_id = resub_sid
        self._requests.append(retry)
        self.env.call_in(delay, self._request_arrives, retry)

    def _request_arrives(self, req: Request) -> None:
        if self.alive[req.server]:
            self.servers[req.server].submit(req)
        else:
            self._requests_failed += 1
            if self._tracer is not None:
                self._tracer.instant(
                    "request.drop",
                    self.env.now,
                    parent=req.trace_id or None,
                    track=req.server,
                    owner=req.owner,
                    server=req.server,
                )

    # ------------------------------------------------------------------
    @property
    def cost_samples(self) -> list[tuple[float, float]]:
        """The sampled ``(sim time, ΣCi)`` trajectory so far — cost
        changes only at exchange/churn/demand events, so it is a step
        function anchored exactly at every run boundary."""
        return list(self._cost_times)

    def apply_demand(self, loads: np.ndarray) -> None:
        """Shift the demand vector in place: the non-stationary hook of
        the tracking plane (:class:`repro.tracking.TrackingSimulation`).

        The allocation keeps its routing *fractions* (each organization's
        volume is rescaled to its new demand — the warm start), the
        gossip layer republishes every live server's new true load, the
        agents refresh their owner set and drop their back-off, and the
        Poisson traffic rates re-scale.  Topology and speeds are static;
        only the loads change.
        """
        from ..core.dynamic import retarget_rows  # lazy: avoid cycle

        new_inst = self.inst.with_loads(loads)
        retarget_rows(self.state.R, self.inst.loads, new_inst.loads)
        self.inst = new_inst
        self.state.inst = new_inst
        self.state.refresh_loads()
        self.gossip.refresh_demand(new_inst)
        self.agents.notify_demand_changed()
        if self.servers:
            old_rates = self._traffic_rates
            self._traffic_rates = new_inst.loads * self.config.arrival_rate_scale
            for i in np.flatnonzero((old_rates <= 0) & (self._traffic_rates > 0)):
                self._start_traffic(int(i))
        self.trace.append(("demand", self.env.now, float(new_inst.total_load)))
        if self._tracer is not None:
            self._tracer.instant(
                "livesim.demand_shift",
                self.env.now,
                total_load=float(new_inst.total_load),
            )
        self._sample_cost(exact=True)

    def run(
        self, *, rounds: float | None = None, until: float | None = None
    ) -> LiveReport:
        """Advance the simulation by ``rounds`` agent intervals (or to
        absolute sim-time ``until``) and return the report so far.

        May be called repeatedly to extend a run; metrics accumulate.
        """
        if (rounds is None) == (until is None):
            raise ValueError("give exactly one of rounds= or until=")
        horizon = (
            float(until)
            if until is not None
            else self.env.now + float(rounds) * self.config.agent_interval
        )
        t0 = _time.perf_counter()
        self.env.run(until=horizon)
        self._wall += _time.perf_counter() - t0
        self._sample_cost(exact=True)  # re-anchor incremental tracking
        return self.report()

    def report(self) -> LiveReport:
        """The metrics accumulated so far."""
        times = np.asarray([t for t, _ in self._cost_times])
        costs = np.asarray([c for _, c in self._cost_times])
        completed = [r for r in self._requests if not np.isnan(r.t_complete)]
        mean_lat = (
            float(np.mean([r.latency for r in completed]))
            if completed
            else float("nan")
        )
        per_server_error = (
            np.abs(self.state.loads - self.optimum_loads)
            if self.optimum_loads is not None
            else None
        )
        return LiveReport(
            horizon=self.env.now,
            times=times,
            costs=costs,
            initial_cost=float(costs[0]),
            final_cost=float(costs[-1]),
            optimum_cost=self.optimum_cost,
            final_loads=self.state.loads.copy(),
            per_server_error=per_server_error,
            failures=list(self.failures),
            rejoins=list(self.rejoins),
            net=self.net.stats,
            gossip=self.gossip.stats,
            agents=self.agents.stats,
            mean_view_age=self.gossip.mean_view_age(),
            events_processed=self.env.processed,
            wall_s=self._wall,
            requests_submitted=self._requests_generated,
            requests_completed=len(completed),
            requests_failed=self._requests_failed,
            requests_resubmitted=self._requests_resubmitted,
            request_mean_latency=mean_lat,
            trace=self.trace,
            profile=(
                self._profiler.table() if self._profiler is not None else None
            ),
            suspicion=self.gossip.suspicion_view(),
        )
