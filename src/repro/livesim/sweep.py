"""Sync-vs-async convergence sweeps over scenario × control-plane cells.

A :class:`LiveCell` is one picklable unit of work: a scenario cell plus
a control-plane ``mode`` — ``"sync"`` runs the classic lock-stepped
:class:`repro.core.distributed.MinEOptimizer`, ``"async"`` runs the
event-driven :class:`repro.livesim.LiveSimulation` under a named preset
(``"ideal"``, ``"lossy"``, ``"churn"``).  :func:`evaluate_live_cell` is
module-level, so :class:`repro.engine.SweepEngine` can fan cells out
over any backend; the offline optimum each cell compares against comes
from the in-process memo cache (:mod:`repro.workloads.cache`), so the
sync and async cells of one scenario share a single O(m²–m³) solve.

>>> from repro.livesim import live_sweep
>>> rows = live_sweep(["paper-homogeneous"], sizes=[16], seeds=[0],
...                   modes=("sync", "async"))            # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.distributed import MinEOptimizer
from ..core.state import AllocationState
from ..engine.sweep import SweepEngine
from ..workloads.cache import cached_instance, cached_optimum
from ..workloads.runner import _instance_digest
from ..workloads.scenario import Scenario, get_scenario
from .driver import LiveSimulation, get_live_preset

__all__ = ["LiveCell", "evaluate_live_cell", "live_sweep"]

MODES = ("sync", "async")


@dataclass(frozen=True)
class LiveCell:
    """One (scenario, m, seed) × (mode, preset) convergence measurement."""

    scenario: Scenario
    m: int
    seed: int
    mode: str = "async"
    preset: str = "ideal"
    rounds: int = 60
    rel_tol: float = 0.02
    solver_tol: float = 1e-9

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        get_live_preset(self.preset)  # validate eagerly

    def key(self) -> str:
        """Stable store identity of this cell.

        Includes a digest of the materialized instance (guards against a
        same-named scenario being re-registered with different
        parameters, exactly as :meth:`repro.workloads.SweepCell.key`
        does) and every config knob that changes the metrics — so a
        shared JSONL store never serves stale rows.
        """
        return (
            f"live|{self.scenario.name}|m={self.m}|seed={self.seed}"
            f"|inst={_instance_digest(self.scenario, self.m, self.seed)}"
            f"|mode={self.mode}|preset={self.preset}|rounds={self.rounds}"
            f"|tol={self.rel_tol}|solver_tol={self.solver_tol}"
        )


def evaluate_live_cell(cell: LiveCell) -> dict:
    """Run one cell; returns a flat, JSON-able metrics row.

    Both modes report convergence on the same clock — *agent rounds* —
    so sync and async trajectories are directly comparable: a sync MinE
    iteration corresponds to one agent interval of wall-clock sim time.

    Every row carries a ``failure`` field: empty on success, the
    exception (``"TypeName: message"``) when the cell's evaluation
    raised.  A failed (or sync — no event engine) cell reports
    ``events_per_sec=0.0`` rather than NaN, so JSONL stores and
    ``ScenarioReport.from_csv`` aggregate real numbers and the reason a
    measurement is missing is recorded instead of silently propagated.
    """
    sc, m, seed = cell.scenario, cell.m, cell.seed
    row = {
        "scenario": sc.name,
        "m": m,
        "seed": seed,
        "mode": cell.mode,
        "preset": cell.preset,
        "failure": "",
    }
    try:
        inst = cached_instance(sc, m, seed)
        _opt_state, opt_cost, _wall, _hit = cached_optimum(
            sc, m, seed, tol=cell.solver_tol
        )
        row["optimal_cost"] = opt_cost
        if cell.mode == "sync":
            state = AllocationState.initial(inst)
            optimizer = MinEOptimizer(state, rng=sc.rng(m, seed), strategy="exact")
            trace = optimizer.run(
                max_iterations=cell.rounds, optimum=opt_cost, rel_tol=cell.rel_tol
            )
            errs = trace.relative_errors(opt_cost)
            within = np.flatnonzero(errs <= cell.rel_tol)
            row.update(
                final_error=float(errs[-1]),
                converged=bool(trace.converged),
                rounds_to_bound=float(within[0]) if within.size else float("nan"),
                exchanges=int(sum(s.exchanges for s in trace.sweeps)),
                failures=0,
                events_per_sec=0.0,  # lock-stepped: no event engine ran
                mean_view_age_rounds=0.0,
            )
        else:
            cfg = get_live_preset(cell.preset)
            sim = LiveSimulation(inst, config=cfg, seed=seed, optimum=opt_cost)
            report = sim.run(rounds=cell.rounds)
            interval = sim.config.agent_interval
            row.update(
                final_error=report.final_error,
                converged=bool(report.final_error <= cell.rel_tol),
                rounds_to_bound=report.time_to_within(cell.rel_tol) / interval,
                exchanges=report.agents.exchanges,
                failures=len(report.failures),
                events_per_sec=report.events_per_sec,
                mean_view_age_rounds=report.mean_view_age / interval,
            )
    except Exception as exc:
        row.update(
            optimal_cost=row.get("optimal_cost", 0.0),
            final_error=float("inf"),
            converged=False,
            rounds_to_bound=float("nan"),
            exchanges=0,
            failures=0,
            events_per_sec=0.0,
            mean_view_age_rounds=0.0,
            failure=f"{type(exc).__name__}: {exc}",
        )
    return row


def live_sweep(
    scenarios,
    *,
    sizes=None,
    seeds=(0,),
    modes=MODES,
    preset: str = "ideal",
    rounds: int = 60,
    rel_tol: float = 0.02,
    backend: str = "serial",
    max_workers: int | None = None,
    store=None,
) -> list[dict]:
    """Sweep sync-vs-async convergence across a scenario grid.

    ``scenarios`` mixes names and :class:`Scenario` objects; ``sizes``
    of ``None`` uses each scenario's default ``m``.  Returns one metrics
    row per (scenario, size, seed, mode) cell, in grid order; execution
    goes through :class:`repro.engine.SweepEngine`, so any backend and
    any JSONL store work exactly as they do for
    :class:`repro.workloads.ScenarioRunner`.
    """
    if isinstance(scenarios, (str, Scenario)):
        scenarios = [scenarios]
    resolved = [s if isinstance(s, Scenario) else get_scenario(s) for s in scenarios]
    cells = [
        LiveCell(
            scenario=sc,
            m=int(m),
            seed=int(seed),
            mode=mode,
            preset=preset,
            rounds=rounds,
            rel_tol=rel_tol,
        )
        for sc in resolved
        for m in (sizes if sizes is not None else (sc.m,))
        for seed in seeds
        for mode in modes
    ]
    engine = SweepEngine(
        evaluate_live_cell,
        cells,
        backend=backend,
        max_workers=max_workers,
        store=store,
        key=lambda cell: cell.key(),
    )
    return engine.run()
