"""Churn: servers crash, shed their remote load, and rejoin later.

Each server (independently, on its own RNG stream) fails after an
exponential holding time and stays down for an exponential downtime.
A failure is a *restart that loses the server's queue*: every remote
organization fails its requests back over to its own local server
(``r_kj → r_kk``), which perturbs the allocation and spikes ``ΣCi`` —
the re-convergence the livesim acceptance tests measure.  While down, a
server neither gossips nor handshakes and all messages delivered to it
are lost; on rejoin it republishes its (now empty) authoritative entry
and the agents rebalance load back onto it.

Message loss (probability ``p``) is orthogonal and lives in
:class:`repro.livesim.net.ControlNetwork`; this module only models the
leave/rejoin process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.state import AllocationState
from ..sim.events import Environment

__all__ = ["ChurnModel", "start_churn", "fail_server", "rejoin_server"]


@dataclass(frozen=True)
class ChurnModel:
    """Failure process parameters.

    ``rate`` is the expected number of restarts per server per
    *agent-interval round* (the natural clock of the control plane, so a
    preset means the same thing on a 0.5 ms fat-tree and a 90 ms WAN);
    ``downtime_rounds`` is the mean downtime in the same unit.
    """

    rate: float = 0.0
    downtime_rounds: float = 2.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("churn rate must be non-negative")
        if self.downtime_rounds <= 0:
            raise ValueError("mean downtime must be positive")


def fail_server(state: AllocationState, j: int) -> float:
    """Apply the allocation effect of server ``j`` crashing: every other
    organization's requests on ``j`` fail over to their local servers.
    Returns the volume of requests displaced."""
    R = state.R
    col = R[:, j].copy()
    col[j] = 0.0  # org j's own requests stay pinned to its (down) server
    movers = np.flatnonzero(col)
    if movers.size:
        R[movers, movers] += col[movers]
        R[movers, j] = 0.0
        state.refresh_loads()
    return float(col.sum())


def rejoin_server(state: AllocationState, j: int) -> None:
    """Allocation effect of ``j`` rejoining: none — it comes back holding
    only whatever its own organization kept pinned locally."""


def start_churn(
    env: Environment,
    model: ChurnModel,
    seeds: list[np.random.SeedSequence],
    *,
    agent_interval: float,
    on_fail: Callable[[int], None],
    on_rejoin: Callable[[int], None],
    metrics=None,
) -> None:
    """Spawn one leave/rejoin process per server.

    No process is spawned when ``model.rate == 0`` — churn at rate zero
    is *exactly* churn disabled, which the determinism tests assert.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) optionally counts
    restarts under ``churn.*`` and observes the drawn downtimes; churn is
    event-scale rare, so the record cost is irrelevant either way.
    """
    if model.rate == 0.0:
        return
    mean_up = agent_interval / model.rate
    mean_down = agent_interval * model.downtime_rounds
    rngs = [np.random.default_rng(s) for s in seeds]
    if metrics is not None:
        c_fail = metrics.counter("churn.failures")
        c_rejoin = metrics.counter("churn.rejoins")
        h_down = metrics.histogram("churn.downtime")
    else:
        c_fail = c_rejoin = h_down = None

    # Self-re-arming callbacks (engine fast path): each server alternates
    # between one pending fail event and one pending rejoin event.
    def _fail(j: int) -> None:
        on_fail(j)
        down = rngs[j].exponential(mean_down)
        if c_fail is not None:
            c_fail.inc()
            h_down.observe(down)
        env.call_in(down, _rejoin, j)

    def _rejoin(j: int) -> None:
        on_rejoin(j)
        if c_rejoin is not None:
            c_rejoin.inc()
        env.call_in(rngs[j].exponential(mean_up), _fail, j)

    for j in range(len(seeds)):
        env.call_in(rngs[j].exponential(mean_up), _fail, j)
