"""Churn: servers crash, shed their remote load, and rejoin later.

Each server (independently, on its own RNG stream) fails after an
exponential holding time and stays down for an exponential downtime.
A failure is a *restart that loses the server's queue*: every remote
organization fails its requests back over to its own local server
(``r_kj → r_kk``), which perturbs the allocation and spikes ``ΣCi`` —
the re-convergence the livesim acceptance tests measure.  While down, a
server neither gossips nor handshakes and all messages delivered to it
are lost; on rejoin it republishes its (now empty) authoritative entry
and the agents rebalance load back onto it.

Besides the memoryless :class:`ChurnModel`, a :class:`FailureTrace`
replays an explicit ``(t_rounds, server, downtime_rounds)`` event list
— loaded from CSV/NPZ like :class:`repro.tracking.MeasuredTrace`, or
generated from per-server MTBF parameters with
:meth:`FailureTrace.from_mtbf` (Weibull inter-failure times, the
standard fit to measured cluster failure data, which burst far more
than the exponential model).  Trace events route through the same
``on_fail``/``on_rejoin`` driver callbacks, so queue drops and owner
re-submission couple exactly as under random churn.

Message loss (probability ``p``) is orthogonal and lives in
:class:`repro.livesim.net.ControlNetwork`; this module only models the
leave/rejoin process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.state import AllocationState
from ..sim.events import Environment

__all__ = [
    "ChurnModel",
    "FailureTrace",
    "start_churn",
    "start_trace_churn",
    "fail_server",
    "rejoin_server",
]

#: Entropy constant of the MTBF trace generator (entropy-separated from
#: every other stream in the engine, keyed by the caller's seed).
_FAILTRACE_ENTROPY = 0x9D17B0F3


@dataclass(frozen=True)
class ChurnModel:
    """Failure process parameters.

    ``rate`` is the expected number of restarts per server per
    *agent-interval round* (the natural clock of the control plane, so a
    preset means the same thing on a 0.5 ms fat-tree and a 90 ms WAN);
    ``downtime_rounds`` is the mean downtime in the same unit.
    """

    rate: float = 0.0
    downtime_rounds: float = 2.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("churn rate must be non-negative")
        if self.downtime_rounds <= 0:
            raise ValueError("mean downtime must be positive")


@dataclass(frozen=True, eq=False)
class FailureTrace:
    """An explicit failure schedule: ``(n, 3)`` rows of
    ``(t_rounds, server, downtime_rounds)``.

    ``t`` and downtimes are measured in *agent rounds* (the control
    plane's natural clock, like :class:`ChurnModel`); servers are
    integer indices.  Events need not be sorted — replay sorts them —
    and events for servers ``>= m`` are ignored at start time, so one
    measured trace can drive fleets of several sizes.
    """

    events: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        ev = np.asarray(self.events, dtype=np.float64)
        if ev.ndim != 2 or ev.shape[1] != 3:
            raise ValueError(
                "failure trace must be a (n, 3) matrix of "
                "(t_rounds, server, downtime_rounds) rows"
            )
        if not np.all(np.isfinite(ev)):
            raise ValueError("failure trace entries must be finite")
        if np.any(ev[:, 0] < 0):
            raise ValueError("failure times must be non-negative")
        if np.any(ev[:, 1] < 0) or np.any(ev[:, 1] != np.round(ev[:, 1])):
            raise ValueError("server column must hold non-negative integers")
        if np.any(ev[:, 2] <= 0):
            raise ValueError("downtimes must be positive")
        ev = ev[np.lexsort((ev[:, 1], ev[:, 0]))]
        ev.flags.writeable = False
        object.__setattr__(self, "events", ev)

    @property
    def n_events(self) -> int:
        return self.events.shape[0]

    @classmethod
    def from_csv(cls, path: "str | os.PathLike") -> "FailureTrace":
        """Load a trace from CSV (one ``t,server,downtime`` row each)."""
        ev = np.loadtxt(os.fspath(path), delimiter=",", ndmin=2)
        return cls(ev)

    @classmethod
    def from_npz(
        cls, path: "str | os.PathLike", *, key: str = "events"
    ) -> "FailureTrace":
        """Load a trace from an ``.npz`` archive (``key`` names the matrix)."""
        with np.load(os.fspath(path)) as npz:
            return cls(npz[key])

    @classmethod
    def from_mtbf(
        cls,
        m: int,
        *,
        mtbf_rounds: float,
        horizon_rounds: float,
        downtime_rounds: float = 3.0,
        shape: float = 0.7,
        seed: int = 0,
    ) -> "FailureTrace":
        """Generate a measured-style trace from MTBF parameters.

        Per-server inter-failure times are Weibull with the given
        ``shape`` (< 1 bursts failures, matching measured cluster MTBF
        data; 1.0 recovers the exponential churn model) scaled so the
        mean is ``mtbf_rounds``; downtimes are exponential with mean
        ``downtime_rounds``.  Deterministic per ``(m, seed)`` via an
        entropy-separated stream."""
        if mtbf_rounds <= 0 or horizon_rounds <= 0:
            raise ValueError("mtbf_rounds and horizon_rounds must be positive")
        if downtime_rounds <= 0:
            raise ValueError("downtime_rounds must be positive")
        if shape <= 0:
            raise ValueError("Weibull shape must be positive")
        try:
            from math import gamma as _gamma

            scale = mtbf_rounds / _gamma(1.0 + 1.0 / shape)
        except OverflowError:  # pragma: no cover - absurd shapes
            scale = mtbf_rounds
        root = np.random.SeedSequence(
            entropy=_FAILTRACE_ENTROPY, spawn_key=(int(m), int(seed))
        )
        rows = []
        for j, ss in enumerate(root.spawn(int(m))):
            rng = np.random.default_rng(ss)
            t = float(scale * rng.weibull(shape))
            while t < horizon_rounds:
                down = float(rng.exponential(downtime_rounds))
                rows.append((t, float(j), down))
                t += down + float(scale * rng.weibull(shape))
        if not rows:
            # Keep the (n, 3) shape even for a quiet horizon.
            return cls(np.empty((0, 3), dtype=np.float64))
        return cls(np.asarray(rows, dtype=np.float64))


def fail_server(state: AllocationState, j: int) -> float:
    """Apply the allocation effect of server ``j`` crashing: every other
    organization's requests on ``j`` fail over to their local servers.
    Returns the volume of requests displaced."""
    R = state.R
    col = R[:, j].copy()
    col[j] = 0.0  # org j's own requests stay pinned to its (down) server
    movers = np.flatnonzero(col)
    if movers.size:
        R[movers, movers] += col[movers]
        R[movers, j] = 0.0
        state.refresh_loads()
    return float(col.sum())


def rejoin_server(state: AllocationState, j: int) -> None:
    """Allocation effect of ``j`` rejoining: none — it comes back holding
    only whatever its own organization kept pinned locally."""


def start_churn(
    env: Environment,
    model: ChurnModel,
    seeds: list[np.random.SeedSequence],
    *,
    agent_interval: float,
    on_fail: Callable[[int], None],
    on_rejoin: Callable[[int], None],
    metrics=None,
) -> None:
    """Spawn one leave/rejoin process per server.

    No process is spawned when ``model.rate == 0`` — churn at rate zero
    is *exactly* churn disabled, which the determinism tests assert.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) optionally counts
    restarts under ``churn.*`` and observes the drawn downtimes; churn is
    event-scale rare, so the record cost is irrelevant either way.
    """
    if model.rate == 0.0:
        return
    mean_up = agent_interval / model.rate
    mean_down = agent_interval * model.downtime_rounds
    rngs = [np.random.default_rng(s) for s in seeds]
    if metrics is not None:
        c_fail = metrics.counter("churn.failures")
        c_rejoin = metrics.counter("churn.rejoins")
        h_down = metrics.histogram("churn.downtime")
    else:
        c_fail = c_rejoin = h_down = None

    # Self-re-arming callbacks (engine fast path): each server alternates
    # between one pending fail event and one pending rejoin event.
    def _fail(j: int) -> None:
        on_fail(j)
        down = rngs[j].exponential(mean_down)
        if c_fail is not None:
            c_fail.inc()
            h_down.observe(down)
        env.call_in(down, _rejoin, j)

    def _rejoin(j: int) -> None:
        on_rejoin(j)
        if c_rejoin is not None:
            c_rejoin.inc()
        env.call_in(rngs[j].exponential(mean_up), _fail, j)

    for j in range(len(seeds)):
        env.call_in(rngs[j].exponential(mean_up), _fail, j)


def start_trace_churn(
    env: Environment,
    trace: FailureTrace,
    *,
    m: int,
    agent_interval: float,
    on_fail: Callable[[int], None],
    on_rejoin: Callable[[int], None],
    metrics=None,
) -> int:
    """Schedule every event of a :class:`FailureTrace` (times in agent
    rounds scaled by ``agent_interval``) through the same driver
    callbacks as :func:`start_churn`; returns the number of events
    scheduled.  Events for servers ``>= m`` are skipped, and overlapping
    fail/rejoin windows are tolerated — the driver's alive-guards make
    duplicate transitions no-ops.  No RNG is involved: replaying a trace
    is exactly as deterministic as the trace itself."""
    if metrics is not None:
        c_fail = metrics.counter("churn.failures")
        c_rejoin = metrics.counter("churn.rejoins")
        h_down = metrics.histogram("churn.downtime")
    else:
        c_fail = c_rejoin = h_down = None

    def _fail(j: int) -> None:
        on_fail(j)
        if c_fail is not None:
            c_fail.inc()

    def _rejoin(j: int) -> None:
        on_rejoin(j)
        if c_rejoin is not None:
            c_rejoin.inc()

    n = 0
    for t, srv, down in trace.events:
        j = int(srv)
        if j >= m:
            continue
        env.call_at(float(t) * agent_interval, _fail, j)
        env.call_at(float(t + down) * agent_interval, _rejoin, j)
        if h_down is not None:
            h_down.observe(float(down) * agent_interval)
        n += 1
    return n
