"""Asynchronous push–pull gossip running as discrete-event processes.

The round-based :class:`repro.gossip.GossipNetwork` advances all nodes in
lock step; here every server runs its *own* jittered publish/exchange
loop on the shared event heap.  One cycle of server ``i``:

1. publish its authoritative entry (its current true load, a fresh
   per-origin version, and the publish sim-time);
2. pick a random finite-latency peer ``j`` and send it a PUSH carrying a
   copy of ``i``'s whole table;
3. on delivery, ``j`` merges the table entry-wise by per-origin version
   and replies with a PULL-REPLY carrying its merged table, which ``i``
   merges in turn when (and if) it arrives.

Because both legs travel through :class:`repro.livesim.net.ControlNetwork`
views are stale by real in-flight time: entry ages (``now − publish
time``) are the staleness metric the driver reports.  Down servers
neither publish nor reply; their authoritative entries age until they
rejoin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..core.state import AllocationState
from ..sim.events import Environment
from .net import ControlNetwork

__all__ = ["AsyncGossip", "GossipStats"]


@dataclass
class GossipStats:
    """Counters of the gossip layer."""

    publishes: int = 0
    pushes: int = 0
    pull_replies: int = 0
    merges: int = 0


class AsyncGossip:
    """Per-server gossip tables plus the processes that exchange them.

    ``values[i, k]`` is server ``i``'s view of server ``k``'s load,
    ``versions[i, k]`` the per-origin version of that view and
    ``stamps[i, k]`` the sim-time at which origin ``k`` published it —
    so ``env.now − stamps[i]`` is the *information age* of ``i``'s view.
    """

    def __init__(
        self,
        env: Environment,
        net: ControlNetwork,
        inst: Instance,
        state: AllocationState,
        alive: np.ndarray,
        seeds: list[np.random.SeedSequence],
        *,
        interval: float,
    ):
        m = inst.m
        if len(seeds) != m:
            raise ValueError("need one RNG seed per server")
        self.env = env
        self.net = net
        self.inst = inst
        self.state = state
        self.alive = alive
        self.interval = float(interval)
        self.rngs = [np.random.default_rng(s) for s in seeds]
        self.stats = GossipStats()

        # Bootstrap: the starting allocation (everyone runs locally) is
        # common knowledge, so every table starts from the true initial
        # loads at version 0 / age 0 rather than from blank entries.
        self.values = np.tile(np.asarray(state.loads, dtype=np.float64), (m, 1))
        self.versions = np.zeros((m, m), dtype=np.int64)
        self.stamps = np.zeros((m, m))
        self._own_version = np.zeros(m, dtype=np.int64)
        # Peers reachable over a finite-latency link (gossip cannot cross
        # forbidden links any more than requests can).
        self.peers = [
            np.flatnonzero(np.isfinite(inst.latency[i]) & (np.arange(m) != i))
            for i in range(m)
        ]
        # Every server knows its own load exactly at t = 0.
        for i in range(m):
            self.publish(i)
        for i in range(m):
            env.process(self._cycle(i))

    # ------------------------------------------------------------------
    def publish(self, i: int) -> None:
        """Server ``i`` (re)publishes its authoritative entry: its true
        current load, freshly versioned and stamped with the sim-time."""
        self._own_version[i] += 1
        self.values[i, i] = self.state.loads[i]
        self.versions[i, i] = self._own_version[i]
        self.stamps[i, i] = self.env.now
        self.stats.publishes += 1

    def view(self, i: int) -> np.ndarray:
        """Server ``i``'s current (stale) view of all loads; its own
        entry is always live."""
        out = self.values[i].copy()
        out[i] = self.state.loads[i]
        return out

    def ages(self, i: int) -> np.ndarray:
        """Information age of server ``i``'s view entries, in sim-time
        units since the entry was published at its origin."""
        return self.env.now - self.stamps[i]

    def mean_view_age(self) -> float:
        """Mean finite off-diagonal view age across all live servers."""
        ages = self.env.now - self.stamps
        m = self.inst.m
        mask = np.isfinite(ages) & ~np.eye(m, dtype=bool)
        mask &= self.alive[:, None]
        if not mask.any():
            return float("inf")
        return float(ages[mask].mean())

    # ------------------------------------------------------------------
    def _cycle(self, i: int):
        rng = self.rngs[i]
        while True:
            # Jittered interval: desynchronizes the population so gossip
            # traffic is spread over time instead of thundering in herds.
            yield self.env.timeout(self.interval * (0.5 + rng.random()))
            if not self.alive[i] or self.peers[i].size == 0:
                continue
            self.publish(i)
            j = int(self.peers[i][rng.integers(self.peers[i].size)])
            self.stats.pushes += 1
            self.net.send(i, j, self._on_push, self._packet(i, j))

    def _packet(self, src: int, dst: int) -> tuple:
        return (
            src,
            dst,
            self.values[src].copy(),
            self.versions[src].copy(),
            self.stamps[src].copy(),
        )

    def _merge(self, dst: int, values, versions, stamps) -> None:
        newer = versions > self.versions[dst]
        if newer.any():
            self.values[dst, newer] = values[newer]
            self.versions[dst, newer] = versions[newer]
            self.stamps[dst, newer] = stamps[newer]
            self.stats.merges += 1

    def _on_push(self, packet) -> None:
        src, dst, values, versions, stamps = packet
        self._merge(dst, values, versions, stamps)
        # Pull half of the push–pull exchange: reply with the merged table.
        self.stats.pull_replies += 1
        self.net.send(dst, src, self._on_pull_reply, self._packet(dst, src))

    def _on_pull_reply(self, packet) -> None:
        src, dst, values, versions, stamps = packet
        self._merge(dst, values, versions, stamps)
