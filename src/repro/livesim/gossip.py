"""Asynchronous push–pull gossip running on the event engine's fast path.

The round-based :class:`repro.gossip.GossipNetwork` advances all nodes in
lock step; here every server runs its *own* jittered publish/exchange
loop on the shared event queue.  One cycle of server ``i``:

1. publish its authoritative entry (its current true load, a fresh
   per-origin version, and the publish sim-time);
2. pick a random finite-latency peer ``j`` and send it a PUSH carrying
   gossip state;
3. on delivery, ``j`` merges the payload entry-wise by per-origin version
   and replies with a PULL-REPLY carrying its own state, which ``i``
   merges in turn when (and if) it arrives.

Because both legs travel through :class:`repro.livesim.net.ControlNetwork`
views are stale by real in-flight time: entry ages (``now − publish
time``) are the staleness metric the driver reports.  Down servers
neither publish nor reply; their authoritative entries age until they
rejoin.

Two wire formats carry the exchange (``mode=`` on :class:`AsyncGossip`,
``gossip_mode`` on :class:`repro.livesim.LiveConfig`):

``"full"`` (default)
    Every payload is the sender's whole per-server state (values,
    versions, publish stamps) — one batched copy per (src, dst) round,
    merged with one version-masked pass.  O(m) payload per message.

``"delta"``
    Version-vector diffs: a payload carries only the entries the sender
    cannot prove the receiver already has.  Each server tracks the local
    sim-time at which every table entry last *changed* (merged a newer
    version, or its own entry re-published a new value — tracked on a
    per-server integer modification clock, so ordering is exact even
    when events share a float timestamp) plus, per destination, an
    acknowledged *floor*: payloads ship exactly the entries modified
    after the floor.  The PULL-REPLY echoes the push's assembly clock;
    receiving it proves the push was merged, advancing the floor.  Lost
    messages simply leave the floor behind, so the next payload is a
    superset — never a gap.  Entry versions bump only when a value
    actually changes, so a converged fleet ships near-empty payloads:
    O(changes) instead of O(m).

    Delta mode is a *wire-format* optimization with provably identical
    merge results: a payload always includes every entry strictly newer
    than the receiver's copy (anything omitted is provably not newer, so
    a full-table merge would discard it too).  Message sequence, RNG
    streams, merged load views, ``update_counts`` and therefore agent
    behavior are bit-identical to full mode — the determinism suite
    replays both modes on every preset.  Only the staleness *metric*
    differs: stamps refresh on value changes, so a view's "age" is the
    age of its last change rather than of its last heartbeat.

Throughput choices that matter on the hot path:

* **Batched payloads.**  A (src, dst) exchange round ships the whole
  per-server state (or its delta) as *one* payload and merges it with
  one version-masked pass — never one message-event per table entry.
* **Size-adaptive representation.**  At fleet scale the table is one
  packed ``(m, 3, m)`` ndarray: a payload is a single contiguous
  ``(3, m)`` copy (or a fancy-indexed ``(3, k)`` delta) and a merge a
  few vectorized calls.  On small fleets (``m <= _LIST_MODE_MAX``) the
  same protocol runs on plain Python lists instead — at m ≈ 16 a list
  copy-and-merge is ~5x cheaper than the numpy one, whose fixed per-call
  dispatch dominates rows that small.  The mode is an internal
  representation choice; the message sequence, RNG streams and merge
  results are identical.
* **Callback cycles.**  Each server's publish/push loop is a self-
  re-arming ``call_at`` callback, not a generator process, with its
  jitter and peer draws taken from block-buffered (bit-identical)
  streams.

``update_counts[i]`` counts the times server ``i``'s *view content*
actually changed (fresh values merged in, or its own entry re-published
with a different load) — the agents use it to skip re-evaluating a
partner proposal when nothing the proposal depends on has changed.

Byzantine-robust merge (``merge_mode="robust"``, off by default)
----------------------------------------------------------------

The legacy merge trusts every entry: whoever ships the highest version
for an origin owns the receiver's view of that origin.  One misbehaving
server can therefore poison every view it gossips into (see
:mod:`repro.byz.adversaries`).  Robust mode replaces the per-entry
accept rule with ideas from fault-tolerant approximate consensus
(Dolev et al. JACM86; Ben-Or-style rounds):

* **First-hand claims** (sender == origin) are accepted by version rule,
  but clamped against what the receiver *provably* knows: its own
  placement ``R[dst, origin]`` is a hard lower bound on the origin's
  true load, so a self-claim below it is a detected lie (suspicion++,
  value clamped to the bound).
* **Second-hand claims** (relays) go through a per-(receiver, origin)
  claim buffer keyed by reporter.  A value is accepted only once
  ``robust_quorum`` distinct reporters carry versions newer than the
  accepted one; the claims are sorted by value, the ``robust_trim``
  most extreme are discarded from each end, and the survivors must
  agree within ``robust_tolerance`` (relative).  The accepted value is
  the survivors' mean and the accepted version their *minimum* — a
  fabricated sky-high version can therefore never ratchet the accepted
  version and lock honest claims out.
* **Pair-sync observations**: a completed exchange handshake
  synchronizes the pair on the true state, so the agents feed the
  partner's exact load back via :meth:`observe_peer` — the defense that
  no quorum can provide against an origin lying about *itself* (every
  relay of a self-claim descends from the same lie).
* **Suspicion**: every detected lie (clamped self-claim, trimmed-out
  outlier claim, observation contradicting a view) accrues a per-server
  ``suspicion`` score — weighted by how many agreement bands off the
  value was and decaying exponentially in sim time, so the transient
  staleness of early convergence fades while persistent liars keep
  accumulating.  Exported as ``byz.suspicion`` gauges (read through
  :meth:`AsyncGossip.suspicion_view`).

Robust mode is a small-fleet (Python-loop) code path aimed at the
``byzantine-*`` scenario family; with ``merge_mode="legacy"`` (the
default) none of its state exists and traces are bit-identical to
earlier releases — asserted on every preset in both wire formats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..core.state import AllocationState
from ..sim.events import Environment
from ._util import BufferedIntegers, BufferedUniform
from .net import ControlNetwork

__all__ = ["AsyncGossip", "GossipStats", "GOSSIP_MODES", "MERGE_MODES"]

#: Largest fleet kept on the Python-list table representation; beyond it
#: the vectorized packed-ndarray path wins (the crossover is flat
#: between ~48 and ~96 servers).
_LIST_MODE_MAX = 64

GOSSIP_MODES = ("full", "delta")

MERGE_MODES = ("legacy", "robust")

#: Modelled payload sizes for the byte accounting: a full-table entry is
#: three float64 (value, version, stamp); a delta entry additionally
#: carries its origin index; every message pays a small fixed header.
_ENTRY_BYTES_FULL = 24
_ENTRY_BYTES_DELTA = 32
_HEADER_BYTES = 24


@dataclass
class GossipStats:
    """Counters of the gossip layer."""

    publishes: int = 0
    pushes: int = 0
    pull_replies: int = 0
    merges: int = 0
    payload_entries: int = 0  #: table entries shipped across all payloads
    payload_bytes: int = 0    #: modelled bytes shipped (see module doc)
    # Robust-merge counters (always 0 under merge_mode="legacy"):
    claims: int = 0           #: second-hand claims buffered
    robust_accepts: int = 0   #: entries accepted via quorum + trimmed mean
    quorum_holds: int = 0     #: quorums reached but spread out of tolerance
    outliers: int = 0         #: claims trimmed as outliers (suspicion++)
    clamps: int = 0           #: self-claims clamped to the placement bound
    observations: int = 0     #: pair-sync true-load observations recorded


class AsyncGossip:
    """Per-server gossip tables plus the callbacks that exchange them.

    ``values[i, k]`` is server ``i``'s view of server ``k``'s load,
    ``versions[i, k]`` the per-origin version of that view and
    ``stamps[i, k]`` the sim-time at which origin ``k`` published it —
    so ``env.now − stamps[i]`` is the *information age* of ``i``'s view.
    The three are exposed as (m, m) arrays regardless of the internal
    representation (see module doc); mutate state only through
    :meth:`publish` and the message handlers.  ``mode`` selects the wire
    format (``"full"`` tables or ``"delta"`` version-vector diffs).
    """

    def __init__(
        self,
        env: Environment,
        net: ControlNetwork,
        inst: Instance,
        state: AllocationState,
        alive: np.ndarray,
        seeds: list[np.random.SeedSequence],
        *,
        interval: float,
        mode: str = "full",
        adaptive: bool = False,
        adapt_min: float = 0.5,
        adapt_max: float = 4.0,
        adapt_alpha: float = 0.3,
        merge_mode: str = "legacy",
        robust_quorum: int = 3,
        robust_trim: int = 1,
        robust_tolerance: float = 0.2,
        observe_margin: int = 8,
        obs=None,
    ):
        m = inst.m
        if len(seeds) != m:
            raise ValueError("need one RNG seed per server")
        if mode not in GOSSIP_MODES:
            raise ValueError(f"gossip mode must be one of {GOSSIP_MODES}, got {mode!r}")
        if merge_mode not in MERGE_MODES:
            raise ValueError(
                f"merge mode must be one of {MERGE_MODES}, got {merge_mode!r}"
            )
        if merge_mode == "robust":
            if robust_trim < 0:
                raise ValueError("robust_trim must be >= 0")
            if robust_quorum < max(2, 2 * robust_trim + 1):
                raise ValueError(
                    "robust_quorum must be >= max(2, 2*robust_trim + 1) so the "
                    "trimmed survivor set is never empty"
                )
            if robust_quorum > m - 2:
                raise ValueError(
                    f"robust_quorum={robust_quorum} needs at least "
                    f"{robust_quorum + 2} servers (got m={m}): a quorum counts "
                    "distinct reporters other than the origin and the receiver"
                )
            if robust_tolerance <= 0:
                raise ValueError("robust_tolerance must be positive")
            if observe_margin < 1:
                raise ValueError("observe_margin must be >= 1")
        if adaptive:
            if not (0.0 < adapt_min <= adapt_max):
                raise ValueError("need 0 < adapt_min <= adapt_max")
            if not (0.0 < adapt_alpha <= 1.0):
                raise ValueError("adapt_alpha must be in (0, 1]")
        self.env = env
        self.net = net
        self.inst = inst
        self.state = state
        self.alive = alive
        self.interval = float(interval)
        self.mode = mode
        self.merge_mode = merge_mode
        self.robust_quorum = int(robust_quorum)
        self.robust_trim = int(robust_trim)
        self.robust_tolerance = float(robust_tolerance)
        self.observe_margin = int(observe_margin)
        # Adaptive frequency: per-server interval scale driven by a
        # merge-delta EMA (see _tick).  Scale 1.0 == the fixed interval;
        # with ``adaptive`` off nothing below is ever touched, so the
        # event sequence is bit-identical to a fixed-interval run.
        self.adaptive = bool(adaptive)
        self.adapt_min = float(adapt_min)
        self.adapt_max = float(adapt_max)
        self.adapt_alpha = float(adapt_alpha)
        self._adapt_scale = [1.0] * m
        self._adapt_ema = [1.0] * m
        self._adapt_last = [0] * m
        self.rngs = [np.random.default_rng(s) for s in seeds]
        self.stats = GossipStats()
        # Tracing hook (repro.obs): None keeps every handler on the
        # untraced fast path — one attribute truth-test per message.
        self._tracer = obs.tracer if obs is not None else None

        self._m = m
        self._own_version = [0] * m
        #: Times each server's view *content* changed (see module doc).
        self.update_counts = [0] * m
        self._list_mode = m <= _LIST_MODE_MAX
        delta = mode == "delta"
        if delta:
            # Per-server integer modification clock (`_mclock[i]` ticks
            # once per local table modification — publish-with-change or
            # merge), the clock value at which every entry last changed
            # (`_mtime[i, k]`), and per (sender, receiver) pair the
            # acknowledged floor: the sender's clock snapshot of the
            # last payload the receiver provably merged.  Bootstrap
            # state is common knowledge, so everything starts at 0:
            # nothing is shipped until something changes.
            self._mclock = [0] * m
            self._mtime = np.zeros((m, m), dtype=np.int64)
            self._ack_floor = np.zeros((m, m), dtype=np.int64)

        # Bootstrap: the starting allocation (everyone runs locally) is
        # common knowledge, so every table starts from the true initial
        # loads at version 0 / age 0 rather than from blank entries.
        loads = [float(x) for x in state.loads]
        if self._list_mode:
            self._vals = [list(loads) for _ in range(m)]
            self._vers: list[list] = [[0] * m for _ in range(m)]
            self._stmp = [[0.0] * m for _ in range(m)]
            if delta:
                self.publish = self._publish_list_delta
                self._packet_body = self._packet_body_list_delta
                self._merge = self._merge_list_delta
            else:
                self.publish = self._publish_list
                self._packet_body = self._packet_body_list
                self._merge = self._merge_list
        else:
            # Packed row layout: [0] values, [1] versions (float64 —
            # integer-exact far beyond any reachable count), [2] stamps.
            self._table = np.zeros((m, 3, m), dtype=np.float64)
            self._table[:, 0, :] = loads
            # Cached row views: creating an ndarray view per merge or
            # publish costs more than the arithmetic on it.
            self._rows = [self._table[i] for i in range(m)]
            self._nvals = [self._table[i, 0] for i in range(m)]
            self._nvers = [self._table[i, 1] for i in range(m)]
            self._nstmp = [self._table[i, 2] for i in range(m)]
            # Scratch buffers for the merge (transient, shared).
            self._newer_buf = np.empty(m, dtype=bool)
            self._diff_buf = np.empty(m, dtype=bool)
            if delta:
                self.publish = self._publish_np_delta
                self._packet_body = self._packet_body_np_delta
                self._merge = self._merge_np_delta
            else:
                self.publish = self._publish_np
                self._packet_body = self._packet_body_np
                self._merge = self._merge_np
        self._push_handler = self._on_push_delta if delta else self._on_push
        self._delta = delta
        if merge_mode == "robust":
            # Robust mode keeps the legacy publish/packet paths (the wire
            # format is unchanged) and swaps only the accept rule.
            self._merge = (
                self._merge_robust_delta if delta else self._merge_robust_full
            )
            #: per-server lie score (clamps + outlier claims + contradicted
            #: observations) — the ``byz.suspicion`` gauges.  Blame is
            #: weighted by how many agreement bands off the value was
            #: (honest staleness sits near one band, lies far beyond) and
            #: decays exponentially in sim time, so the transient noise
            #: of early convergence fades while persistent liars keep
            #: accruing; read through :meth:`suspicion_view`.
            self.suspicion: np.ndarray | None = np.zeros(m, dtype=np.float64)
            self._susp_time = np.zeros(m, dtype=np.float64)
            self._susp_tau = 40.0 * self.interval
            # claim buffers: _claims[dst][origin][reporter] = (ver, val, stamp)
            self._claims: list[dict[int, dict[int, tuple]]] = [
                {} for _ in range(m)
            ]
            # Direct observations are authoritative for a horizon:
            # _observed[d][k] = (time, value) from the last pair-sync.
            # A quorum mean contradicting a recent observation is held
            # rather than accepted — every relay of a self-lie descends
            # from the same first-hand misreport, so relayed copies
            # agree with each other and would otherwise out-quorum the
            # ground truth (and get honest truth-relayers blamed as
            # outliers against the lie).
            self._observed: list[dict[int, tuple[float, float]]] = [
                {} for _ in range(m)
            ]
            self._obs_horizon = float(observe_margin) * self.interval
            # Absolute floor of the relative agreement band, so claims
            # about a near-zero load still have a workable tolerance.
            self._tol_floor = 0.05 * float(np.mean(loads)) + 1e-12
        else:
            self.suspicion = None

        # Peers reachable over a finite-latency link (gossip cannot cross
        # forbidden links any more than requests can).
        self.peers = [
            np.flatnonzero(np.isfinite(inst.latency[i]) & (np.arange(m) != i))
            for i in range(m)
        ]
        self._peers_list = [p.tolist() for p in self.peers]
        # Block-buffered per-server draws (bit-identical streams, a
        # fraction of the per-call Generator dispatch cost).
        self._jitter = [BufferedUniform(r) for r in self.rngs]
        self._peer_draw = [
            BufferedIntegers(r, p.size) if p.size else None
            for r, p in zip(self.rngs, self.peers)
        ]
        # Every server knows its own load exactly at t = 0.
        for i in range(m):
            self.publish(i)
        for i in range(m):
            self._arm(i)

    # ------------------------------------------------------------------
    # Table views (representation-independent accessors)
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """(m, m) matrix of viewed loads (row = viewing server)."""
        if self._list_mode:
            return np.asarray(self._vals, dtype=np.float64)
        return self._table[:, 0, :]

    @property
    def versions(self) -> np.ndarray:
        """(m, m) matrix of per-origin entry versions."""
        if self._list_mode:
            return np.asarray(self._vers, dtype=np.float64)
        return self._table[:, 1, :]

    @property
    def stamps(self) -> np.ndarray:
        """(m, m) matrix of per-origin publish sim-times."""
        if self._list_mode:
            return np.asarray(self._stmp, dtype=np.float64)
        return self._table[:, 2, :]

    def view(self, i: int) -> np.ndarray:
        """Server ``i``'s current (stale) view of all loads; its own
        entry is always live."""
        if self._list_mode:
            out = np.array(self._vals[i])
        else:
            out = self._nvals[i].copy()
        out[i] = self.state.loads[i]
        return out

    def ages(self, i: int) -> np.ndarray:
        """Information age of server ``i``'s view entries, in sim-time
        units since the entry was published at its origin."""
        if self._list_mode:
            return self.env.now - np.asarray(self._stmp[i])
        return self.env.now - self._nstmp[i]

    def mean_view_age(self) -> float:
        """Mean finite off-diagonal view age across all live servers."""
        ages = self.env.now - self.stamps
        m = self.inst.m
        mask = np.isfinite(ages) & ~np.eye(m, dtype=bool)
        mask &= self.alive[:, None]
        if not mask.any():
            return float("inf")
        return float(ages[mask].mean())

    # ------------------------------------------------------------------
    def refresh_demand(self, inst: Instance) -> None:
        """Demand shifted: adopt the new instance and republish every
        live server's authoritative entry so the new true loads spread.

        The caller must have retargeted the shared allocation state
        first (:func:`repro.core.dynamic.retarget_rows`); the latency
        matrix must be unchanged — peers and topology are static.
        """
        if inst.m != self.inst.m:
            raise ValueError(
                f"demand refresh cannot change the fleet size "
                f"({self.inst.m} -> {inst.m})"
            )
        self.inst = inst
        for i in range(inst.m):
            if self.alive[i]:
                self.publish(i)
        if self.adaptive:
            # New demand means every view is about to churn again: snap
            # the EMAs back to the neutral operating point so the fleet
            # re-spreads the new loads at full rate instead of waking up
            # from a stretched converged-state interval.
            m = inst.m
            self._adapt_ema = [1.0] * m
            self._adapt_scale = [1.0] * m
            self._adapt_last = list(self.update_counts)

    # ------------------------------------------------------------------
    # Publish / packet / merge — Python-list representation (small m)
    # ------------------------------------------------------------------
    def _publish_list(self, i: int) -> None:
        """Server ``i`` (re)publishes its authoritative entry: its true
        current load, freshly versioned and stamped with the sim-time."""
        self._own_version[i] += 1
        load = float(self.state.loads[i])
        vals = self._vals[i]
        if vals[i] != load:
            vals[i] = load
            self.update_counts[i] += 1
        self._vers[i][i] = self._own_version[i]
        self._stmp[i][i] = self.env.now
        self.stats.publishes += 1

    def _packet_body_list(self, src: int, dst: int) -> tuple:
        # The whole (values, versions, stamps) state batched into one
        # payload for the (src, dst) round.
        self.stats.payload_entries += self._m
        self.stats.payload_bytes += _HEADER_BYTES + _ENTRY_BYTES_FULL * self._m
        return (self._vals[src][:], self._vers[src][:], self._stmp[src][:])

    def _merge_list(self, src: int, dst: int, rows: tuple) -> None:
        qv, qr, qs = rows
        mv = self._vals[dst]
        mr = self._vers[dst]
        ms = self._stmp[dst]
        merged = False
        changed = False
        k = 0
        for v in qr:
            if v > mr[k]:
                merged = True
                mr[k] = v
                ms[k] = qs[k]
                if mv[k] != qv[k]:
                    mv[k] = qv[k]
                    changed = True
            k += 1
        if merged:
            self.stats.merges += 1
            if changed:
                self.update_counts[dst] += 1

    # ------------------------------------------------------------------
    # Publish / packet / merge — delta wire format, list representation
    # ------------------------------------------------------------------
    def _publish_list_delta(self, i: int) -> None:
        # Versions advance only when the value does: an unchanged load
        # re-published is a no-op, which is what keeps converged payloads
        # empty.  (Value changes are what downstream consumers react to;
        # see the module doc for why this preserves bit-identity.)
        load = float(self.state.loads[i])
        vals = self._vals[i]
        if vals[i] == load:
            return
        vals[i] = load
        self.update_counts[i] += 1
        self._own_version[i] += 1
        self._vers[i][i] = self._own_version[i]
        self._stmp[i][i] = self.env.now
        self._mclock[i] += 1
        self._mtime[i, i] = self._mclock[i]
        self.stats.publishes += 1

    def _packet_body_list_delta(self, src: int, dst: int) -> tuple:
        idx = np.flatnonzero(self._mtime[src] > self._ack_floor[src, dst])
        ks = idx.tolist()
        vals, vers, stmp = self._vals[src], self._vers[src], self._stmp[src]
        self.stats.payload_entries += len(ks)
        self.stats.payload_bytes += _HEADER_BYTES + _ENTRY_BYTES_DELTA * len(ks)
        return (
            self._mclock[src],
            ks,
            [vals[k] for k in ks],
            [vers[k] for k in ks],
            [stmp[k] for k in ks],
        )

    def _merge_list_delta(self, src: int, dst: int, body: tuple) -> None:
        _snap, ks, qv, qr, qs = body
        if not ks:
            return
        mv = self._vals[dst]
        mr = self._vers[dst]
        ms = self._stmp[dst]
        merged = False
        changed = False
        seq = self._mclock[dst] + 1
        mtime = self._mtime
        for pos, k in enumerate(ks):
            v = qr[pos]
            if v > mr[k]:
                merged = True
                mr[k] = v
                ms[k] = qs[pos]
                mtime[dst, k] = seq
                if mv[k] != qv[pos]:
                    mv[k] = qv[pos]
                    changed = True
        if merged:
            self._mclock[dst] = seq
            self.stats.merges += 1
            if changed:
                self.update_counts[dst] += 1

    # ------------------------------------------------------------------
    # Publish / packet / merge — packed-ndarray representation (large m)
    # ------------------------------------------------------------------
    def _publish_np(self, i: int) -> None:
        self._own_version[i] += 1
        load = self.state.loads[i]
        vals = self._nvals[i]
        if vals[i] != load:
            vals[i] = load
            self.update_counts[i] += 1
        self._nvers[i][i] = self._own_version[i]
        self._nstmp[i][i] = self.env.now
        self.stats.publishes += 1

    def _packet_body_np(self, src: int, dst: int) -> np.ndarray:
        # One contiguous (3, m) copy per (src, dst) round.
        self.stats.payload_entries += self._m
        self.stats.payload_bytes += _HEADER_BYTES + _ENTRY_BYTES_FULL * self._m
        return self._rows[src].copy()

    def _merge_np(self, src: int, dst: int, table: np.ndarray) -> None:
        newer = self._newer_buf
        np.greater(table[1], self._nvers[dst], out=newer)
        if newer.any():
            # Did any refreshed entry change its *value*?  (Version-only
            # refreshes must not invalidate the agents' proposal memos.)
            diff = self._diff_buf
            np.not_equal(table[0], self._nvals[dst], out=diff)
            diff &= newer
            if diff.any():
                self.update_counts[dst] += 1
            np.copyto(self._rows[dst], table, where=newer)
            self.stats.merges += 1

    # ------------------------------------------------------------------
    # Publish / packet / merge — delta wire format, packed representation
    # ------------------------------------------------------------------
    def _publish_np_delta(self, i: int) -> None:
        load = self.state.loads[i]
        vals = self._nvals[i]
        if vals[i] == load:
            return
        vals[i] = load
        self.update_counts[i] += 1
        self._own_version[i] += 1
        self._nvers[i][i] = self._own_version[i]
        self._nstmp[i][i] = self.env.now
        self._mclock[i] += 1
        self._mtime[i, i] = self._mclock[i]
        self.stats.publishes += 1

    def _packet_body_np_delta(self, src: int, dst: int) -> tuple:
        idx = np.flatnonzero(self._mtime[src] > self._ack_floor[src, dst])
        sub = self._rows[src][:, idx]  # advanced indexing: already a copy
        self.stats.payload_entries += idx.size
        self.stats.payload_bytes += _HEADER_BYTES + _ENTRY_BYTES_DELTA * idx.size
        return (self._mclock[src], idx, sub)

    def _merge_np_delta(self, src: int, dst: int, body: tuple) -> None:
        _snap, idx, sub = body
        if idx.size == 0:
            return
        vers = self._nvers[dst]
        newer = sub[1] > vers[idx]
        if newer.any():
            sel = idx[newer]
            picked = sub[:, newer]
            vals = self._nvals[dst]
            if np.any(picked[0] != vals[sel]):
                self.update_counts[dst] += 1
            vals[sel] = picked[0]
            vers[sel] = picked[1]
            self._nstmp[dst][sel] = picked[2]
            self._mclock[dst] += 1
            self._mtime[dst, sel] = self._mclock[dst]
            self.stats.merges += 1

    # ------------------------------------------------------------------
    # Robust merge (merge_mode="robust") — see module doc
    # ------------------------------------------------------------------
    def _entry_version(self, i: int, k: int) -> float:
        if self._list_mode:
            return float(self._vers[i][k])
        return float(self._nvers[i][k])

    def _entry_store(self, i: int, k: int, val, ver, stamp) -> bool:
        """Write one table entry; returns True if the value changed."""
        if self._list_mode:
            row = self._vals[i]
            changed = row[k] != val
            row[k] = val
            self._vers[i][k] = ver
            self._stmp[i][k] = stamp
        else:
            changed = bool(self._nvals[i][k] != val)
            self._nvals[i][k] = val
            self._nvers[i][k] = ver
            self._nstmp[i][k] = stamp
        return changed

    def _touch_delta(self, i: int, ks) -> None:
        """Delta bookkeeping for out-of-band entry writes: tick the
        modification clock once and mark every written entry, so the
        entries ship in the next delta payloads."""
        if self._delta and ks:
            self._mclock[i] += 1
            t = self._mclock[i]
            for k in ks:
                self._mtime[i, k] = t

    def _band(self, ref: float) -> float:
        return self.robust_tolerance * max(abs(ref), self._tol_floor)

    def _blame(self, k: int, weight: float) -> None:
        """Accrue decayed, magnitude-weighted suspicion on server ``k``.

        ``weight`` is the discrepancy in agreement bands (capped so one
        freak value cannot dominate a whole run); the accumulated score
        e-folds every ``_susp_tau`` of sim time, applied lazily here and
        on read in :meth:`suspicion_view`.
        """
        now = self.env.now
        dt = now - self._susp_time[k]
        if dt > 0.0:
            self.suspicion[k] *= np.exp(-dt / self._susp_tau)
            self._susp_time[k] = now
        self.suspicion[k] += min(10.0, weight)

    def note_unresponsive(self, j: int) -> None:
        """Agent-layer suspicion feed: server ``j`` keeps refusing or
        timing out handshakes (reported once the per-partner cooldown
        escalates past the busy-slot noise floor)."""
        if self.suspicion is not None:
            self._blame(j, 2.0)

    def suspicion_view(self) -> np.ndarray | None:
        """The suspicion scores decayed to the current sim time (the
        ``byz.suspicion`` gauges; ``None`` under the legacy merge)."""
        if self.suspicion is None:
            return None
        return self.suspicion * np.exp(
            -(self.env.now - self._susp_time) / self._susp_tau
        )

    def _merge_robust_full(self, src: int, dst: int, body) -> None:
        if self._list_mode:
            qv, qr, qs = body
        else:
            qv, qr, qs = body[0], body[1], body[2]
        self._robust_entries(src, dst, range(self._m), qv, qr, qs)

    def _merge_robust_delta(self, src: int, dst: int, body) -> None:
        if self._list_mode:
            _snap, ks, qv, qr, qs = body
        else:
            _snap, idx, sub = body
            ks, qv, qr, qs = idx.tolist(), sub[0], sub[1], sub[2]
        if len(ks) == 0:
            return
        self._robust_entries(src, dst, ks, qv, qr, qs)

    def _robust_entries(self, src: int, dst: int, ks, qv, qr, qs) -> None:
        """The robust accept rule over one payload's entries (positional
        sequences aligned with origin indices ``ks``)."""
        st = self.stats
        claims_dst = self._claims[dst]
        quorum = self.robust_quorum
        trim = self.robust_trim
        accepted: list[int] = []
        changed = False
        for pos, k in enumerate(ks):
            k = int(k)
            if k == dst:
                continue
            ver = float(qr[pos])
            if ver <= self._entry_version(dst, k):
                continue
            val = float(qv[pos])
            stamp = float(qs[pos])
            if src == k:
                # First-hand self-claim: version rule with the placement
                # floor — dst's own load placed on k bounds k's load below.
                placed = float(self.state.R[dst, k])
                pband = self._band(placed)
                if val < placed - pband:
                    st.clamps += 1
                    self._blame(k, (placed - val) / pband)
                    val = placed
                if self._entry_store(dst, k, val, ver, stamp):
                    changed = True
                accepted.append(k)
                continue
            # Second-hand claim: buffer by reporter, accept on quorum.
            st.claims += 1
            buf = claims_dst.setdefault(k, {})
            buf[src] = (ver, val, stamp)
            cur_ver = self._entry_version(dst, k)
            cand = [
                (cv, cval, cstamp)
                for cv, cval, cstamp in buf.values()
                if cv > cur_ver
            ]
            if len(cand) < quorum:
                continue
            cand.sort(key=lambda c: c[1])
            surv = cand[trim:len(cand) - trim] if len(cand) > 2 * trim else cand
            vals_s = [c[1] for c in surv]
            band = self._band(vals_s[len(vals_s) // 2])
            if vals_s[-1] - vals_s[0] > 2.0 * band:
                # Quorum reached but the trimmed claims still disagree:
                # hold the entry until the reporters converge.
                st.quorum_holds += 1
                continue
            new_val = sum(vals_s) / len(vals_s)
            ob = self._observed[dst].get(k)
            if ob is not None:
                if self.env.now - ob[0] > self._obs_horizon:
                    del self._observed[dst][k]
                elif abs(new_val - ob[1]) > self._band(ob[1]):
                    # The quorum contradicts a fresh direct observation:
                    # hold — ground truth outranks any set of relays.
                    st.quorum_holds += 1
                    continue
            # min survivor version: an inflated fabricated version that
            # sneaks into the survivors cannot ratchet the accepted
            # version and lock honest claims out.
            new_ver = min(c[0] for c in surv)
            new_stamp = min(c[2] for c in surv)
            if self._entry_store(dst, k, new_val, new_ver, new_stamp):
                changed = True
            accepted.append(k)
            st.robust_accepts += 1
            # Blame and drop outlier claims; drop claims now stale.
            for r in list(buf):
                cv, cval, _cs = buf[r]
                if abs(cval - new_val) > band:
                    self._blame(r, abs(cval - new_val) / band)
                    st.outliers += 1
                    del buf[r]
                elif cv <= new_ver:
                    del buf[r]
        if accepted:
            st.merges += 1
            if changed:
                self.update_counts[dst] += 1
            self._touch_delta(dst, accepted)

    def observe_peer(self, d: int, k: int) -> None:
        """Pair-sync observation: the exchange handshake synchronized
        ``d`` and ``k`` on the true state, so ``d`` now knows ``k``'s
        exact load — record it first-hand, well ahead in version space
        (``observe_margin``), so a lying origin needs that many fresh
        self-publishes before its next claim can displace the truth.
        Only meaningful (and only called) under ``merge_mode="robust"``.
        """
        if self.suspicion is None:
            return
        truth = float(self.state.loads[k])
        band = self._band(truth)
        if self._list_mode:
            seen = float(self._vals[d][k])
        else:
            seen = float(self._nvals[d][k])
        if abs(seen - truth) > band:
            # The view d acted on contradicts ground truth: the origin
            # owns its self-claims.
            self._blame(k, abs(seen - truth) / band)
        ver = self._entry_version(d, k) + self.observe_margin
        self._observed[d][k] = (self.env.now, truth)
        changed = self._entry_store(d, k, truth, ver, self.env.now)
        if changed:
            self.update_counts[d] += 1
        self._touch_delta(d, [k])
        self.stats.observations += 1
        # Every buffered claim is now stale relative to the observation.
        self._claims[d].pop(k, None)

    # ------------------------------------------------------------------
    # Adversary hooks (repro.byz) — mode-correct table writes that let a
    # compromised server lie on the wire without bypassing the protocol
    # ------------------------------------------------------------------
    def misreport(self, i: int, value: float) -> None:
        """Adversarial publish: exactly :meth:`publish`'s bookkeeping,
        but claiming ``value`` for server ``i``'s own entry instead of
        its true load."""
        value = float(value)
        now = self.env.now
        if self._list_mode:
            cur = self._vals[i][i]
        else:
            cur = float(self._nvals[i][i])
        if self._delta:
            # Delta publishes are no-ops when the value is unchanged.
            if cur == value:
                return
            self._own_version[i] += 1
            self._entry_store(i, i, value, self._own_version[i], now)
            self.update_counts[i] += 1
            self._touch_delta(i, [i])
        else:
            self._own_version[i] += 1
            if self._entry_store(i, i, value, self._own_version[i], now):
                self.update_counts[i] += 1
        self.stats.publishes += 1

    def inject(self, i: int, ks, vals, *, version_bump: int = 1) -> None:
        """Adversarial table write: server ``i`` overwrites its *own
        view* of origins ``ks`` with values ``vals``, versions advanced
        ``version_bump`` past its current entries — the forged rows then
        spread through the normal gossip exchange.  Versions bumped
        faster than the honest +1-per-publish cadence win every legacy
        merge, which is exactly the attack the robust merge defeats."""
        now = self.env.now
        touched: list[int] = []
        changed = False
        for k, v in zip(ks, vals):
            k = int(k)
            ver = self._entry_version(i, k) + version_bump
            if self._entry_store(i, k, float(v), ver, now):
                changed = True
            if k == i and ver > self._own_version[i]:
                self._own_version[i] = int(ver)
            touched.append(k)
        if changed:
            self.update_counts[i] += 1
        self._touch_delta(i, touched)

    # ------------------------------------------------------------------
    # The gossip cycle
    # ------------------------------------------------------------------
    def _packet(self, src: int, dst: int) -> tuple:
        return (src, dst, self._packet_body(src, dst))

    def _arm(self, i: int) -> None:
        # Jittered interval: desynchronizes the population so gossip
        # traffic is spread over time instead of thundering in herds.
        # The adaptive scale multiplies the whole window, so jitter keeps
        # its relative spread at every frequency.
        self.env.call_in(
            self.interval * (0.5 + self._jitter[i].next()) * self._adapt_scale[i],
            self._tick,
            i,
        )

    def _adapt(self, i: int) -> None:
        """Re-derive server ``i``'s interval scale from how much its view
        changed since its last cycle (an EMA of per-cycle merge deltas):
        a churning view shrinks the interval toward ``adapt_min`` × base,
        a converged one stretches it toward ``adapt_max`` × base.  Driven
        entirely by ``update_counts`` — no extra RNG draws — so adaptive
        runs stay deterministic per seed."""
        count = self.update_counts[i]
        delta = count - self._adapt_last[i]
        self._adapt_last[i] = count
        a = self.adapt_alpha
        ema = a * delta + (1.0 - a) * self._adapt_ema[i]
        self._adapt_ema[i] = ema
        # ema = 0 (nothing changing) → adapt_max; each 0.5 changes/cycle
        # halves the scale; ema = 1 lands exactly on 1.0 when
        # adapt_max = 4 (the default neutral operating point).
        scale = self.adapt_max * 0.5 ** (ema / 0.5)
        if scale < self.adapt_min:
            scale = self.adapt_min
        elif scale > self.adapt_max:
            scale = self.adapt_max
        self._adapt_scale[i] = scale

    def mean_interval(self) -> float:
        """Mean effective gossip interval across live servers (the
        ``gossip.interval`` observability gauge)."""
        live = [s for s, a in zip(self._adapt_scale, self.alive) if a]
        if not live:
            return float("nan")
        return self.interval * float(np.mean(live))

    def _tick(self, i: int) -> None:
        if self.adaptive:
            self._adapt(i)
        draw = self._peer_draw[i]
        if draw is not None and self.alive[i]:
            self.publish(i)
            j = self._peers_list[i][draw.next()]
            self.stats.pushes += 1
            tracer = self._tracer
            if tracer is None:
                self.net.send(i, j, self._push_handler, self._packet(i, j))
            else:
                # Tracing appends the flight-span id to the packet; the
                # handlers index-unpack, so both shapes are accepted.
                sid = tracer.begin(
                    "gossip.push", self.env.now, track=i, src=i, dst=j
                )
                if not self.net.send(
                    i, j, self._push_handler, self._packet(i, j) + (sid,)
                ):
                    tracer.abandon(sid)  # dropped at send time
        self._arm(i)

    def _merge_traced(self, src, dst, body, parent, now) -> None:
        """Merge plus trace: a merge that changed ``dst``'s view content
        records a ``gossip.merge`` instant (parented on the carrying
        message's flight span) and becomes the current cause behind
        ``("view", dst)`` — the key the agents' proposals parent onto."""
        before = self.update_counts[dst]
        self._merge(src, dst, body)
        if self.update_counts[dst] != before:
            tracer = self._tracer
            msid = tracer.instant(
                "gossip.merge", now, parent=parent, track=dst, src=src
            )
            tracer.bind(("view", dst), msid)

    def _on_push(self, packet) -> None:
        src, dst, rows = packet[0], packet[1], packet[2]
        tracer = self._tracer
        if tracer is None:
            self._merge(src, dst, rows)
            # Pull half of the push–pull exchange: reply with the merged
            # table.
            self.stats.pull_replies += 1
            self.net.send(dst, src, self._on_pull_reply, self._packet(dst, src))
            return
        now = self.env.now
        push_sid = packet[3] if len(packet) > 3 else None
        if push_sid is not None:
            tracer.end(push_sid, now)
        self._merge_traced(src, dst, rows, push_sid, now)
        self.stats.pull_replies += 1
        sid = tracer.begin(
            "gossip.pull_reply", now, parent=push_sid, track=dst, src=dst, dst=src
        )
        if not self.net.send(
            dst, src, self._on_pull_reply, self._packet(dst, src) + (sid,)
        ):
            tracer.abandon(sid)

    def _on_pull_reply(self, packet) -> None:
        src, dst, rows = packet[0], packet[1], packet[2]
        tracer = self._tracer
        if tracer is None:
            self._merge(src, dst, rows)
            return
        now = self.env.now
        sid = packet[3] if len(packet) > 3 else None
        if sid is not None:
            tracer.end(sid, now)
        self._merge_traced(src, dst, rows, sid, now)

    def _on_push_delta(self, packet) -> None:
        src, dst, body = packet[0], packet[1], packet[2]
        # Assemble the reply *before* merging the push: entries about to
        # be merged in came from src, which therefore cannot need them
        # back (they would merge as version-equal no-ops) — omitting
        # them keeps the reply a true delta.
        reply_body = self._packet_body(dst, src)
        tracer = self._tracer
        if tracer is None:
            self._merge(src, dst, body)
            self.stats.pull_replies += 1
            # The echoed assembly clock doubles as the push's ack.
            self.net.send(
                dst, src, self._on_pull_reply_delta, (dst, src, reply_body, body[0])
            )
            return
        now = self.env.now
        push_sid = packet[3] if len(packet) > 3 else None
        if push_sid is not None:
            tracer.end(push_sid, now)
        self._merge_traced(src, dst, body, push_sid, now)
        self.stats.pull_replies += 1
        sid = tracer.begin(
            "gossip.pull_reply", now, parent=push_sid, track=dst, src=dst, dst=src
        )
        if not self.net.send(
            dst, src, self._on_pull_reply_delta, (dst, src, reply_body, body[0], sid)
        ):
            tracer.abandon(sid)

    def _on_pull_reply_delta(self, packet) -> None:
        src, dst, body, echo = packet[0], packet[1], packet[2], packet[3]
        tracer = self._tracer
        if tracer is None:
            self._merge(src, dst, body)
        else:
            now = self.env.now
            sid = packet[4] if len(packet) > 4 else None
            if sid is not None:
                tracer.end(sid, now)
            self._merge_traced(src, dst, body, sid, now)
        # The reply proves the push assembled at clock `echo` was merged
        # by src: everything dst had modified up to then is now covered.
        if echo > self._ack_floor[dst, src]:
            self._ack_floor[dst, src] = echo
