"""Asynchronous push–pull gossip running on the event engine's fast path.

The round-based :class:`repro.gossip.GossipNetwork` advances all nodes in
lock step; here every server runs its *own* jittered publish/exchange
loop on the shared event queue.  One cycle of server ``i``:

1. publish its authoritative entry (its current true load, a fresh
   per-origin version, and the publish sim-time);
2. pick a random finite-latency peer ``j`` and send it a PUSH carrying a
   copy of ``i``'s whole table;
3. on delivery, ``j`` merges the table entry-wise by per-origin version
   and replies with a PULL-REPLY carrying its merged table, which ``i``
   merges in turn when (and if) it arrives.

Because both legs travel through :class:`repro.livesim.net.ControlNetwork`
views are stale by real in-flight time: entry ages (``now − publish
time``) are the staleness metric the driver reports.  Down servers
neither publish nor reply; their authoritative entries age until they
rejoin.

Throughput choices that matter on the hot path:

* **Batched payloads.**  A (src, dst) exchange round ships the whole
  per-server state (values, versions, publish stamps) as *one* payload
  and merges it with one version-masked pass — never one message-event
  per table entry.
* **Size-adaptive representation.**  At fleet scale the table is one
  packed ``(m, 3, m)`` ndarray: a payload is a single contiguous
  ``(3, m)`` copy and a merge three vectorized calls.  On small fleets
  (``m <= _LIST_MODE_MAX``) the same protocol runs on plain Python
  lists instead — at m ≈ 16 a list copy-and-merge is ~5x cheaper than
  the numpy one, whose fixed per-call dispatch dominates rows that
  small.  The mode is an internal representation choice; the message
  sequence, RNG streams and merge results are identical.
* **Callback cycles.**  Each server's publish/push loop is a self-
  re-arming ``call_at`` callback, not a generator process, with its
  jitter and peer draws taken from block-buffered (bit-identical)
  streams.

``update_counts[i]`` counts the times server ``i``'s *view content*
actually changed (fresh values merged in, or its own entry re-published
with a different load) — the agents use it to skip re-evaluating a
partner proposal when nothing the proposal depends on has changed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..core.state import AllocationState
from ..sim.events import Environment
from ._util import BufferedIntegers, BufferedUniform
from .net import ControlNetwork

__all__ = ["AsyncGossip", "GossipStats"]

#: Largest fleet kept on the Python-list table representation; beyond it
#: the vectorized packed-ndarray path wins (the crossover is flat
#: between ~48 and ~96 servers).
_LIST_MODE_MAX = 64


@dataclass
class GossipStats:
    """Counters of the gossip layer."""

    publishes: int = 0
    pushes: int = 0
    pull_replies: int = 0
    merges: int = 0


class AsyncGossip:
    """Per-server gossip tables plus the callbacks that exchange them.

    ``values[i, k]`` is server ``i``'s view of server ``k``'s load,
    ``versions[i, k]`` the per-origin version of that view and
    ``stamps[i, k]`` the sim-time at which origin ``k`` published it —
    so ``env.now − stamps[i]`` is the *information age* of ``i``'s view.
    The three are exposed as (m, m) arrays regardless of the internal
    representation (see module doc); mutate state only through
    :meth:`publish` and the message handlers.
    """

    def __init__(
        self,
        env: Environment,
        net: ControlNetwork,
        inst: Instance,
        state: AllocationState,
        alive: np.ndarray,
        seeds: list[np.random.SeedSequence],
        *,
        interval: float,
    ):
        m = inst.m
        if len(seeds) != m:
            raise ValueError("need one RNG seed per server")
        self.env = env
        self.net = net
        self.inst = inst
        self.state = state
        self.alive = alive
        self.interval = float(interval)
        self.rngs = [np.random.default_rng(s) for s in seeds]
        self.stats = GossipStats()

        self._own_version = [0] * m
        #: Times each server's view *content* changed (see module doc).
        self.update_counts = [0] * m
        self._list_mode = m <= _LIST_MODE_MAX

        # Bootstrap: the starting allocation (everyone runs locally) is
        # common knowledge, so every table starts from the true initial
        # loads at version 0 / age 0 rather than from blank entries.
        loads = [float(x) for x in state.loads]
        if self._list_mode:
            self._vals = [list(loads) for _ in range(m)]
            self._vers: list[list] = [[0] * m for _ in range(m)]
            self._stmp = [[0.0] * m for _ in range(m)]
            self.publish = self._publish_list
            self._packet = self._packet_list
            self._merge = self._merge_list
        else:
            # Packed row layout: [0] values, [1] versions (float64 —
            # integer-exact far beyond any reachable count), [2] stamps.
            self._table = np.zeros((m, 3, m), dtype=np.float64)
            self._table[:, 0, :] = loads
            # Cached row views: creating an ndarray view per merge or
            # publish costs more than the arithmetic on it.
            self._rows = [self._table[i] for i in range(m)]
            self._nvals = [self._table[i, 0] for i in range(m)]
            self._nvers = [self._table[i, 1] for i in range(m)]
            self._nstmp = [self._table[i, 2] for i in range(m)]
            # Scratch buffers for the merge (transient, shared).
            self._newer_buf = np.empty(m, dtype=bool)
            self._diff_buf = np.empty(m, dtype=bool)
            self.publish = self._publish_np
            self._packet = self._packet_np
            self._merge = self._merge_np

        # Peers reachable over a finite-latency link (gossip cannot cross
        # forbidden links any more than requests can).
        self.peers = [
            np.flatnonzero(np.isfinite(inst.latency[i]) & (np.arange(m) != i))
            for i in range(m)
        ]
        self._peers_list = [p.tolist() for p in self.peers]
        # Block-buffered per-server draws (bit-identical streams, a
        # fraction of the per-call Generator dispatch cost).
        self._jitter = [BufferedUniform(r) for r in self.rngs]
        self._peer_draw = [
            BufferedIntegers(r, p.size) if p.size else None
            for r, p in zip(self.rngs, self.peers)
        ]
        # Every server knows its own load exactly at t = 0.
        for i in range(m):
            self.publish(i)
        for i in range(m):
            self._arm(i)

    # ------------------------------------------------------------------
    # Table views (representation-independent accessors)
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """(m, m) matrix of viewed loads (row = viewing server)."""
        if self._list_mode:
            return np.asarray(self._vals, dtype=np.float64)
        return self._table[:, 0, :]

    @property
    def versions(self) -> np.ndarray:
        """(m, m) matrix of per-origin entry versions."""
        if self._list_mode:
            return np.asarray(self._vers, dtype=np.float64)
        return self._table[:, 1, :]

    @property
    def stamps(self) -> np.ndarray:
        """(m, m) matrix of per-origin publish sim-times."""
        if self._list_mode:
            return np.asarray(self._stmp, dtype=np.float64)
        return self._table[:, 2, :]

    def view(self, i: int) -> np.ndarray:
        """Server ``i``'s current (stale) view of all loads; its own
        entry is always live."""
        if self._list_mode:
            out = np.array(self._vals[i])
        else:
            out = self._nvals[i].copy()
        out[i] = self.state.loads[i]
        return out

    def ages(self, i: int) -> np.ndarray:
        """Information age of server ``i``'s view entries, in sim-time
        units since the entry was published at its origin."""
        if self._list_mode:
            return self.env.now - np.asarray(self._stmp[i])
        return self.env.now - self._nstmp[i]

    def mean_view_age(self) -> float:
        """Mean finite off-diagonal view age across all live servers."""
        ages = self.env.now - self.stamps
        m = self.inst.m
        mask = np.isfinite(ages) & ~np.eye(m, dtype=bool)
        mask &= self.alive[:, None]
        if not mask.any():
            return float("inf")
        return float(ages[mask].mean())

    # ------------------------------------------------------------------
    # Publish / packet / merge — Python-list representation (small m)
    # ------------------------------------------------------------------
    def _publish_list(self, i: int) -> None:
        """Server ``i`` (re)publishes its authoritative entry: its true
        current load, freshly versioned and stamped with the sim-time."""
        self._own_version[i] += 1
        load = float(self.state.loads[i])
        vals = self._vals[i]
        if vals[i] != load:
            vals[i] = load
            self.update_counts[i] += 1
        self._vers[i][i] = self._own_version[i]
        self._stmp[i][i] = self.env.now
        self.stats.publishes += 1

    def _packet_list(self, src: int, dst: int) -> tuple:
        # The whole (values, versions, stamps) state batched into one
        # payload for the (src, dst) round.
        return (
            src, dst,
            (self._vals[src][:], self._vers[src][:], self._stmp[src][:]),
        )

    def _merge_list(self, dst: int, rows: tuple) -> None:
        qv, qr, qs = rows
        mv = self._vals[dst]
        mr = self._vers[dst]
        ms = self._stmp[dst]
        merged = False
        changed = False
        k = 0
        for v in qr:
            if v > mr[k]:
                merged = True
                mr[k] = v
                ms[k] = qs[k]
                if mv[k] != qv[k]:
                    mv[k] = qv[k]
                    changed = True
            k += 1
        if merged:
            self.stats.merges += 1
            if changed:
                self.update_counts[dst] += 1

    # ------------------------------------------------------------------
    # Publish / packet / merge — packed-ndarray representation (large m)
    # ------------------------------------------------------------------
    def _publish_np(self, i: int) -> None:
        self._own_version[i] += 1
        load = self.state.loads[i]
        vals = self._nvals[i]
        if vals[i] != load:
            vals[i] = load
            self.update_counts[i] += 1
        self._nvers[i][i] = self._own_version[i]
        self._nstmp[i][i] = self.env.now
        self.stats.publishes += 1

    def _packet_np(self, src: int, dst: int) -> tuple:
        # One contiguous (3, m) copy per (src, dst) round.
        return (src, dst, self._rows[src].copy())

    def _merge_np(self, dst: int, table: np.ndarray) -> None:
        newer = self._newer_buf
        np.greater(table[1], self._nvers[dst], out=newer)
        if newer.any():
            # Did any refreshed entry change its *value*?  (Version-only
            # refreshes must not invalidate the agents' proposal memos.)
            diff = self._diff_buf
            np.not_equal(table[0], self._nvals[dst], out=diff)
            diff &= newer
            if diff.any():
                self.update_counts[dst] += 1
            np.copyto(self._rows[dst], table, where=newer)
            self.stats.merges += 1

    # ------------------------------------------------------------------
    # The gossip cycle
    # ------------------------------------------------------------------
    def _arm(self, i: int) -> None:
        # Jittered interval: desynchronizes the population so gossip
        # traffic is spread over time instead of thundering in herds.
        self.env.call_in(
            self.interval * (0.5 + self._jitter[i].next()), self._tick, i
        )

    def _tick(self, i: int) -> None:
        draw = self._peer_draw[i]
        if draw is not None and self.alive[i]:
            self.publish(i)
            j = self._peers_list[i][draw.next()]
            self.stats.pushes += 1
            self.net.send(i, j, self._on_push, self._packet(i, j))
        self._arm(i)

    def _on_push(self, packet) -> None:
        src, dst, rows = packet
        self._merge(dst, rows)
        # Pull half of the push–pull exchange: reply with the merged table.
        self.stats.pull_replies += 1
        self.net.send(dst, src, self._on_pull_reply, self._packet(dst, src))

    def _on_pull_reply(self, packet) -> None:
        src, dst, rows = packet
        self._merge(dst, rows)
