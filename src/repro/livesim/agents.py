"""Asynchronous MinE agents: pairwise exchanges as a delayed handshake.

Each server runs an agent loop that periodically (jittered interval)
selects its best exchange partner from its *current gossip view*
(:func:`repro.core.distributed.propose_partner`) and, if the expected
improvement clears the threshold, starts a two-message handshake:

``PROPOSE i→j``
    ``j`` ACCEPTs when idle.  When ``j`` has an outstanding proposal of
    its own, the conflict is resolved by server id: a proposer with a
    *lower* id preempts ``j``'s own proposal (``j`` abandons it and
    accepts); otherwise ``j`` REJECTs.  A busy acceptor always rejects.
``ACCEPT j→i``
    The pair is now synchronized: ``i`` computes Algorithm 1 on the
    *true* current state (:func:`~repro.core.distributed.
    apply_pair_exchange`) and applies it if it still improves — the
    stale view chose the partner, never the transfer.  ``i`` then sends
    ``DONE`` so ``j`` can unlock.

Each server holds at most one in-flight exchange (a ``busy`` slot
guards both roles) and every wait is bounded by a timeout, so dropped
messages and dead peers stall nothing: the proposer frees itself after
``propose_timeout``, the acceptor after ``accept_timeout``.  Stale
replies are discarded by token.

Three mechanisms keep the loop cheap at fleet scale:

* **Adaptive intervals.**  An agent whose proposals keep failing (no
  improving partner in view, REJECT, timeout, or a no-op exchange)
  backs off exponentially — its interval is multiplied by
  ``backoff_factor`` per failure up to ``backoff_max`` — and snaps back
  to the base interval the moment a proposal is accepted or fresh
  information arrives.  A converged fleet therefore idles at a fraction
  of its peak proposal rate instead of re-deriving "nothing to do"
  every round.
* **Proposal memoization.**  ``propose_partner`` is a pure function of
  the gossip view and the allocation; if neither changed since the last
  futile attempt (tracked via ``AsyncGossip.update_counts`` and a
  global allocation version bumped on every exchange and churn event),
  the agent skips the numpy evaluation outright.
* **Partner-selection strategy.**  ``strategy="auto"`` uses the exact
  batched evaluation (with static argsort/transpose caches) on small
  fleets and the O(m) screened pass beyond
  :data:`repro.core.distributed.EXACT_BUDGET` — at m = 2000 an exact
  proposal costs seconds, a screened one a millisecond.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.distributed import (
    EXACT_BUDGET,
    PairExchange,
    apply_pair_exchange,
    propose_partner,
    static_caches_enabled,
)
from ..core.state import AllocationState
from ..sim.events import Environment
from ._util import BufferedUniform
from .gossip import AsyncGossip
from .net import ControlNetwork

__all__ = ["ExchangeAgents", "AgentStats"]

#: busy-slot roles
_PROPOSING = "proposing"
_ACCEPTED = "accepted"


@dataclass
class AgentStats:
    """Counters of the exchange handshake layer."""

    proposals: int = 0
    accepts: int = 0
    rejects: int = 0
    preemptions: int = 0        #: own proposal abandoned for a lower id
    exchanges: int = 0          #: handshakes that moved load
    noop_exchanges: int = 0     #: synced pairs with nothing left to move
    aborted: int = 0            #: partner died before the exchange applied
    propose_timeouts: int = 0
    accept_timeouts: int = 0
    stale_messages: int = 0     #: replies whose token no longer matches
    skipped_proposals: int = 0  #: memoized: view and state unchanged
    kernel_calls: int = 0       #: Algorithm 1 kernel dispatches
    kernel_candidates: int = 0  #: candidates covered by those dispatches


class ExchangeAgents:
    """One asynchronous Algorithm 2 agent per server."""

    def __init__(
        self,
        env: Environment,
        net: ControlNetwork,
        state: AllocationState,
        gossip: AsyncGossip,
        alive: np.ndarray,
        seeds: list[np.random.SeedSequence],
        *,
        interval: float,
        propose_timeout: float,
        accept_timeout: float,
        min_improvement: float = 1e-9,
        strategy: str = "auto",
        screen_width: int = 16,
        backoff_factor: float = 2.0,
        backoff_max: float = 8.0,
        on_exchange: Callable[[PairExchange], None] | None = None,
        trace: list | None = None,
        obs=None,
    ):
        m = state.inst.m
        if len(seeds) != m:
            raise ValueError("need one RNG seed per server")
        if backoff_factor < 1.0 or backoff_max < 1.0:
            raise ValueError("backoff factor and cap must be >= 1")
        if strategy not in ("exact", "screened", "auto"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.env = env
        self.net = net
        self.state = state
        self.gossip = gossip
        self.alive = alive
        self.interval = float(interval)
        self.propose_timeout = float(propose_timeout)
        self.accept_timeout = float(accept_timeout)
        self.min_improvement = float(min_improvement)
        self.strategy = strategy
        self.screen_width = int(screen_width)
        self.backoff_factor = float(backoff_factor)
        self.backoff_max = float(backoff_max)
        self.on_exchange = on_exchange
        self.trace = trace
        self.rngs = [np.random.default_rng(s) for s in seeds]
        self._jitter = [BufferedUniform(r) for r in self.rngs]
        self.stats = AgentStats()
        # Under the Byzantine-robust merge, a completed handshake doubles
        # as a first-hand load observation of the partner (the pair-sync
        # already exchanged the true state): feed it back into the gossip
        # table.  None under the legacy merge — bit-identical traces.
        self._observe = (
            gossip.observe_peer
            if getattr(gossip, "merge_mode", "legacy") == "robust"
            else None
        )
        #: Optional refusal predicate ``(acceptor, proposer) -> bool``
        #: installed by the adversary plane: a compromised acceptor that
        #: returns True rejects the proposal (a blackhole protecting
        #: its claimed idleness).  None on honest runs.
        self.refuse: Callable[[int, int], bool] | None = None
        # Per-partner shun table (robust merge only): a partner whose
        # handshakes keep failing (REJECT or timeout — the channels
        # carrying no load information) is excluded from selection for
        # an exponentially growing cooldown, so a server that lures
        # proposals but never completes them cannot livelock the fleet.
        # Honest busy-rejects only ever produce short cooldowns (the
        # streak breaks as soon as one handshake completes); persistent
        # refusers escalate to the cap and effectively drop out of the
        # partner pool.  ``None`` (legacy) keeps traces bit-identical.
        self._shun: list[dict[int, tuple[float, float]]] | None = (
            [dict() for _ in range(m)] if self._observe is not None else None
        )
        # Tracing hook (repro.obs): None keeps every handler untraced.
        self._tracer = obs.tracer if obs is not None else None
        self.owners = np.flatnonzero(state.inst.loads > 0)
        #: per-server busy slot: ``None`` or ``(role, peer, token)``
        self.busy: list[tuple[str, int, int] | None] = [None] * m
        self._next_token = 0
        #: per-server interval multiplier (adaptive back-off)
        self.backoff = [1.0] * m
        # Memoization: (gossip.update_counts[i], allocation version) at
        # the last *futile* proposal evaluation, or None.
        self._state_version = 0
        self._futile: list[tuple[int, int] | None] = [None] * m
        # Static caches for the exact batched evaluation, mirroring
        # MinEOptimizer: the latency argsort depends only on the
        # instance, the transposed R is maintained across exchanges.
        h = max(1, self.owners.size)
        self._use_exact = strategy == "exact" or (
            strategy == "auto" and h * m <= EXACT_BUDGET
        )
        # The transposed R is maintained across exchanges in both modes:
        # the exact batch reads candidate rows from it, and the screened
        # pass hands it to calc_best_transfer (cache-friendly rows
        # instead of strided column reads — the dominant cost of a
        # screened proposal at fleet scale).
        self._Rt = np.ascontiguousarray(state.R.T)
        # Both strategies read candidate latency rows from the transpose;
        # symmetric topologies (the common case) ARE their transpose, so
        # reuse the instance matrix instead of materializing an m×m copy
        # (200 MB at m = 5000).
        lat = state.inst.latency
        self._Ct = lat if np.array_equal(lat, lat.T) else np.ascontiguousarray(lat.T)
        # Nearest-peer lists for the screening pass (latency-static, so
        # never invalidated within a run).
        self._screen_cache: dict[int, np.ndarray] = {}
        if self._use_exact:
            caches_ok = static_caches_enabled(m, h)
            self._order_cache: dict[int, np.ndarray] | None = {} if caches_ok else None
            self._static_cache: dict[int, tuple] | None = {} if caches_ok else None
        else:
            self._order_cache = None
            self._static_cache = None
        for i in range(m):
            self._arm(i)

    # ------------------------------------------------------------------
    def cancel(self, i: int) -> None:
        """Drop server ``i``'s in-flight handshake (called on failure);
        late replies are discarded by token mismatch."""
        self.busy[i] = None

    def notify_allocation_changed(self) -> None:
        """Invalidate proposal memos after an out-of-band allocation
        change (churn failure/rejoin); refreshes the transposed-R cache."""
        self._state_version += 1
        self._Rt = np.ascontiguousarray(self.state.R.T)

    def notify_demand_changed(self) -> None:
        """React to a demand shift (the tracking plane swapped the
        instance and retargeted the allocation): refresh everything that
        depends on the loads — the owner set, the strategy choice, the
        owner-sliced static caches — and reset every back-off so the
        fleet re-tracks the new optimum at full proposal rate."""
        state = self.state
        m = state.inst.m
        new_owners = np.flatnonzero(state.inst.loads > 0)
        owners_changed = not np.array_equal(new_owners, self.owners)
        self.owners = new_owners
        self._state_version += 1
        self._Rt = np.ascontiguousarray(state.R.T)
        h = max(1, new_owners.size)
        use_exact = self.strategy == "exact" or (
            self.strategy == "auto" and h * m <= EXACT_BUDGET
        )
        if use_exact:
            if owners_changed or self._order_cache is None:
                # The cached argsorts and latency slices are taken over
                # the owner set; a changed owner set invalidates them.
                caches_ok = static_caches_enabled(m, h)
                self._order_cache = {} if caches_ok else None
                self._static_cache = {} if caches_ok else None
        else:
            self._order_cache = None
            self._static_cache = None
        self._use_exact = use_exact
        self.backoff = [1.0] * m

    def _record(self, *entry) -> None:
        if self.trace is not None:
            self.trace.append(entry)

    def _bump_backoff(self, i: int) -> None:
        b = self.backoff[i] * self.backoff_factor
        self.backoff[i] = b if b < self.backoff_max else self.backoff_max

    def _shun_partner(self, i: int, j: int) -> None:
        """Escalate ``i``'s cooldown on partner ``j`` after a failed
        handshake (robust merge only; no-op otherwise)."""
        if self._shun is None:
            return
        _until, cd = self._shun[i].get(j, (0.0, 0.0))
        cd = self.interval if cd == 0.0 else min(cd * 2.0, 64.0 * self.interval)
        self._shun[i][j] = (self.env.now + cd, cd)
        if cd >= 8.0 * self.interval:
            # Four consecutive failures with the same partner is no
            # longer busy-slot noise: feed it to the suspicion plane.
            self.gossip.note_unresponsive(j)

    # ------------------------------------------------------------------
    def _arm(self, i: int) -> None:
        delay = self.interval * (0.5 + self._jitter[i].next()) * self.backoff[i]
        self.env.call_in(delay, self._act, i)

    def _act(self, i: int) -> None:
        if not self.alive[i] or self.busy[i] is not None:
            self._arm(i)
            return
        stamp = (int(self.gossip.update_counts[i]), self._state_version)
        if self._futile[i] == stamp:
            # Nothing the proposal depends on has changed since the last
            # futile evaluation: same view, same allocation, same answer.
            self.stats.skipped_proposals += 1
            self._bump_backoff(i)
            self._arm(i)
            return
        if self._futile[i] is not None:
            # Fresh information after a futile spell: react at full rate.
            self.backoff[i] = 1.0
        excl = None
        if self._shun is not None and self._shun[i]:
            now = self.env.now
            excl = [
                p for p, (until, _cd) in self._shun[i].items() if until > now
            ] or None
        view = self.gossip.view(i)
        j, impr = propose_partner(
            self.state.inst, self.state.R, i, view,
            owners=self.owners,
            strategy="exact" if self._use_exact else "screened",
            screen_width=self.screen_width,
            order_cache=self._order_cache,
            rt_full=self._Rt,
            ct_full=self._Ct,
            static_cache=self._static_cache,
            screen_cache=self._screen_cache,
            exclude=excl,
            stats=self.stats,
        )
        if j < 0 or impr <= self.min_improvement:
            if excl is None:
                # Cooldown expiry isn't captured by the memo stamp, so a
                # shun-constrained futile answer is never memoized.
                self._futile[i] = stamp
            self._bump_backoff(i)
            self._arm(i)
            return
        self._futile[i] = None
        self._next_token += 1
        token = self._next_token
        self.busy[i] = (_PROPOSING, j, token)
        self.stats.proposals += 1
        self._record("propose", self.env.now, i, j, token)
        tracer = self._tracer
        if tracer is not None:
            # Causal link into gossip: the parent is the merge that last
            # changed this server's view — the information the partner
            # choice was computed from.
            psid = tracer.instant(
                "agent.propose",
                self.env.now,
                parent=tracer.lookup(("view", i)),
                track=i,
                peer=j,
                token=token,
            )
            tracer.bind(("xchg", token), psid)
        self.net.send(i, j, self._on_propose, (i, j, token))
        self.env.call_in(
            self.propose_timeout, self._expire, (i, token, _PROPOSING)
        )
        self._arm(i)

    def _expire(self, key: tuple) -> None:
        i, token, role = key
        slot = self.busy[i]
        if slot is not None and slot[0] == role and slot[2] == token:
            self.busy[i] = None
            if role == _PROPOSING:
                self.stats.propose_timeouts += 1
                self._shun_partner(i, slot[1])
            else:
                self.stats.accept_timeouts += 1
            self._bump_backoff(i)
            self._record("timeout", self.env.now, i, role, token)
            tracer = self._tracer
            if tracer is not None:
                tracer.instant(
                    "agent.timeout",
                    self.env.now,
                    parent=tracer.lookup(("xchg", token)),
                    track=i,
                    role=role,
                )
                if role == _PROPOSING:
                    tracer.take(("xchg", token))  # handshake is over

    # ------------------------------------------------------------------
    # Message handlers (run at the destination at delivery time)
    # ------------------------------------------------------------------
    def _on_propose(self, msg) -> None:
        i, j, token = msg
        refused = self.refuse is not None and self.refuse(j, i)
        slot = self.busy[j]
        preempt = slot is not None and slot[0] == _PROPOSING and i < j
        if not refused and (slot is None or preempt):
            if preempt:
                self.stats.preemptions += 1
            self.busy[j] = (_ACCEPTED, i, token)
            self.stats.accepts += 1
            self.backoff[j] = 1.0  # accepted: this server is productive
            self._record("accept", self.env.now, j, i, token)
            tracer = self._tracer
            if tracer is not None:
                tracer.instant(
                    "agent.accept",
                    self.env.now,
                    parent=tracer.lookup(("xchg", token)),
                    track=j,
                    peer=i,
                )
            self.net.send(j, i, self._on_accept, (i, j, token))
            self.env.call_in(
                self.accept_timeout, self._expire, (j, token, _ACCEPTED)
            )
        else:
            self.stats.rejects += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.instant(
                    "agent.reject",
                    self.env.now,
                    parent=tracer.lookup(("xchg", token)),
                    track=j,
                    peer=i,
                )
            self.net.send(j, i, self._on_reject, (i, j, token))

    def _on_accept(self, msg) -> None:
        i, j, token = msg
        if self.busy[i] != (_PROPOSING, j, token):
            # Timed out (or preempted) in the meantime: no exchange, but
            # still release the acceptor instead of letting it time out.
            self.stats.stale_messages += 1
            self.net.send(i, j, self._on_done, (i, j, token))
            return
        self.busy[i] = None
        tracer = self._tracer
        psid = tracer.take(("xchg", token)) if tracer is not None else None
        if self.alive[j]:
            ex = apply_pair_exchange(
                self.state, i, j, min_improvement=self.min_improvement
            )
            if ex is not None:
                self.stats.exchanges += 1
                self.backoff[i] = 1.0
                self._state_version += 1
                self._Rt[i] = ex.col_i
                self._Rt[j] = ex.col_j
                self._record(
                    "exchange", self.env.now, i, j, ex.improvement, ex.moved
                )
                if tracer is not None:
                    tracer.instant(
                        "agent.exchange",
                        self.env.now,
                        parent=psid,
                        track=i,
                        peer=j,
                        improvement=float(ex.improvement),
                        moved=float(ex.moved),
                    )
                if self.on_exchange is not None:
                    self.on_exchange(ex)
            else:
                self.stats.noop_exchanges += 1
                self._bump_backoff(i)
            if self._observe is not None:
                self._observe(i, j)
            if self._shun is not None:
                # A completed handshake (even a noop) carried real load
                # information: the partner is responsive after all.
                self._shun[i].pop(j, None)
        else:
            # The pair-sync connection broke: j failed while ACCEPT was in
            # flight, so the exchange never happens.
            self.stats.aborted += 1
        self.net.send(i, j, self._on_done, (i, j, token))

    def _on_reject(self, msg) -> None:
        i, j, token = msg
        if self.busy[i] == (_PROPOSING, j, token):
            self.busy[i] = None
            self._bump_backoff(i)
            self._shun_partner(i, j)
            if self._tracer is not None:
                self._tracer.take(("xchg", token))  # handshake is over
        else:
            self.stats.stale_messages += 1

    def _on_done(self, msg) -> None:
        i, j, token = msg
        if self.busy[j] == (_ACCEPTED, i, token):
            self.busy[j] = None
            if self._observe is not None and self.alive[i]:
                # The DONE leg closes the pair sync: the acceptor learned
                # the proposer's exact post-exchange load too.
                self._observe(j, i)
            if self._shun is not None:
                self._shun[j].pop(i, None)
        else:
            self.stats.stale_messages += 1
