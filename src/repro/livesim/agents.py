"""Asynchronous MinE agents: pairwise exchanges as a delayed handshake.

Each server runs an agent process that periodically (jittered interval)
selects its best exchange partner from its *current gossip view*
(:func:`repro.core.distributed.propose_partner`) and, if the expected
improvement clears the threshold, starts a two-message handshake:

``PROPOSE i→j``
    ``j`` ACCEPTs when idle.  When ``j`` has an outstanding proposal of
    its own, the conflict is resolved by server id: a proposer with a
    *lower* id preempts ``j``'s own proposal (``j`` abandons it and
    accepts); otherwise ``j`` REJECTs.  A busy acceptor always rejects.
``ACCEPT j→i``
    The pair is now synchronized: ``i`` computes Algorithm 1 on the
    *true* current state (:func:`~repro.core.distributed.
    apply_pair_exchange`) and applies it if it still improves — the
    stale view chose the partner, never the transfer.  ``i`` then sends
    ``DONE`` so ``j`` can unlock.

Each server holds at most one in-flight exchange (a ``busy`` slot
guards both roles) and every wait is bounded by a timeout, so dropped
messages and dead peers stall nothing: the proposer frees itself after
``propose_timeout``, the acceptor after ``accept_timeout``.  Stale
replies are discarded by token.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.distributed import PairExchange, apply_pair_exchange, propose_partner
from ..core.state import AllocationState
from ..sim.events import Environment, Timeout
from .gossip import AsyncGossip
from .net import ControlNetwork

__all__ = ["ExchangeAgents", "AgentStats"]

#: busy-slot roles
_PROPOSING = "proposing"
_ACCEPTED = "accepted"


@dataclass
class AgentStats:
    """Counters of the exchange handshake layer."""

    proposals: int = 0
    accepts: int = 0
    rejects: int = 0
    preemptions: int = 0        #: own proposal abandoned for a lower id
    exchanges: int = 0          #: handshakes that moved load
    noop_exchanges: int = 0     #: synced pairs with nothing left to move
    aborted: int = 0            #: partner died before the exchange applied
    propose_timeouts: int = 0
    accept_timeouts: int = 0
    stale_messages: int = 0     #: replies whose token no longer matches


class ExchangeAgents:
    """One asynchronous Algorithm 2 agent per server."""

    def __init__(
        self,
        env: Environment,
        net: ControlNetwork,
        state: AllocationState,
        gossip: AsyncGossip,
        alive: np.ndarray,
        seeds: list[np.random.SeedSequence],
        *,
        interval: float,
        propose_timeout: float,
        accept_timeout: float,
        min_improvement: float = 1e-9,
        on_exchange: Callable[[PairExchange], None] | None = None,
        trace: list | None = None,
    ):
        m = state.inst.m
        if len(seeds) != m:
            raise ValueError("need one RNG seed per server")
        self.env = env
        self.net = net
        self.state = state
        self.gossip = gossip
        self.alive = alive
        self.interval = float(interval)
        self.propose_timeout = float(propose_timeout)
        self.accept_timeout = float(accept_timeout)
        self.min_improvement = float(min_improvement)
        self.on_exchange = on_exchange
        self.trace = trace
        self.rngs = [np.random.default_rng(s) for s in seeds]
        self.stats = AgentStats()
        self.owners = np.flatnonzero(state.inst.loads > 0)
        #: per-server busy slot: ``None`` or ``(role, peer, token)``
        self.busy: list[tuple[str, int, int] | None] = [None] * m
        self._next_token = 0
        for i in range(m):
            env.process(self._cycle(i))

    # ------------------------------------------------------------------
    def cancel(self, i: int) -> None:
        """Drop server ``i``'s in-flight handshake (called on failure);
        late replies are discarded by token mismatch."""
        self.busy[i] = None

    def _record(self, *entry) -> None:
        if self.trace is not None:
            self.trace.append(entry)

    def _after(self, delay: float, check: Callable[[], None]) -> None:
        Timeout(self.env, delay).add_callback(lambda _ev: check())

    # ------------------------------------------------------------------
    def _cycle(self, i: int):
        rng = self.rngs[i]
        while True:
            yield self.env.timeout(self.interval * (0.5 + rng.random()))
            if not self.alive[i] or self.busy[i] is not None:
                continue
            view = self.gossip.view(i)
            j, impr = propose_partner(
                self.state.inst, self.state.R, i, view, owners=self.owners
            )
            if j < 0 or impr <= self.min_improvement:
                continue
            self._next_token += 1
            token = self._next_token
            self.busy[i] = (_PROPOSING, j, token)
            self.stats.proposals += 1
            self._record("propose", self.env.now, i, j, token)
            self.net.send(i, j, self._on_propose, (i, j, token))
            self._after(
                self.propose_timeout, lambda i=i, token=token: self._expire(
                    i, token, _PROPOSING
                )
            )

    def _expire(self, i: int, token: int, role: str) -> None:
        slot = self.busy[i]
        if slot is not None and slot[0] == role and slot[2] == token:
            self.busy[i] = None
            if role == _PROPOSING:
                self.stats.propose_timeouts += 1
            else:
                self.stats.accept_timeouts += 1
            self._record("timeout", self.env.now, i, role, token)

    # ------------------------------------------------------------------
    # Message handlers (run at the destination at delivery time)
    # ------------------------------------------------------------------
    def _on_propose(self, msg) -> None:
        i, j, token = msg
        slot = self.busy[j]
        preempt = slot is not None and slot[0] == _PROPOSING and i < j
        if slot is None or preempt:
            if preempt:
                self.stats.preemptions += 1
            self.busy[j] = (_ACCEPTED, i, token)
            self.stats.accepts += 1
            self._record("accept", self.env.now, j, i, token)
            self.net.send(j, i, self._on_accept, (i, j, token))
            self._after(
                self.accept_timeout, lambda j=j, token=token: self._expire(
                    j, token, _ACCEPTED
                )
            )
        else:
            self.stats.rejects += 1
            self.net.send(j, i, self._on_reject, (i, j, token))

    def _on_accept(self, msg) -> None:
        i, j, token = msg
        if self.busy[i] != (_PROPOSING, j, token):
            # Timed out (or preempted) in the meantime: no exchange, but
            # still release the acceptor instead of letting it time out.
            self.stats.stale_messages += 1
            self.net.send(i, j, self._on_done, (i, j, token))
            return
        self.busy[i] = None
        if self.alive[j]:
            ex = apply_pair_exchange(
                self.state, i, j, min_improvement=self.min_improvement
            )
            if ex is not None:
                self.stats.exchanges += 1
                self._record(
                    "exchange", self.env.now, i, j, ex.improvement, ex.moved
                )
                if self.on_exchange is not None:
                    self.on_exchange(ex)
            else:
                self.stats.noop_exchanges += 1
        else:
            # The pair-sync connection broke: j failed while ACCEPT was in
            # flight, so the exchange never happens.
            self.stats.aborted += 1
        self.net.send(i, j, self._on_done, (i, j, token))

    def _on_reject(self, msg) -> None:
        i, j, token = msg
        if self.busy[i] == (_PROPOSING, j, token):
            self.busy[i] = None
        else:
            self.stats.stale_messages += 1

    def _on_done(self, msg) -> None:
        i, j, token = msg
        if self.busy[j] == (_ACCEPTED, i, token):
            self.busy[j] = None
        else:
            self.stats.stale_messages += 1
