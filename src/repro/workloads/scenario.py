"""Scenario registry: named, reproducible (topology × load model) configs.

A :class:`Scenario` bundles everything needed to materialize an
:class:`repro.Instance`: a topology factory, a load model, a default
organization count, a speed range and a base seed.  Materialization is a
pure function of ``(scenario name, m, seed)`` — the same triple always
yields a bit-identical instance, on any machine.

Presets cover the paper's two Section VI settings plus new production
shapes; register your own with :func:`register_scenario`:

>>> from repro.workloads import Scenario, DiurnalLoads, register_scenario
>>> from repro.workloads import ring_of_clusters_latency
>>> register_scenario(Scenario(
...     name="my-federation",
...     topology=ring_of_clusters_latency,
...     load_model=DiurnalLoads(base=100.0),
...     m=40,
... ))
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..core.instance import Instance
from ..net.topology import homogeneous_latency, planetlab_like_latency
from ..net.trust import (
    is_trust_connected,
    k_nearest_trust,
    random_trust,
    restrict_latency,
    ring_trust,
)
from .loadmodels import (
    CorrelatedSurgeLoads,
    DiurnalLoads,
    ExponentialLoads,
    FlashCrowdLoads,
    LoadModel,
    LognormalLoads,
    ParetoLoads,
)
from .topologies import (
    fat_tree_latency,
    ring_of_clusters_latency,
    star_hub_latency,
)

__all__ = [
    "Scenario",
    "TrustSpec",
    "TopologyFactory",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "PRESETS",
    "TRUST_PRESETS",
]

#: ``factory(m, rng) -> (m, m)`` latency matrix.  All generators in
#: :mod:`repro.net.topology` and :mod:`repro.workloads.topologies` fit
#: this signature via their keyword-only ``rng``.
TopologyFactory = Callable[..., np.ndarray]

_SCENARIO_ENTROPY = 0x5CE7A210


def _homogeneous_20ms(m: int, *, rng=None) -> np.ndarray:
    return homogeneous_latency(m, 20.0)


@dataclass(frozen=True)
class TrustSpec:
    """Declarative §II trust restriction attached to a :class:`Scenario`.

    ``kind`` selects the builder from :mod:`repro.net.trust`:

    * ``"ring"`` — everyone trusts ``hops`` ring neighbours per side;
    * ``"k_nearest"`` — the ``k`` lowest-latency peers, or-symmetrized
      so the control plane's pairwise handshakes stay routable;
    * ``"random"`` — Erdős–Rényi with edge probability ``p``, drawn on
      the entropy-separated :func:`repro.net.trust.random_trust` stream
      keyed by the materialization's ``(m, seed)``.

    Being a frozen dataclass of plain values, a spec compares, hashes
    and pickles like every other scenario field — instance caching and
    the process sweep backends keep working unchanged.
    """

    kind: str
    hops: int = 2
    k: int = 4
    p: float = 0.3

    def __post_init__(self) -> None:
        if self.kind not in ("ring", "k_nearest", "random"):
            raise ValueError(
                f"unknown trust kind {self.kind!r}; "
                "expected 'ring', 'k_nearest' or 'random'"
            )

    def allowed(self, latency: np.ndarray, *, seed: int = 0) -> np.ndarray:
        """The boolean trust mask for one materialized topology."""
        m = latency.shape[0]
        if self.kind == "ring":
            return ring_trust(m, hops=self.hops)
        if self.kind == "k_nearest":
            return k_nearest_trust(latency, self.k, symmetric=True)
        return random_trust(m, self.p, seed=seed)


@dataclass(frozen=True)
class Scenario:
    """A named, seeded workload configuration.

    Parameters
    ----------
    name:
        Registry key; also the label in :class:`ScenarioResult` rows.
    topology:
        Callable ``(m, *, rng) -> latency matrix``.
    load_model:
        A :class:`repro.workloads.LoadModel` producing the initial loads.
    m:
        Default organization count (overridable at materialization).
    seed:
        Base seed mixed into every derived generator.
    speed_range:
        Server speeds are uniform on this range (§VI-A uses ``[1, 5]``);
        a degenerate range ``(s, s)`` gives constant speeds.
    trust:
        Optional :class:`TrustSpec`: non-trusted links get infinite
        latency (§II neighbour restriction) after the topology is drawn,
        and materialization fails loudly if the trust graph cannot
        spread load globally (:func:`repro.net.trust.is_trust_connected`).
    description:
        One-line human description shown by :func:`list_scenarios`.
    """

    name: str
    topology: TopologyFactory
    load_model: LoadModel
    m: int = 50
    seed: int = 0
    speed_range: tuple[float, float] = (1.0, 5.0)
    trust: TrustSpec | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("a scenario needs at least one organization")
        lo, hi = self.speed_range
        if not (0 < lo <= hi):
            raise ValueError("speed_range must satisfy 0 < low <= high")

    # ------------------------------------------------------------------
    def rng(self, m: int | None = None, seed: int | None = None) -> np.random.Generator:
        """The deterministic generator for one ``(name, m, seed)`` cell."""
        m = self.m if m is None else int(m)
        seed = self.seed if seed is None else int(seed)
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=_SCENARIO_ENTROPY,
                spawn_key=(zlib.crc32(self.name.encode()), m, seed),
            )
        )

    def instance(self, m: int | None = None, *, seed: int | None = None) -> Instance:
        """Materialize the scenario into a solver-ready :class:`Instance`."""
        m = self.m if m is None else int(m)
        rng = self.rng(m, seed)
        lo, hi = self.speed_range
        speeds = rng.uniform(lo, hi, size=m) if hi > lo else np.full(m, lo)
        loads = self.load_model.sample(m, rng)
        latency = self.topology(m, rng=rng)
        if self.trust is not None:
            cell_seed = self.seed if seed is None else int(seed)
            allowed = self.trust.allowed(latency, seed=cell_seed)
            if not is_trust_connected(allowed):
                raise ValueError(
                    f"scenario {self.name!r} at (m={m}, seed={cell_seed}): "
                    f"trust graph {self.trust} is disconnected — load cannot "
                    "spread globally; widen the trust spec (more hops/k or a "
                    "higher edge probability)"
                )
            latency = restrict_latency(latency, allowed)
        return Instance(speeds, loads, latency)

    def load_trace(
        self, steps: int, m: int | None = None, *, seed: int | None = None
    ) -> np.ndarray:
        """A ``(steps, m)`` load trajectory for dynamic-tracking runs."""
        m = self.m if m is None else int(m)
        return self.load_model.trace(m, steps, self.rng(m, seed))

    def with_overrides(self, **changes) -> "Scenario":
        """A copy with some fields replaced (dataclass ``replace``)."""
        return replace(self, **changes)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, overwrite: bool = False) -> Scenario:
    """Add a scenario to the global registry and return it.

    Re-registering an existing name raises unless ``overwrite`` is set.
    """
    if not overwrite and scenario.name in _REGISTRY:
        raise ValueError(
            f"scenario {scenario.name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def list_scenarios() -> dict[str, str]:
    """``{name: description}`` for every registered scenario."""
    return {name: s.description for name, s in sorted(_REGISTRY.items())}


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
PRESETS: tuple[Scenario, ...] = (
    Scenario(
        name="paper-homogeneous",
        topology=_homogeneous_20ms,
        load_model=ExponentialLoads(avg=50.0),
        m=50,
        description="§VI-A homogeneous network (c=20 ms), exponential loads",
    ),
    Scenario(
        name="paper-planetlab",
        topology=planetlab_like_latency,
        load_model=ExponentialLoads(avg=50.0),
        m=50,
        description="§VI-A PlanetLab-like RTTs, exponential loads",
    ),
    Scenario(
        name="cdn-flashcrowd",
        topology=planetlab_like_latency,
        load_model=FlashCrowdLoads(base=10.0, hot_fraction=0.05, magnitude=200.0),
        m=60,
        description="CDN edge sites; a few sites hit by a flash crowd",
    ),
    Scenario(
        name="federation-diurnal",
        topology=ring_of_clusters_latency,
        load_model=DiurnalLoads(base=40.0, amplitude=0.8, regions=4),
        m=48,
        description="Geo-federated clouds on a WAN ring; day/night phase offsets",
    ),
    Scenario(
        name="datacenter-fattree",
        topology=fat_tree_latency,
        load_model=LognormalLoads(median=30.0, sigma=1.0),
        m=64,
        description="Single datacenter fat-tree; log-normal tenant sizes",
    ),
    Scenario(
        name="hub-heavytail",
        topology=star_hub_latency,
        load_model=ParetoLoads(shape=1.5, scale=15.0),
        m=40,
        description="Hub-and-spoke federation; Pareto heavy-tailed org loads",
    ),
    Scenario(
        name="regional-surge",
        topology=ring_of_clusters_latency,
        load_model=CorrelatedSurgeLoads(regions=4, base=20.0, surge_factor=8.0),
        m=48,
        description="WAN ring with correlated whole-region load surges",
    ),
)

#: Trust-restricted variants (§II neighbour restriction as a first-class
#: scenario axis).  Registered like the base presets but kept out of
#: ``PRESETS``: the determinism/convergence suites iterate that tuple,
#: and a trust-restricted plane converges to a *different* (restricted)
#: optimum on a different schedule.
TRUST_PRESETS: tuple[Scenario, ...] = (
    Scenario(
        name="planetlab-ring-trust",
        topology=planetlab_like_latency,
        load_model=ExponentialLoads(avg=50.0),
        m=50,
        trust=TrustSpec(kind="ring", hops=3),
        description="§VI-A PlanetLab RTTs, relaying restricted to a 3-hop trust ring",
    ),
    Scenario(
        name="hub-knn-trust",
        topology=star_hub_latency,
        load_model=ParetoLoads(shape=1.5, scale=15.0),
        m=40,
        trust=TrustSpec(kind="k_nearest", k=6),
        description="Hub federation; each org trusts its 6 nearest peers (symmetrized)",
    ),
    Scenario(
        name="planetlab-random-trust",
        topology=planetlab_like_latency,
        load_model=ExponentialLoads(avg=50.0),
        m=50,
        trust=TrustSpec(kind="random", p=0.3),
        description="PlanetLab RTTs under an Erdős–Rényi (p=0.3) trust graph",
    ),
)

for _preset in PRESETS + TRUST_PRESETS:
    register_scenario(_preset)
del _preset
