"""Scenario & workload generation: parametric traffic, new topology
families, a named-scenario registry and a config-driven batch runner.

Three-line sweep:

>>> from repro.workloads import ScenarioRunner
>>> report = ScenarioRunner(
...     ["paper-planetlab", "cdn-flashcrowd"], sizes=[20, 50], seeds=[0, 1]
... ).run()
>>> report.summary()  # per-scenario mean optimum / MinE error / PoA / latency

Single instances come straight out of the registry and feed any solver:

>>> from repro.workloads import get_scenario
>>> inst = get_scenario("federation-diurnal").instance(m=30, seed=1)
"""

from .cache import (
    cache_stats,
    cached_instance,
    cached_optimum,
    clear_cache,
    get_cache_dir,
    set_cache_dir,
)
from .loadmodels import (
    CorrelatedSurgeLoads,
    DiurnalLoads,
    ExponentialLoads,
    FlashCrowdLoads,
    LoadModel,
    LognormalLoads,
    ParetoLoads,
    UniformLoads,
    scale_to_average,
)
from .runner import (
    ScenarioReport,
    ScenarioResult,
    ScenarioRunner,
    SweepCell,
    evaluate_cell,
)
from .scenario import (
    PRESETS,
    TRUST_PRESETS,
    Scenario,
    TopologyFactory,
    TrustSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from .topologies import (
    fat_tree_latency,
    measured_latency,
    ring_of_clusters_latency,
    star_hub_latency,
)

__all__ = [
    # load models
    "LoadModel",
    "UniformLoads",
    "ExponentialLoads",
    "DiurnalLoads",
    "FlashCrowdLoads",
    "ParetoLoads",
    "LognormalLoads",
    "CorrelatedSurgeLoads",
    "scale_to_average",
    # topologies
    "fat_tree_latency",
    "ring_of_clusters_latency",
    "star_hub_latency",
    "measured_latency",
    # scenarios
    "Scenario",
    "TrustSpec",
    "TopologyFactory",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "PRESETS",
    "TRUST_PRESETS",
    # batch runner
    "ScenarioRunner",
    "ScenarioReport",
    "ScenarioResult",
    "SweepCell",
    "evaluate_cell",
    # cross-sweep cache (in-process memo + optional on-disk tier)
    "cached_instance",
    "cached_optimum",
    "cache_stats",
    "clear_cache",
    "set_cache_dir",
    "get_cache_dir",
]
