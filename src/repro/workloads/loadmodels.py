"""Parametric load-trace models.

The paper's Section VI evaluates three static load snapshots (uniform,
exponential, peak).  Production systems see far richer traffic: diurnal
cycles that peak at different local times per region, flash crowds that
concentrate demand on a handful of organizations, heavy-tailed org sizes
(a few giants, many small tenants) and correlated regional surges.

Every model is a frozen dataclass with two entry points:

* :meth:`LoadModel.sample` — one load *snapshot* ``n`` of shape ``(m,)``
  (strictly positive, suitable for :class:`repro.Instance`);
* :meth:`LoadModel.trace` — a ``(steps, m)`` load *trajectory*, the input
  of :class:`repro.DynamicBalancer`-style tracking experiments.

All randomness flows through the caller's generator, so a fixed seed gives
a bit-identical workload — the property the scenario registry builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "LoadModel",
    "UniformLoads",
    "ExponentialLoads",
    "DiurnalLoads",
    "FlashCrowdLoads",
    "ParetoLoads",
    "LognormalLoads",
    "CorrelatedSurgeLoads",
    "scale_to_average",
]

#: Loads are floored at this value so every organization participates and
#: ``Instance`` validation (finite, non-negative) plus the optimizers'
#: owner sets stay well-defined.
_MIN_LOAD = 1e-6


def scale_to_average(loads: np.ndarray, avg: float) -> np.ndarray:
    """Rescale a load vector so its mean is ``avg`` (the paper's ``l_av``)."""
    loads = np.asarray(loads, dtype=np.float64)
    mean = loads.mean()
    if mean <= 0:
        return np.full_like(loads, float(avg))
    return loads * (float(avg) / mean)


def _positive(loads: np.ndarray) -> np.ndarray:
    return np.maximum(loads, _MIN_LOAD)


@runtime_checkable
class LoadModel(Protocol):
    """Anything that can emit load snapshots and trajectories."""

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        """One strictly-positive load snapshot of shape ``(m,)``."""
        ...

    def trace(self, m: int, steps: int, rng: np.random.Generator) -> np.ndarray:
        """A ``(steps, m)`` load trajectory."""
        ...


class _BaseModel:
    """Default ``trace``: independent re-draws per step (memoryless)."""

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def trace(self, m: int, steps: int, rng: np.random.Generator) -> np.ndarray:
        return np.stack([self.sample(m, rng) for _ in range(steps)])


@dataclass(frozen=True)
class UniformLoads(_BaseModel):
    """The paper's *uniform* snapshot: ``n_i ~ U(0, 2·avg)``."""

    avg: float = 50.0

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        return _positive(rng.uniform(0.0, 2.0 * self.avg, size=m))


@dataclass(frozen=True)
class ExponentialLoads(_BaseModel):
    """The paper's *exponential* snapshot: ``n_i ~ Exp(avg)``."""

    avg: float = 50.0

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        return _positive(rng.exponential(self.avg, size=m))


@dataclass(frozen=True)
class DiurnalLoads(_BaseModel):
    """Day/night sinusoid with per-organization local-time phases.

    Each organization sits in one of ``regions`` time zones; region ``r``'s
    phase is offset by ``r / regions`` of a period.  A snapshot observes
    the system at a uniformly random time of day, so some regions are at
    peak while others sleep — the classic federated-cloud imbalance that
    makes delay-aware balancing profitable.

    ``load(t) = base · (1 + amplitude · sin(2π(t + φ_i))) · noise``
    """

    base: float = 40.0
    amplitude: float = 0.8
    regions: int = 4
    noise_sigma: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1) to keep loads positive")
        if self.regions < 1:
            raise ValueError("need at least one region")

    def _at(self, m: int, t: float, rng: np.random.Generator) -> np.ndarray:
        region = rng.integers(0, self.regions, size=m)
        phase = region / self.regions
        level = 1.0 + self.amplitude * np.sin(2.0 * np.pi * (t + phase))
        noise = rng.lognormal(0.0, self.noise_sigma, size=m)
        return _positive(self.base * level * noise)

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        return self._at(m, float(rng.uniform()), rng)

    def trace(self, m: int, steps: int, rng: np.random.Generator) -> np.ndarray:
        # One fixed region assignment; time advances through a full period.
        region = rng.integers(0, self.regions, size=m)
        phase = region / self.regions
        out = np.empty((steps, m))
        for k in range(steps):
            t = k / max(1, steps)
            level = 1.0 + self.amplitude * np.sin(2.0 * np.pi * (t + phase))
            noise = rng.lognormal(0.0, self.noise_sigma, size=m)
            out[k] = _positive(self.base * level * noise)
        return out


@dataclass(frozen=True)
class FlashCrowdLoads(_BaseModel):
    """A few organizations suddenly own a crowd.

    Background traffic is exponential with mean ``base``; a random
    ``hot_fraction`` of organizations (at least one) additionally receives
    a spike of ``magnitude × base`` requests — the generalization of the
    paper's single-server *peak* distribution.
    """

    base: float = 10.0
    hot_fraction: float = 0.05
    magnitude: float = 200.0

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        loads = rng.exponential(self.base, size=m)
        hot = max(1, int(round(self.hot_fraction * m)))
        idx = rng.choice(m, size=min(hot, m), replace=False)
        loads[idx] += self.magnitude * self.base * rng.uniform(0.5, 1.5, size=idx.size)
        return _positive(loads)


@dataclass(frozen=True)
class ParetoLoads(_BaseModel):
    """Heavy-tailed org sizes: ``n_i = scale · (1 + Pareto(shape))``.

    With ``shape ≤ 2`` the variance is infinite — a handful of giant
    tenants dominate the total load, stressing the optimizers' peak paths.
    """

    shape: float = 1.5
    scale: float = 15.0

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        return _positive(self.scale * (1.0 + rng.pareto(self.shape, size=m)))


@dataclass(frozen=True)
class LognormalLoads(_BaseModel):
    """Log-normal org sizes (multiplicative growth), median ``median``."""

    median: float = 30.0
    sigma: float = 1.0

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        return _positive(self.median * rng.lognormal(0.0, self.sigma, size=m))


@dataclass(frozen=True)
class CorrelatedSurgeLoads(_BaseModel):
    """Regionally correlated surges.

    Organizations are grouped into ``regions``; each region independently
    surges with probability ``surge_prob``, multiplying every member's
    baseline by ``surge_factor``.  Unlike independent heavy tails, the
    *correlation* means a whole neighbourhood of the latency matrix goes
    hot at once — nearby offloading capacity is scarce exactly where it is
    needed, the hard case for delay-aware balancing.
    """

    regions: int = 4
    base: float = 20.0
    surge_prob: float = 0.3
    surge_factor: float = 8.0
    noise_sigma: float = 0.25

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        region = rng.integers(0, self.regions, size=m)
        surged = rng.uniform(size=self.regions) < self.surge_prob
        factor = np.where(surged, self.surge_factor, 1.0)[region]
        noise = rng.lognormal(0.0, self.noise_sigma, size=m)
        return _positive(self.base * factor * noise)
