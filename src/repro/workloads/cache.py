"""In-process memo cache for scenario instances and their solved optima.

The first slice of the ROADMAP's cross-sweep-caching item: cells of
different sweeps (and different metric configs within one sweep) share
the same materialized ``(scenario, m, seed)`` instance and — much more
importantly — the same O(m²–m³) cooperative-optimum solve.  Both are
memoized per process, keyed by the cell coordinates and guarded by the
scenario *definition* (dataclass equality), so re-registering a
same-named scenario with different parameters can never serve a stale
instance.

Workers of the process backends each hold their own cache, which is
exactly what you want: a chunk of cells for the same scenario solves the
optimum once per worker instead of once per cell.

>>> from repro.workloads import cached_instance, cached_optimum
>>> inst = cached_instance(get_scenario("cdn-flashcrowd"), 30, 0)
>>> state, cost, wall, hit = cached_optimum(
...     get_scenario("cdn-flashcrowd"), 30, 0)            # doctest: +SKIP
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from ..core.instance import Instance
from ..core.qp import solve_optimal
from ..core.state import AllocationState
from .scenario import Scenario

__all__ = [
    "cached_instance",
    "cached_optimum",
    "cache_stats",
    "clear_cache",
]

#: Entries kept per cache before FIFO eviction; at default preset sizes
#: an instance plus its optimum is a few hundred KB, so the cap bounds
#: the cache near a hundred MB even for very wide sweeps.
MAX_ENTRIES = 256

# key -> (scenario definition that produced the entry, payload)
_INSTANCES: OrderedDict[tuple, tuple[Scenario, Instance]] = OrderedDict()
_OPTIMA: OrderedDict[tuple, tuple[Scenario, AllocationState, float]] = OrderedDict()

# Per-key solve locks: under the ``threads`` backend, concurrent cells
# sharing a key must wait for one solve instead of duplicating it.
_LOCKS_GUARD = threading.Lock()
_KEY_LOCKS: dict[tuple, threading.Lock] = {}


def _key_lock(key: tuple) -> threading.Lock:
    with _LOCKS_GUARD:
        lock = _KEY_LOCKS.get(key)
        if lock is None:
            lock = _KEY_LOCKS[key] = threading.Lock()
        return lock


@dataclass
class CacheStats:
    """Hit/miss counters (per process)."""

    instance_hits: int = 0
    instance_misses: int = 0
    optimum_hits: int = 0
    optimum_misses: int = 0


_STATS = CacheStats()


def _put(cache: OrderedDict, key: tuple, value) -> None:
    cache[key] = value
    while len(cache) > MAX_ENTRIES:
        cache.popitem(last=False)


def cached_instance(scenario: Scenario, m: int, seed: int) -> Instance:
    """``scenario.instance(m, seed=seed)``, memoized.

    Instances are immutable by convention throughout the repo, so the
    same object is shared between callers.
    """
    key = (scenario.name, int(m), int(seed))
    hit = _INSTANCES.get(key)
    if hit is not None and hit[0] == scenario:
        _STATS.instance_hits += 1
        return hit[1]
    with _key_lock(key):
        hit = _INSTANCES.get(key)  # a concurrent thread may have built it
        if hit is not None and hit[0] == scenario:
            _STATS.instance_hits += 1
            return hit[1]
        _STATS.instance_misses += 1
        inst = scenario.instance(m, seed=seed)
        _put(_INSTANCES, key, (scenario, inst))
        return inst


def cached_optimum(
    scenario: Scenario,
    m: int,
    seed: int,
    *,
    tol: float = 1e-9,
    method: str = "auto",
) -> tuple[AllocationState, float, float, bool]:
    """The cooperative optimum of one cell, memoized.

    Returns ``(state, total_cost, wall_s, hit)`` — ``state`` is a fresh
    copy (optimizers mutate allocation states in place), ``wall_s`` the
    wall time actually spent (0.0 on a hit).
    """
    key = (scenario.name, int(m), int(seed), float(tol), str(method))
    hit = _OPTIMA.get(key)
    if hit is not None and hit[0] == scenario:
        _STATS.optimum_hits += 1
        return hit[1].copy(), hit[2], 0.0, True
    with _key_lock(key):
        hit = _OPTIMA.get(key)  # a concurrent thread may have solved it
        if hit is not None and hit[0] == scenario:
            _STATS.optimum_hits += 1
            return hit[1].copy(), hit[2], 0.0, True
        _STATS.optimum_misses += 1
        inst = cached_instance(scenario, m, seed)
        t0 = time.perf_counter()
        state = solve_optimal(inst, method=method, tol=tol)
        wall = time.perf_counter() - t0
        cost = state.total_cost()
        _put(_OPTIMA, key, (scenario, state, cost))
        return state.copy(), cost, wall, False


def cache_stats() -> CacheStats:
    """The per-process hit/miss counters."""
    return _STATS


def clear_cache() -> None:
    """Empty both caches and reset the counters (tests)."""
    _INSTANCES.clear()
    _OPTIMA.clear()
    with _LOCKS_GUARD:
        _KEY_LOCKS.clear()
    _STATS.instance_hits = _STATS.instance_misses = 0
    _STATS.optimum_hits = _STATS.optimum_misses = 0
