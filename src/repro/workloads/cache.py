"""Two-tier cache for scenario instances and their solved optima.

The cross-sweep-caching item of the ROADMAP, in two tiers:

* **In-process memo** — cells of different sweeps (and different metric
  configs within one sweep) share the same materialized
  ``(scenario, m, seed)`` instance and — much more importantly — the
  same O(m²–m³) cooperative-optimum solve.  Both are memoized per
  process, keyed by the cell coordinates and guarded by the scenario
  *definition* (dataclass equality), so re-registering a same-named
  scenario with different parameters can never serve a stale instance.
  Workers of the process backends each hold their own memo, which is
  exactly what you want: a chunk of cells for the same scenario solves
  the optimum once per worker instead of once per cell.

* **On-disk tier** — with a cache directory configured
  (:func:`set_cache_dir`, or the ``REPRO_CACHE_DIR`` environment
  variable), every solved optimum is also written as one ``.npz`` per
  cell key, and a memo miss checks the directory before solving.  This
  is what lets *shards and re-runs across processes* skip the solve:
  the file name embeds the scenario name, cell coordinates, solver
  parameters and a digest of the materialized instance arrays, so a
  redefined scenario can never be served a stale file.  Writes are
  atomic (tmp + rename), so concurrent shards can share one directory.

>>> from repro.workloads import cached_instance, cached_optimum
>>> inst = cached_instance(get_scenario("cdn-flashcrowd"), 30, 0)
>>> state, cost, wall, hit = cached_optimum(
...     get_scenario("cdn-flashcrowd"), 30, 0)            # doctest: +SKIP
"""

from __future__ import annotations

import os
import threading
import time
import zipfile
import zlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..core.qp import solve_optimal
from ..core.state import AllocationState
from .scenario import Scenario

__all__ = [
    "cached_instance",
    "cached_optimum",
    "cache_stats",
    "bind_obs",
    "clear_cache",
    "set_cache_dir",
    "get_cache_dir",
]

#: Entries kept per cache before FIFO eviction; at default preset sizes
#: an instance plus its optimum is a few hundred KB, so the cap bounds
#: the cache near a hundred MB even for very wide sweeps.
MAX_ENTRIES = 256

# key -> (scenario definition that produced the entry, payload)
_INSTANCES: OrderedDict[tuple, tuple[Scenario, Instance]] = OrderedDict()
_OPTIMA: OrderedDict[tuple, tuple[Scenario, AllocationState, float]] = OrderedDict()

# Per-key solve locks: under the ``threads`` backend, concurrent cells
# sharing a key must wait for one solve instead of duplicating it.
_LOCKS_GUARD = threading.Lock()
_KEY_LOCKS: dict[tuple, threading.Lock] = {}


def _key_lock(key: tuple) -> threading.Lock:
    with _LOCKS_GUARD:
        lock = _KEY_LOCKS.get(key)
        if lock is None:
            lock = _KEY_LOCKS[key] = threading.Lock()
        return lock


@dataclass
class CacheStats:
    """Hit/miss counters (per process)."""

    instance_hits: int = 0
    instance_misses: int = 0
    optimum_hits: int = 0
    optimum_misses: int = 0
    disk_hits: int = 0       #: optimum served from the on-disk tier
    disk_misses: int = 0     #: disk tier enabled but had no file


_STATS = CacheStats()

# On-disk second tier: None disables it.
_CACHE_DIR: "str | None" = os.environ.get("REPRO_CACHE_DIR") or None


def set_cache_dir(path: "str | os.PathLike | None") -> "str | None":
    """Set (or with ``None`` disable) the on-disk cache directory;
    returns the previous value.  Overrides ``REPRO_CACHE_DIR``."""
    global _CACHE_DIR
    previous = _CACHE_DIR
    _CACHE_DIR = os.fspath(path) if path is not None else None
    return previous


def get_cache_dir() -> "str | None":
    """The active on-disk cache directory (``None`` = tier disabled)."""
    return _CACHE_DIR


def _disk_path(
    scenario: Scenario, inst: Instance, m: int, seed: int, tol: float, method: str
) -> str:
    """One ``.npz`` per cell key.  The digest covers what the solver
    actually consumes (speeds, loads, latency bytes), so any way of
    redefining a same-named scenario changes the file name."""
    h = zlib.crc32(inst.speeds.tobytes())
    h = zlib.crc32(inst.loads.tobytes(), h)
    h = zlib.crc32(inst.latency.tobytes(), h)
    name = (
        f"{scenario.name}-m{m}-s{seed}-tol{tol:g}-{method}-{h & 0xFFFFFFFF:08x}.npz"
    )
    return os.path.join(_CACHE_DIR, name)


def _disk_load(path: str, inst: Instance) -> "tuple[AllocationState, float] | None":
    try:
        with np.load(path) as npz:
            R = npz["R"]
            cost = float(npz["cost"])
    except (OSError, KeyError, ValueError, zipfile.BadZipFile):
        return None  # absent, torn, or foreign file: fall through to solve
    if R.shape != (inst.m, inst.m):
        return None
    return AllocationState(inst, R, validate=False), cost


def _disk_store(path: str, state: AllocationState, cost: float) -> None:
    os.makedirs(_CACHE_DIR, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, R=state.R, cost=np.float64(cost))
        os.replace(tmp, path)  # atomic: concurrent shards can share a dir
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _put(cache: OrderedDict, key: tuple, value) -> None:
    cache[key] = value
    while len(cache) > MAX_ENTRIES:
        cache.popitem(last=False)


def cached_instance(scenario: Scenario, m: int, seed: int) -> Instance:
    """``scenario.instance(m, seed=seed)``, memoized.

    Instances are immutable by convention throughout the repo, so the
    same object is shared between callers.
    """
    key = (scenario.name, int(m), int(seed))
    hit = _INSTANCES.get(key)
    if hit is not None and hit[0] == scenario:
        _STATS.instance_hits += 1
        return hit[1]
    with _key_lock(key):
        hit = _INSTANCES.get(key)  # a concurrent thread may have built it
        if hit is not None and hit[0] == scenario:
            _STATS.instance_hits += 1
            return hit[1]
        _STATS.instance_misses += 1
        inst = scenario.instance(m, seed=seed)
        _put(_INSTANCES, key, (scenario, inst))
        return inst


def cached_optimum(
    scenario: Scenario,
    m: int,
    seed: int,
    *,
    tol: float = 1e-9,
    method: str = "auto",
) -> tuple[AllocationState, float, float, bool]:
    """The cooperative optimum of one cell, memoized.

    Returns ``(state, total_cost, wall_s, hit)`` — ``state`` is a fresh
    copy (optimizers mutate allocation states in place), ``wall_s`` the
    wall time actually spent (0.0 on a hit).
    """
    key = (scenario.name, int(m), int(seed), float(tol), str(method))
    hit = _OPTIMA.get(key)
    if hit is not None and hit[0] == scenario:
        _STATS.optimum_hits += 1
        return hit[1].copy(), hit[2], 0.0, True
    with _key_lock(key):
        hit = _OPTIMA.get(key)  # a concurrent thread may have solved it
        if hit is not None and hit[0] == scenario:
            _STATS.optimum_hits += 1
            return hit[1].copy(), hit[2], 0.0, True
        inst = cached_instance(scenario, m, seed)
        disk_path = None
        if _CACHE_DIR is not None:
            disk_path = _disk_path(scenario, inst, m, seed, float(tol), str(method))
            loaded = _disk_load(disk_path, inst)
            if loaded is not None:
                state, cost = loaded
                _STATS.disk_hits += 1
                _put(_OPTIMA, key, (scenario, state, cost))
                return state.copy(), cost, 0.0, True
            _STATS.disk_misses += 1
        _STATS.optimum_misses += 1
        t0 = time.perf_counter()
        state = solve_optimal(inst, method=method, tol=tol)
        wall = time.perf_counter() - t0
        cost = state.total_cost()
        _put(_OPTIMA, key, (scenario, state, cost))
        if disk_path is not None:
            _disk_store(disk_path, state, cost)
        return state.copy(), cost, wall, False


def cache_stats() -> CacheStats:
    """The per-process hit/miss counters."""
    return _STATS


def bind_obs(registry) -> None:
    """Expose the process-global counters as ``cache.*`` metrics.

    Called by :class:`repro.obs.Observability` on construction; the
    registry reads the live ``_STATS`` fields, so the hot cache paths
    stay plain attribute increments whether or not obs is active.
    """
    registry.bind("cache", _STATS)


def clear_cache() -> None:
    """Empty the in-process caches and reset the counters (tests).  The
    on-disk tier is untouched — delete the directory to drop it."""
    _INSTANCES.clear()
    _OPTIMA.clear()
    with _LOCKS_GUARD:
        _KEY_LOCKS.clear()
    _STATS.instance_hits = _STATS.instance_misses = 0
    _STATS.optimum_hits = _STATS.optimum_misses = 0
    _STATS.disk_hits = _STATS.disk_misses = 0
