"""Topology families beyond the paper's two Section VI-A networks.

Each generator mirrors the :mod:`repro.net.topology` contract — it returns
an ``(m, m)`` symmetric latency matrix in milliseconds with a zero
diagonal that satisfies the triangle inequality, so every existing solver
and the §II model assumptions carry over unchanged.

* :func:`fat_tree_latency` — hierarchical datacenter: latency depends only
  on the lowest common level (rack / pod / core) of the two hosts, an
  ultrametric like real Clos fabrics.
* :func:`ring_of_clusters_latency` — geo-distributed sites on a ring
  (the classic multi-region WAN backbone); inter-site latency grows with
  ring distance, plus per-node access delays.
* :func:`star_hub_latency` — a hub-and-spoke federation: every exchange
  transits a central IXP/hub, ``c_ij = h_i + h_j``.
* :func:`measured_latency` — load a measured RTT matrix (array, ``.npy``
  or delimited text), symmetrize it and complete missing pairs by
  shortest paths, exactly as the paper prepared the iPlane data.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from ..net.latency import complete_latency_matrix, symmetrize

__all__ = [
    "fat_tree_latency",
    "ring_of_clusters_latency",
    "star_hub_latency",
    "measured_latency",
]


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


def fat_tree_latency(
    m: int,
    *,
    rng: np.random.Generator | int | None = None,
    racks_per_pod: int = 4,
    hosts_per_rack: int | None = None,
    level_ms: tuple[float, float, float] = (0.1, 0.5, 2.0),
    jitter: float = 0.0,
) -> np.ndarray:
    """Hierarchical datacenter latencies (fat-tree/Clos-like).

    Hosts are packed into racks of ``hosts_per_rack`` (default: spread the
    ``m`` hosts over ``~sqrt(m)`` racks), racks into pods of
    ``racks_per_pod``.  A pair's latency is ``level_ms[0]`` within a rack,
    ``level_ms[1]`` within a pod and ``level_ms[2]`` across the core.

    ``level_ms`` must be non-decreasing; the result is then an ultrametric
    (``c_ij ≤ max(c_ik, c_kj)``), hence metric.  ``jitter`` adds a small
    uniform per-pair perturbation of at most ``jitter · level_ms[0] / 2``,
    kept below half the rack latency so the triangle inequality survives.
    """
    rng = _as_rng(rng)
    lo, mid, hi = (float(x) for x in level_ms)
    if not 0 < lo <= mid <= hi:
        raise ValueError("level_ms must be positive and non-decreasing")
    if m < 1:
        return np.zeros((m, m))
    if hosts_per_rack is None:
        hosts_per_rack = max(1, int(round(np.sqrt(m))))
    rack = np.arange(m) // hosts_per_rack
    pod = rack // racks_per_pod
    same_rack = rack[:, None] == rack[None, :]
    same_pod = pod[:, None] == pod[None, :]
    c = np.where(same_rack, lo, np.where(same_pod, mid, hi))
    if jitter > 0:
        eps = rng.uniform(0.0, min(jitter, 0.99) * lo / 2.0, size=(m, m))
        c = c + symmetrize(eps)
    c = np.ascontiguousarray(c)
    np.fill_diagonal(c, 0.0)
    return c


def ring_of_clusters_latency(
    m: int,
    *,
    rng: np.random.Generator | int | None = None,
    clusters: int = 6,
    hop_ms: float = 25.0,
    access_ms: tuple[float, float] = (1.0, 4.0),
) -> np.ndarray:
    """Geo-clusters on a WAN ring (eu-west → us-east → us-west → ap-…).

    Node ``i`` lives in cluster ``g_i`` and pays an access delay
    ``a_i ~ U(access_ms)``.  Latency is
    ``c_ij = a_i + a_j + hop_ms · ringdist(g_i, g_j)`` where ``ringdist``
    is the shorter arc between the clusters.  Ring distance is a metric
    and the access terms are a per-endpoint potential, so the triangle
    inequality holds for every triple.
    """
    rng = _as_rng(rng)
    if m < 1:
        return np.zeros((m, m))
    k = max(1, min(clusters, m))
    group = rng.integers(0, k, size=m)
    access = rng.uniform(access_ms[0], access_ms[1], size=m)
    diff = np.abs(group[:, None] - group[None, :])
    ringdist = np.minimum(diff, k - diff)
    c = access[:, None] + access[None, :] + float(hop_ms) * ringdist
    np.fill_diagonal(c, 0.0)
    return c


def star_hub_latency(
    m: int,
    *,
    rng: np.random.Generator | int | None = None,
    spoke_ms: tuple[float, float] = (5.0, 50.0),
) -> np.ndarray:
    """Hub-and-spoke: all traffic transits a central exchange.

    Spoke delays ``h_i ~ U(spoke_ms)`` give ``c_ij = h_i + h_j`` — a
    metric (it is the shortest-path metric of the star graph).
    """
    rng = _as_rng(rng)
    if m < 1:
        return np.zeros((m, m))
    h = rng.uniform(spoke_ms[0], spoke_ms[1], size=m)
    c = h[:, None] + h[None, :]
    np.fill_diagonal(c, 0.0)
    return c


def measured_latency(
    source: Union[np.ndarray, str, os.PathLike],
    *,
    make_symmetric: bool = True,
    complete: bool = True,
) -> np.ndarray:
    """Load a measured RTT matrix and prepare it the paper's way.

    ``source`` may be an array, a ``.npy`` file or a delimited text/CSV
    file.  Missing measurements (``nan`` or ``inf``) are filled by
    shortest-path completion when ``complete`` is true; asymmetric
    matrices are averaged when ``make_symmetric`` is true.  The diagonal
    is forced to zero.  Raises when the measurement graph is disconnected
    or contains negative entries.
    """
    if isinstance(source, np.ndarray):
        c = np.array(source, dtype=np.float64)
    else:
        path = os.fspath(source)
        if path.endswith(".npy"):
            c = np.load(path).astype(np.float64)
        else:
            c = np.loadtxt(path, delimiter="," if path.endswith(".csv") else None)
            c = np.atleast_2d(np.asarray(c, dtype=np.float64))
    if c.ndim != 2 or c.shape[0] != c.shape[1]:
        raise ValueError(f"latency matrix must be square, got shape {c.shape}")
    if np.any(c[~np.isnan(c)] < 0):
        raise ValueError("measured latencies must be non-negative")
    c = np.where(np.isnan(c), np.inf, c)
    if make_symmetric:
        # Average where both directions were measured; a single-direction
        # measurement covers both (RTTs are symmetric).
        both = np.isfinite(c) & np.isfinite(c.T)
        c = np.where(both, symmetrize(c), np.minimum(c, c.T))
    np.fill_diagonal(c, 0.0)
    missing = np.isinf(c)
    if complete and missing.any():
        c = complete_latency_matrix(c, assume_symmetric=make_symmetric)
    return c
