"""Config-driven batch runner: one call sweeps a whole scenario grid.

:class:`ScenarioRunner` takes scenarios (names or :class:`Scenario`
objects), a list of sizes and a list of seeds, materializes every cell of
the cartesian grid and pushes each instance through the full solver stack:

* ``solve_optimal`` — the cooperative optimum (always computed; it anchors
  every other metric);
* ``MinEOptimizer`` — the distributed algorithm, reporting its final
  relative error against the optimum;
* ``price_of_anarchy`` — selfish equilibrium cost ratio (reuses the
  already-computed optimum instead of re-solving);
* ``simulate_stream`` — the discrete-event steady-state simulation under
  the optimal routing fractions, with the arrival rate auto-scaled so
  every cell simulates a comparable number of events.

Results land in a :class:`ScenarioReport` — a light tabular container with
one :class:`ScenarioResult` row per ``(scenario, m, seed)`` cell, CSV
export and per-scenario aggregation.

Each cell solves the cooperative optimum once and shares that state with
every downstream metric (MinE's stop criterion, the PoA denominator, the
stream simulator's routing fractions) — the expensive array work is done
once per cell, not once per metric.
"""

from __future__ import annotations

import csv
import io
import os
import time
from dataclasses import dataclass, fields
from typing import Callable, Iterable, Sequence, Union

import numpy as np

from ..core.game import price_of_anarchy
from ..core.qp import solve_optimal
from ..core.distributed import MinEOptimizer
from ..core.state import AllocationState
from ..sim.runner import simulate_stream
from .scenario import Scenario, get_scenario

__all__ = ["ScenarioResult", "ScenarioReport", "ScenarioRunner"]

#: Metrics the runner knows how to compute.  ``"optimal"`` is implied —
#: it is the reference point of the other three.
KNOWN_METRICS = ("optimal", "mine", "poa", "stream")


@dataclass(frozen=True)
class ScenarioResult:
    """One row of a sweep: every metric for one ``(scenario, m, seed)``."""

    scenario: str
    m: int
    seed: int
    total_load: float
    initial_cost: float          #: ΣCi with everyone running locally
    optimal_cost: float          #: ΣCi at the cooperative optimum
    mine_final_error: float      #: (ΣCi_MinE − ΣCi*) / ΣCi* at stop
    mine_iterations: int         #: MinE sweeps executed
    mine_converged: bool
    poa_ratio: float             #: ΣCi(NE) / ΣCi(OPT)
    stream_mean_latency: float   #: measured mean request latency (ms)
    stream_completed: int        #: requests finished before the horizon
    elapsed_s: float             #: wall time of this cell

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ScenarioReport:
    """Tabular sweep results: a sequence of :class:`ScenarioResult` rows."""

    columns: tuple[str, ...] = tuple(f.name for f in fields(ScenarioResult))

    def __init__(self, rows: Sequence[ScenarioResult]):
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, idx):
        return self.rows[idx]

    def as_dicts(self) -> list[dict]:
        return [r.as_dict() for r in self.rows]

    def column(self, name: str) -> np.ndarray:
        """One column across all rows as an array."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return np.asarray([getattr(r, name) for r in self.rows])

    def filter(self, **eq) -> "ScenarioReport":
        """Rows whose fields equal all given values, e.g.
        ``report.filter(scenario="cdn-flashcrowd", m=50)``."""
        rows = [
            r for r in self.rows
            if all(getattr(r, k) == v for k, v in eq.items())
        ]
        return ScenarioReport(rows)

    def summary(self) -> list[dict]:
        """Per-(scenario, m) means over seeds — the shape of the paper's
        tables (each cell averaged over repetitions)."""
        groups: dict[tuple[str, int], list[ScenarioResult]] = {}
        for r in self.rows:
            groups.setdefault((r.scenario, r.m), []).append(r)
        out = []
        for (name, m), rs in sorted(groups.items()):
            out.append({
                "scenario": name,
                "m": m,
                "runs": len(rs),
                "optimal_cost": float(np.mean([r.optimal_cost for r in rs])),
                "mine_final_error": float(np.mean([r.mine_final_error for r in rs])),
                "poa_ratio": float(np.mean([r.poa_ratio for r in rs])),
                "stream_mean_latency": float(
                    np.mean([r.stream_mean_latency for r in rs])
                ),
            })
        return out

    def to_csv(self, path: Union[str, os.PathLike, None] = None) -> str:
        """Render as CSV; also write it to ``path`` when given."""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.columns, lineterminator="\n")
        writer.writeheader()
        for r in self.rows:
            writer.writerow(r.as_dict())
        text = buf.getvalue()
        if path is not None:
            with open(os.fspath(path), "w", newline="") as fh:
                fh.write(text)
        return text

    def __repr__(self) -> str:
        names = sorted({r.scenario for r in self.rows})
        return f"ScenarioReport({len(self.rows)} rows, scenarios={names})"


ScenarioLike = Union[str, Scenario]


class ScenarioRunner:
    """Execute a scenario grid through the full solver + simulator stack.

    Parameters
    ----------
    scenarios:
        Scenario names (looked up in the registry) and/or
        :class:`Scenario` objects, in any mix.
    sizes:
        Organization counts to sweep; ``None`` uses each scenario's own
        default ``m``.
    seeds:
        Replication seeds; each contributes one run per (scenario, size).
    metrics:
        Subset of ``("mine", "poa", "stream")`` to compute on top of the
        always-on cooperative optimum.  Dropped metrics report ``nan``/0.
    mine_max_iterations, mine_rel_tol:
        Stop criteria for the distributed MinE run.
    stream_horizon:
        Simulated time units for :func:`repro.simulate_stream`.
    stream_events_target:
        The Poisson arrival rate is scaled so a cell generates roughly
        this many events regardless of its total load, keeping the
        pure-python event loop's cost flat across the sweep.
    solver_tol:
        Tolerance of the cooperative-optimum solve.
    """

    def __init__(
        self,
        scenarios: Iterable[ScenarioLike] | ScenarioLike,
        *,
        sizes: Sequence[int] | None = None,
        seeds: Sequence[int] = (0,),
        metrics: Sequence[str] = ("mine", "poa", "stream"),
        mine_max_iterations: int = 60,
        mine_rel_tol: float = 0.01,
        stream_horizon: float = 4.0,
        stream_events_target: float = 2000.0,
        solver_tol: float = 1e-9,
    ):
        if isinstance(scenarios, (str, Scenario)):
            scenarios = [scenarios]
        self.scenarios: list[Scenario] = [
            s if isinstance(s, Scenario) else get_scenario(s) for s in scenarios
        ]
        if not self.scenarios:
            raise ValueError("at least one scenario is required")
        unknown = set(metrics) - set(KNOWN_METRICS)
        if unknown:
            raise ValueError(f"unknown metrics {sorted(unknown)}; "
                             f"choose from {KNOWN_METRICS}")
        self.sizes = None if sizes is None else tuple(int(m) for m in sizes)
        self.seeds = tuple(int(s) for s in seeds)
        if not self.seeds:
            raise ValueError("at least one seed is required")
        self.metrics = frozenset(metrics) | {"optimal"}
        self.mine_max_iterations = int(mine_max_iterations)
        self.mine_rel_tol = float(mine_rel_tol)
        self.stream_horizon = float(stream_horizon)
        self.stream_events_target = float(stream_events_target)
        self.solver_tol = float(solver_tol)

    # ------------------------------------------------------------------
    def grid(self) -> list[tuple[Scenario, int, int]]:
        """The cartesian (scenario, m, seed) cells, in declared order —
        report rows and CSV output follow this order exactly."""
        cells = []
        for sc in self.scenarios:
            for m in (self.sizes if self.sizes is not None else (sc.m,)):
                for seed in self.seeds:
                    cells.append((sc, int(m), int(seed)))
        return cells

    # ------------------------------------------------------------------
    def _run_cell(self, sc: Scenario, m: int, seed: int) -> ScenarioResult:
        t0 = time.perf_counter()
        inst = sc.instance(m, seed=seed)
        # Independent sub-streams for the stochastic stages, derived from
        # the cell coordinates so each stage is individually reproducible.
        mine_rng, poa_rng, sim_rng = sc.rng(m, seed).spawn(3)

        state = AllocationState.initial(inst)
        initial_cost = state.total_cost()
        opt = solve_optimal(inst, tol=self.solver_tol)
        opt_cost = opt.total_cost()

        mine_err, mine_iters, mine_conv = float("nan"), 0, False
        if "mine" in self.metrics:
            # MinE mutates `state` in place; initial_cost was read above.
            trace = MinEOptimizer(state, rng=mine_rng).run(
                max_iterations=self.mine_max_iterations,
                optimum=opt_cost,
                rel_tol=self.mine_rel_tol,
            )
            denom = opt_cost if opt_cost > 0 else 1.0
            mine_err = max(0.0, (trace.costs[-1] - opt_cost) / denom)
            mine_iters = trace.iterations
            mine_conv = trace.converged

        poa = float("nan")
        if "poa" in self.metrics:
            poa, _, _ = price_of_anarchy(inst, rng=poa_rng, optimum=opt)

        stream_mean, stream_done = float("nan"), 0
        if "stream" in self.metrics:
            expected = inst.total_load * self.stream_horizon
            scale = (
                self.stream_events_target / expected if expected > 0 else 1.0
            )
            report = simulate_stream(
                inst, opt,
                horizon=self.stream_horizon,
                arrival_rate_scale=scale,
                rng=sim_rng,
            )
            stream_mean = float(report.mean_latency)
            stream_done = int(report.completed)

        return ScenarioResult(
            scenario=sc.name,
            m=m,
            seed=seed,
            total_load=inst.total_load,
            initial_cost=initial_cost,
            optimal_cost=opt_cost,
            mine_final_error=mine_err,
            mine_iterations=mine_iters,
            mine_converged=mine_conv,
            poa_ratio=poa,
            stream_mean_latency=stream_mean,
            stream_completed=stream_done,
            elapsed_s=time.perf_counter() - t0,
        )

    def run(
        self, *, progress: Callable[[ScenarioResult], None] | None = None
    ) -> ScenarioReport:
        """Execute every grid cell and return the collected report.

        ``progress`` (if given) is called with each finished row — handy
        for printing long sweeps as they go.
        """
        rows = []
        for sc, m, seed in self.grid():
            row = self._run_cell(sc, m, seed)
            rows.append(row)
            if progress is not None:
                progress(row)
        return ScenarioReport(rows)
