"""Config-driven batch runner: one call sweeps a whole scenario grid.

:class:`ScenarioRunner` takes scenarios (names or :class:`Scenario`
objects), a list of sizes and a list of seeds, materializes every cell of
the cartesian grid and pushes each instance through the registered solver
stack (:mod:`repro.engine`):

* ``optimal`` — the cooperative optimum (always computed; it anchors
  every other metric);
* ``mine-*`` — the distributed algorithm, reporting its final relative
  error against the optimum;
* ``best-response`` — selfish equilibrium cost ratio (reuses the
  already-computed optimum instead of re-solving);
* the ``stream`` evaluator — the discrete-event steady-state simulation
  under the optimal routing fractions, with the arrival rate auto-scaled
  so every cell simulates a comparable number of events.

Results land in a :class:`ScenarioReport` — a light tabular container with
one :class:`ScenarioResult` row per ``(scenario, m, seed)`` cell, CSV
round-tripping (:meth:`ScenarioReport.to_csv` /
:meth:`ScenarioReport.from_csv`) and per-scenario aggregation.

Each cell solves the cooperative optimum once and shares that state with
every downstream metric (MinE's stop criterion, the PoA denominator, the
stream simulator's routing fractions) — the expensive array work is done
once per cell, not once per metric.

Execution is delegated to :class:`repro.engine.SweepEngine`: pass
``backend="process"`` to :meth:`ScenarioRunner.run` to fan cells out over
all cores (cells are embarrassingly parallel and each carries its own
deterministic seeds, so parallel results are bitwise-identical to
serial), and ``store=`` a JSONL path to make a long sweep crash-safe and
resumable.
"""

from __future__ import annotations

import csv
import io
import os
import time
import zlib
from dataclasses import dataclass, fields
from typing import Callable, Iterable, Sequence, Union

import numpy as np

from ..core.state import AllocationState
from ..engine import JsonlStore, SweepEngine, get_evaluator, get_solver
from .cache import cached_instance, cached_optimum
from .scenario import Scenario, get_scenario

__all__ = [
    "ScenarioResult",
    "ScenarioReport",
    "ScenarioRunner",
    "SweepCell",
    "evaluate_cell",
]

#: Metrics the runner knows how to compute.  ``"optimal"`` is implied —
#: it is the reference point of the other three.
KNOWN_METRICS = ("optimal", "mine", "poa", "stream")

#: Row fields that carry wall-clock measurements — machine-dependent by
#: nature, hence excluded from determinism comparisons.
TIMING_FIELDS = ("optimal_s", "mine_s", "poa_s", "stream_s", "elapsed_s")


@dataclass(frozen=True)
class ScenarioResult:
    """One row of a sweep: every metric for one ``(scenario, m, seed)``."""

    scenario: str
    m: int
    seed: int
    total_load: float
    initial_cost: float          #: ΣCi with everyone running locally
    optimal_cost: float          #: ΣCi at the cooperative optimum
    mine_final_error: float      #: (ΣCi_MinE − ΣCi*) / ΣCi* at stop
    mine_iterations: int         #: MinE sweeps executed
    mine_converged: bool
    poa_ratio: float             #: ΣCi(NE) / ΣCi(OPT)
    stream_mean_latency: float   #: measured mean request latency (ms)
    stream_completed: int        #: requests finished before the horizon
    optimal_s: float             #: wall time of the optimum solve
    mine_s: float                #: wall time of the MinE run
    poa_s: float                 #: wall time of the best-response run
    stream_s: float              #: wall time of the stream simulation
    elapsed_s: float             #: wall time of this cell

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, record: dict) -> "ScenarioResult":
        """Rebuild a row from string/JSON values (CSV and JSONL loads),
        coercing each field through its declared type."""
        kw = {}
        for f in fields(cls):
            raw = record[f.name]
            if f.type in ("bool", bool):
                value = raw if isinstance(raw, bool) else raw == "True"
            elif f.type in ("int", int):
                value = int(raw)
            elif f.type in ("float", float):
                value = float(raw)
            else:
                value = str(raw)
            kw[f.name] = value
        return cls(**kw)

    def key(self) -> str:
        """Stable identity of the cell this row belongs to."""
        return f"{self.scenario}|m={self.m}|seed={self.seed}"


class ScenarioReport:
    """Tabular sweep results: a sequence of :class:`ScenarioResult` rows."""

    columns: tuple[str, ...] = tuple(f.name for f in fields(ScenarioResult))

    def __init__(self, rows: Sequence[ScenarioResult]):
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, idx):
        return self.rows[idx]

    def as_dicts(self) -> list[dict]:
        return [r.as_dict() for r in self.rows]

    def column(self, name: str) -> np.ndarray:
        """One column across all rows as an array."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return np.asarray([getattr(r, name) for r in self.rows])

    def filter(self, **eq) -> "ScenarioReport":
        """Rows whose fields equal all given values, e.g.
        ``report.filter(scenario="cdn-flashcrowd", m=50)``."""
        rows = [
            r for r in self.rows
            if all(getattr(r, k) == v for k, v in eq.items())
        ]
        return ScenarioReport(rows)

    def summary(self) -> list[dict]:
        """Per-(scenario, m) means over seeds — the shape of the paper's
        tables (each cell averaged over repetitions)."""
        groups: dict[tuple[str, int], list[ScenarioResult]] = {}
        for r in self.rows:
            groups.setdefault((r.scenario, r.m), []).append(r)
        out = []
        for (name, m), rs in sorted(groups.items()):
            out.append({
                "scenario": name,
                "m": m,
                "runs": len(rs),
                "optimal_cost": float(np.mean([r.optimal_cost for r in rs])),
                "mine_final_error": float(np.mean([r.mine_final_error for r in rs])),
                "poa_ratio": float(np.mean([r.poa_ratio for r in rs])),
                "stream_mean_latency": float(
                    np.mean([r.stream_mean_latency for r in rs])
                ),
            })
        return out

    def to_csv(self, path: Union[str, os.PathLike, None] = None) -> str:
        """Render as CSV; also write it to ``path`` when given."""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.columns, lineterminator="\n")
        writer.writeheader()
        for r in self.rows:
            writer.writerow(r.as_dict())
        text = buf.getvalue()
        if path is not None:
            with open(os.fspath(path), "w", newline="") as fh:
                fh.write(text)
        return text

    @classmethod
    def from_csv(cls, source: Union[str, os.PathLike]) -> "ScenarioReport":
        """Inverse of :meth:`to_csv`: load a report from a CSV file path
        or a CSV text blob, so partial sweeps can be resumed and merged.

        ``report == ScenarioReport.from_csv(report.to_csv())`` row for
        row."""
        text = os.fspath(source) if isinstance(source, os.PathLike) else source
        if "\n" not in text:  # no newline → cannot be CSV content, treat as path
            with open(text, "r", newline="") as fh:
                text = fh.read()
        reader = csv.DictReader(io.StringIO(text))
        missing = set(cls.columns) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"CSV is missing columns {sorted(missing)}")
        return cls([ScenarioResult.from_dict(rec) for rec in reader])

    def merged(self, *others: "ScenarioReport") -> "ScenarioReport":
        """Union of several (partial) reports; on duplicate cells the
        rightmost report wins.  Row order follows first appearance."""
        by_key: dict[str, ScenarioResult] = {}
        for rep in (self, *others):
            for r in rep.rows:
                by_key[r.key()] = r
        return ScenarioReport(list(by_key.values()))

    def __eq__(self, other) -> bool:
        """Metric equality: every row identical field-for-field except the
        wall-clock timings (machine noise)."""
        if not isinstance(other, ScenarioReport):
            return NotImplemented
        if len(self) != len(other):
            return False
        skip = set(TIMING_FIELDS)
        for a, b in zip(self.rows, other.rows):
            for name in self.columns:
                if name in skip:
                    continue
                va, vb = getattr(a, name), getattr(b, name)
                if va != vb and not (va != va and vb != vb):  # NaN == NaN here
                    return False
        return True

    def __repr__(self) -> str:
        names = sorted({r.scenario for r in self.rows})
        return f"ScenarioReport({len(self.rows)} rows, scenarios={names})"


ScenarioLike = Union[str, Scenario]


def _instance_digest(sc: Scenario, m: int, seed: int) -> str:
    """Fingerprint of the *materialized* instance arrays for one cell.

    Hashing what the solvers actually consume (speeds, loads, latency
    bytes) catches every way a same-named scenario can be redefined —
    swapped load models, closure/partial topologies capturing different
    matrices, changed base seeds — where hashing the definition's repr
    could not.  Costs at most one instance materialization per cell per
    store lookup (served from the cross-sweep memo cache when warm)."""
    inst = cached_instance(sc, m, seed)
    h = zlib.crc32(inst.speeds.tobytes())
    h = zlib.crc32(inst.loads.tobytes(), h)
    h = zlib.crc32(inst.latency.tobytes(), h)
    return format(h & 0xFFFFFFFF, "08x")


@dataclass(frozen=True)
class SweepCell:
    """One picklable unit of work: a scenario cell plus the evaluation
    config.  Everything stochastic derives from ``(scenario, m, seed)``,
    so where the cell runs cannot change what it computes."""

    scenario: Scenario
    m: int
    seed: int
    metrics: tuple[str, ...]
    mine_strategy: str = "auto"
    mine_max_iterations: int = 60
    mine_rel_tol: float = 0.01
    stream_horizon: float = 4.0
    stream_events_target: float = 2000.0
    solver_tol: float = 1e-9

    def key(self) -> str:
        """Store identity: the cell coordinates plus digests of the
        evaluation config and the materialized instance, so a store
        shared between sweeps with different metrics/tolerances — or
        with a since-redefined same-named scenario — never serves stale
        rows."""
        cfg = (
            self.metrics,
            self.mine_strategy,
            self.mine_max_iterations,
            self.mine_rel_tol,
            self.stream_horizon,
            self.stream_events_target,
            self.solver_tol,
        )
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        digest = zlib.crc32(repr(cfg).encode()) & 0xFFFFFFFF
        key = (
            f"{self.scenario.name}|m={self.m}|seed={self.seed}"
            f"|inst={_instance_digest(self.scenario, self.m, self.seed)}"
            f"|cfg={digest:08x}"
        )
        object.__setattr__(self, "_key", key)  # memo on the frozen cell
        return key


def evaluate_cell(cell: SweepCell) -> ScenarioResult:
    """Evaluate one grid cell through the registered solver stack.

    Module-level (hence picklable) so the process backends can ship it to
    workers.  The cooperative optimum is solved once and shared by the
    MinE stop criterion, the PoA denominator and the stream simulator's
    routing fractions.
    """
    t0 = time.perf_counter()
    sc, m, seed = cell.scenario, cell.m, cell.seed
    inst = cached_instance(sc, m, seed)
    # Independent sub-streams for the stochastic stages, derived from
    # the cell coordinates so each stage is individually reproducible.
    mine_rng, poa_rng, sim_rng = sc.rng(m, seed).spawn(3)

    initial_cost = AllocationState.initial(inst).total_cost()
    # The O(m²–m³) optimum solve is memoized across cells and sweeps
    # (multi-solver cells and re-sweeps share one solve per cell key).
    opt_state, opt_cost, opt_wall, _hit = cached_optimum(
        sc, m, seed, tol=cell.solver_tol
    )

    mine_err, mine_iters, mine_conv, mine_s = float("nan"), 0, False, 0.0
    if "mine" in cell.metrics:
        mine = get_solver(f"mine-{cell.mine_strategy}").solve(
            inst,
            rng=mine_rng,
            optimum=opt_cost,
            max_iterations=cell.mine_max_iterations,
            rel_tol=cell.mine_rel_tol,
        )
        mine_err = mine.relative_error(opt_cost)
        mine_iters = mine.iterations
        mine_conv = mine.converged
        mine_s = mine.wall_time_s

    poa, poa_s = float("nan"), 0.0
    if "poa" in cell.metrics:
        ne = get_solver("best-response").solve(inst, rng=poa_rng, optimum=opt_cost)
        poa = ne.metadata.get("poa_ratio", float("nan"))
        poa_s = ne.wall_time_s

    stream_mean, stream_done, stream_s = float("nan"), 0, 0.0
    if "stream" in cell.metrics:
        t_stream = time.perf_counter()
        measured = get_evaluator("stream")(
            inst,
            opt_state,
            rng=sim_rng,
            horizon=cell.stream_horizon,
            events_target=cell.stream_events_target,
        )
        stream_s = time.perf_counter() - t_stream
        stream_mean = measured["mean_latency"]
        stream_done = measured["completed"]

    return ScenarioResult(
        scenario=sc.name,
        m=m,
        seed=seed,
        total_load=inst.total_load,
        initial_cost=initial_cost,
        optimal_cost=opt_cost,
        mine_final_error=mine_err,
        mine_iterations=mine_iters,
        mine_converged=mine_conv,
        poa_ratio=poa,
        stream_mean_latency=stream_mean,
        stream_completed=stream_done,
        optimal_s=opt_wall,
        mine_s=mine_s,
        poa_s=poa_s,
        stream_s=stream_s,
        elapsed_s=time.perf_counter() - t0,
    )


class ScenarioRunner:
    """Execute a scenario grid through the full solver + simulator stack.

    Parameters
    ----------
    scenarios:
        Scenario names (looked up in the registry) and/or
        :class:`Scenario` objects, in any mix.
    sizes:
        Organization counts to sweep; ``None`` uses each scenario's own
        default ``m``.
    seeds:
        Replication seeds; each contributes one run per (scenario, size).
    metrics:
        Subset of ``("mine", "poa", "stream")`` to compute on top of the
        always-on cooperative optimum.  Dropped metrics report ``nan``/0.
    mine_strategy, mine_max_iterations, mine_rel_tol:
        Partner-selection strategy and stop criteria for the distributed
        MinE run (solver ``mine-<strategy>`` in the registry).
    stream_horizon:
        Simulated time units for :func:`repro.simulate_stream`.
    stream_events_target:
        The Poisson arrival rate is scaled so a cell generates roughly
        this many events regardless of its total load, keeping the
        pure-python event loop's cost flat across the sweep.
    solver_tol:
        Tolerance of the cooperative-optimum solve.
    """

    def __init__(
        self,
        scenarios: Iterable[ScenarioLike] | ScenarioLike,
        *,
        sizes: Sequence[int] | None = None,
        seeds: Sequence[int] = (0,),
        metrics: Sequence[str] = ("mine", "poa", "stream"),
        mine_strategy: str = "auto",
        mine_max_iterations: int = 60,
        mine_rel_tol: float = 0.01,
        stream_horizon: float = 4.0,
        stream_events_target: float = 2000.0,
        solver_tol: float = 1e-9,
    ):
        if isinstance(scenarios, (str, Scenario)):
            scenarios = [scenarios]
        self.scenarios: list[Scenario] = [
            s if isinstance(s, Scenario) else get_scenario(s) for s in scenarios
        ]
        if not self.scenarios:
            raise ValueError("at least one scenario is required")
        unknown = set(metrics) - set(KNOWN_METRICS)
        if unknown:
            raise ValueError(f"unknown metrics {sorted(unknown)}; "
                             f"choose from {KNOWN_METRICS}")
        self.sizes = None if sizes is None else tuple(int(m) for m in sizes)
        self.seeds = tuple(int(s) for s in seeds)
        if not self.seeds:
            raise ValueError("at least one seed is required")
        self.metrics = frozenset(metrics) | {"optimal"}
        self.mine_strategy = str(mine_strategy)
        self.mine_max_iterations = int(mine_max_iterations)
        self.mine_rel_tol = float(mine_rel_tol)
        self.stream_horizon = float(stream_horizon)
        self.stream_events_target = float(stream_events_target)
        self.solver_tol = float(solver_tol)

    # ------------------------------------------------------------------
    def grid(self) -> list[tuple[Scenario, int, int]]:
        """The cartesian (scenario, m, seed) cells, in declared order —
        report rows and CSV output follow this order exactly."""
        cells = []
        for sc in self.scenarios:
            for m in (self.sizes if self.sizes is not None else (sc.m,)):
                for seed in self.seeds:
                    cells.append((sc, int(m), int(seed)))
        return cells

    def cells(self) -> list[SweepCell]:
        """The grid as self-contained, picklable :class:`SweepCell` work
        units (what the engine actually executes)."""
        ordered = tuple(sorted(self.metrics))
        return [
            SweepCell(
                scenario=sc,
                m=m,
                seed=seed,
                metrics=ordered,
                mine_strategy=self.mine_strategy,
                mine_max_iterations=self.mine_max_iterations,
                mine_rel_tol=self.mine_rel_tol,
                stream_horizon=self.stream_horizon,
                stream_events_target=self.stream_events_target,
                solver_tol=self.solver_tol,
            )
            for sc, m, seed in self.grid()
        ]

    def engine(
        self,
        *,
        backend: str = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        store: "JsonlStore | str | None" = None,
    ) -> SweepEngine:
        """The configured :class:`~repro.engine.SweepEngine` for this grid
        (exposed for callers that want :meth:`SweepEngine.pending` etc.)."""
        return SweepEngine(
            evaluate_cell,
            self.cells(),
            backend=backend,
            max_workers=max_workers,
            chunk_size=chunk_size,
            store=store,
            key=lambda cell: cell.key(),
            encode=lambda row: row.as_dict(),
            decode=ScenarioResult.from_dict,
        )

    def run(
        self,
        *,
        backend: str = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        store: "JsonlStore | str | None" = None,
        progress: Callable[[ScenarioResult], None] | None = None,
    ) -> ScenarioReport:
        """Execute every grid cell and return the collected report.

        ``backend`` selects the execution backend (``"serial"``,
        ``"threads"``, ``"process"``, ``"chunked"`` — see
        :mod:`repro.engine.backends`);
        parallel runs are bitwise-identical to serial ones.  ``store``
        (a JSONL path or :class:`~repro.engine.JsonlStore`) persists each
        row as it completes and skips already-stored cells on re-runs.
        ``progress`` (if given) is called with each finished row in grid
        order — handy for printing long sweeps as they go.
        """
        engine = self.engine(
            backend=backend,
            max_workers=max_workers,
            chunk_size=chunk_size,
            store=store,
        )
        return ScenarioReport(engine.run(progress=progress))
