"""A small generator-based discrete-event simulation engine.

The paper's model makes an analytic claim — with ``l_j`` requests on
server ``j`` and no control over processing order, the expected handling
time of a request is ``l_j / (2 s_j)`` — that the request-processing layer
in :mod:`repro.sim.runner` validates empirically.  This module is the
engine underneath: a classic event-heap simulator with simpy-style
generator processes (``yield env.timeout(dt)``), written from scratch
because no DES library is available offline.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator

__all__ = ["Environment", "Timeout", "Process", "Event"]


class Event:
    """A one-shot event that processes can wait on."""

    __slots__ = ("env", "_callbacks", "triggered", "value")

    def __init__(self, env: "Environment"):
        self.env = env
        self._callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self._callbacks:
            self.env._schedule_callback(cb, self)
        self._callbacks.clear()
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.env._schedule_callback(cb, self)
        else:
            self._callbacks.append(cb)


class Timeout(Event):
    """An event that fires ``delay`` time units in the future."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay")
        super().__init__(env)
        env._schedule_at(env.now + delay, self, value)


class Process(Event):
    """A generator driven by the events it yields; itself an event that
    triggers (with the generator's return value) when the generator ends."""

    __slots__ = ("_gen",)

    def __init__(self, env: "Environment", gen: Generator[Event, Any, Any]):
        super().__init__(env)
        self._gen = gen
        # Bootstrap on a zero-delay event so creation order is preserved.
        boot = Timeout(env, 0.0)
        boot.add_callback(self._resume)

    def _resume(self, ev: Event) -> None:
        try:
            target = self._gen.send(ev.value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"processes must yield Event instances, got {type(target)!r}"
            )
        target.add_callback(self._resume)


class Environment:
    """The event loop: a time-ordered heap of pending events."""

    def __init__(self):
        self.now = 0.0
        #: Number of events executed so far — the throughput denominator
        #: reported by long-running simulations (events per second).
        self.processed = 0
        self._heap: list[tuple[float, int, Event, Any]] = []
        self._counter = itertools.count()
        self._pending_callbacks: list[tuple[Callable[[Event], None], Event]] = []

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def _schedule_at(self, time: float, event: Event, value: Any = None) -> None:
        heapq.heappush(self._heap, (time, next(self._counter), event, value))

    def _schedule_callback(
        self, cb: Callable[[Event], None], event: Event
    ) -> None:
        self._pending_callbacks.append((cb, event))

    # ------------------------------------------------------------------
    # User API
    # ------------------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        return Process(self, gen)

    def run(self, until: float | None = None) -> None:
        """Execute events in time order until the heap is empty or the
        clock passes ``until``."""
        while True:
            self._drain_callbacks()
            if not self._heap:
                break
            time, _, event, value = self._heap[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(self._heap)
            if event.triggered:
                continue
            self.now = time
            self.processed += 1
            event.succeed(value)
        self._drain_callbacks()

    def _drain_callbacks(self) -> None:
        while self._pending_callbacks:
            cb, ev = self._pending_callbacks.pop(0)
            cb(ev)
