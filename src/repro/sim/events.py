"""A small discrete-event simulation engine with two schedulers.

The paper's model makes an analytic claim — with ``l_j`` requests on
server ``j`` and no control over processing order, the expected handling
time of a request is ``l_j / (2 s_j)`` — that the request-processing layer
in :mod:`repro.sim.runner` validates empirically.  This module is the
engine underneath, written from scratch because no DES library is
available offline.  Two layers matter for throughput:

* **Scheduler.**  Pending events live either in a binary heap
  (:class:`HeapQueue`, the classic choice, O(log n) per operation) or in
  a slotted *calendar queue* (:class:`CalendarQueue`, Brown 1988 —
  events hashed into time buckets of width ≈ the mean inter-event gap,
  amortized O(1) per operation).  Both pop in exactly the same total
  order ``(time, tie-break sequence)``, so a simulation produces an
  identical event trace on either scheduler; ``scheduler="auto"``
  (default) starts on the heap and promotes to a calendar queue when the
  pending-event horizon becomes dense enough for bucketing to pay off.

* **Callback fast path.**  Generator processes (``yield env.timeout``)
  are convenient but cost a ``Timeout`` + ``Event`` + generator resume
  per step.  Fixed-shape processes (message deliveries, periodic ticks,
  service completions) can instead use :meth:`Environment.call_at` /
  :meth:`Environment.call_in`: the queue entry *is* the callback, with
  no event object, no deferred-callback hop and no generator machinery.
  The hot paths of :mod:`repro.sim.runner` and :mod:`repro.livesim` run
  entirely on this path.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from math import isfinite
from time import perf_counter
from typing import Any, Callable, Generator

__all__ = [
    "Environment",
    "Timeout",
    "Process",
    "Event",
    "HeapQueue",
    "CalendarQueue",
    "CALENDAR_THRESHOLD",
]

#: ``scheduler="auto"`` promotes the heap to a calendar queue once this
#: many events are pending at once.  The value is the measured crossover
#: (see ``benchmarks/BENCH_events.json``): below it C-implemented
#: ``heapq`` wins on constant factors, above it the heap's O(log n)
#: comparisons overtake the calendar queue's flat bucket walk (~1.1x at
#: twice the threshold).  Typical simulations never reach it — which is
#: the point: auto never pessimizes them — while extreme fan-out
#: workloads cross it and stay bucketed for the rest of the run.
CALENDAR_THRESHOLD = 1 << 18

# Queue entries are ``(time, seq, is_callback, obj, value)``.  ``seq`` is
# unique, so tuple comparison never reaches ``obj`` and the pop order is
# the total order (time, seq) on every scheduler.


class HeapQueue:
    """Binary-heap scheduler: the fallback, optimal at small pending counts."""

    __slots__ = ("_heap",)

    def __init__(self, entries=()):
        self._heap = list(entries)
        heapq.heapify(self._heap)

    def push(self, entry) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self):
        return heapq.heappop(self._heap)

    def peek(self):
        return self._heap[0] if self._heap else None

    def pop_due(self, until: float | None):
        """Pop and return the minimum entry if one exists and its time is
        ``<= until`` (``None`` disables the bound); else return ``None``."""
        heap = self._heap
        if not heap or (until is not None and heap[0][0] > until):
            return None
        return heapq.heappop(heap)

    def __len__(self) -> int:
        return len(self._heap)

    def entries(self) -> list:
        return list(self._heap)


class CalendarQueue:
    """Slotted calendar queue (Brown 1988) with heap-identical pop order.

    Events are hashed by ``floor(time / width) % nbuckets`` into small
    sorted bucket lists; a pop scans from the current bucket within the
    current *lap* (one bucket-width window of time), so with width ≈ a
    few mean inter-event gaps each operation touches O(1) buckets.  The
    structure resizes itself (rebuilding with a fresh width estimated
    from the queued events' time span) when the population outgrows or
    undershoots the bucket count.

    Determinism: each bucket is a sorted list on the full ``(time, seq,
    ...)`` entry and equal times always hash to the same bucket, so the
    global pop order is exactly the ``(time, seq)`` total order —
    bitwise identical to :class:`HeapQueue`.
    """

    __slots__ = (
        "_buckets", "_nbuckets", "_mask", "_width", "_inv_width",
        "_size", "_cur", "_top", "_grow_at", "_shrink_at", "_overflow",
    )

    _MIN_BUCKETS = 32
    _MAX_BUCKETS = 1 << 20
    #: Bucket width in mean inter-event gaps.  Wider buckets (a few
    #: entries each) mean fewer empty-bucket steps per pop, while
    #: C-implemented ``insort`` keeps insertion cheap at that occupancy —
    #: the measured sweet spot (see ``benchmarks/BENCH_events.json``).
    _WIDTH_FACTOR = 4.0

    def __init__(self, entries=()):
        self._build(list(entries))

    # ------------------------------------------------------------------
    def _build(self, items: list) -> None:
        # Events at non-finite times (inf = "never", which the heap
        # tolerates naturally) cannot be bucketed; they wait in a sorted
        # side list consulted only when every bucket is empty.
        self._overflow = [e for e in items if not isfinite(e[0])]
        self._overflow.sort()
        items = [e for e in items if isfinite(e[0])]
        n = len(items)
        nbuckets = 1 << max(n // 4, 1).bit_length()  # ~4–8 entries/bucket
        nbuckets = min(max(nbuckets, self._MIN_BUCKETS), self._MAX_BUCKETS)
        if items:
            times = [e[0] for e in items]
            tmin = min(times)
            tmax = max(times)
            # Event-horizon density sets the bucket width: the pending
            # events' time span over their count is the mean gap.
            width = (tmax - tmin) / n * self._WIDTH_FACTOR if tmax > tmin else 1.0
            width = max(width, 1e-12)
        else:
            tmin, width = 0.0, 1.0
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: list[list] = [[] for _ in range(nbuckets)]
        self._size = n + len(self._overflow)
        self._grow_at = 8 * nbuckets
        self._shrink_at = nbuckets >> 2
        lap = int(tmin * self._inv_width)
        self._cur = lap & self._mask
        self._top = (lap + 1) * width
        items.sort()
        for e in items:  # already sorted: plain append keeps buckets sorted
            self._buckets[int(e[0] * self._inv_width) & self._mask].append(e)

    def _rebuild(self) -> None:
        self._build(self.entries())

    # ------------------------------------------------------------------
    def push(self, entry) -> None:
        t = entry[0]
        if not isfinite(t):
            insort(self._overflow, entry)
            self._size += 1
            return
        lap = int(t * self._inv_width)
        insort(self._buckets[lap & self._mask], entry)
        self._size += 1
        if t < self._top - self._width:
            # The entry lands before the current scan lap: rewind so the
            # scan cannot walk past it.
            self._cur = lap & self._mask
            self._top = (lap + 1) * self._width
        # Growth tracks *bucketed* entries only — a backlog of never-due
        # inf-time events must not force rebuilds on every push.
        if (
            self._size - len(self._overflow) > self._grow_at
            and self._nbuckets < self._MAX_BUCKETS
        ):
            self._rebuild()

    def _locate(self) -> list | None:
        """Advance the scan to the bucket holding the global minimum and
        return it (``None`` when empty)."""
        if not self._size:
            return None
        buckets = self._buckets
        mask = self._mask
        width = self._width
        cur = self._cur
        top = self._top
        b = buckets[cur]
        if b and b[0][0] < top:  # fast path: the scan bucket is still due
            return b
        for _ in range(self._nbuckets):
            cur = (cur + 1) & mask
            top += width
            b = buckets[cur]
            if b and b[0][0] < top:
                self._cur = cur
                self._top = top
                return b
        # Nothing due within one full lap (sparse far-future events):
        # jump the scan straight to the global minimum.
        best = -1
        for idx, b in enumerate(buckets):
            if b and (best < 0 or b[0] < buckets[best][0]):
                best = idx
        if best < 0:
            return self._overflow  # only non-finite times remain
        t = buckets[best][0][0]
        self._cur = best
        self._top = (int(t * self._inv_width) + 1) * width
        return buckets[best]

    def pop(self):
        b = self._locate()
        if b is None:
            raise IndexError("pop from an empty CalendarQueue")
        entry = b.pop(0)
        self._size -= 1
        if self._size < self._shrink_at and self._nbuckets > self._MIN_BUCKETS:
            self._rebuild()
        return entry

    def peek(self):
        b = self._locate()
        return b[0] if b is not None else None

    def pop_due(self, until: float | None):
        """Pop and return the minimum entry if one exists and its time is
        ``<= until`` (``None`` disables the bound); else return ``None``."""
        b = self._locate()
        if b is None or (until is not None and b[0][0] > until):
            return None
        entry = b.pop(0)
        self._size -= 1
        if self._size < self._shrink_at and self._nbuckets > self._MIN_BUCKETS:
            self._rebuild()
        return entry

    def __len__(self) -> int:
        return self._size

    def entries(self) -> list:
        return [e for b in self._buckets for e in b] + list(self._overflow)


class Event:
    """A one-shot event that processes can wait on."""

    __slots__ = ("env", "_callbacks", "triggered", "value")

    def __init__(self, env: "Environment"):
        self.env = env
        self._callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self._callbacks:
            self.env._schedule_callback(cb, self)
        self._callbacks.clear()
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.env._schedule_callback(cb, self)
        else:
            self._callbacks.append(cb)


class Timeout(Event):
    """An event that fires ``delay`` time units in the future."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay")
        super().__init__(env)
        env._schedule_at(env.now + delay, self, value)


class Process(Event):
    """A generator driven by the events it yields; itself an event that
    triggers (with the generator's return value) when the generator ends."""

    __slots__ = ("_gen",)

    def __init__(self, env: "Environment", gen: Generator[Event, Any, Any]):
        super().__init__(env)
        self._gen = gen
        # Bootstrap on a zero-delay event so creation order is preserved.
        boot = Timeout(env, 0.0)
        boot.add_callback(self._resume)

    def _resume(self, ev: Event) -> None:
        try:
            target = self._gen.send(ev.value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"processes must yield Event instances, got {type(target)!r}"
            )
        target.add_callback(self._resume)


class Environment:
    """The event loop: a time-ordered queue of pending events.

    ``scheduler`` selects the pending-event structure: ``"heap"``,
    ``"calendar"``, or ``"auto"`` (start on the heap, promote to a
    calendar queue once :data:`CALENDAR_THRESHOLD` events are pending).
    All three produce identical event traces; only the constant factors
    differ.
    """

    def __init__(self, scheduler: str = "auto"):
        if scheduler not in ("auto", "heap", "calendar"):
            raise ValueError(
                f"scheduler must be 'auto', 'heap' or 'calendar', got {scheduler!r}"
            )
        self.now = 0.0
        #: Number of events executed so far — the throughput denominator
        #: reported by long-running simulations (events per second).
        self.processed = 0
        self.scheduler = scheduler
        self._queue: HeapQueue | CalendarQueue = (
            CalendarQueue() if scheduler == "calendar" else HeapQueue()
        )
        self._auto = scheduler == "auto"
        self._counter = itertools.count()
        self._pending_callbacks: list[tuple[Callable[[Event], None], Event]] = []
        #: Opt-in wall-clock profiler (``repro.obs.CallbackProfiler``).
        #: ``None`` keeps :meth:`run` on the untimed fast path.
        self._profiler = None

    def set_profiler(self, profiler) -> None:
        """Arm (or with ``None`` disarm) per-callback wall-clock timing.

        Profiling only observes wall time — it never touches the clock,
        the queue, or event order, so a profiled run replays the exact
        event trace of an unprofiled one (at lower events/s).
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    @property
    def scheduler_in_use(self) -> str:
        """The scheduler currently backing the queue."""
        return "calendar" if isinstance(self._queue, CalendarQueue) else "heap"

    @property
    def queue_size(self) -> int:
        """Number of scheduled (not yet executed) events."""
        return len(self._queue)

    def _promote(self) -> None:
        """Migrate the heap's entries into a calendar queue (auto mode)."""
        self._queue = CalendarQueue(self._queue.entries())
        self._auto = False

    def _schedule_at(self, time: float, event: Event, value: Any = None) -> None:
        self._queue.push((time, next(self._counter), False, event, value))
        if self._auto and len(self._queue) > CALENDAR_THRESHOLD:
            self._promote()

    def _schedule_callback(
        self, cb: Callable[[Event], None], event: Event
    ) -> None:
        self._pending_callbacks.append((cb, event))

    # ------------------------------------------------------------------
    # User API
    # ------------------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        return Process(self, gen)

    def call_at(self, time: float, fn: Callable[[Any], None], value: Any = None) -> None:
        """Schedule the bare callback ``fn(value)`` at absolute ``time``.

        The fast path for fixed-shape processes: one queue entry, no
        :class:`Event` allocation, no deferred-callback hop.  The call
        counts as one processed event and is ordered against every other
        event by the shared ``(time, sequence)`` order.
        """
        if time < self.now:
            raise ValueError(f"call_at into the past ({time} < now {self.now})")
        self._queue.push((time, next(self._counter), True, fn, value))
        if self._auto and len(self._queue) > CALENDAR_THRESHOLD:
            self._promote()

    def call_in(self, delay: float, fn: Callable[[Any], None], value: Any = None) -> None:
        """Schedule ``fn(value)`` after ``delay`` time units (``call_at``
        relative to the current clock)."""
        if delay < 0:
            raise ValueError("negative delay")
        self._queue.push((self.now + delay, next(self._counter), True, fn, value))
        if self._auto and len(self._queue) > CALENDAR_THRESHOLD:
            self._promote()

    def run(self, until: float | None = None) -> None:
        """Execute events in time order until the queue is empty or the
        clock passes ``until``."""
        pend = self._pending_callbacks
        processed = self.processed
        prof = self._profiler  # hoisted: one local truth test per event
        try:
            while True:
                if pend:
                    self.processed = processed
                    self._drain_callbacks()
                    processed = self.processed
                queue = self._queue  # may have been promoted mid-run
                pop_due = queue.pop_due
                # Inner loop: no deferred callbacks pending and a stable
                # queue — the overwhelmingly common state on the callback
                # fast path.
                while True:
                    head = pop_due(until)
                    if head is None:
                        if until is not None and len(queue):
                            self.now = until  # horizon hit, events remain
                        self.processed = processed
                        return
                    if head[2]:  # bare callback: fn(value)
                        self.now = head[0]
                        processed += 1
                        if prof is None:
                            head[3](head[4])
                        else:
                            t0 = perf_counter()
                            head[3](head[4])
                            prof.add(head[3], perf_counter() - t0)
                        if pend or queue is not self._queue:
                            break
                    else:
                        event = head[3]
                        if event.triggered:
                            continue
                        self.now = head[0]
                        processed += 1
                        event.succeed(head[4])
                        break  # succeed defers callbacks: drain them
        finally:
            self.processed = processed
            self._drain_callbacks()

    def _drain_callbacks(self) -> None:
        # Index cursor instead of pop(0): callbacks appended while
        # draining (chained events) extend the same pass, and the drain
        # stays O(n) where the pop-from-front version was O(n²).  The
        # executed prefix is dropped even when a callback raises, so a
        # re-entered drain (run()'s finally) never runs a callback twice.
        pend = self._pending_callbacks
        prof = self._profiler
        i = 0
        try:
            while i < len(pend):
                cb, ev = pend[i]
                i += 1
                if prof is None:
                    cb(ev)
                else:
                    t0 = perf_counter()
                    cb(ev)
                    prof.add(cb, perf_counter() - t0)
        finally:
            del pend[:i]
