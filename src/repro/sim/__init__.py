"""Discrete-event simulation substrate validating the analytic model."""

from .events import (
    CALENDAR_THRESHOLD,
    CalendarQueue,
    Environment,
    Event,
    HeapQueue,
    Process,
    Timeout,
)
from .runner import SimulationReport, simulate_snapshot, simulate_stream
from .server import Request, SimServer

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "HeapQueue",
    "CalendarQueue",
    "CALENDAR_THRESHOLD",
    "SimServer",
    "Request",
    "SimulationReport",
    "simulate_snapshot",
    "simulate_stream",
]
