"""Discrete-event simulation substrate validating the analytic model."""

from .events import Environment, Event, Process, Timeout
from .runner import SimulationReport, simulate_snapshot, simulate_stream
from .server import Request, SimServer

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "SimServer",
    "Request",
    "SimulationReport",
    "simulate_snapshot",
    "simulate_stream",
]
