"""End-to-end request-processing simulations.

Two workload modes validate and exercise the analytic model:

* :func:`simulate_snapshot` — the paper's snapshot interpretation: every
  organization's ``n_i`` requests exist at ``t = 0`` and are routed
  according to an allocation; each server processes its pile in a uniformly
  random order (the paper's "no particular order" assumption).  The
  measured average latency converges to ``Ci/n_i`` as loads grow (the
  ``(l+1)/2`` versus ``l/2`` finite-size correction vanishes), which the
  tests assert.
* :func:`simulate_stream` — the steady-state interpretation: Poisson
  request streams routed by the relay fractions, FIFO servers, constant
  service times.  Used by the examples to show the balanced system staying
  stable where the unbalanced one melts down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..core.state import AllocationState
from .events import Environment
from .server import Request, SimServer

__all__ = ["SimulationReport", "simulate_snapshot", "simulate_stream"]


@dataclass
class SimulationReport:
    """Aggregated results of a simulation run."""

    total_latency: float
    mean_latency: float
    per_org_total: np.ndarray
    completed: int
    horizon: float

    def analytic_gap(self, analytic_total: float) -> float:
        """Relative gap between measured and analytic total latency."""
        if analytic_total == 0:
            return 0.0
        return abs(self.total_latency - analytic_total) / analytic_total


def _integer_allocation(
    R: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Randomized rounding of a fractional allocation to integer request
    counts, preserving row sums (each row's fractional remainders are
    assigned by systematic sampling)."""
    base = np.floor(R)
    frac = R - base
    out = base.astype(np.int64)
    for i in range(R.shape[0]):
        total = float(frac[i].sum())
        residual = int(round(total))
        if residual <= 0:
            continue
        # Systematic sampling of `residual` column slots with expected
        # counts proportional to the fractional remainders.
        pi = frac[i] * (residual / total)
        cum = np.cumsum(pi)
        cum[-1] = residual  # absorb float drift
        points = rng.uniform(0.0, 1.0) + np.arange(residual)
        chosen = np.searchsorted(cum, points, side="left")
        chosen = np.clip(chosen, 0, R.shape[1] - 1)
        np.add.at(out[i], chosen, 1)
    return out


def simulate_snapshot(
    inst: Instance,
    state: AllocationState,
    *,
    rng: np.random.Generator | int | None = None,
) -> SimulationReport:
    """Simulate the snapshot model and measure actual total latency.

    Every (integerized) request is submitted at ``t = 0`` from its owner,
    arrives at its server after ``c_ij`` and is served in uniformly random
    order.  Returns measured totals comparable with
    :meth:`AllocationState.total_cost`.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    env = Environment()
    servers = [SimServer(env, j, float(inst.speeds[j])) for j in range(inst.m)]
    counts = _integer_allocation(state.R, rng)

    all_requests: list[Request] = []
    per_server: list[list[Request]] = [[] for _ in range(inst.m)]
    for i in range(inst.m):
        for j in range(inst.m):
            for _ in range(counts[i, j]):
                req = Request(owner=i, server=j, t_submit=0.0)
                all_requests.append(req)
                per_server[j].append(req)

    # Random processing order per server ("we don't assume any particular
    # order"): shuffle each pile and enqueue it before the clock starts.
    # All requests are physically present from t=0; the latency bookkeeping
    # adds c_ij to each request's observed latency afterwards.
    for j in range(inst.m):
        batch = per_server[j]
        for k in rng.permutation(len(batch)):
            servers[j].submit(batch[int(k)])
    env.run()

    per_org = np.zeros(inst.m)
    total = 0.0
    for req in all_requests:
        # observed latency = network delay + (queueing + service)
        lat = inst.latency[req.owner, req.server] + req.latency
        per_org[req.owner] += lat
        total += lat
    mean = total / len(all_requests) if all_requests else 0.0
    return SimulationReport(total, mean, per_org, len(all_requests), env.now)


def simulate_stream(
    inst: Instance,
    state: AllocationState,
    *,
    horizon: float,
    arrival_rate_scale: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> SimulationReport:
    """Steady-state simulation: org ``i`` emits a Poisson stream of rate
    ``n_i · arrival_rate_scale`` requests per unit time, routed to server
    ``j`` with probability ``ρ_ij`` and delayed by ``c_ij`` in flight.

    Only requests completed before ``horizon`` are aggregated.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    env = Environment()
    servers = [SimServer(env, j, float(inst.speeds[j])) for j in range(inst.m)]
    rho = state.fractions()
    submitted: list[Request] = []
    rates = inst.loads * arrival_rate_scale

    # Arrivals run on the callback fast path: each organization keeps
    # exactly one pending arrival event, re-armed after it fires.
    def _arrive(i: int) -> None:
        if env.now >= horizon:
            return
        j = int(rng.choice(inst.m, p=rho[i]))
        req = Request(owner=i, server=j, t_submit=env.now)
        submitted.append(req)
        env.call_in(inst.latency[i, j], servers[j].submit, req)
        env.call_in(rng.exponential(1.0 / rates[i]), _arrive, i)

    for i in range(inst.m):
        if rates[i] > 0:
            env.call_in(rng.exponential(1.0 / rates[i]), _arrive, i)
    env.run(until=horizon * 1.5)

    done = [r for r in submitted if not np.isnan(r.t_complete)]
    per_org = np.zeros(inst.m)
    total = 0.0
    for req in done:
        per_org[req.owner] += req.latency
        total += req.latency
    mean = total / len(done) if done else 0.0
    return SimulationReport(total, mean, per_org, len(done), env.now)
