"""Server and request actors for the request-processing simulation."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .events import Environment

__all__ = ["Request", "SimServer"]


@dataclass
class Request:
    """One simulated request travelling through the system."""

    owner: int
    server: int
    size: float = 1.0
    t_submit: float = 0.0
    t_arrive: float = field(default=float("nan"))
    t_complete: float = field(default=float("nan"))
    #: Trace-span id of the submit that caused this request (0 = no
    #: tracing).  Carried so service/drop/resubmit spans can parent onto
    #: the original submission across routing and crashes.
    trace_id: int = 0

    @property
    def latency(self) -> float:
        """Observed handling latency: network delay + queueing + service
        (the quantity the paper's ``Ci`` averages)."""
        return self.t_complete - self.t_submit


class SimServer:
    """A FIFO server processing requests at a fixed speed.

    Service of a request of ``size`` takes ``size / speed`` time units —
    the paper's constant-throughput assumption.  Runs entirely on the
    engine's callback fast path: one ``call_at`` per service completion,
    no generator process and no wake-up event objects.

    ``obs`` (a :class:`repro.obs.Observability`) is optional; when set,
    each completion records a ``request.service`` span parented on the
    request's submit and observes the end-to-end latency histogram.
    """

    def __init__(self, env: Environment, index: int, speed: float, obs=None):
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.env = env
        self.index = index
        self.speed = speed
        self.queue: deque[Request] = deque()
        self.completed: list[Request] = []
        self.busy = False
        self._in_service: Request | None = None
        self._obs = obs
        self._latency_hist = (
            obs.metrics.histogram("request.latency") if obs is not None else None
        )

    # ------------------------------------------------------------------
    def submit(self, req: Request) -> None:
        """Enqueue an arriving request (call at its arrival time)."""
        req.t_arrive = self.env.now
        self.queue.append(req)
        if not self.busy:
            self._start_next()

    @property
    def backlog(self) -> int:
        return len(self.queue)

    def fail(self) -> list[Request]:
        """Crash: drop every queued request — including the one in
        service — and return them so the owners can re-submit.  The
        already-scheduled completion of the in-service request becomes a
        no-op (it no longer matches ``_in_service``)."""
        dropped: list[Request] = []
        if self._in_service is not None:
            dropped.append(self._in_service)
            self._in_service = None
        dropped.extend(self.queue)
        self.queue.clear()
        self.busy = False
        return dropped

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        req = self.queue.popleft()
        self.busy = True
        self._in_service = req
        self.env.call_in(req.size / self.speed, self._complete, req)

    def _complete(self, req: Request) -> None:
        if req is not self._in_service:
            return  # dropped by a crash while its completion was in flight
        self._in_service = None
        req.t_complete = self.env.now
        self.completed.append(req)
        if self._latency_hist is not None:
            self._latency_hist.observe(req.latency)
            tracer = self._obs.tracer
            if tracer is not None:
                tracer.span(
                    "request.service",
                    req.t_arrive,
                    req.t_complete - req.t_arrive,
                    parent=req.trace_id or None,
                    track=self.index,
                    owner=req.owner,
                )
        if self.queue:
            self._start_next()
        else:
            self.busy = False
