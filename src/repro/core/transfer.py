"""Pairwise optimal exchange — Algorithm 1 of the paper.

Given two servers ``i`` and ``j``, Algorithm 1 pools every request currently
executed on either server, sorts the owning organizations by
``d_k = c_kj − c_ki`` (how much cheaper it is to serve ``k`` from ``i``)
and then greedily re-balances each organization's pooled requests between
the two servers using the Lemma 1 transfer amount

    Δr'_ikj = ((s_j l_i − s_i l_j) − s_i s_j (c_kj − c_ki)) / (s_i + s_j).

Two implementations are provided:

* :func:`calc_best_transfer_reference` — a literal transcription of the
  pseudo-code (explicit loop), kept as the ground truth for tests;
* :func:`calc_best_transfer` — an ``O(h log h)`` closed form.  Writing
  ``L = l_i + l_j``, ``A = s_j L / (s_i + s_j)``, ``B = s_i s_j / (s_i +
  s_j)`` and ``T_k`` for the amount already moved to ``j`` before ``k`` is
  processed, the loop body computes ``t_k = clip(A − B d_k − T_k, 0, r_k)``.
  Along the sorted order ``A − B d_k − T_k`` is non-increasing, so the
  transfers form a full-prefix / one-partial / zero-suffix pattern that a
  prefix-sum + binary search finds directly.

Both return the new per-organization columns and the exact improvement of
``ΣCi``, without mutating the state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .instance import Instance

__all__ = [
    "PairExchange",
    "lemma1_transfer",
    "calc_best_transfer",
    "calc_best_transfer_reference",
]


@dataclass(frozen=True)
class PairExchange:
    """Result of re-balancing servers ``i`` and ``j``.

    Attributes
    ----------
    i, j:
        The server pair.
    col_i, col_j:
        New columns ``r_·i`` and ``r_·j`` (length ``m``).
    improvement:
        Exact decrease of ``ΣCi`` achieved by applying the exchange
        (non-negative up to float error — Lemma 2).
    moved:
        Total volume of requests whose executing server changed.
    """

    i: int
    j: int
    col_i: np.ndarray
    col_j: np.ndarray
    improvement: float
    moved: float


def lemma1_transfer(
    s_i: float,
    s_j: float,
    l_i: float,
    l_j: float,
    c_ki: float,
    c_kj: float,
    r_ki: float,
) -> float:
    """Optimal amount of organization ``k``'s requests to move from server
    ``i`` to ``j`` (Lemma 1), clamped to ``[0, r_ki]``."""
    raw = ((s_j * l_i - s_i * l_j) - s_i * s_j * (c_kj - c_ki)) / (s_i + s_j)
    return max(0.0, min(r_ki, raw))


def _safe_dot(c: np.ndarray, x: np.ndarray) -> float:
    """``Σ c_k x_k`` with the convention ``inf · 0 = 0`` (forbidden links
    carrying no load cost nothing)."""
    mask = x != 0
    return float(c[mask] @ x[mask])


def _exchange_improvement(
    inst: Instance,
    i: int,
    j: int,
    old_col_i: np.ndarray,
    old_col_j: np.ndarray,
    new_col_i: np.ndarray,
    new_col_j: np.ndarray,
) -> float:
    """Exact ΣCi decrease when columns i and j are rewritten."""
    s = inst.speeds
    c = inst.latency
    li_old = old_col_i.sum()
    lj_old = old_col_j.sum()
    li_new = new_col_i.sum()
    lj_new = new_col_j.sum()
    cong_old = li_old * li_old / (2 * s[i]) + lj_old * lj_old / (2 * s[j])
    cong_new = li_new * li_new / (2 * s[i]) + lj_new * lj_new / (2 * s[j])
    if inst.has_inf_latency:
        comm_old = _safe_dot(c[:, i], old_col_i) + _safe_dot(c[:, j], old_col_j)
        comm_new = _safe_dot(c[:, i], new_col_i) + _safe_dot(c[:, j], new_col_j)
    else:
        comm_old = float(c[:, i] @ old_col_i + c[:, j] @ old_col_j)
        comm_new = float(c[:, i] @ new_col_i + c[:, j] @ new_col_j)
    return (cong_old + comm_old) - (cong_new + comm_new)


def calc_best_transfer_reference(
    inst: Instance, R: np.ndarray, i: int, j: int
) -> PairExchange:
    """Literal Algorithm 1: pool both columns on ``i``, then loop over
    organizations in ascending ``c_kj − c_ki`` applying Lemma 1."""
    if i == j:
        raise ValueError("pair exchange needs two distinct servers")
    s = inst.speeds
    c = inst.latency
    old_i = R[:, i].copy()
    old_j = R[:, j].copy()
    rki = old_i + old_j  # first loop: everything moves to i
    rkj = np.zeros_like(rki)
    l_i = float(rki.sum())
    l_j = 0.0
    with np.errstate(invalid="ignore"):
        diff = c[:, j] - c[:, i]  # inf − inf (both unreachable) → NaN,
    diff[np.isnan(diff)] = np.inf  # immovable — such orgs hold nothing here
    order = np.argsort(diff, kind="stable")
    for k in order:
        if rki[k] <= 0:
            continue
        t = lemma1_transfer(s[i], s[j], l_i, l_j, c[k, i], c[k, j], rki[k])
        if t > 0:
            rki[k] -= t
            rkj[k] += t
            l_i -= t
            l_j += t
    impr = _exchange_improvement(inst, i, j, old_i, old_j, rki, rkj)
    moved = float(np.abs(rki - old_i).sum())
    return PairExchange(i, j, rki, rkj, impr, moved)


def calc_best_transfer(
    inst: Instance,
    R: np.ndarray,
    i: int,
    j: int,
    *,
    rt_full: np.ndarray | None = None,
) -> PairExchange:
    """Closed-form Algorithm 1 (see module docstring).

    Equivalent to :func:`calc_best_transfer_reference` up to float
    round-off; property-tested against it.  ``rt_full`` may pass a
    maintained contiguous copy of ``R.T`` — at fleet scale the two
    strided column reads dominate the call, and the transposed rows are
    cache-friendly.
    """
    if i == j:
        raise ValueError("pair exchange needs two distinct servers")
    s_i = float(inst.speeds[i])
    s_j = float(inst.speeds[j])
    c = inst.latency
    if rt_full is not None:
        old_i = rt_full[i].copy()
        old_j = rt_full[j].copy()
    else:
        old_i = R[:, i].copy()
        old_j = R[:, j].copy()
    pooled = old_i + old_j
    owners = np.flatnonzero(pooled > 0)
    if owners.size == 0:
        z = np.zeros_like(old_i)
        return PairExchange(i, j, z, z.copy(), 0.0, 0.0)

    d = c[owners, j] - c[owners, i]
    if inst.has_inf_latency:
        # inf − inf (owner can reach neither server) → such owners hold no
        # requests at either server; keep them immovable.
        d = np.where(np.isnan(d), np.inf, d)
    r = pooled[owners]
    order = np.argsort(d, kind="stable")
    d_sorted = d[order]
    r_sorted = r[order]

    L = float(r.sum())
    A = s_j * L / (s_i + s_j)
    B = s_i * s_j / (s_i + s_j)

    # Full transfers happen while R_k + B d_k ≤ A where R_k is the inclusive
    # prefix sum of pooled amounts in sorted order.
    prefix = np.cumsum(r_sorted)
    key = prefix + B * d_sorted
    K = int(np.searchsorted(key, A, side="right"))  # first K entries full

    t = np.zeros_like(r_sorted)
    t[:K] = r_sorted[:K]
    if K < r_sorted.shape[0]:
        before = prefix[K - 1] if K > 0 else 0.0
        partial = A - B * d_sorted[K] - before
        t[K] = min(r_sorted[K], max(0.0, partial))

    new_i_vals = r_sorted - t
    col_i = np.zeros_like(old_i)
    col_j = np.zeros_like(old_j)
    col_i[owners[order]] = new_i_vals
    col_j[owners[order]] = t

    impr = _exchange_improvement(inst, i, j, old_i, old_j, col_i, col_j)
    moved = float(np.abs(col_i - old_i).sum())
    return PairExchange(i, j, col_i, col_j, impr, moved)
