"""Replicated execution — second extension of Section VII.

Each organization must execute ``R`` copies of every task, each copy on a
*different* server.  The paper handles this by adding the cap
``ρ_ij ≤ 1/R`` to the fractional problem, after which ``R·ρ_ij`` is a valid
inclusion probability for placing a copy of any task on server ``j``
(``Σ_j R·ρ_ij = R``).

This module provides:

* :func:`solve_replicated` — the cooperative optimum under the cap,
  computed by bounded-water-fill coordinate descent;
* :func:`sample_replica_placement` — a placement of ``R`` *distinct*
  servers per task whose marginal inclusion probabilities equal
  ``R·ρ_ij`` exactly (systematic sampling — the classic survey-sampling
  scheme; distinctness follows from every probability being ≤ 1).
"""

from __future__ import annotations

import numpy as np

from .instance import Instance
from .state import AllocationState
from .waterfill import waterfill

__all__ = ["solve_replicated", "sample_replica_placement", "replication_feasible"]


def replication_feasible(inst: Instance, replicas: int) -> bool:
    """The cap ``ρ_ij ≤ 1/R`` is feasible iff ``R ≤ m``."""
    return 1 <= replicas <= inst.m


def solve_replicated(
    inst: Instance,
    replicas: int,
    *,
    max_passes: int = 500,
    tol: float = 1e-12,
) -> AllocationState:
    """Cooperative optimum of ``ΣCi`` under the cap ``ρ_ij ≤ 1/R``.

    Identical to :func:`repro.core.qp.solve_coordinate_descent` except each
    row's exact minimizer is a *bounded* water-fill with
    ``u_j = n_i / R``.  Starts from the uniform feasible point
    ``ρ_ij = 1/m``.
    """
    if not replication_feasible(inst, replicas):
        raise ValueError(f"replication factor {replicas} infeasible for m={inst.m}")
    m = inst.m
    n = inst.loads
    s = inst.speeds
    c = inst.latency
    st = AllocationState(inst, np.outer(n, np.full(m, 1.0 / m)), validate=False)
    owners = np.flatnonzero(n > 0)
    prev = st.total_cost()
    for _ in range(max_passes):
        for i in owners:
            i = int(i)
            l_minus = st.loads - st.R[i]
            a = c[i] + l_minus / s
            cap = np.full(m, n[i] / replicas)
            st.set_row(i, waterfill(s, a, float(n[i]), upper=cap))
        cost = st.total_cost()
        if prev - cost <= tol * max(1.0, abs(prev)):
            break
        prev = cost
    st.refresh_loads()
    return st


def sample_replica_placement(
    fractions_row: np.ndarray,
    replicas: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample ``R`` distinct server indices with inclusion probabilities
    ``π_j = R · ρ_ij`` (systematic sampling).

    The probabilities must satisfy ``π_j ≤ 1`` (guaranteed by the
    ``ρ_ij ≤ 1/R`` cap) and ``Σ_j π_j = R``.  Systematic sampling walks a
    random offset plus unit strides through the cumulative probabilities;
    with all ``π_j ≤ 1`` no server can be selected twice, so exactly ``R``
    distinct servers are returned and every server ``j`` is included with
    probability exactly ``π_j``.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    rho = np.asarray(fractions_row, dtype=np.float64)
    pi = replicas * rho
    if np.any(pi > 1.0 + 1e-9):
        raise ValueError("inclusion probabilities exceed 1 (cap violated)")
    total = pi.sum()
    if not np.isclose(total, replicas, atol=1e-6):
        raise ValueError(f"Σ R·ρ_ij = {total}, expected {replicas}")
    pi = pi * (replicas / total)  # absorb float drift
    # Random permutation makes the joint distribution exchangeable; the
    # marginals are exact for any order.
    perm = rng.permutation(pi.shape[0])
    cum = np.cumsum(pi[perm])
    offset = rng.uniform(0.0, 1.0)
    points = offset + np.arange(replicas)
    chosen_pos = np.searchsorted(cum, points, side="left")
    chosen_pos = np.clip(chosen_pos, 0, pi.shape[0] - 1)
    chosen = perm[chosen_pos]
    if np.unique(chosen).shape[0] != replicas:
        # Float-boundary duplicates are vanishingly rare; fall back to a
        # direct conditional-Poisson-style fix-up that keeps distinctness.
        chosen = _dedupe(chosen, pi, perm, cum, points)
    return np.sort(chosen)


def _dedupe(
    chosen: np.ndarray,
    pi: np.ndarray,
    perm: np.ndarray,
    cum: np.ndarray,
    points: np.ndarray,
) -> np.ndarray:
    out: list[int] = []
    used: set[int] = set()
    for idx in chosen:
        j = int(idx)
        while j in used:
            # advance to the next not-yet-used server in permutation order
            where = int(np.flatnonzero(perm == j)[0])
            where = (where + 1) % perm.shape[0]
            j = int(perm[where])
        used.add(j)
        out.append(j)
    return np.asarray(out, dtype=np.int64)
