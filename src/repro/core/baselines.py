"""Baseline allocation policies the paper argues against.

The introduction motivates delay-aware balancing by contrasting it with
what deployed systems did: round-robin request spreading (used by CDN
front-ends, "inefficient as, for instance, unpopular files are cached in
multiple places"), purely proximity-based mirror selection ([13], [28]:
"the impact of servers' congestion is not taken into consideration") and
pure load balancing that ignores the network ([1], [2], [6]: "these
solutions disregard the geographic distribution of the servers").

This module implements those strawmen as honest, well-tuned baselines so
the benchmarks can quantify exactly how much the paper's contribution
buys over each:

* :func:`round_robin` — every organization spreads its requests equally
  over all servers;
* :func:`nearest_server` — latency-greedy: everything goes to the closest
  (by ``c_ij``) server, congestion ignored;
* :func:`proportional_speed` — congestion-only: loads proportional to
  server speeds (perfect ``l_j/s_j`` equalization), latency ignored;
* :func:`makespan_greedy` — the divisible-load-theory flavour: minimize
  the *makespan* ``max_j (l_j/s_j + max-latency-paid)`` greedily rather
  than the average completion time (the ``Cmax`` side of the paper's
  ``Cmax`` versus ``ΣCi`` discussion).
"""

from __future__ import annotations

import numpy as np

from .instance import Instance
from .state import AllocationState

__all__ = [
    "round_robin",
    "nearest_server",
    "proportional_speed",
    "makespan_greedy",
    "makespan",
    "all_baselines",
]


def round_robin(inst: Instance) -> AllocationState:
    """Spread every organization's requests equally over all servers."""
    rho = np.full((inst.m, inst.m), 1.0 / inst.m)
    return AllocationState.from_fractions(inst, rho)


def nearest_server(inst: Instance) -> AllocationState:
    """Send everything to the lowest-latency server (self, since
    ``c_ii = 0`` — ties broken toward self), ignoring congestion."""
    m = inst.m
    rho = np.zeros((m, m))
    for i in range(m):
        j = int(np.argmin(inst.latency[i]))
        rho[i, j] = 1.0
    return AllocationState.from_fractions(inst, rho)


def proportional_speed(inst: Instance) -> AllocationState:
    """Equalize weighted loads ``l_j / s_j`` exactly, ignoring latency.

    Every organization splits its requests proportionally to server
    speeds — the fixed point of classic diffusive load balancing on a
    complete graph.
    """
    share = inst.speeds / inst.speeds.sum()
    rho = np.tile(share, (inst.m, 1))
    return AllocationState.from_fractions(inst, rho)


def makespan(inst: Instance, state: AllocationState) -> float:
    """The ``Cmax`` objective: the last moment any server is busy, taking
    the latest arrival it must wait for into account:
    ``max_j (max_i {c_ij : r_ij > 0} + l_j / s_j)``."""
    worst = 0.0
    for j in range(inst.m):
        col = state.R[:, j]
        if col.sum() <= 0:
            continue
        arrive = float(inst.latency[col > 1e-12, j].max())
        worst = max(worst, arrive + float(state.loads[j] / inst.speeds[j]))
    return worst


def makespan_greedy(inst: Instance, *, granularity: int = 200) -> AllocationState:
    """Greedy list-scheduling heuristic for the makespan objective.

    Each organization's load is cut into ``granularity`` equal slices;
    slices are assigned (largest-owners first) to the server minimizing
    the resulting ``c_ij + l_j/s_j`` finish estimate.  This is the natural
    ``Cmax`` adaptation the paper contrasts with its ``ΣCi`` objective.
    """
    m = inst.m
    R = np.zeros((m, m))
    loads = np.zeros(m)
    order = np.argsort(inst.loads)[::-1]
    for i in order:
        n_i = inst.loads[i]
        if n_i <= 0:
            continue
        slice_size = n_i / granularity
        for _ in range(granularity):
            finish = inst.latency[i] + (loads + slice_size) / inst.speeds
            j = int(np.argmin(finish))
            R[i, j] += slice_size
            loads[j] += slice_size
    return AllocationState(inst, R, validate=False)


def all_baselines(inst: Instance) -> dict[str, AllocationState]:
    """Every baseline, keyed by a printable name."""
    return {
        "round-robin": round_robin(inst),
        "nearest-server": nearest_server(inst),
        "proportional-speed": proportional_speed(inst),
        "makespan-greedy": makespan_greedy(inst),
    }
