"""Distance-to-optimum estimation — Proposition 1 of Section IV-B.

While the distributed algorithm runs, each server knows how much load it
*would* still exchange with each partner (the Algorithm 1 transfer
volumes ``Δr_jk``).  Proposition 1 turns that locally observable quantity
into a global certificate: with

    ΔR = Σ_j max_k (1/s_j + 1/s_k) · Δr_jk

the Manhattan distance between the current solution ``ρ'`` and the closest
optimum ``ρ`` (measured in requests) is at most ``(4m + 1) · ΔR · Σ_i s_i``,
provided the error graph has no negative cycles (which
:func:`repro.flow.transportation.remove_negative_cycles` guarantees).

In practice the bound is loose but cheap to evaluate and — crucially —
shrinks to zero together with the pending transfers, so it tells an
operator when continuing to iterate is no longer worthwhile (Section IV-B).
"""

from __future__ import annotations

import numpy as np

from .distributed import batch_exchange_stats
from .instance import Instance
from .state import AllocationState

__all__ = ["pending_transfer_volumes", "delta_r", "error_bound"]


def pending_transfer_volumes(
    inst: Instance,
    state: AllocationState,
    servers: np.ndarray | None = None,
    *,
    rel_tol: float = 1e-9,
) -> np.ndarray:
    """Matrix ``Δr_jk`` of Algorithm 1 transfer volumes for every requested
    server ``j`` against every partner ``k`` in the current state.

    Row ``j`` holds the volume of requests that would change executing
    server if the pair ``(j, k)`` re-balanced right now.  Exchanges whose
    cost improvement is below ``rel_tol`` times the current ``ΣCi`` are
    ignored: at a degenerate optimum Algorithm 1 may shuffle between
    equal-cost allocations, which are not *pending* transfers.  ``O(m)``
    batched Algorithm 1 evaluations.
    """
    owners = np.flatnonzero(inst.loads > 0)
    js = np.arange(inst.m) if servers is None else np.asarray(servers)
    out = np.zeros((js.shape[0], inst.m))
    atol = rel_tol * max(1.0, state.total_cost())
    for row, j in enumerate(js):
        impr, moved = batch_exchange_stats(inst, state.R, int(j), owners, state.loads)
        moved[impr <= atol] = 0.0
        out[row] = moved
    return out


def delta_r(inst: Instance, state: AllocationState) -> float:
    """The aggregate pending-transfer statistic
    ``ΔR = Σ_j max_k (1/s_j + 1/s_k) Δr_jk``."""
    s = inst.speeds
    volumes = pending_transfer_volumes(inst, state)
    weights = 1.0 / s[:, None] + 1.0 / s[None, :]
    np.fill_diagonal(weights, 0.0)
    return float(np.max(weights * volumes, axis=1).sum())


def error_bound(inst: Instance, state: AllocationState) -> float:
    """Proposition 1 bound on ``‖ρ − ρ'‖₁`` (in requests):
    ``(4m + 1) · ΔR · Σ_i s_i``."""
    return (4.0 * inst.m + 1.0) * delta_r(inst, state) * float(inst.speeds.sum())
