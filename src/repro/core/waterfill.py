"""Exact water-filling solver for simplex-constrained quadratic rows.

Several subproblems in the paper reduce to the same one-dimensional KKT
system.  Minimizing

    f(r) = Σ_j  r_j² / (2 s_j) + a_j r_j
    s.t.  Σ_j r_j = total,   0 ≤ r_j ≤ u_j

has the stationarity condition ``r_j / s_j + a_j = λ`` on the interior,
hence the optimum is the water level

    r_j(λ) = clip(s_j (λ − a_j), 0, u_j)

with ``λ`` chosen so that ``Σ_j r_j(λ) = total``.  Instances of this system:

* the **cooperative row best response** (block coordinate descent on
  ``ΣCi``): ``a_j = c_ij + l^{-i}_j / s_j``;
* the **selfish best response** of Section V: ``a_j = c_ij +
  l^{-i}_j / (2 s_j)``;
* the replication-capped variants of Section VII (``u_j = n_i / R``).

The solver is exact and runs in ``O(m log m)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["waterfill", "waterfill_value"]


def waterfill(
    speeds: np.ndarray,
    offsets: np.ndarray,
    total: float,
    upper: np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``min Σ r_j²/(2 s_j) + a_j r_j`` over the (capped) simplex.

    Parameters
    ----------
    speeds:
        Positive curvature scales ``s_j`` (server speeds).
    offsets:
        Linear marginals ``a_j``.  Entries may be ``+inf`` to forbid a
        destination entirely (e.g. unreachable servers).
    total:
        Required sum of the solution (``n_i`` in the paper).  Must be
        non-negative and, when ``upper`` is given, at most ``Σ u_j``.
    upper:
        Optional per-coordinate caps ``u_j ≥ 0``; ``None`` means unbounded.

    Returns
    -------
    numpy.ndarray
        The unique optimizer ``r`` with ``r.sum() == total`` (up to float
        tolerance).
    """
    s = np.asarray(speeds, dtype=np.float64)
    a = np.asarray(offsets, dtype=np.float64)
    if s.shape != a.shape or s.ndim != 1:
        raise ValueError("speeds and offsets must be 1-D arrays of equal length")
    if np.any(s <= 0):
        raise ValueError("speeds must be strictly positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    if total == 0:
        return np.zeros_like(s)

    if upper is None:
        return _waterfill_unbounded(s, a, total)
    u = np.asarray(upper, dtype=np.float64)
    if u.shape != s.shape:
        raise ValueError("upper must match the shape of speeds")
    if np.any(u < 0):
        raise ValueError("upper bounds must be non-negative")
    cap = u[np.isfinite(u)].sum() + (np.inf if np.any(np.isinf(u)) else 0.0)
    if total > cap * (1 + 1e-12) + 1e-9:
        raise ValueError(f"infeasible: total={total} exceeds Σ upper={cap}")
    return _waterfill_bounded(s, a, total, u)


def _waterfill_unbounded(s: np.ndarray, a: np.ndarray, total: float) -> np.ndarray:
    finite = np.isfinite(a)
    if not np.any(finite):
        raise ValueError("all destinations are forbidden (offsets are inf)")
    idx = np.flatnonzero(finite)
    a_f, s_f = a[idx], s[idx]
    order = np.argsort(a_f, kind="stable")
    a_sorted = a_f[order]
    s_sorted = s_f[order]
    s_cum = np.cumsum(s_sorted)
    sa_cum = np.cumsum(s_sorted * a_sorted)
    # With the K cheapest coordinates active the level is
    #   λ_K = (total + Σ_{j≤K} s_j a_j) / Σ_{j≤K} s_j
    # and the correct K is the largest one with a_sorted[K-1] ≤ λ_K,
    # equivalently the smallest K whose λ_K is below the next breakpoint.
    lam = (total + sa_cum) / s_cum
    k = a_sorted.shape[0]
    # Valid K: λ_K ≥ a_sorted[K-1] (active set consistent) and, when K < m,
    # λ_K ≤ a_sorted[K] (inactive set consistent).  λ_K ≥ a_sorted[K-1]
    # always holds for the minimal valid K; scan for the first consistent K.
    nxt = np.empty(k)
    nxt[:-1] = a_sorted[1:]
    nxt[-1] = np.inf
    valid = lam <= nxt
    K = int(np.argmax(valid)) + 1  # first True
    level = lam[K - 1]
    r_sorted = np.maximum(0.0, s_sorted * (level - a_sorted))
    r_f = np.empty_like(r_sorted)
    r_f[order] = r_sorted
    r = np.zeros_like(a)
    r[idx] = r_f
    # Renormalize away accumulated float error so Σ r == total exactly.
    ssum = r.sum()
    if ssum > 0:
        r *= total / ssum
    return r


def _waterfill_bounded(
    s: np.ndarray, a: np.ndarray, total: float, u: np.ndarray
) -> np.ndarray:
    # r_j(λ) = clip(s_j(λ − a_j), 0, u_j) is piecewise linear and
    # non-decreasing in λ with breakpoints at activation (λ = a_j) and
    # saturation (λ = a_j + u_j/s_j).  Find λ* by bisection over the sorted
    # breakpoints, then solve the linear piece exactly.
    finite = np.isfinite(a) & (u > 0)
    if not np.any(finite):
        raise ValueError("no destination can receive load")
    idx = np.flatnonzero(finite)
    a_f, s_f, u_f = a[idx], s[idx], u[idx]
    lo_bp = a_f
    hi_bp = a_f + u_f / s_f
    bps = np.unique(np.concatenate([lo_bp, hi_bp[np.isfinite(hi_bp)]]))

    def mass(lam: float) -> float:
        return float(np.minimum(u_f, np.maximum(0.0, s_f * (lam - a_f))).sum())

    lo, hi = 0, bps.shape[0] - 1
    if mass(bps[hi]) < total:
        # λ* lies beyond the last breakpoint only when some u_j = inf;
        # otherwise feasibility guaranteed total ≤ Σ u.
        inf_mask = np.isinf(hi_bp)
        base = mass(bps[hi])
        slope = s_f[inf_mask & (bps[hi] >= a_f)].sum()
        if slope <= 0:
            # Numerical edge: total ≈ Σ u.  Saturate everything.
            r_f = u_f.copy()
        else:
            lam = bps[hi] + (total - base) / slope
            r_f = np.minimum(u_f, np.maximum(0.0, s_f * (lam - a_f)))
    else:
        # Binary search for the first breakpoint with mass ≥ total.
        while lo < hi:
            mid = (lo + hi) // 2
            if mass(bps[mid]) >= total:
                hi = mid
            else:
                lo = mid + 1
        if lo == 0:
            lam_lo = bps[0] - 1.0  # mass is 0 below the first breakpoint
        else:
            lam_lo = bps[lo - 1]
        lam_hi = bps[lo]
        # On (lam_lo, lam_hi] the active (unsaturated) set is fixed.
        active = (lam_hi > lo_bp) & (lam_lo < hi_bp)
        slope = s_f[active].sum()
        base = mass(lam_lo)
        if slope <= 0:
            lam = lam_hi
        else:
            lam = lam_lo + (total - base) / slope
            lam = min(lam, lam_hi)
        r_f = np.minimum(u_f, np.maximum(0.0, s_f * (lam - a_f)))

    r = np.zeros_like(a)
    r[idx] = r_f
    ssum = r.sum()
    if ssum > 0 and abs(ssum - total) > 0:
        # Distribute residual float error over unsaturated coordinates.
        resid = total - ssum
        if resid > 0:
            room = np.where(finite, u - r, 0.0)
            room = np.where(np.isfinite(room), room, np.abs(resid))
        else:
            room = r.copy()
        pool = room.sum()
        if pool > 0:
            r += room * (resid / pool)
    return r


def waterfill_value(
    speeds: np.ndarray, offsets: np.ndarray, r: np.ndarray
) -> float:
    """Objective value ``Σ r_j²/(2 s_j) + a_j r_j`` of a candidate row."""
    s = np.asarray(speeds, dtype=np.float64)
    a = np.asarray(offsets, dtype=np.float64)
    rr = np.asarray(r, dtype=np.float64)
    mask = rr > 0
    return float((rr[mask] ** 2 / (2 * s[mask]) + a[mask] * rr[mask]).sum())
