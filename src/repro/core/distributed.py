"""The distributed Min-Error (MinE) algorithm — Algorithm 2 of the paper.

Each server ``id`` repeatedly (i) evaluates the exact improvement of
``ΣCi`` achievable by a pairwise exchange (Algorithm 1) with every candidate
partner ``j``, (ii) picks ``partner = argmax_j impr(id, j)`` and (iii)
executes the exchange.  One *iteration* (a :meth:`MinEOptimizer.sweep`)
lets every server act once, in random order, matching Section VI-B.

Partner evaluation is the hot loop.  Three strategies are provided:

``exact``
    The faithful ``argmax_j impr(id, j)``, evaluated for *all* partners at
    once with a fully vectorized batch version of the Algorithm 1 closed
    form (rows restricted to organizations that own load).  ``O(h·m log m)``
    per server where ``h`` is the number of load-owning organizations.

``screened``
    A cheap ``O(m)`` load-imbalance score pre-selects ``screen_width``
    candidates; the exact improvement is evaluated only on those.  This is
    a deviation from the paper ablated in ``benchmarks/``; with the default
    width it selects the same partners as ``exact`` in virtually every step.

``auto`` (default)
    ``exact`` when the owner count times ``m`` is small enough, otherwise
    ``screened``.

The optimizer can also run against *stale* load views produced by the
gossip layer (:mod:`repro.gossip`) and can periodically remove negative
cycles with the min-cost-flow reduction of the appendix
(:mod:`repro.flow`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

import numpy as np

from .instance import Instance
from .state import AllocationState
from .transfer import PairExchange, calc_best_transfer

__all__ = [
    "MinEOptimizer",
    "SweepStats",
    "ConvergenceTrace",
    "KernelStats",
    "CandidateTransfers",
    "batch_exchange_stats",
    "batch_best_transfers",
    "best_partner_exact",
    "best_partner_screened",
    "screen_candidates",
    "propose_partner",
    "apply_pair_exchange",
    "static_caches_enabled",
    "EXACT_BUDGET",
]

#: ``strategy="auto"`` evaluates partners exactly while ``h · m`` (owner
#: count times fleet size) stays below this, and switches to the O(m)
#: screening pass beyond it — shared by :class:`MinEOptimizer` and
#: :func:`propose_partner` so the lock-step and event-driven planes make
#: the same choice.
EXACT_BUDGET = 400_000


@dataclass
class SweepStats:
    """Diagnostics for one full iteration of the distributed algorithm."""

    iteration: int
    cost_before: float
    cost_after: float
    total_moved: float
    exchanges: int

    @property
    def improvement(self) -> float:
        return self.cost_before - self.cost_after


@dataclass
class ConvergenceTrace:
    """Cost trajectory of a full optimization run."""

    costs: list[float] = field(default_factory=list)
    sweeps: list[SweepStats] = field(default_factory=list)
    converged: bool = False

    @property
    def iterations(self) -> int:
        return len(self.sweeps)

    def relative_errors(self, optimum: float) -> np.ndarray:
        """Per-iteration relative error ``(ΣCi − ΣCi*) / ΣCi*``."""
        c = np.asarray(self.costs, dtype=np.float64)
        if optimum <= 0:
            return np.zeros_like(c)
        return (c - optimum) / optimum


def _safe_dot_scalar(x: np.ndarray, cost: np.ndarray) -> float:
    """``Σ x_k c_k`` with the convention ``0 · inf = 0``."""
    mask = x != 0
    return float(x[mask] @ cost[mask])


def _rowsum(x: np.ndarray, cost: np.ndarray) -> np.ndarray:
    """Row-wise ``Σ_k x_k c_k`` with the convention ``0 · inf = 0``
    (forbidden links carrying no load cost nothing)."""
    with np.errstate(invalid="ignore"):
        prod = x * cost
    prod[x == 0.0] = 0.0
    return prod.sum(axis=1)


@dataclass
class KernelStats:
    """Dispatch counters of the Algorithm 1 transfer kernels.

    ``kernel_calls`` counts closed-form kernel dispatches and
    ``kernel_candidates`` the candidate partners evaluated across them,
    so ``kernel_candidates / kernel_calls`` is the batching factor — the
    number of per-pair :func:`repro.core.transfer.calc_best_transfer`
    dispatches each call replaces.
    """

    kernel_calls: int = 0
    kernel_candidates: int = 0


def batch_exchange_stats(
    inst: Instance,
    R: np.ndarray,
    i: int,
    owners: np.ndarray,
    loads: np.ndarray | None = None,
    *,
    order_cache: dict[int, np.ndarray] | None = None,
    compute_moved: bool = True,
    rt_full: np.ndarray | None = None,
    ct_full: np.ndarray | None = None,
    static_cache: dict[int, tuple] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate Algorithm 1 for server ``i`` against *every* candidate
    partner simultaneously (batched closed form).

    Returns ``(impr, moved)`` — per-candidate exact ``ΣCi`` improvement and
    total volume of requests that would change servers.  ``owners``
    restricts the per-organization computation to rows that can hold load
    (``n_k > 0``); all other rows of ``R`` are identically zero.

    ``order_cache`` may hold the per-server argsort of the latency
    difference matrix — it depends only on the static latencies, so
    :class:`MinEOptimizer` reuses it across sweeps.  ``static_cache``
    goes further and also holds the sliced latency matrix, the latency
    difference row in sorted order and the per-server latency column —
    every input that does not depend on ``R`` or ``loads`` — which
    roughly halves the per-call numpy work for repeated proposals (the
    event-driven agents' hot path).  ``compute_moved=False`` skips the
    transfer-volume output (partner selection only needs ``impr``).
    """
    s = inst.speeds
    c = inst.latency
    s_i = float(s[i])
    m = inst.m
    l = R.sum(axis=0) if loads is None else loads
    full = owners.shape[0] == m

    # Transposed (m, h) layout — row j = candidate partner, column k =
    # owning org — so that the sorts, prefix sums and reductions all run
    # along contiguous memory.
    if rt_full is None:
        rt_full = R.T  # strided view; pass a contiguous copy to go faster
    if ct_full is None:
        ct_full = c.T
    if full:
        Ri = np.ascontiguousarray(rt_full[i])
        Rt = rt_full
    else:
        Ri = np.ascontiguousarray(rt_full[i, owners])
        Rt = np.ascontiguousarray(rt_full[:, owners])

    h = owners.shape[0]
    # Server-independent statics (the sliced latency matrix and the two
    # index grids) are shared under key -1 — only the per-server pieces
    # (latency row, its sort, B·d_s) multiply by m.
    shared = static_cache.get(-1) if static_cache is not None else None
    if shared is not None:
        Ct, rows_idx, cols_idx = shared
    else:
        rows_idx = np.arange(m)[:, None]
        cols_idx = np.arange(h)[None, :]
        Ct = ct_full if full else np.ascontiguousarray(ct_full[:, owners])
        if static_cache is not None:
            static_cache[-1] = (Ct, rows_idx, cols_idx)
    cached = static_cache.get(i) if static_cache is not None else None
    if cached is not None:
        c_owners_i, order, d_s, A_ratio, B, Bd = cached
    else:
        if full:
            c_owners_i = np.ascontiguousarray(ct_full[i])
        else:
            c_owners_i = np.ascontiguousarray(ct_full[i, owners])
        if inst.has_inf_latency:
            with np.errstate(invalid="ignore"):
                D = Ct - c_owners_i[None, :]  # d_k per candidate row
            # inf − inf → owner reaches neither server; it holds nothing at
            # either, so any immovable (+inf) difference is correct.
            D[np.isnan(D)] = np.inf
        else:
            D = Ct - c_owners_i[None, :]  # d_k per candidate row
        if order_cache is not None and i in order_cache:
            order = order_cache[i]
        else:
            order = np.argsort(D, axis=1)
            if order_cache is not None:
                order = order.astype(np.int32, copy=False)
                order_cache[i] = order
        d_s = D[rows_idx, order]
        # Load-independent precomputes of the closed form: A = A_ratio·L,
        # B·d_s, and the per-column rank grid for the transfer cut-off.
        A_ratio = s / (s_i + s)
        B = s_i * s / (s_i + s)
        Bd = B[:, None] * d_s
        if static_cache is not None:
            static_cache[i] = (c_owners_i, order, d_s, A_ratio, B, Bd)

    Pool = Rt + Ri[None, :]  # pooled requests per candidate row (m, h)
    L = l[i] + l  # pooled load per candidate j
    A = A_ratio * L
    r_s = Pool[rows_idx, order]
    prefix = np.cumsum(r_s, axis=1)
    key = prefix + Bd
    K = (key <= A[:, None]).sum(axis=1)  # fully-moved orgs per candidate

    t = np.where(cols_idx < K[:, None], r_s, 0.0)
    rows = np.flatnonzero(K < h)
    if rows.size:
        kp = K[rows]
        before = np.where(kp > 0, prefix[rows, np.maximum(kp - 1, 0)], 0.0)
        partial = A[rows] - B[rows] * d_s[rows, kp] - before
        t[rows, kp] = np.clip(partial, 0.0, r_s[rows, kp])

    T = t.sum(axis=1)  # load ending up on the candidate partner
    li_new = L - T
    cong_old = l[i] ** 2 / (2 * s_i) + l**2 / (2 * s)
    cong_new = li_new**2 / (2 * s_i) + T**2 / (2 * s)
    if inst.has_inf_latency:
        # Forbidden links carrying no load cost nothing (0·inf := 0);
        # direct per-term evaluation avoids inf − inf.
        ci_sorted = c_owners_i[order]
        cj_sorted = Ct[rows_idx, order]
        comm_old = _safe_dot_scalar(Ri, c_owners_i) + _rowsum(Rt, Ct)
        comm_new = _rowsum(r_s - t, ci_sorted) + _rowsum(t, cj_sorted)
    else:
        comm_old = float(Ri @ c_owners_i) + np.einsum("jk,jk->j", Rt, Ct)
        # comm_new = Σ_k (pool_k − t_k) c_ki + t_k c_kj
        #          = Σ_k pool_k c_ki + Σ_k t_k d_k   (d in sorted order)
        comm_new = Pool @ c_owners_i + np.einsum("jk,jk->j", t, d_s)

    impr = (cong_old + comm_old) - (cong_new + comm_new)
    impr[i] = -np.inf  # never pair with self

    if not compute_moved:
        return impr, np.zeros(m)
    # moved_j = Σ_k |new r_ki − old r_ki| = Σ_k |old r_kj − t_k|; t is in
    # sorted order so compare against the old partner column sorted alike.
    old_j_sorted = Rt[rows_idx, order]
    moved = np.abs(old_j_sorted - t).sum(axis=1)
    moved[i] = 0.0
    return impr, moved


class CandidateTransfers:
    """Result of one :func:`batch_best_transfers` pass.

    ``impr[p]`` is the exact ``ΣCi`` improvement of the Algorithm 1
    exchange between server ``i`` and ``cand[p]`` on the true ``R`` (the
    kernel pools the actual allocation rows, so staleness of whatever
    view *selected* the candidates never enters the improvement).  The
    per-candidate transfer vectors are retained in sorted-owner layout,
    so the winner's exchange columns come out of :meth:`exchange` with
    zero further kernel work.
    """

    __slots__ = ("i", "cand", "impr", "_norgs", "_own", "_order", "_r_s", "_t", "_ri")

    def __init__(self, i, cand, impr, norgs, own, order, r_s, t, ri):
        self.i = int(i)
        self.cand = cand      #: (n,) candidate server ids
        self.impr = impr      #: (n,) exact ΣCi improvement per candidate
        self._norgs = int(norgs)
        self._own = own       #: (h,) org rows the closed form ran over
        self._order = order   #: (n, h) per-candidate owner order (by d_k)
        self._r_s = r_s       #: (n, h) pooled requests, sorted order
        self._t = t           #: (n, h) transfer amounts, sorted order
        self._ri = ri         #: (h,) server i's old column over _own

    def best(self) -> tuple[int, int, float]:
        """``(pos, partner, impr)`` of the best candidate —
        ``(-1, -1, -inf)`` when the candidate set is empty."""
        if self.cand.size == 0:
            return -1, -1, float("-inf")
        pos = int(np.argmax(self.impr))
        return pos, int(self.cand[pos]), float(self.impr[pos])

    def exchange(self, pos: int) -> PairExchange:
        """Materialize candidate ``pos``'s exchange columns (Algorithm 1
        applied to the pair) from the batch pass — no kernel re-dispatch."""
        order = self._order[pos]
        sel = self._own[order]
        r_s = self._r_s[pos]
        t = self._t[pos]
        new_i = r_s - t
        col_i = np.zeros(self._norgs)
        col_j = np.zeros(self._norgs)
        col_i[sel] = new_i
        col_j[sel] = t
        moved = float(np.abs(new_i - self._ri[order]).sum())
        return PairExchange(
            self.i, int(self.cand[pos]), col_i, col_j,
            float(self.impr[pos]), moved,
        )


def batch_best_transfers(
    inst: Instance,
    R: np.ndarray,
    i: int,
    cand: np.ndarray,
    *,
    owners: np.ndarray | None = None,
    order_cache: dict[int, np.ndarray] | None = None,
    rt_full: np.ndarray | None = None,
    ct_full: np.ndarray | None = None,
    static_cache: dict[int, tuple] | None = None,
    stats: "KernelStats | None" = None,
) -> CandidateTransfers:
    """Evaluate Algorithm 1 for server ``i`` against the candidate set
    ``cand`` in **one** closed-form ``(k, h)`` pass.

    This is the :func:`batch_exchange_stats` layout (transposed
    contiguous rows, shared sort/prefix-sum cut-off) restricted to the
    screened candidates: where the screened path used to dispatch one
    :func:`~repro.core.transfer.calc_best_transfer` per candidate
    (~``screen_width`` numpy-bound kernel calls per proposal), this is a
    single dispatch returning per-candidate ``(impr, t)`` — and the
    winner's exchange columns via :meth:`CandidateTransfers.exchange`
    with no extra kernel call.

    Two internal layouts:

    * when ``static_cache`` holds server ``i``'s full per-server statics
      (small fleets — the exact path's caches), the cached argsort /
      sorted-difference rows are sliced by ``cand`` and reused;
    * otherwise (fleet scale, where the full caches exceed the memory
      budget) the pass restricts every op to the *union support* of the
      pooled columns — the allocation stays sparse, so the sort runs
      over ``h_eff ≪ m`` owners, with a stable order matching
      ``calc_best_transfer`` column-for-column.

    ``impr`` is always exact on the true ``R`` (pooled loads come from
    the gathered rows themselves); a stale gossip view only ever enters
    the candidate *pre-selection* (:func:`screen_candidates`).
    ``stats`` (any object with ``kernel_calls`` / ``kernel_candidates``
    int attributes, e.g. :class:`KernelStats`) counts this dispatch.
    """
    s = inst.speeds
    m = inst.m
    s_i = float(s[i])
    cand = np.asarray(cand, dtype=np.intp)
    n = cand.shape[0]
    if stats is not None:
        stats.kernel_calls += 1
        stats.kernel_candidates += n
    if rt_full is None:
        rt_full = R.T
    if ct_full is None:
        ct_full = inst.latency.T
    if n == 0:
        e = np.empty(0)
        ei = np.empty(0, dtype=np.intp)
        e2 = np.empty((0, 0))
        return CandidateTransfers(
            i, cand, e, m, ei, np.empty((0, 0), dtype=np.intp), e2, e2.copy(), e
        )

    s_c = s[cand]
    cached = static_cache.get(i) if static_cache is not None else None
    if cached is not None:
        # Small-fleet path: the exact path's per-server statics (owner-set
        # layout, built by batch_exchange_stats) sliced by candidate row.
        if owners is None:
            owners = np.flatnonzero(inst.loads > 0)
        own = owners
        full = own.shape[0] == m
        c_i, order_full, d_s_full, A_ratio_full, B_full, Bd_full = cached
        order = order_full[cand]
        d_s = d_s_full[cand]
        Bd = Bd_full[cand]
        shared = static_cache.get(-1)
        if shared is not None:
            Ct = shared[0]
        elif full:
            Ct = ct_full
        else:
            Ct = np.ascontiguousarray(ct_full[:, own])
        Cc = Ct[cand]
        if full:
            Ri = rt_full[i]
            Rc = rt_full[cand]
        else:
            Ri = rt_full[i, own]
            Rc = rt_full[np.ix_(cand, own)]
        lc = Rc.sum(axis=1)
        li = float(Ri.sum())
        L = li + lc
        A = A_ratio_full[cand] * L
    else:
        # Fleet-scale path: gather the candidate rows once, then restrict
        # everything downstream to the union support of the pooled
        # columns — exchanges keep the allocation sparse, so h_eff ≪ m
        # and the per-proposal sort is tiny.
        Rc_rows = rt_full[cand]          # (n, m) contiguous row gather
        Ri_row = rt_full[i]
        lc = Rc_rows.sum(axis=1)
        li = float(Ri_row.sum())
        own = np.flatnonzero(Rc_rows.sum(axis=0) + Ri_row > 0)
        Rc = Rc_rows[:, own]
        Ri = Ri_row[own]
        c_i = np.ascontiguousarray(ct_full[i, own])
        Cc = ct_full[np.ix_(cand, own)]
        if inst.has_inf_latency:
            with np.errstate(invalid="ignore"):
                D = Cc - c_i[None, :]
            # inf − inf → owner reaches neither server; it holds nothing
            # at either, so any immovable (+inf) difference is correct.
            D[np.isnan(D)] = np.inf
        else:
            D = Cc - c_i[None, :]
        # Stable order + the same op order as calc_best_transfer keeps
        # the realized columns bitwise identical to the per-pair kernel.
        order = np.argsort(D, axis=1, kind="stable")
        d_s = np.take_along_axis(D, order, axis=1)
        B = s_i * s_c / (s_i + s_c)
        Bd = B[:, None] * d_s
        L = li + lc
        A = s_c * L / (s_i + s_c)

    h = own.shape[0]
    Pool = Rc + Ri[None, :]
    r_s = np.take_along_axis(Pool, order, axis=1)
    prefix = np.cumsum(r_s, axis=1)
    key = prefix + Bd
    K = (key <= A[:, None]).sum(axis=1)  # fully-moved owners per candidate
    t = np.where(np.arange(h)[None, :] < K[:, None], r_s, 0.0)
    rows = np.flatnonzero(K < h)
    if rows.size:
        kp = K[rows]
        before = np.where(kp > 0, prefix[rows, np.maximum(kp - 1, 0)], 0.0)
        partial = A[rows] - Bd[rows, kp] - before
        t[rows, kp] = np.clip(partial, 0.0, r_s[rows, kp])

    T = t.sum(axis=1)  # load ending up on the candidate partner
    li_new = L - T
    cong_old = li * li / (2 * s_i) + lc**2 / (2 * s_c)
    cong_new = li_new**2 / (2 * s_i) + T**2 / (2 * s_c)
    if inst.has_inf_latency:
        ci_sorted = c_i[order]
        cj_sorted = np.take_along_axis(Cc, order, axis=1)
        comm_old = _safe_dot_scalar(Ri, c_i) + _rowsum(Rc, Cc)
        comm_new = _rowsum(r_s - t, ci_sorted) + _rowsum(t, cj_sorted)
    else:
        comm_old = float(Ri @ c_i) + np.einsum("jk,jk->j", Rc, Cc)
        # comm_new = Σ_k (pool_k − t_k) c_ki + t_k c_kj
        #          = Σ_k pool_k c_ki + Σ_k t_k d_k   (d in sorted order)
        comm_new = Pool @ c_i + np.einsum("jk,jk->j", t, d_s)

    impr = (cong_old + comm_old) - (cong_new + comm_new)
    impr[cand == i] = -np.inf  # never pair with self
    return CandidateTransfers(i, cand, impr, m, own, order, r_s, t, Ri)


def best_partner_exact(
    inst: Instance,
    R: np.ndarray,
    i: int,
    owners: np.ndarray,
    loads: np.ndarray | None = None,
    order_cache: dict[int, np.ndarray] | None = None,
    rt_full: np.ndarray | None = None,
    ct_full: np.ndarray | None = None,
    static_cache: dict[int, tuple] | None = None,
    *,
    exclude=None,
    stats: "KernelStats | None" = None,
) -> tuple[int, float]:
    """Return ``(argmax_j impr(i, j), max impr)`` — Algorithm 2's partner
    choice, evaluated exactly for all candidates at once.

    ``exclude`` (an iterable of server ids) removes candidates from the
    argmax — the livesim agents shun partners whose handshakes keep
    failing."""
    if stats is not None:
        stats.kernel_calls += 1
        stats.kernel_candidates += inst.m - 1
    impr, _ = batch_exchange_stats(
        inst, R, i, owners, loads, order_cache=order_cache,
        compute_moved=False, rt_full=rt_full, ct_full=ct_full,
        static_cache=static_cache,
    )
    if exclude is not None:
        impr = impr.copy()
        impr[np.fromiter(exclude, dtype=np.intp)] = -np.inf
    j = int(np.argmax(impr))
    return j, float(impr[j])


def static_caches_enabled(m: int, h: int) -> bool:
    """Whether the per-server static caches (argsort plus sorted latency
    differences and derived matrices) fit the shared memory budget."""
    # Per (server, candidate, owner) entry the per-server cache tuple
    # holds the int32 order (4 B) and float64 d_s and Bd (8 B each); the
    # sliced latency matrix is shared across servers.  (An optimizer and
    # an agent set each hold their own caches.)
    return m * m * h * 20 <= 256 * 1024 * 1024


def screen_candidates(
    inst: Instance,
    loads: np.ndarray,
    i: int,
    *,
    screen_width: int = 16,
    screen_cache: dict[int, np.ndarray] | None = None,
) -> np.ndarray:
    """The O(m) screening pass: a cheap load-imbalance score pre-selects
    ``screen_width`` candidates, plus the lowest-latency peers (load
    scores miss communication-driven exchanges — the convergence tail
    re-homes requests between near-balanced servers).

    ``screen_cache`` may persist the per-server lowest-latency
    argpartition — it depends only on the static latencies, so repeated
    proposals from the same server skip that O(m) selection.
    """
    scores = _screen_scores(inst, loads, i)
    width = min(screen_width, inst.m - 1)
    by_score = np.argpartition(scores, -width)[-width:]
    near = min(max(width // 2, 2), inst.m - 1)
    by_latency = screen_cache.get(i) if screen_cache is not None else None
    if by_latency is None:
        by_latency = np.argpartition(inst.latency[i], near)[:near]
        if screen_cache is not None:
            screen_cache[i] = by_latency
    cand = np.unique(np.concatenate([by_score, by_latency]))
    cand = cand[cand != i]
    return cand[np.isfinite(scores[cand])]


def best_partner_screened(
    inst: Instance,
    R: np.ndarray,
    i: int,
    loads: np.ndarray,
    *,
    screen_width: int = 16,
    owners: np.ndarray | None = None,
    order_cache: dict[int, np.ndarray] | None = None,
    rt_full: np.ndarray | None = None,
    ct_full: np.ndarray | None = None,
    static_cache: dict[int, tuple] | None = None,
    screen_cache: dict[int, np.ndarray] | None = None,
    exclude=None,
    stats: "KernelStats | None" = None,
) -> tuple[int, float]:
    """Partner choice via the O(m) screening pass: the pre-selected
    candidates (:func:`screen_candidates`) get the exact Algorithm 1
    evaluation in **one** batched dispatch
    (:func:`batch_best_transfers`) instead of one per-pair kernel call
    each.

    Stale ``loads`` enter the *scoring* only; the improvement returned
    is the exact improvement of the chosen candidate on the true ``R``.
    The cache dictionaries mirror the exact path's static precomputes
    (latency argsorts / transposes) plus the screened-only
    ``screen_cache`` of per-server lowest-latency peers.
    """
    cand = screen_candidates(
        inst, loads, i, screen_width=screen_width, screen_cache=screen_cache
    )
    if exclude is not None and cand.size:
        cand = cand[~np.isin(cand, np.fromiter(exclude, dtype=np.intp))]
    if cand.size == 0:
        return -1, -np.inf
    bt = batch_best_transfers(
        inst, R, i, cand, owners=owners, order_cache=order_cache,
        rt_full=rt_full, ct_full=ct_full, static_cache=static_cache,
        stats=stats,
    )
    _, j, impr = bt.best()
    return j, impr


def propose_partner(
    inst: Instance,
    R: np.ndarray,
    i: int,
    loads: np.ndarray | None = None,
    *,
    owners: np.ndarray | None = None,
    strategy: Literal["exact", "screened", "auto"] = "auto",
    screen_width: int = 16,
    order_cache: dict[int, np.ndarray] | None = None,
    rt_full: np.ndarray | None = None,
    ct_full: np.ndarray | None = None,
    static_cache: dict[int, tuple] | None = None,
    screen_cache: dict[int, np.ndarray] | None = None,
    exclude=None,
    stats: "KernelStats | None" = None,
) -> tuple[int, float]:
    """Server ``i``'s partner proposal against a (possibly stale) load view.

    The single-exchange *selection* half of Algorithm 2, exposed for
    callers that drive servers individually — most notably the
    event-driven agents of :mod:`repro.livesim`, where each server acts
    on whatever load vector its gossip table currently holds.  Returns
    ``(partner, expected_improvement)``.

    ``strategy`` mirrors :class:`MinEOptimizer`: ``"exact"`` evaluates
    every candidate with the batched closed form (the expected
    improvement then reflects the stale view), ``"screened"`` runs the
    O(m) pre-selection plus one :func:`batch_best_transfers` dispatch
    (required at fleet scale, where the exact batch is O(h·m log m) per
    proposal), and ``"auto"`` picks by the :data:`EXACT_BUDGET` size
    threshold.  ``order_cache`` / ``rt_full`` / ``ct_full`` /
    ``static_cache`` / ``screen_cache`` are the optional static caches
    shared by both strategies; ``stats`` counts kernel dispatches.
    """
    if strategy not in ("exact", "screened", "auto"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if owners is None:
        owners = np.flatnonzero(inst.loads > 0)
    if strategy == "auto":
        strategy = (
            "exact" if max(1, owners.size) * inst.m <= EXACT_BUDGET else "screened"
        )
    if strategy == "screened":
        view = loads if loads is not None else R.sum(axis=0)
        return best_partner_screened(
            inst, R, i, view, screen_width=screen_width, owners=owners,
            order_cache=order_cache, rt_full=rt_full, ct_full=ct_full,
            static_cache=static_cache, screen_cache=screen_cache,
            exclude=exclude, stats=stats,
        )
    return best_partner_exact(
        inst, R, i, owners, loads, order_cache, rt_full, ct_full, static_cache,
        exclude=exclude, stats=stats,
    )


def apply_pair_exchange(
    state: AllocationState,
    i: int,
    j: int,
    *,
    min_improvement: float = 1e-9,
) -> PairExchange | None:
    """Execute Algorithm 1 between ``i`` and ``j`` on the *true* state.

    The single-exchange *execution* half of Algorithm 2: the pair is
    assumed to have synchronized (they exchange their actual columns), so
    the transfer is computed from current state regardless of how stale
    the view that selected the partner was.  Applies the exchange only if
    the exact improvement exceeds ``min_improvement``; returns the applied
    :class:`PairExchange` or ``None``.
    """
    ex = calc_best_transfer(state.inst, state.R, i, j)
    if ex.improvement <= min_improvement:
        return None
    state.apply_pair_columns(i, j, ex.col_i, ex.col_j)
    return ex


def _screen_scores(
    inst: Instance, loads: np.ndarray, i: int
) -> np.ndarray:
    """O(m) optimistic-minus-penalty partner score: congestion gain of a
    perfect two-server balance minus a latency proxy for the moved volume."""
    s = inst.speeds
    s_i = s[i]
    l = loads
    L = l[i] + l
    cong_now = l[i] ** 2 / (2 * s_i) + l**2 / (2 * s)
    cong_best = L**2 / (2 * (s_i + s))
    li_star = s_i * L / (s_i + s)
    moved = np.abs(l[i] - li_star)
    score = (cong_now - cong_best) - inst.latency[i] * moved
    score[i] = -np.inf
    return score


class MinEOptimizer:
    """Iterative distributed optimizer (Algorithms 1 + 2).

    Parameters
    ----------
    state:
        The allocation to optimize in place.
    rng:
        Randomness source for the per-iteration server order.
    strategy:
        ``"exact"``, ``"screened"`` or ``"auto"`` (see module docstring).
    screen_width:
        Number of candidates kept by the screening pass.
    min_improvement:
        Exchanges improving ``ΣCi`` by less than this are skipped.
    load_view:
        Optional callable ``load_view(server) -> np.ndarray`` returning the
        (possibly stale) load vector that server uses to *choose* its
        partner.  The exchange itself always uses true state, modelling the
        pair synchronizing when they talk.
    cycle_removal_every:
        If set, run the appendix's negative-cycle removal (min-cost flow)
        after every that many sweeps.
    snapshot_partner_selection:
        When true, every server in a sweep chooses its partner from the
        load vector *as of the sweep's start* — modelling a synchronous
        distributed round in which information propagates once per
        iteration (exchanges themselves stay exact).
    """

    def __init__(
        self,
        state: AllocationState,
        *,
        rng: np.random.Generator | int | None = None,
        strategy: Literal["exact", "screened", "auto"] = "auto",
        screen_width: int = 16,
        min_improvement: float = 1e-9,
        load_view: Callable[[int], np.ndarray] | None = None,
        cycle_removal_every: int | None = None,
        snapshot_partner_selection: bool = False,
    ):
        self.state = state
        self.rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        if strategy not in ("exact", "screened", "auto"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.screen_width = int(screen_width)
        self.min_improvement = float(min_improvement)
        self.load_view = load_view
        self.cycle_removal_every = cycle_removal_every
        self.snapshot_partner_selection = snapshot_partner_selection
        self.owners = np.flatnonzero(state.inst.loads > 0)
        self._iteration = 0
        self._snapshot_loads: np.ndarray | None = None
        # The argsort of the latency-difference matrix per server (and
        # the derived sorted difference rows) depend only on the static
        # latencies; cache them across sweeps when the total footprint
        # stays modest.
        m = state.inst.m
        h = max(1, self.owners.size)
        caches_ok = static_caches_enabled(m, h)
        self._order_cache: dict[int, np.ndarray] | None = {} if caches_ok else None
        self._static_cache: dict[int, tuple] | None = {} if caches_ok else None
        # Per-server nearest-peer lists for the screening pass (static:
        # latency only), and dispatch counters for the transfer kernels.
        self._screen_cache: dict[int, np.ndarray] = {}
        self.kernel_stats = KernelStats()
        # Contiguous transposes: the batch kernel reads along candidate
        # rows, so both R and the latency matrix are kept transposed.
        self._Ct = np.ascontiguousarray(state.inst.latency.T)
        self._Rt = np.ascontiguousarray(state.R.T)

    # ------------------------------------------------------------------
    def _effective_strategy(self) -> str:
        if self.strategy != "auto":
            return self.strategy
        # Exact batch evaluation is O(h·m log m) per server and O(h·m²·log m)
        # per sweep; fall back to screening when that gets large.
        h = max(1, self.owners.size)
        return "exact" if h * self.state.inst.m <= EXACT_BUDGET else "screened"

    def _selection_loads(self, i: int) -> np.ndarray:
        """The (possibly stale) load vector server ``i`` selects from."""
        if self.load_view is not None:
            return self.load_view(i)
        if self._snapshot_loads is not None:
            return self._snapshot_loads
        return self.state.loads

    def _screened_best(self, i: int, loads: np.ndarray) -> CandidateTransfers:
        """Screen + evaluate all of ``i``'s candidates in one kernel pass."""
        cand = screen_candidates(
            self.state.inst, loads, i,
            screen_width=self.screen_width, screen_cache=self._screen_cache,
        )
        return batch_best_transfers(
            self.state.inst, self.state.R, i, cand,
            owners=self.owners, order_cache=self._order_cache,
            rt_full=self._Rt, ct_full=self._Ct,
            static_cache=self._static_cache, stats=self.kernel_stats,
        )

    def best_partner(self, i: int) -> tuple[int, float]:
        """Partner choice of Algorithm 2 for server ``i``."""
        inst = self.state.inst
        loads = self._selection_loads(i)
        if self._effective_strategy() == "exact":
            return best_partner_exact(
                inst, self.state.R, i, self.owners, loads,
                self._order_cache, self._Rt, self._Ct, self._static_cache,
                stats=self.kernel_stats,
            )
        _, j, impr = self._screened_best(i, loads).best()
        return j, impr

    def step(self, i: int) -> PairExchange | None:
        """Algorithm 2 for a single server; returns the applied exchange."""
        if self._effective_strategy() == "exact":
            j, impr = self.best_partner(i)
            if j < 0 or impr <= self.min_improvement:
                return None
            ex = apply_pair_exchange(
                self.state, i, j, min_improvement=self.min_improvement
            )
            if ex is None:
                return None
            self._Rt[i] = ex.col_i
            self._Rt[j] = ex.col_j
            return ex
        # Screened: the winner's exchange columns come straight out of the
        # same batched pass — staleness only affects candidate selection
        # (the improvement itself is computed on true R), so the columns
        # can be applied without a second kernel dispatch.
        bt = self._screened_best(i, self._selection_loads(i))
        pos, j, impr = bt.best()
        if j < 0 or impr <= self.min_improvement:
            return None
        ex = bt.exchange(pos)
        self.state.apply_pair_columns(i, j, ex.col_i, ex.col_j)
        self._Rt[i] = ex.col_i
        self._Rt[j] = ex.col_j
        return ex

    def sweep(self, *, max_exchanges: int | None = None) -> SweepStats:
        """One iteration: every server acts once, in random order.

        ``max_exchanges`` truncates the iteration once that many
        exchanges have applied — the hard per-sweep cap behind
        exchange-budgeted incremental re-solves
        (:func:`repro.core.dynamic.reoptimize`).  The server order is
        drawn identically either way, so a truncated sweep is a prefix
        of the unbounded one.
        """
        cost_before = self.state.total_cost()
        order = self.rng.permutation(self.state.inst.m)
        self._snapshot_loads = (
            self.state.loads.copy() if self.snapshot_partner_selection else None
        )
        moved = 0.0
        exchanges = 0
        for i in order:
            if max_exchanges is not None and exchanges >= max_exchanges:
                break
            ex = self.step(int(i))
            if ex is not None:
                moved += ex.moved
                exchanges += 1
        self._snapshot_loads = None
        self._iteration += 1
        if (
            self.cycle_removal_every is not None
            and self._iteration % self.cycle_removal_every == 0
        ):
            from ..flow.transportation import remove_negative_cycles

            remove_negative_cycles(self.state)
            self._Rt = np.ascontiguousarray(self.state.R.T)
        self.state.refresh_loads()
        return SweepStats(
            iteration=self._iteration,
            cost_before=cost_before,
            cost_after=self.state.total_cost(),
            total_moved=moved,
            exchanges=exchanges,
        )

    def run(
        self,
        *,
        max_iterations: int = 100,
        optimum: float | None = None,
        rel_tol: float | None = None,
        stall_tol: float = 1e-10,
    ) -> ConvergenceTrace:
        """Iterate until the relative error versus ``optimum`` drops below
        ``rel_tol``, the improvement stalls, or ``max_iterations`` is hit.

        Returns the full cost trajectory (``costs[0]`` is the initial cost,
        ``costs[k]`` the cost after iteration ``k``), mirroring Figure 2.
        """
        trace = ConvergenceTrace()
        trace.costs.append(self.state.total_cost())
        for _ in range(max_iterations):
            stats = self.sweep()
            trace.sweeps.append(stats)
            trace.costs.append(stats.cost_after)
            if optimum is not None and rel_tol is not None:
                denom = optimum if optimum > 0 else 1.0
                if (stats.cost_after - optimum) / denom <= rel_tol:
                    trace.converged = True
                    break
            if stats.improvement <= stall_tol * max(1.0, stats.cost_before):
                trace.converged = optimum is None or rel_tol is None
                break
        return trace
