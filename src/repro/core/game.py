"""Selfish organizations — Section V of the paper.

Each organization ``i`` controls only its own requests and minimizes its
private cost ``Ci = Σ_j r_ij ((l_j^{-i} + r_ij)/(2 s_j) + c_ij)``.  The
best response is the exact water-fill with the *selfish* marginal
``a_j = c_ij + l_j^{-i} / (2 s_j)`` (the factor 2 is the only difference
from the cooperative marginal — selfish players internalize only half the
congestion they cause).

A Nash equilibrium is a fixed point of the joint best responses.  As in
Section VI-C of the paper, the equilibrium is approximated by
best-response dynamics stopped when every organization changes its
distribution by less than ``tol_change`` (1 % in the paper) in two
consecutive rounds.  The *cost of selfishness* (empirical price of
anarchy) is the ratio between ``ΣCi`` at the equilibrium and at the
cooperative optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .instance import Instance
from .qp import solve_coordinate_descent
from .state import AllocationState
from .waterfill import waterfill, waterfill_value

__all__ = [
    "selfish_best_response",
    "best_response_dynamics",
    "nash_gap",
    "BestResponseTrace",
    "price_of_anarchy",
]


def selfish_best_response(
    inst: Instance,
    state: AllocationState,
    i: int,
    *,
    upper: np.ndarray | None = None,
) -> np.ndarray:
    """Exact best response of organization ``i`` to the current allocation.

    Optionally capped (``upper``) for the replication extension of
    Section VII.
    """
    l_minus = state.loads - state.R[i]
    a = inst.latency[i] + l_minus / (2.0 * inst.speeds)
    return waterfill(inst.speeds, a, float(inst.loads[i]), upper)


@dataclass
class BestResponseTrace:
    """Record of a best-response-dynamics run."""

    costs: list[float] = field(default_factory=list)
    max_changes: list[float] = field(default_factory=list)
    converged: bool = False

    @property
    def rounds(self) -> int:
        return len(self.max_changes)


def best_response_dynamics(
    inst: Instance,
    *,
    state: AllocationState | None = None,
    max_rounds: int = 500,
    tol_change: float = 0.01,
    consecutive: int = 2,
    rng: np.random.Generator | int | None = None,
    upper: np.ndarray | None = None,
) -> tuple[AllocationState, BestResponseTrace]:
    """Approximate a Nash equilibrium by iterated exact best responses.

    Following Section VI-C, the dynamics stop when for ``consecutive``
    rounds in a row every organization changed its request distribution by
    less than ``tol_change`` (relative L1 change ``‖r_i' − r_i‖₁ / n_i``).
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    st = state.copy() if state is not None else AllocationState.initial(inst)
    n = inst.loads
    owners = np.flatnonzero(n > 0)
    trace = BestResponseTrace()
    trace.costs.append(st.total_cost())
    quiet_rounds = 0
    for _ in range(max_rounds):
        order = rng.permutation(owners)
        max_change = 0.0
        for i in order:
            i = int(i)
            row = selfish_best_response(inst, st, i, upper=upper)
            change = float(np.abs(row - st.R[i]).sum()) / n[i]
            max_change = max(max_change, change)
            st.set_row(i, row)
        trace.max_changes.append(max_change)
        trace.costs.append(st.total_cost())
        quiet_rounds = quiet_rounds + 1 if max_change < tol_change else 0
        if quiet_rounds >= consecutive:
            trace.converged = True
            break
    st.refresh_loads()
    return st, trace


def nash_gap(inst: Instance, state: AllocationState) -> float:
    """Maximum relative cost reduction any single organization could get by
    unilaterally deviating to its best response — an equilibrium
    certificate (0 at an exact Nash equilibrium)."""
    gap = 0.0
    for i in np.flatnonzero(inst.loads > 0):
        i = int(i)
        l_minus = state.loads - state.R[i]
        a = inst.latency[i] + l_minus / (2.0 * inst.speeds)
        current = waterfill_value(inst.speeds, a, state.R[i])
        best_row = waterfill(inst.speeds, a, float(inst.loads[i]))
        best = waterfill_value(inst.speeds, a, best_row)
        if current > 0:
            gap = max(gap, (current - best) / current)
    return gap


def price_of_anarchy(
    inst: Instance,
    *,
    rng: np.random.Generator | int | None = None,
    tol_change: float = 0.01,
    optimum: AllocationState | None = None,
) -> tuple[float, AllocationState, AllocationState]:
    """Empirical cost of selfishness: ``ΣCi(NE) / ΣCi(OPT)``.

    Returns ``(ratio, equilibrium_state, optimal_state)``.  The equilibrium
    is approximated with :func:`best_response_dynamics`; the optimum with
    :func:`~repro.core.qp.solve_coordinate_descent` unless provided.
    """
    ne, _ = best_response_dynamics(inst, rng=rng, tol_change=tol_change)
    opt = optimum if optimum is not None else solve_coordinate_descent(inst)
    c_ne = ne.total_cost()
    c_opt = opt.total_cost()
    if c_opt <= 0:
        return 1.0, ne, opt
    return c_ne / c_opt, ne, opt
