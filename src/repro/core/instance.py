"""Problem instances for delay-aware load balancing.

An :class:`Instance` captures the model of Section II of the paper: ``m``
organizations, each owning one server with processing speed ``s[i]`` and an
initial load of ``n[i]`` unit requests, connected by a network with constant
pairwise latencies ``c[i, j]`` (``c[i, i] == 0``).

Executing one request on server ``j`` costs ``1 / s[j]`` time units; with
``l[j]`` requests assigned to server ``j`` and no assumed processing order,
the expected handling time of a request is ``l[j] / (2 s[j])``.  A request
relayed from ``i`` to ``j`` additionally pays the latency ``c[i, j]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Instance"]


@dataclass(frozen=True)
class Instance:
    """An immutable delay-aware load-balancing problem.

    Parameters
    ----------
    speeds:
        Array of shape ``(m,)`` with strictly positive server speeds ``s_i``.
    loads:
        Array of shape ``(m,)`` with non-negative initial loads ``n_i`` (the
        number of requests *owned* by each organization).
    latency:
        Array of shape ``(m, m)`` with non-negative pairwise communication
        latencies ``c_ij``.  The diagonal must be zero.  The matrix does not
        have to be symmetric, but the topology generators in
        :mod:`repro.net` produce symmetric matrices.
    """

    speeds: np.ndarray
    loads: np.ndarray
    latency: np.ndarray
    _hash: int = field(default=0, compare=False, repr=False)
    #: True when some link is forbidden (``c_ij = inf`` — the §II
    #: neighbour/trust restriction); kernels then use inf-safe arithmetic.
    has_inf_latency: bool = field(default=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        s = np.asarray(self.speeds, dtype=np.float64)
        n = np.asarray(self.loads, dtype=np.float64)
        c = np.asarray(self.latency, dtype=np.float64)
        if s.ndim != 1:
            raise ValueError(f"speeds must be 1-D, got shape {s.shape}")
        m = s.shape[0]
        if m == 0:
            raise ValueError("an instance needs at least one server")
        if n.shape != (m,):
            raise ValueError(f"loads must have shape ({m},), got {n.shape}")
        if c.shape != (m, m):
            raise ValueError(f"latency must have shape ({m}, {m}), got {c.shape}")
        if not np.all(np.isfinite(s)) or np.any(s <= 0):
            raise ValueError("speeds must be finite and strictly positive")
        if not np.all(np.isfinite(n)) or np.any(n < 0):
            raise ValueError("loads must be finite and non-negative")
        if np.any(np.isnan(c)) or np.any(c < 0):
            raise ValueError("latencies must be non-negative (inf allowed)")
        if np.any(np.diagonal(c) != 0):
            raise ValueError("latency diagonal (c_ii) must be zero")
        s = np.ascontiguousarray(s)
        n = np.ascontiguousarray(n)
        c = np.ascontiguousarray(c)
        s.setflags(write=False)
        n.setflags(write=False)
        c.setflags(write=False)
        object.__setattr__(self, "speeds", s)
        object.__setattr__(self, "loads", n)
        object.__setattr__(self, "latency", c)
        object.__setattr__(self, "has_inf_latency", bool(np.isinf(c).any()))
        object.__setattr__(
            self,
            "_hash",
            hash((s.tobytes(), n.tobytes(), c.tobytes())),
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of organizations / servers."""
        return self.speeds.shape[0]

    @property
    def total_load(self) -> float:
        """Total number of requests in the system, ``Σ n_i``."""
        return float(self.loads.sum())

    @property
    def average_load(self) -> float:
        """Average initial load per server, ``l_av``."""
        return self.total_load / self.m

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return (
            np.array_equal(self.speeds, other.speeds)
            and np.array_equal(self.loads, other.loads)
            and np.array_equal(self.latency, other.latency)
        )

    # ------------------------------------------------------------------
    # Convenience predicates used by the theory module
    # ------------------------------------------------------------------
    def is_homogeneous(self, rtol: float = 1e-12) -> bool:
        """True when all speeds are equal and all off-diagonal latencies are
        equal — the setting of Section V-A of the paper."""
        s0 = self.speeds[0]
        if not np.allclose(self.speeds, s0, rtol=rtol, atol=0):
            return False
        off = self.latency[~np.eye(self.m, dtype=bool)]
        if off.size == 0:
            return True
        return bool(np.allclose(off, off.flat[0], rtol=rtol, atol=0))

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @staticmethod
    def homogeneous(
        m: int,
        *,
        speed: float = 1.0,
        delay: float = 20.0,
        loads: np.ndarray | float | None = None,
    ) -> "Instance":
        """Build the homogeneous network of Section V-A: equal speeds and a
        single constant latency ``delay`` between every pair of servers."""
        s = np.full(m, float(speed))
        c = np.full((m, m), float(delay))
        np.fill_diagonal(c, 0.0)
        if loads is None:
            n = np.zeros(m)
        elif np.isscalar(loads):
            n = np.full(m, float(loads))
        else:
            n = np.asarray(loads, dtype=np.float64)
        return Instance(s, n, c)

    def with_loads(self, loads: np.ndarray) -> "Instance":
        """Return a copy of this instance with different initial loads."""
        return Instance(self.speeds, loads, self.latency)

    def with_speeds(self, speeds: np.ndarray) -> "Instance":
        """Return a copy of this instance with different server speeds."""
        return Instance(speeds, self.loads, self.latency)
