"""Centralized solvers for the cooperative optimum (Section III).

The paper shows the problem is a convex QP (``ρᵀQρ + bᵀρ`` with
row-stochastic constraints) and hence polynomially solvable, but with an
impractical ``O(L m⁶)`` bound for off-the-shelf solvers.  This module
provides three solvers of increasing practicality:

* :func:`solve_qp_scipy` — the literal QP of Section III handed to
  ``scipy.optimize`` (SLSQP with exact gradient).  Exponentially many
  variables (``m²``), only used on small instances as the ground truth.
* :func:`solve_fista` — accelerated projected gradient on the allocation
  matrix ``R`` with per-row Euclidean projection onto the scaled simplex.
* :func:`solve_coordinate_descent` — cyclic exact block minimization; each
  row update is a closed-form water-fill on the marginal
  ``a_j = c_ij + l_j^{-i}/s_j``.  This is the fastest and serves as the
  reference optimum for the experiments (the paper similarly approximates
  the optimum with its distributed algorithm).

All return an :class:`~repro.core.state.AllocationState`.
"""

from __future__ import annotations

import numpy as np

from .cost import build_qp, total_cost
from .instance import Instance
from .state import AllocationState
from .waterfill import waterfill

__all__ = [
    "project_simplex",
    "solve_qp_scipy",
    "solve_fista",
    "solve_coordinate_descent",
    "solve_optimal",
]


def project_simplex(y: np.ndarray, total: float) -> np.ndarray:
    """Euclidean projection of ``y`` onto ``{x ≥ 0, Σx = total}``.

    Standard sort-based algorithm (Held–Wolfe–Crowder).  ``total = 0``
    returns the zero vector.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if total == 0:
        return np.zeros_like(y)
    u = np.sort(y)[::-1]
    css = np.cumsum(u) - total
    k = np.arange(1, y.shape[0] + 1)
    cond = u - css / k > 0
    rho = int(np.max(np.flatnonzero(cond))) + 1
    theta = css[rho - 1] / rho
    return np.maximum(y - theta, 0.0)


def solve_qp_scipy(inst: Instance, *, tol: float = 1e-12) -> AllocationState:
    """Solve the exact Section III QP with scipy (small ``m`` only).

    Organizations with ``n_i = 0`` contribute nothing to the objective; for
    them the convention ``ρ_ii = 1`` is used.
    """
    from scipy.optimize import LinearConstraint, minimize

    m = inst.m
    if m > 12:
        raise ValueError(
            "solve_qp_scipy builds dense m²×m² matrices; use "
            "solve_coordinate_descent for m > 12"
        )
    Q, b, A = build_qp(inst)
    Qs = Q + Q.T  # symmetrized for the gradient

    def fun(rho: np.ndarray) -> float:
        return float(rho @ Q @ rho + b @ rho)

    def jac(rho: np.ndarray) -> np.ndarray:
        return Qs @ rho + b

    x0 = np.full(m * m, 1.0 / m)
    res = minimize(
        fun,
        x0,
        jac=jac,
        hess=lambda _rho: Qs,
        method="trust-constr",
        bounds=[(0.0, 1.0)] * (m * m),
        constraints=[LinearConstraint(A, 1.0, 1.0)],
        options={"maxiter": 3000, "gtol": 1e-12, "xtol": 1e-14},
    )
    rho = np.clip(res.x.reshape(m, m), 0.0, None)
    rho /= rho.sum(axis=1, keepdims=True)
    return AllocationState.from_fractions(inst, rho)


def solve_fista(
    inst: Instance,
    *,
    max_iterations: int = 2000,
    tol: float = 1e-10,
    state: AllocationState | None = None,
) -> AllocationState:
    """Accelerated projected gradient (FISTA) on ``F(R)``.

    The gradient is ``∇F = l_j/s_j + c_ij`` and its Lipschitz constant over
    the feasible set is ``m / min_j s_j`` (each destination column couples
    all ``m`` rows through the load).
    """
    m = inst.m
    n = inst.loads
    c = inst.latency
    s = inst.speeds
    x = (state.R if state is not None else np.diag(n)).copy()
    y = x.copy()
    t = 1.0
    step = float(np.min(s)) / m
    prev_cost = total_cost(inst, x)
    for _ in range(max_iterations):
        l = y.sum(axis=0)
        grad = (l / s)[None, :] + c
        z = y - step * grad
        x_new = np.empty_like(x)
        for i in range(m):
            x_new[i] = project_simplex(z[i], n[i])
        t_new = 0.5 * (1 + np.sqrt(1 + 4 * t * t))
        y = x_new + ((t - 1) / t_new) * (x_new - x)
        x, t = x_new, t_new
        cost = total_cost(inst, x)
        if abs(prev_cost - cost) <= tol * max(1.0, abs(prev_cost)):
            break
        prev_cost = cost
    return AllocationState(inst, x, validate=False)


def solve_coordinate_descent(
    inst: Instance,
    *,
    max_passes: int = 500,
    tol: float = 1e-12,
    state: AllocationState | None = None,
) -> AllocationState:
    """Cyclic exact block minimization of ``ΣCi`` (reference optimum).

    Each pass rewrites every owning organization's row with the exact
    minimizer of ``F`` restricted to that row — a water-fill with marginal
    ``a_j = c_ij + l_j^{-i} / s_j``.  For this smooth convex objective over
    a product of simplices, cyclic exact block descent converges to the
    global optimum (Tseng 2001).
    """
    st = state.copy() if state is not None else AllocationState.initial(inst)
    n = inst.loads
    s = inst.speeds
    c = inst.latency
    owners = np.flatnonzero(n > 0)
    prev = st.total_cost()
    for _ in range(max_passes):
        for i in owners:
            l_minus = st.loads - st.R[i]
            a = c[i] + l_minus / s
            st.set_row(int(i), waterfill(s, a, float(n[i])))
        cost = st.total_cost()
        if prev - cost <= tol * max(1.0, abs(prev)):
            break
        prev = cost
    st.refresh_loads()
    return st


def solve_optimal(
    inst: Instance,
    *,
    method: str = "auto",
    tol: float = 1e-12,
) -> AllocationState:
    """Compute (a high-precision approximation of) the cooperative optimum.

    ``method`` is one of ``"auto"``, ``"cd"``, ``"fista"``, ``"qp"``.
    ``"auto"`` uses coordinate descent, the practical choice at any scale.
    """
    if method == "auto" or method == "cd":
        return solve_coordinate_descent(inst, tol=tol)
    if method == "fista":
        return solve_fista(inst, tol=tol)
    if method == "qp":
        return solve_qp_scipy(inst, tol=tol)
    raise ValueError(f"unknown method {method!r}")
