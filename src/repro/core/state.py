"""Mutable allocation state shared by all optimizers.

The state tracks the request matrix ``R`` (row ``i`` = organization ``i``'s
requests, column ``j`` = executing server), the maintained load vector and
incremental cost bookkeeping so that pairwise exchanges (Algorithm 1) and
row rewrites (best responses) are cheap.
"""

from __future__ import annotations

import numpy as np

from . import cost as _cost
from .instance import Instance

__all__ = ["AllocationState"]


class AllocationState:
    """Allocation of every organization's requests over the servers.

    The canonical construction is :meth:`initial`, in which every
    organization runs its own requests locally (``R = diag(n)``) — the
    starting point of both the distributed algorithm and the best-response
    dynamics in the paper.
    """

    __slots__ = ("inst", "R", "loads")

    def __init__(self, inst: Instance, R: np.ndarray, *, validate: bool = True):
        self.inst = inst
        self.R = np.array(R, dtype=np.float64)
        if self.R.shape != (inst.m, inst.m):
            raise ValueError(f"R must be ({inst.m}, {inst.m}), got {self.R.shape}")
        if validate:
            if np.any(self.R < -1e-9):
                raise ValueError("allocation entries must be non-negative")
            np.clip(self.R, 0.0, None, out=self.R)
            row = self.R.sum(axis=1)
            if not np.allclose(row, inst.loads, rtol=1e-9, atol=1e-6):
                raise ValueError("row sums of R must equal the initial loads n_i")
        self.loads = self.R.sum(axis=0)

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, inst: Instance) -> "AllocationState":
        """Every organization executes its own requests locally."""
        return cls(inst, np.diag(inst.loads), validate=False)

    @classmethod
    def from_fractions(cls, inst: Instance, rho: np.ndarray) -> "AllocationState":
        """Build a state from a row-stochastic fraction matrix ``ρ``."""
        rho = np.asarray(rho, dtype=np.float64)
        if rho.shape != (inst.m, inst.m):
            raise ValueError("rho must be an (m, m) matrix")
        if np.any(rho < -1e-12):
            raise ValueError("fractions must be non-negative")
        if not np.allclose(rho.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("each row of rho must sum to 1")
        return cls(inst, rho * inst.loads[:, None])

    def copy(self) -> "AllocationState":
        return AllocationState(self.inst, self.R.copy(), validate=False)

    # ------------------------------------------------------------------
    # Cost accessors
    # ------------------------------------------------------------------
    def total_cost(self) -> float:
        """System objective ``ΣCi``."""
        return _cost.total_cost(self.inst, self.R, self.loads)

    def per_org_cost(self) -> np.ndarray:
        """Vector of per-organization costs ``Ci``."""
        return _cost.per_org_cost(self.inst, self.R, self.loads)

    def fractions(self) -> np.ndarray:
        """Relay-fraction matrix ``ρ`` (rows with ``n_i = 0`` map to the
        identity convention ``ρ_ii = 1``)."""
        n = self.inst.loads
        rho = np.zeros_like(self.R)
        pos = n > 0
        rho[pos] = self.R[pos] / n[pos, None]
        for i in np.flatnonzero(~pos):
            rho[i, i] = 1.0
        return rho

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def set_row(self, i: int, row: np.ndarray) -> None:
        """Replace organization ``i``'s allocation (best-response update)."""
        row = np.asarray(row, dtype=np.float64)
        self.loads += row - self.R[i]
        self.R[i] = row

    def apply_pair_columns(
        self, i: int, j: int, col_i: np.ndarray, col_j: np.ndarray
    ) -> None:
        """Overwrite columns ``i`` and ``j`` of ``R`` (the effect of one
        Algorithm 1 exchange); per-organization totals must be preserved by
        the caller."""
        self.loads[i] += col_i.sum() - self.R[:, i].sum()
        self.loads[j] += col_j.sum() - self.R[:, j].sum()
        self.R[:, i] = col_i
        self.R[:, j] = col_j

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self, atol: float = 1e-6) -> None:
        """Raise if the state violates the model invariants."""
        if np.any(self.R < -1e-9):
            raise AssertionError("negative allocation entry")
        row = self.R.sum(axis=1)
        if not np.allclose(row, self.inst.loads, atol=atol, rtol=1e-7):
            raise AssertionError("row sums drifted from initial loads")
        if not np.allclose(self.loads, self.R.sum(axis=0), atol=atol, rtol=1e-7):
            raise AssertionError("cached load vector drifted")

    def refresh_loads(self) -> None:
        """Recompute the cached load vector from scratch (kills float drift
        after very long optimization runs)."""
        self.loads = self.R.sum(axis=0)
