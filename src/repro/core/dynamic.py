"""Balancing under dynamically changing loads.

The paper's abstract promises that "the distributed algorithm is
efficient, therefore it can be used in networks with dynamically changing
loads": because MinE converges in a handful of iterations, it can track a
drifting workload by running a few sweeps per epoch instead of resolving
from scratch.  This module provides that operational layer:

* :class:`LoadProcess` — a synthetic workload generator: per-organization
  diurnal sine waves with random phases, multiplicative noise, and
  occasional flash-crowd spikes (the "peaks of demand followed by long
  periods of low activity" of Section I);
* :class:`DynamicBalancer` — an epoch loop that re-targets the allocation
  after every load change, warm-starting MinE from the previous epoch's
  fractions, and records the tracking error against the per-epoch
  optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .distributed import MinEOptimizer
from .instance import Instance
from .qp import solve_coordinate_descent
from .state import AllocationState

__all__ = ["LoadProcess", "EpochRecord", "DynamicBalancer"]


class LoadProcess:
    """Synthetic time-varying per-organization loads.

    ``loads(t) = base · (1 + amp·sin(2π t/period + φ_i)) · noise + spike``
    with independent random phases ``φ_i``, log-normal noise and Poisson
    flash crowds that multiply one organization's load for one epoch.
    """

    def __init__(
        self,
        base: np.ndarray,
        *,
        amplitude: float = 0.6,
        period: float = 24.0,
        noise_sigma: float = 0.1,
        spike_rate: float = 0.05,
        spike_factor: float = 20.0,
        rng: np.random.Generator | int | None = None,
    ):
        self.base = np.asarray(base, dtype=np.float64)
        if np.any(self.base < 0):
            raise ValueError("base loads must be non-negative")
        self.amplitude = amplitude
        self.period = period
        self.noise_sigma = noise_sigma
        self.spike_rate = spike_rate
        self.spike_factor = spike_factor
        self.rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self.phases = self.rng.uniform(0, 2 * np.pi, size=self.base.shape[0])

    def sample(self, t: float) -> np.ndarray:
        """Loads at epoch ``t`` (stochastic: noise and spikes re-drawn)."""
        m = self.base.shape[0]
        wave = 1.0 + self.amplitude * np.sin(
            2 * np.pi * t / self.period + self.phases
        )
        noise = self.rng.lognormal(0.0, self.noise_sigma, size=m)
        loads = self.base * wave * noise
        if self.rng.uniform() < self.spike_rate * m:
            victim = int(self.rng.integers(0, m))
            loads[victim] *= self.spike_factor
        return np.maximum(loads, 0.0)


@dataclass
class EpochRecord:
    """Diagnostics for one epoch of dynamic balancing."""

    epoch: int
    cost: float
    optimum: float
    sweeps_used: int
    moved: float

    @property
    def tracking_error(self) -> float:
        """Relative excess cost over the epoch's optimum."""
        if self.optimum <= 0:
            return 0.0
        return (self.cost - self.optimum) / self.optimum


@dataclass
class DynamicBalancer:
    """Track a :class:`LoadProcess` with a few MinE sweeps per epoch.

    At each epoch the new loads are observed, the previous epoch's relay
    *fractions* are re-applied to the new volumes (warm start) and at most
    ``sweeps_per_epoch`` MinE iterations run.  ``history`` records the
    per-epoch tracking error against a freshly computed optimum.
    """

    inst_template: Instance
    process: LoadProcess
    sweeps_per_epoch: int = 2
    rel_tol: float = 0.02
    rng_seed: int = 0
    history: list[EpochRecord] = field(default_factory=list)
    _fractions: np.ndarray | None = None

    def run(self, epochs: int, *, compute_optimum: bool = True) -> list[EpochRecord]:
        """Advance the given number of epochs; returns the new records."""
        new_records: list[EpochRecord] = []
        start = len(self.history)
        for e in range(start, start + epochs):
            loads = self.process.sample(float(e))
            inst = self.inst_template.with_loads(loads)
            state = self._warm_start(inst)
            optimizer = MinEOptimizer(state, rng=self.rng_seed + e)
            moved = 0.0
            used = 0
            for _ in range(self.sweeps_per_epoch):
                stats = optimizer.sweep()
                moved += stats.total_moved
                used += 1
                if stats.improvement <= 1e-9 * max(1.0, stats.cost_before):
                    break
            optimum = (
                solve_coordinate_descent(inst, state=state, tol=1e-11).total_cost()
                if compute_optimum
                else 0.0
            )
            record = EpochRecord(
                epoch=e,
                cost=state.total_cost(),
                optimum=optimum,
                sweeps_used=used,
                moved=moved,
            )
            new_records.append(record)
            self.history.append(record)
            self._fractions = state.fractions()
        return new_records

    def _warm_start(self, inst: Instance) -> AllocationState:
        if self._fractions is None:
            return AllocationState.initial(inst)
        return AllocationState.from_fractions(inst, self._fractions)

    def mean_tracking_error(self) -> float:
        if not self.history:
            return 0.0
        return float(np.mean([r.tracking_error for r in self.history]))
