"""Balancing under dynamically changing loads.

The paper's abstract promises that "the distributed algorithm is
efficient, therefore it can be used in networks with dynamically changing
loads": because MinE converges in a handful of iterations, it can track a
drifting workload by running a few sweeps per epoch instead of resolving
from scratch.  This module provides that operational layer:

* :class:`LoadProcess` — a synthetic workload generator: per-organization
  diurnal sine waves with random phases, multiplicative noise, and
  occasional flash-crowd spikes (the "peaks of demand followed by long
  periods of low activity" of Section I);
* :class:`DynamicBalancer` — an epoch loop that re-targets the allocation
  after every load change, warm-starting MinE from the previous epoch's
  fractions, and records the tracking error against the per-epoch
  optimum;
* :func:`retarget_allocation` / :func:`retarget_rows` — the warm-start
  primitive itself: re-apply an allocation's routing *fractions* to a new
  demand vector, preserving where each organization sends its work;
* :func:`reoptimize` — exchange-budget-capped incremental MinE: run
  sweeps on an existing (typically retargeted) allocation until it
  re-tracks to a relative bound against the epoch's optimum, the
  improvement stalls, or the exchange budget runs out.  This is the
  re-solve kernel behind the stateful solvers of :mod:`repro.tracking`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .distributed import MinEOptimizer
from .instance import Instance
from .qp import solve_coordinate_descent
from .state import AllocationState

__all__ = [
    "LoadProcess",
    "EpochRecord",
    "DynamicBalancer",
    "retarget_rows",
    "retarget_allocation",
    "ReoptimizeResult",
    "reoptimize",
]


def retarget_rows(R: np.ndarray, old_loads: np.ndarray, new_loads: np.ndarray) -> None:
    """Rescale the request matrix ``R`` *in place* so row ``i`` sums to
    ``new_loads[i]`` while keeping its routing fractions.

    Rows whose previous demand was zero have no fractions to preserve;
    they fall back to the all-local convention (``r_ii = n_i``).
    """
    old = np.asarray(old_loads, dtype=np.float64)
    new = np.asarray(new_loads, dtype=np.float64)
    pos = old > 0
    scale = np.where(pos, new / np.where(pos, old, 1.0), 0.0)
    R *= scale[:, None]
    for i in np.flatnonzero(~pos):
        R[i, i] = new[i]


def retarget_allocation(state: AllocationState, inst: Instance) -> AllocationState:
    """A fresh :class:`AllocationState` on ``inst`` that re-applies
    ``state``'s routing fractions to ``inst``'s demand (the warm start of
    every incremental re-solve).  ``inst`` must share ``state``'s server
    count; speeds/latencies are free to differ."""
    if inst.m != state.inst.m:
        raise ValueError(
            f"cannot retarget an m={state.inst.m} allocation onto m={inst.m}"
        )
    R = state.R.copy()
    retarget_rows(R, state.inst.loads, inst.loads)
    return AllocationState(inst, R, validate=False)


@dataclass
class ReoptimizeResult:
    """What one :func:`reoptimize` call did."""

    sweeps: int
    exchanges: int
    #: Cumulative exchange count when the relative bound was first met
    #: (``nan`` when it never was, or no optimum was supplied).
    exchanges_to_bound: float
    moved: float
    cost: float
    converged: bool
    #: Algorithm 1 kernel dispatches made by the re-solve and the total
    #: candidate count they covered (candidates/calls = batching factor).
    kernel_calls: int = 0
    kernel_candidates: int = 0


def reoptimize(
    state: AllocationState,
    *,
    rng: np.random.Generator | int | None = None,
    optimum: float | None = None,
    rel_tol: float = 0.02,
    max_sweeps: int = 60,
    exchange_budget: int | None = None,
    strategy: str = "auto",
    screen_width: int = 16,
    min_improvement: float = 1e-9,
    stall_tol: float = 1e-10,
) -> ReoptimizeResult:
    """Incrementally re-optimize ``state`` in place with MinE sweeps.

    Sweeps run until the cost is within ``rel_tol`` of ``optimum`` (when
    given), the per-sweep improvement stalls, ``max_sweeps`` is reached,
    or the cumulative exchange count reaches ``exchange_budget``.  The
    budget is a *hard* cap — the remaining allowance is threaded into
    each sweep, which truncates mid-iteration when it runs out — so an
    epoch's re-solve can never consume more pairwise exchanges than
    budgeted, making per-epoch tracking work predictable.
    """

    def _within(cost: float) -> bool:
        if optimum is None:
            return False
        denom = optimum if optimum > 0 else 1.0
        return (cost - optimum) / denom <= rel_tol

    cost = state.total_cost()
    if _within(cost):
        return ReoptimizeResult(0, 0, 0.0, 0.0, cost, True)
    optimizer = MinEOptimizer(
        state,
        rng=rng,
        strategy=strategy,
        screen_width=screen_width,
        min_improvement=min_improvement,
    )
    sweeps = exchanges = 0
    moved = 0.0
    exchanges_to_bound = float("nan")
    converged = False
    for _ in range(max_sweeps):
        remaining = (
            exchange_budget - exchanges if exchange_budget is not None else None
        )
        stats = optimizer.sweep(max_exchanges=remaining)
        sweeps += 1
        exchanges += stats.exchanges
        moved += stats.total_moved
        cost = stats.cost_after
        if _within(cost):
            exchanges_to_bound = float(exchanges)
            converged = True
            break
        if exchange_budget is not None and exchanges >= exchange_budget:
            break
        if stats.improvement <= stall_tol * max(1.0, stats.cost_before):
            converged = optimum is None
            break
    return ReoptimizeResult(
        sweeps, exchanges, exchanges_to_bound, moved, cost, converged,
        kernel_calls=optimizer.kernel_stats.kernel_calls,
        kernel_candidates=optimizer.kernel_stats.kernel_candidates,
    )


class LoadProcess:
    """Synthetic time-varying per-organization loads.

    ``loads(t) = base · (1 + amp·sin(2π t/period + φ_i)) · noise + spike``
    with independent random phases ``φ_i``, log-normal noise and Poisson
    flash crowds that multiply one organization's load for one epoch.
    """

    def __init__(
        self,
        base: np.ndarray,
        *,
        amplitude: float = 0.6,
        period: float = 24.0,
        noise_sigma: float = 0.1,
        spike_rate: float = 0.05,
        spike_factor: float = 20.0,
        rng: np.random.Generator | int | None = None,
    ):
        self.base = np.asarray(base, dtype=np.float64)
        if np.any(self.base < 0):
            raise ValueError("base loads must be non-negative")
        self.amplitude = amplitude
        self.period = period
        self.noise_sigma = noise_sigma
        self.spike_rate = spike_rate
        self.spike_factor = spike_factor
        self.rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self.phases = self.rng.uniform(0, 2 * np.pi, size=self.base.shape[0])

    def sample(self, t: float) -> np.ndarray:
        """Loads at epoch ``t`` (stochastic: noise and spikes re-drawn)."""
        m = self.base.shape[0]
        wave = 1.0 + self.amplitude * np.sin(
            2 * np.pi * t / self.period + self.phases
        )
        noise = self.rng.lognormal(0.0, self.noise_sigma, size=m)
        loads = self.base * wave * noise
        if self.rng.uniform() < self.spike_rate * m:
            victim = int(self.rng.integers(0, m))
            loads[victim] *= self.spike_factor
        return np.maximum(loads, 0.0)


@dataclass
class EpochRecord:
    """Diagnostics for one epoch of dynamic balancing."""

    epoch: int
    cost: float
    optimum: float
    sweeps_used: int
    moved: float

    @property
    def tracking_error(self) -> float:
        """Relative excess cost over the epoch's optimum."""
        if self.optimum <= 0:
            return 0.0
        return (self.cost - self.optimum) / self.optimum


@dataclass
class DynamicBalancer:
    """Track a :class:`LoadProcess` with a few MinE sweeps per epoch.

    At each epoch the new loads are observed, the previous epoch's relay
    *fractions* are re-applied to the new volumes (warm start) and at most
    ``sweeps_per_epoch`` MinE iterations run.  ``history`` records the
    per-epoch tracking error against a freshly computed optimum.
    """

    inst_template: Instance
    process: LoadProcess
    sweeps_per_epoch: int = 2
    rel_tol: float = 0.02
    rng_seed: int = 0
    history: list[EpochRecord] = field(default_factory=list)
    _fractions: np.ndarray | None = None

    def run(self, epochs: int, *, compute_optimum: bool = True) -> list[EpochRecord]:
        """Advance the given number of epochs; returns the new records."""
        new_records: list[EpochRecord] = []
        start = len(self.history)
        for e in range(start, start + epochs):
            loads = self.process.sample(float(e))
            inst = self.inst_template.with_loads(loads)
            state = self._warm_start(inst)
            optimizer = MinEOptimizer(state, rng=self.rng_seed + e)
            moved = 0.0
            used = 0
            for _ in range(self.sweeps_per_epoch):
                stats = optimizer.sweep()
                moved += stats.total_moved
                used += 1
                if stats.improvement <= 1e-9 * max(1.0, stats.cost_before):
                    break
            optimum = (
                solve_coordinate_descent(inst, state=state, tol=1e-11).total_cost()
                if compute_optimum
                else 0.0
            )
            record = EpochRecord(
                epoch=e,
                cost=state.total_cost(),
                optimum=optimum,
                sweeps_used=used,
                moved=moved,
            )
            new_records.append(record)
            self.history.append(record)
            self._fractions = state.fractions()
        return new_records

    def _warm_start(self, inst: Instance) -> AllocationState:
        if self._fractions is None:
            return AllocationState.initial(inst)
        return AllocationState.from_fractions(inst, self._fractions)

    def mean_tracking_error(self) -> float:
        if not self.history:
            return 0.0
        return float(np.mean([r.tracking_error for r in self.history]))
