"""Theoretical results of Section V-A (homogeneous networks).

* **Lemma 3** — at a Nash equilibrium of a homogeneous network (equal
  speeds ``s``, equal delays ``c``) the loads of any two servers differ by
  at most ``c·s``.
* **Theorem 1** — the price of anarchy satisfies

      1 + 2cs/l_av − 4 (cs/l_av)²  ≤  PoA  ≤  1 + 2cs/l_av + (cs/l_av)²

  so ``PoA = 1 + 2cs/l_av + O((cs/l_av)²)`` — low whenever servers are
  loaded relative to the delay (``l_av ≫ cs``).
* The **tightness construction**: with equal initial loads ``n_i = l_av``
  every selfish server redirects ``(l_av − 2cs)/m`` requests to every other
  server and keeps ``2cs + (l_av − 2cs)/m`` — a Nash equilibrium with the
  same loads as the optimum but ``m(l_av − 2cs)(m−1)/m · c`` of wasted
  communication.
"""

from __future__ import annotations

import numpy as np

from .instance import Instance
from .state import AllocationState

__all__ = [
    "poa_upper_bound",
    "poa_lower_bound",
    "lemma3_bound",
    "lemma3_violation",
    "homogeneous_nash_construction",
]


def _homogeneous_params(inst: Instance) -> tuple[float, float, float]:
    if not inst.is_homogeneous():
        raise ValueError("Theorem 1 applies only to homogeneous networks")
    s = float(inst.speeds[0])
    if inst.m < 2:
        raise ValueError("need at least two servers")
    c = float(inst.latency[0, 1])
    lav = inst.average_load
    return s, c, lav


def poa_upper_bound(inst: Instance) -> float:
    """Theorem 1 upper bound ``1 + 2cs/l_av + (cs/l_av)²``."""
    s, c, lav = _homogeneous_params(inst)
    if lav <= 0:
        return 1.0
    x = c * s / lav
    return 1.0 + 2.0 * x + x * x


def poa_lower_bound(inst: Instance) -> float:
    """Theorem 1 lower (tightness) bound ``1 + 2cs/l_av − 4 (cs/l_av)²``,
    clipped at 1 (the price of anarchy is never below 1)."""
    s, c, lav = _homogeneous_params(inst)
    if lav <= 0:
        return 1.0
    x = c * s / lav
    return max(1.0, 1.0 + 2.0 * x - 4.0 * x * x)


def lemma3_bound(inst: Instance) -> float:
    """The Lemma 3 load-spread bound ``c·s`` for a homogeneous instance."""
    s, c, _ = _homogeneous_params(inst)
    return c * s


def lemma3_violation(inst: Instance, state: AllocationState) -> float:
    """How much the equilibrium loads violate Lemma 3:
    ``max_{i,j} |l_i − l_j| − c·s`` (non-positive means the lemma holds)."""
    bound = lemma3_bound(inst)
    spread = float(state.loads.max() - state.loads.min())
    return spread - bound


def homogeneous_nash_construction(inst: Instance) -> AllocationState:
    """The explicit Nash equilibrium from the tightness proof of Theorem 1.

    Requires a homogeneous instance with equal initial loads
    ``n_i = l_av ≥ 2cs``.  Each server keeps ``2cs + (l_av − 2cs)/m`` of its
    own requests and relays ``(l_av − 2cs)/m`` to every other server; all
    loads stay ``l_av`` but communication is maximal among equilibria.
    """
    s, c, lav = _homogeneous_params(inst)
    if not np.allclose(inst.loads, lav):
        raise ValueError("the construction needs equal initial loads")
    share = (lav - 2.0 * c * s) / inst.m
    if share < 0:
        raise ValueError("construction requires l_av ≥ 2·c·s")
    m = inst.m
    R = np.full((m, m), share)
    np.fill_diagonal(R, 2.0 * c * s + share)
    return AllocationState(inst, R)
