"""Cost functions and the explicit quadratic-program form of Section III.

Notation (paper Section II): ``R[i, j] = r_ij`` is the number of requests
owned by organization ``i`` and executed on server ``j``; the load of server
``j`` is ``l_j = Σ_i r_ij``.  The expected total completion time of the
requests relayed by ``i`` to ``j`` is ``r_ij (l_j / (2 s_j) + c_ij)``, hence

    Ci   = Σ_j r_ij (l_j / (2 s_j) + c_ij)               (eq. 1)
    ΣCi  = Σ_j l_j² / (2 s_j) + Σ_{i,j} c_ij r_ij

Section III rewrites ``ΣCi`` as ``ρᵀ Q ρ + bᵀ ρ`` over the flattened vector
of relay *fractions* ``ρ_ij = r_ij / n_i``; :func:`build_qp` constructs the
matrices ``Q`` (eq. 2), ``b`` and the row-stochasticity constraint ``A``
(eq. 6) exactly as printed, which the tests use to cross-validate the fast
vectorized objective.
"""

from __future__ import annotations

import numpy as np

from .instance import Instance

__all__ = [
    "server_loads",
    "total_cost",
    "per_org_cost",
    "cost_gradient",
    "selfish_marginal",
    "build_qp",
    "qp_objective",
]


def server_loads(R: np.ndarray) -> np.ndarray:
    """Load vector ``l_j = Σ_i r_ij`` of an allocation matrix."""
    return np.asarray(R, dtype=np.float64).sum(axis=0)


def _comm_cost_matrix(latency: np.ndarray, R: np.ndarray) -> np.ndarray:
    """Per-entry communication cost ``c_ij r_ij`` with the convention
    ``inf · 0 = 0`` (forbidden links carrying no load cost nothing)."""
    if not np.isinf(latency).any():
        return latency * R
    out = np.where(np.isfinite(latency), latency, 0.0) * R
    out[(R > 1e-12) & np.isinf(latency)] = np.inf
    return out


def total_cost(inst: Instance, R: np.ndarray, loads: np.ndarray | None = None) -> float:
    """System objective ``ΣCi = Σ_j l_j²/(2 s_j) + Σ_{ij} c_ij r_ij``."""
    R = np.asarray(R, dtype=np.float64)
    l = server_loads(R) if loads is None else np.asarray(loads, dtype=np.float64)
    congestion = float((l * l / (2.0 * inst.speeds)).sum())
    comm = float(_comm_cost_matrix(inst.latency, R).sum())
    return congestion + comm


def per_org_cost(
    inst: Instance, R: np.ndarray, loads: np.ndarray | None = None
) -> np.ndarray:
    """Vector of per-organization costs ``Ci`` (eq. 1)."""
    R = np.asarray(R, dtype=np.float64)
    l = server_loads(R) if loads is None else np.asarray(loads, dtype=np.float64)
    handling = l / (2.0 * inst.speeds)  # expected per-request handling time
    return (R * handling[None, :]).sum(axis=1) + _comm_cost_matrix(
        inst.latency, R
    ).sum(axis=1)


def cost_gradient(inst: Instance, R: np.ndarray) -> np.ndarray:
    """Gradient of ``ΣCi`` with respect to ``R``:
    ``∂ΣCi/∂r_ij = l_j / s_j + c_ij`` (identical for every row ``i`` up to
    the latency term)."""
    l = server_loads(R)
    return (l / inst.speeds)[None, :] + inst.latency


def selfish_marginal(inst: Instance, R: np.ndarray, i: int) -> np.ndarray:
    """Marginal cost organization ``i`` sees when adding load to each server:
    ``∂Ci/∂r_ij = l_j/(2 s_j) + r_ij/(2 s_j) + c_ij``."""
    l = server_loads(R)
    return (l + R[i]) / (2.0 * inst.speeds) + inst.latency[i]


# ----------------------------------------------------------------------
# Explicit QP form of Section III (used for cross-validation and the
# scipy-based exact solver on small instances).
# ----------------------------------------------------------------------
def build_qp(inst: Instance) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build ``(Q, b, A)`` with ``ΣCi(ρ) = ρᵀQρ + bᵀρ`` and ``Aρ = 1``.

    ``ρ`` is the length-``m²`` vector of relay fractions in row-major order
    (``ρ[i*m + j] = ρ_ij``).  Per eq. (2) of the paper::

        q_{(i,j),(k,l)} = n_i n_k / s_j      if j == l and i <  k
                        = n_i n_k / (2 s_j)  if j == l and i == k
                        = 0                  otherwise

    and ``b_{(i,j)} = c_ij n_i``.  ``A`` (eq. 6) encodes ``Σ_j ρ_ij = 1``.
    """
    m = inst.m
    n = inst.loads
    s = inst.speeds
    Q = np.zeros((m * m, m * m))
    for j in range(m):
        # Entries with the same destination column j interact.
        for i in range(m):
            row = i * m + j
            Q[row, row] = n[i] * n[i] / (2.0 * s[j])
            for k in range(i + 1, m):
                Q[row, k * m + j] = n[i] * n[k] / s[j]
    b = (inst.latency * n[:, None]).reshape(-1)
    A = np.zeros((m, m * m))
    for i in range(m):
        A[i, i * m : (i + 1) * m] = 1.0
    return Q, b, A


def qp_objective(Q: np.ndarray, b: np.ndarray, rho: np.ndarray) -> float:
    """Evaluate ``ρᵀQρ + bᵀρ`` for a flattened fraction vector."""
    rho = np.asarray(rho, dtype=np.float64)
    return float(rho @ Q @ rho + b @ rho)
