"""Discrete tasks of different sizes — first extension of Section VII.

When the load consists of indivisible tasks ``J_i = {J_i(k)}`` with sizes
``p_i(k)``, the paper solves the fractional problem with
``n_i = Σ_k p_i(k)`` and then *rounds*: organization ``i`` must pick a
partition ``{S_i(j)}`` of its tasks over the servers minimizing the total
deviation ``Σ_j |Σ_{k ∈ S_i(j)} p_i(k) − ρ_ij n_i|`` — an instance of the
multiple subset-sum problem with different knapsack capacities
(NP-complete; a PTAS exists [Caprara et al. 2000]).

This module implements the pipeline: fractional solve → per-organization
rounding with a greedy largest-task-first heuristic refined by
single-task relocations — plus exact brute force for tiny inputs, used by
the tests to measure the heuristic's optimality gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from .instance import Instance
from .qp import solve_coordinate_descent
from .state import AllocationState

__all__ = [
    "TaskSet",
    "DiscreteAssignment",
    "round_tasks_greedy",
    "round_tasks_bruteforce",
    "rounding_error",
    "solve_discrete",
]


@dataclass(frozen=True)
class TaskSet:
    """The discrete tasks owned by one organization."""

    owner: int
    sizes: np.ndarray  # strictly positive task sizes p_i(k)

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=np.float64)
        if sizes.ndim != 1:
            raise ValueError("sizes must be a 1-D array")
        if np.any(sizes <= 0) or not np.all(np.isfinite(sizes)):
            raise ValueError("task sizes must be finite and positive")
        object.__setattr__(self, "sizes", sizes)

    @property
    def total(self) -> float:
        return float(self.sizes.sum())


@dataclass
class DiscreteAssignment:
    """Result of rounding one organization's tasks to servers.

    ``assignment[k] = j`` places task ``k`` on server ``j``.
    """

    owner: int
    assignment: np.ndarray
    targets: np.ndarray  # the fractional capacities ρ_ij · n_i

    def bin_sums(self, m: int) -> np.ndarray:
        sums = np.zeros(m)
        np.add.at(sums, self.assignment, 1.0)
        return sums

    def error(self, sizes: np.ndarray) -> float:
        """Total deviation ``Σ_j |bin_j − target_j``| (the paper's
        ``Σ err(S_i(j))``)."""
        m = self.targets.shape[0]
        sums = np.zeros(m)
        np.add.at(sums, self.assignment, sizes)
        return float(np.abs(sums - self.targets).sum())


def round_tasks_greedy(
    sizes: np.ndarray,
    targets: np.ndarray,
    *,
    refine_passes: int = 4,
) -> np.ndarray:
    """Greedy multiple-subset-sum rounding with local refinement.

    Tasks are placed largest-first into the bin with the largest remaining
    capacity; then single-task relocations are applied while they reduce
    the total deviation.  Returns the per-task server indices.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    m = targets.shape[0]
    order = np.argsort(sizes)[::-1]
    remaining = targets.copy()
    assign = np.empty(sizes.shape[0], dtype=np.int64)
    for k in order:
        j = int(np.argmax(remaining))
        assign[k] = j
        remaining[j] -= sizes[k]

    # Local refinement: move one task at a time if it lowers Σ|bin−target|.
    bins = np.zeros(m)
    np.add.at(bins, assign, sizes)
    for _ in range(refine_passes):
        improved = False
        for k in order:
            j = assign[k]
            p = sizes[k]
            # error change if k moves j -> j2:
            #   Δ = |b_j − p − t_j| − |b_j − t_j|
            #     + |b_j2 + p − t_j2| − |b_j2 − t_j2|
            base_out = abs(bins[j] - p - targets[j]) - abs(bins[j] - targets[j])
            delta_in = np.abs(bins + p - targets) - np.abs(bins - targets)
            delta_in[j] = np.inf
            j2 = int(np.argmin(delta_in))
            if base_out + delta_in[j2] < -1e-12:
                bins[j] -= p
                bins[j2] += p
                assign[k] = j2
                improved = True
        if not improved:
            break
    return assign


def round_tasks_bruteforce(sizes: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Exact optimal rounding by exhaustive search (tiny inputs only)."""
    sizes = np.asarray(sizes, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    k, m = sizes.shape[0], targets.shape[0]
    if m**k > 500_000:
        raise ValueError("brute force limited to m^k <= 5e5")
    best, best_err = None, np.inf
    for combo in product(range(m), repeat=k):
        bins = np.zeros(m)
        for task, j in enumerate(combo):
            bins[j] += sizes[task]
        err = float(np.abs(bins - targets).sum())
        if err < best_err - 1e-15:
            best_err = err
            best = combo
    return np.asarray(best, dtype=np.int64)


def rounding_error(sizes: np.ndarray, targets: np.ndarray, assign: np.ndarray) -> float:
    """Total deviation of an assignment from the fractional targets."""
    bins = np.zeros(targets.shape[0])
    np.add.at(bins, assign, np.asarray(sizes, dtype=np.float64))
    return float(np.abs(bins - targets).sum())


def solve_discrete(
    speeds: np.ndarray,
    latency: np.ndarray,
    task_sets: list[TaskSet],
) -> tuple[AllocationState, list[DiscreteAssignment]]:
    """End-to-end Section VII pipeline for sized tasks.

    1. Build the fractional instance with ``n_i = Σ_k p_i(k)``.
    2. Solve it to optimality (coordinate descent).
    3. Round each organization's tasks to the fractional targets.

    Returns the fractional optimum and the per-organization discrete
    assignments.
    """
    speeds = np.asarray(speeds, dtype=np.float64)
    m = speeds.shape[0]
    n = np.zeros(m)
    for ts in task_sets:
        if not 0 <= ts.owner < m:
            raise ValueError(f"task set owner {ts.owner} out of range")
        n[ts.owner] += ts.total
    inst = Instance(speeds, n, latency)
    opt = solve_coordinate_descent(inst)
    assignments = []
    for ts in task_sets:
        targets = opt.R[ts.owner]
        assign = round_tasks_greedy(ts.sizes, targets)
        assignments.append(DiscreteAssignment(ts.owner, assign, targets.copy()))
    return opt, assignments
