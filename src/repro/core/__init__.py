"""Core contribution of the paper: delay-aware load balancing.

Cooperative optimization (Section III–IV), selfish organizations and the
price of anarchy (Section V) and the Section VII extensions.
"""

from .baselines import (
    all_baselines,
    makespan,
    makespan_greedy,
    nearest_server,
    proportional_speed,
    round_robin,
)
from .cost import (
    build_qp,
    cost_gradient,
    per_org_cost,
    qp_objective,
    selfish_marginal,
    server_loads,
    total_cost,
)
from .distributed import (
    ConvergenceTrace,
    MinEOptimizer,
    SweepStats,
    batch_exchange_stats,
    best_partner_exact,
)
from .dynamic import (
    DynamicBalancer,
    EpochRecord,
    LoadProcess,
    ReoptimizeResult,
    reoptimize,
    retarget_allocation,
    retarget_rows,
)
from .error_bound import delta_r, error_bound, pending_transfer_volumes
from .game import (
    BestResponseTrace,
    best_response_dynamics,
    nash_gap,
    price_of_anarchy,
    selfish_best_response,
)
from .instance import Instance
from .qp import (
    project_simplex,
    solve_coordinate_descent,
    solve_fista,
    solve_optimal,
    solve_qp_scipy,
)
from .replication import (
    replication_feasible,
    sample_replica_placement,
    solve_replicated,
)
from .rounding import (
    DiscreteAssignment,
    TaskSet,
    round_tasks_bruteforce,
    round_tasks_greedy,
    rounding_error,
    solve_discrete,
)
from .state import AllocationState
from .theory import (
    homogeneous_nash_construction,
    lemma3_bound,
    lemma3_violation,
    poa_lower_bound,
    poa_upper_bound,
)
from .transfer import (
    PairExchange,
    calc_best_transfer,
    calc_best_transfer_reference,
    lemma1_transfer,
)
from .waterfill import waterfill, waterfill_value

__all__ = [
    "Instance",
    "AllocationState",
    # cost
    "total_cost",
    "per_org_cost",
    "server_loads",
    "cost_gradient",
    "selfish_marginal",
    "build_qp",
    "qp_objective",
    # solvers
    "solve_optimal",
    "solve_coordinate_descent",
    "solve_fista",
    "solve_qp_scipy",
    "project_simplex",
    "waterfill",
    "waterfill_value",
    # distributed
    "MinEOptimizer",
    "SweepStats",
    "ConvergenceTrace",
    "batch_exchange_stats",
    "best_partner_exact",
    "PairExchange",
    "calc_best_transfer",
    "calc_best_transfer_reference",
    "lemma1_transfer",
    "pending_transfer_volumes",
    "delta_r",
    "error_bound",
    # game & theory
    "selfish_best_response",
    "best_response_dynamics",
    "BestResponseTrace",
    "nash_gap",
    "price_of_anarchy",
    "poa_upper_bound",
    "poa_lower_bound",
    "lemma3_bound",
    "lemma3_violation",
    "homogeneous_nash_construction",
    # extensions
    "TaskSet",
    "DiscreteAssignment",
    "round_tasks_greedy",
    "round_tasks_bruteforce",
    "rounding_error",
    "solve_discrete",
    "solve_replicated",
    "sample_replica_placement",
    "replication_feasible",
    # baselines & dynamic operation
    "round_robin",
    "nearest_server",
    "proportional_speed",
    "makespan_greedy",
    "makespan",
    "all_baselines",
    "LoadProcess",
    "DynamicBalancer",
    "EpochRecord",
    "retarget_rows",
    "retarget_allocation",
    "ReoptimizeResult",
    "reoptimize",
]
