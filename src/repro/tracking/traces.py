"""Deterministic load-trace generators for non-stationary tracking runs.

A *trace* turns the static load snapshot of a :class:`repro.Scenario`
into a function of time: a sorted sequence of ``(t, load_vector)``
epochs, with ``t`` measured in *agent rounds* (the control plane's
natural clock, so the same trace means the same thing on a 0.5 ms
fat-tree and a 90 ms WAN).  Demand is piecewise constant between epochs
— the regime of She & Tang's warm-started iterative re-optimization —
and every generator is a pure function of ``(trace, m, rng)``, so a
fixed seed yields a bit-identical trace on any machine.

Families (all registered under stable names, see :data:`TRACE_PRESETS`):

* :class:`DriftTrace` — piecewise-constant multiplicative random-walk
  drift on top of any :class:`repro.workloads.LoadModel` snapshot;
* :class:`RegimeSwitchTrace` — holds a load model's snapshot until a
  regime switch re-samples from the *next* model (e.g. quiet
  exponential traffic → a flash crowd → correlated surges);
* :class:`FlashCrowdReplay` — replays one flash-crowd incident: ramp,
  peak, geometric decay back to the background;
* :class:`DiurnalSweepTrace` — sweeps a full day of the per-region
  sinusoidal diurnal cycle in ``n_epochs`` steps;
* :class:`MeasuredTrace` — replays a measured ``(epochs, m)`` load
  matrix from a CSV or ``.npz`` file.

Register your own with :func:`register_trace`; anything with an
``epochs(m, rng) -> [(t, loads), ...]`` method fits.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..workloads.loadmodels import (
    CorrelatedSurgeLoads,
    ExponentialLoads,
    FlashCrowdLoads,
    LoadModel,
)

__all__ = [
    "LoadTrace",
    "DriftTrace",
    "RegimeSwitchTrace",
    "FlashCrowdReplay",
    "DiurnalSweepTrace",
    "MeasuredTrace",
    "register_trace",
    "get_trace",
    "list_traces",
    "trace_epochs",
    "TRACE_PRESETS",
]

#: Loads are floored here so every organization stays a (tiny) owner:
#: the optimizers' owner sets, ``Instance`` validation and the routing
#: fractions all stay well-defined across every epoch.
_MIN_LOAD = 1e-6

_TRACE_ENTROPY = 0x7C4C31E5


def _positive(loads: np.ndarray) -> np.ndarray:
    return np.maximum(np.asarray(loads, dtype=np.float64), _MIN_LOAD)


@runtime_checkable
class LoadTrace(Protocol):
    """Anything that can emit a deterministic epoch sequence."""

    def epochs(
        self, m: int, rng: np.random.Generator
    ) -> list[tuple[float, np.ndarray]]:
        """Sorted ``(t_rounds, loads)`` epochs; ``t`` starts at 0 and
        every load vector is strictly positive with shape ``(m,)``."""
        ...


class _EpochGrid:
    """Shared helper: evenly spaced epochs ``0, d, 2d, ...``."""

    n_epochs: int
    epoch_rounds: float

    def _times(self) -> list[float]:
        return [k * float(self.epoch_rounds) for k in range(self.n_epochs)]

    def _check(self) -> None:
        if self.n_epochs < 1:
            raise ValueError("a trace needs at least one epoch")
        if self.epoch_rounds <= 0:
            raise ValueError("epoch duration must be positive (in rounds)")


@dataclass(frozen=True)
class DriftTrace(_EpochGrid):
    """Piecewise-constant drift: a multiplicative log-normal random walk.

    Epoch 0 samples ``base`` once; each later epoch multiplies every
    organization's load by an independent ``lognormal(0, drift_sigma)``
    factor.  ``renormalize`` keeps the *total* demand constant, so the
    optimum moves because the demand *mix* shifts, not its volume.
    """

    base: LoadModel = ExponentialLoads(avg=50.0)
    n_epochs: int = 8
    epoch_rounds: float = 20.0
    drift_sigma: float = 0.35
    renormalize: bool = True

    def __post_init__(self) -> None:
        self._check()
        if self.drift_sigma < 0:
            raise ValueError("drift_sigma must be non-negative")

    def epochs(self, m, rng):
        loads = _positive(self.base.sample(m, rng))
        total = loads.sum()
        out = [(0.0, loads)]
        for t in self._times()[1:]:
            loads = loads * rng.lognormal(0.0, self.drift_sigma, size=m)
            if self.renormalize:
                loads = loads * (total / loads.sum())
            loads = _positive(loads)
            out.append((t, loads))
        return out


@dataclass(frozen=True)
class RegimeSwitchTrace(_EpochGrid):
    """Hold a snapshot until the workload switches regime.

    At each epoch boundary the trace switches to the next model of
    ``models`` with probability ``switch_prob`` (always re-sampling on a
    switch); otherwise the previous epoch's loads are held, so demand is
    genuinely piecewise constant with a few large jumps.
    """

    models: tuple[LoadModel, ...] = (
        ExponentialLoads(avg=50.0),
        FlashCrowdLoads(base=10.0, hot_fraction=0.05, magnitude=200.0),
        CorrelatedSurgeLoads(regions=4, base=20.0, surge_factor=8.0),
    )
    n_epochs: int = 9
    epoch_rounds: float = 20.0
    switch_prob: float = 0.6

    def __post_init__(self) -> None:
        self._check()
        if not self.models:
            raise ValueError("need at least one load model")
        if not 0.0 <= self.switch_prob <= 1.0:
            raise ValueError("switch_prob must be a probability")

    def epochs(self, m, rng):
        active = 0
        loads = _positive(self.models[active].sample(m, rng))
        out = [(0.0, loads)]
        for t in self._times()[1:]:
            if rng.uniform() < self.switch_prob:
                active = (active + 1) % len(self.models)
                loads = _positive(self.models[active].sample(m, rng))
            out.append((t, loads))
        return out


@dataclass(frozen=True)
class FlashCrowdReplay(_EpochGrid):
    """Replay of one flash-crowd incident over a quiet background.

    The background is a single held snapshot of ``base``.  Starting at
    ``onset`` (an epoch index), a random ``crowd_fraction`` of
    organizations gains ``magnitude ×`` their baseline, ramping up over
    ``ramp_epochs`` and then decaying geometrically by ``decay`` per
    epoch — the canonical "peak of demand followed by a long period of
    low activity" shape, stretched so trackers must follow both edges.
    """

    base: LoadModel = ExponentialLoads(avg=30.0)
    n_epochs: int = 10
    epoch_rounds: float = 20.0
    crowd_fraction: float = 0.08
    magnitude: float = 30.0
    onset: int = 2
    ramp_epochs: int = 2
    decay: float = 0.35

    def __post_init__(self) -> None:
        self._check()
        if not 0 < self.crowd_fraction <= 1:
            raise ValueError("crowd_fraction must be in (0, 1]")
        if not 0 <= self.onset < self.n_epochs:
            raise ValueError("onset must be an epoch index")
        if self.ramp_epochs < 1:
            raise ValueError("ramp_epochs must be >= 1")
        if not 0 < self.decay < 1:
            raise ValueError("decay must be in (0, 1)")

    def epochs(self, m, rng):
        background = _positive(self.base.sample(m, rng))
        hot = rng.choice(
            m, size=max(1, int(round(self.crowd_fraction * m))), replace=False
        )
        peak = self.magnitude * background[hot]
        out = []
        for k, t in enumerate(self._times()):
            loads = background.copy()
            if k >= self.onset:
                steps_in = k - self.onset
                if steps_in < self.ramp_epochs:
                    level = (steps_in + 1) / self.ramp_epochs
                else:
                    level = self.decay ** (steps_in - self.ramp_epochs + 1)
                loads[hot] = background[hot] + level * peak
            out.append((t, _positive(loads)))
        return out


@dataclass(frozen=True)
class DiurnalSweepTrace(_EpochGrid):
    """A full day of the per-region diurnal sine, in ``n_epochs`` steps.

    Organizations are assigned to ``regions`` time zones once; epoch
    ``k`` observes the system at day-time ``k/n_epochs`` (per-org noise
    is drawn per epoch), so load crests roll around the planet during
    the trace — the slow, smooth end of the non-stationary spectrum.
    """

    base: float = 40.0
    amplitude: float = 0.8
    regions: int = 4
    noise_sigma: float = 0.1
    n_epochs: int = 12
    epoch_rounds: float = 15.0

    def __post_init__(self) -> None:
        self._check()
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1) to keep loads positive")
        if self.regions < 1:
            raise ValueError("need at least one region")

    def epochs(self, m, rng):
        region = rng.integers(0, self.regions, size=m)
        phase = region / self.regions
        out = []
        for k, t in enumerate(self._times()):
            day = k / self.n_epochs
            level = 1.0 + self.amplitude * np.sin(2.0 * np.pi * (day + phase))
            noise = rng.lognormal(0.0, self.noise_sigma, size=m)
            out.append((t, _positive(self.base * level * noise)))
        return out


@dataclass(frozen=True, eq=False)
class MeasuredTrace(_EpochGrid):
    """Replay a measured ``(epochs, m)`` load matrix.

    Rows are epochs, columns organizations; values are floored to stay
    strictly positive.  The requested ``m`` must match the matrix width
    — measured data is not resampled silently.
    """

    matrix: np.ndarray = None  # type: ignore[assignment]
    epoch_rounds: float = 20.0

    def __post_init__(self) -> None:
        mat = np.asarray(self.matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] < 1:
            raise ValueError("measured trace must be a 2-D (epochs, m) matrix")
        if not np.all(np.isfinite(mat)):
            raise ValueError("measured loads must be finite")
        object.__setattr__(self, "matrix", mat)
        if self.epoch_rounds <= 0:
            raise ValueError("epoch duration must be positive (in rounds)")

    @property
    def n_epochs(self) -> int:  # type: ignore[override]
        return self.matrix.shape[0]

    @classmethod
    def from_csv(cls, path: "str | os.PathLike", *, epoch_rounds: float = 20.0):
        """Load a trace from CSV (one epoch per row, comma-separated)."""
        return cls(np.loadtxt(os.fspath(path), delimiter=","), epoch_rounds=epoch_rounds)

    @classmethod
    def from_npz(
        cls,
        path: "str | os.PathLike",
        *,
        key: str = "loads",
        epoch_rounds: float = 20.0,
    ):
        """Load a trace from an ``.npz`` archive (``key`` names the matrix)."""
        with np.load(os.fspath(path)) as npz:
            return cls(npz[key], epoch_rounds=epoch_rounds)

    def epochs(self, m, rng):
        if m != self.matrix.shape[1]:
            raise ValueError(
                f"measured trace has {self.matrix.shape[1]} organizations, "
                f"cannot replay it for m={m}"
            )
        return [
            (k * float(self.epoch_rounds), _positive(row))
            for k, row in enumerate(self.matrix)
        ]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, LoadTrace] = {}


def register_trace(
    name: str, trace: LoadTrace, *, overwrite: bool = False
) -> LoadTrace:
    """Register a trace family under a stable name."""
    if not overwrite and name in _REGISTRY:
        raise ValueError(
            f"trace {name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _REGISTRY[name] = trace
    return trace


def get_trace(name: str) -> LoadTrace:
    """Look up a registered trace family by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown trace {name!r}; registered: {known}") from None


def list_traces() -> dict[str, str]:
    """``{name: summary}`` for every registered trace family."""
    return {name: type(t).__name__ for name, t in sorted(_REGISTRY.items())}


def trace_epochs(
    trace: "LoadTrace | str", m: int, seed: int = 0
) -> list[tuple[float, np.ndarray]]:
    """The deterministic epoch sequence of one ``(trace, m, seed)`` cell.

    The generator is derived exactly like scenario cells are: a
    dedicated entropy constant mixed with the trace name (registered
    traces) or class name, ``m`` and ``seed`` — so traces, scenarios and
    control-plane streams can share seed integers without collisions.
    """
    if isinstance(trace, str):
        label, trace = trace, get_trace(trace)
    else:
        label = type(trace).__name__
    rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=_TRACE_ENTROPY,
            spawn_key=(zlib.crc32(label.encode()), int(m), int(seed)),
        )
    )
    epochs = trace.epochs(m, rng)
    if not epochs:
        raise ValueError("trace produced no epochs")
    times = [t for t, _ in epochs]
    if times[0] != 0.0 or any(b <= a for a, b in zip(times, times[1:])):
        raise ValueError("trace epochs must start at 0 and strictly increase")
    return epochs


#: Built-in trace families, one per non-stationarity shape (plus the
#: mild-drift variant benchmarked at m = 500: the regime where the
#: warm-started stateful solver's advantage over cold restart is
#: largest, because only a fraction of the fleet needs re-exchanging).
TRACE_PRESETS: dict[str, LoadTrace] = {
    "drift": DriftTrace(),
    "drift-mild": DriftTrace(drift_sigma=0.1, n_epochs=5),
    "regime": RegimeSwitchTrace(),
    "flash-replay": FlashCrowdReplay(),
    "diurnal": DiurnalSweepTrace(),
}

for _name, _trace in TRACE_PRESETS.items():
    register_trace(_name, _trace)
del _name, _trace
