"""Stateful tracking solvers: warm-start incremental MinE vs cold restart.

A *stateful* solver is a session that follows a demand trace epoch by
epoch (the :class:`repro.engine.StatefulSolver` protocol): ``start``
initializes on the first epoch, each ``step`` receives the next epoch's
instance (same fleet, new loads) and re-solves.  Two built-ins register
themselves with the engine registry:

``"mine-warm"``
    The paper's operational claim made concrete: keep the previous
    epoch's allocation, re-apply its routing *fractions* to the new
    demand (:func:`repro.core.dynamic.retarget_allocation`) and run
    exchange-budget-capped MinE sweeps until the cost re-tracks to the
    relative bound.  Because the warm start is already near-optimal for
    a drifted demand, re-tracking costs a small fraction of the
    exchanges a fresh solve needs.

``"mine-cold"``
    The control: throw the allocation away and re-run MinE from the
    all-local start every epoch.  Identical sweep kernel, identical
    stopping rule — the exchange-count gap between the two is exactly
    the value of statefulness (the ≥3x acceptance figure of
    ``benchmarks/test_tracking.py``).

Both return plain :class:`repro.engine.SolveResult` rows (with
``exchanges`` / ``exchanges_to_bound`` metadata), so trace sweeps flow
through :class:`repro.engine.SweepEngine` and its stores unchanged.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.dynamic import reoptimize, retarget_allocation
from ..core.instance import Instance
from ..core.state import AllocationState
from ..engine.registry import register_stateful_solver
from ..engine.result import SolveResult

__all__ = ["WarmStartMinE", "ColdRestartMinE"]


class _MinETrackerBase:
    """Shared session mechanics of the two MinE trackers."""

    name = "mine-base"

    def __init__(
        self,
        *,
        rel_tol: float = 0.02,
        max_sweeps: int = 60,
        exchange_budget: int | None = None,
        strategy: str = "auto",
        screen_width: int = 16,
        min_improvement: float = 1e-9,
    ):
        self.rel_tol = float(rel_tol)
        self.max_sweeps = int(max_sweeps)
        self.exchange_budget = exchange_budget
        self.strategy = strategy
        self.screen_width = int(screen_width)
        self.min_improvement = float(min_improvement)
        self.state: AllocationState | None = None
        self.epoch = -1
        self._rng: np.random.Generator | None = None

    # ------------------------------------------------------------------
    def start(
        self,
        inst: Instance,
        *,
        rng: "np.random.Generator | int | None" = None,
        optimum: float | None = None,
        **options,
    ) -> SolveResult:
        """Initialize on the first epoch (a fresh all-local solve)."""
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self.state = AllocationState.initial(inst)
        self.epoch = -1
        return self._solve(inst, optimum, warm=False, **options)

    def step(
        self, inst: Instance, *, optimum: float | None = None, **options
    ) -> SolveResult:
        """Advance one epoch; the subclass decides what state survives."""
        if self.state is None:
            return self.start(inst, optimum=optimum, **options)
        if inst.m != self.state.inst.m:
            raise ValueError("a tracking session cannot change fleet size")
        return self._step(inst, optimum, **options)

    def _step(self, inst, optimum, **options) -> SolveResult:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _solve(self, inst, optimum, *, warm: bool, **options) -> SolveResult:
        self.epoch += 1
        t0 = time.perf_counter()
        res = reoptimize(
            self.state,
            rng=self._rng,
            optimum=optimum,
            rel_tol=self.rel_tol,
            max_sweeps=self.max_sweeps,
            exchange_budget=self.exchange_budget,
            strategy=self.strategy,
            screen_width=self.screen_width,
            min_improvement=self.min_improvement,
            **options,
        )
        wall = time.perf_counter() - t0
        return SolveResult(
            solver=self.name,
            state=self.state,
            total_cost=res.cost,
            wall_time_s=wall,
            iterations=res.sweeps,
            converged=res.converged,
            metadata={
                "epoch": self.epoch,
                "warm": warm,
                "exchanges": res.exchanges,
                "exchanges_to_bound": res.exchanges_to_bound,
                "moved": res.moved,
                "kernel_calls": res.kernel_calls,
                "kernel_candidates": res.kernel_candidates,
            },
        )


class WarmStartMinE(_MinETrackerBase):
    """Warm-start incremental tracker (registered as ``"mine-warm"``)."""

    name = "mine-warm"

    def _step(self, inst, optimum, **options) -> SolveResult:
        self.state = retarget_allocation(self.state, inst)
        return self._solve(inst, optimum, warm=True, **options)


class ColdRestartMinE(_MinETrackerBase):
    """Cold-restart baseline (registered as ``"mine-cold"``)."""

    name = "mine-cold"

    def _step(self, inst, optimum, **options) -> SolveResult:
        self.state = AllocationState.initial(inst)
        return self._solve(inst, optimum, warm=False, **options)


register_stateful_solver(
    "mine-warm",
    WarmStartMinE,
    kind="tracking",
    description="Warm-start incremental MinE: retarget the previous "
    "allocation's fractions to the new demand, then budget-capped sweeps "
    "to the bound",
)
register_stateful_solver(
    "mine-cold",
    ColdRestartMinE,
    kind="tracking",
    description="Cold-restart baseline: fresh all-local MinE solve every "
    "epoch (the statefulness control)",
)
