"""Non-stationary workload tracking: demand as a function of time.

Every other subsystem measures convergence against a *static* demand
vector; this package makes demand move and measures how well the system
*tracks* the moving optimum — the regime the paper's abstract promises
("the distributed algorithm is efficient, therefore it can be used in
networks with dynamically changing loads") and the warm-started
iterative re-optimization setting of She & Tang (arXiv:1610.02588).

Layers:

* :mod:`repro.tracking.traces` — deterministic ``(t, load_vector)``
  epoch generators: piecewise-constant drift, regime switching between
  load models, flash-crowd replay, a sinusoidal diurnal sweep, and a
  CSV/npz measured-trace loader, behind a named registry;
* :mod:`repro.tracking.solvers` — stateful solvers for the offline
  plane (:class:`repro.engine.StatefulSolver` sessions): warm-start
  incremental MinE (``"mine-warm"``) versus the cold-restart control
  (``"mine-cold"``), both exchange-budget-capped;
* :mod:`repro.tracking.driver` — :class:`TrackingSimulation`, coupling
  the event-driven live plane (:mod:`repro.livesim`) to epoch demand
  shifts and recording regret, time-to-retrack and cumulative excess
  cost ``∫(C(t) − C*(t))dt``;
* :mod:`repro.tracking.sweep` — (scenario × trace × solver) grids
  through the engine's backends, shards and stores.

Quickstart:

>>> from repro.tracking import TrackingSimulation
>>> from repro.workloads import get_scenario
>>> inst = get_scenario("federation-diurnal").instance(16, seed=0)
>>> sim = TrackingSimulation(inst, "drift", seed=0)
>>> report = sim.run()                                   # doctest: +SKIP
>>> report.mean_final_error, report.cumulative_excess_cost  # doctest: +SKIP
"""

from . import solvers as _solvers  # noqa: F401 - registers mine-warm/mine-cold
from .driver import EpochMetrics, TrackingReport, TrackingSimulation
from .solvers import ColdRestartMinE, WarmStartMinE
from .sweep import TrackingCell, evaluate_tracking_cell, tracking_sweep
from .traces import (
    TRACE_PRESETS,
    DiurnalSweepTrace,
    DriftTrace,
    FlashCrowdReplay,
    LoadTrace,
    MeasuredTrace,
    RegimeSwitchTrace,
    get_trace,
    list_traces,
    register_trace,
    trace_epochs,
)

__all__ = [
    "TrackingSimulation",
    "TrackingReport",
    "EpochMetrics",
    "LoadTrace",
    "DriftTrace",
    "RegimeSwitchTrace",
    "FlashCrowdReplay",
    "DiurnalSweepTrace",
    "MeasuredTrace",
    "register_trace",
    "get_trace",
    "list_traces",
    "trace_epochs",
    "TRACE_PRESETS",
    "WarmStartMinE",
    "ColdRestartMinE",
    "TrackingCell",
    "evaluate_tracking_cell",
    "tracking_sweep",
]
