"""`TrackingSimulation` — the live control plane chasing a moving optimum.

Couples :class:`repro.livesim.LiveSimulation` (async gossip + handshake
MinE agents + churn + optional live-routed traffic, all on one event
heap) to a demand *trace*: at every epoch boundary the demand vector
shifts (:meth:`LiveSimulation.apply_demand` — routing fractions are
retargeted, the gossip layer republishes, the screened agent plane drops
its back-off and re-runs), the per-epoch offline optimum is re-solved
(warm-started coordinate descent, chained epoch to epoch), and the
system is measured on how well it *tracks*:

* **instantaneous regret** ``(C(t) − C*_k)/C*_k`` against the active
  epoch's optimum,
* **time-to-retrack**: how many agent rounds after a shift the plane is
  back (and stays) within the relative bound,
* **cumulative excess cost** ``∫ (C(t) − C*(t)) dt`` — the integral a
  production operator actually pays for tracking lag.

Everything is deterministic per ``(instance, trace, config, seed)``:
the trace's epoch loads come from their own seeded stream, the live
plane from its own, so the determinism suite can replay runs and split
them at arbitrary epoch counts (``run(epochs=k)`` chunks compose into
exactly the single long run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.instance import Instance
from ..core.qp import solve_coordinate_descent
from ..core.state import AllocationState
from ..livesim.driver import LiveConfig, LiveReport, LiveSimulation
from .traces import LoadTrace, trace_epochs

__all__ = ["EpochMetrics", "TrackingReport", "TrackingSimulation"]


@dataclass
class EpochMetrics:
    """Tracking diagnostics for one demand epoch."""

    index: int
    t_start_rounds: float
    duration_rounds: float
    optimum_cost: float          #: offline optimum of this epoch's demand
    cost_at_shift: float         #: ΣCi right after the demand landed
    final_cost: float            #: ΣCi at the epoch's end
    retrack_rounds: float        #: rounds from shift until within bound (nan: never)
    exchanges: int               #: pairwise exchanges spent this epoch
    excess_cost: float           #: ∫(C − C*) dt over the epoch (sim-time units)
    mean_regret: float           #: time-averaged relative regret

    @property
    def start_error(self) -> float:
        if self.optimum_cost <= 0 or not np.isfinite(self.optimum_cost):
            return float("nan")
        return (self.cost_at_shift - self.optimum_cost) / self.optimum_cost

    @property
    def final_error(self) -> float:
        if self.optimum_cost <= 0 or not np.isfinite(self.optimum_cost):
            return float("nan")
        return (self.final_cost - self.optimum_cost) / self.optimum_cost


@dataclass
class TrackingReport:
    """Everything a tracking run measured (so far)."""

    rel_tol: float
    epochs: list[EpochMetrics]
    live: LiveReport
    #: Epoch boundaries in sim time and the per-epoch optima, aligned
    #: with ``epochs`` — the piecewise-constant C*(t).
    epoch_starts: np.ndarray = field(default_factory=lambda: np.empty(0))
    epoch_optima: np.ndarray = field(default_factory=lambda: np.empty(0))

    # ------------------------------------------------------------------
    @property
    def cumulative_excess_cost(self) -> float:
        """``∫ (C(t) − C*(t)) dt`` summed over all finished epochs."""
        return float(sum(e.excess_cost for e in self.epochs))

    @property
    def mean_final_error(self) -> float:
        errs = [e.final_error for e in self.epochs if np.isfinite(e.final_error)]
        return float(np.mean(errs)) if errs else float("nan")

    @property
    def max_final_error(self) -> float:
        errs = [e.final_error for e in self.epochs if np.isfinite(e.final_error)]
        return float(np.max(errs)) if errs else float("nan")

    @property
    def total_exchanges(self) -> int:
        return int(sum(e.exchanges for e in self.epochs))

    def all_retracked(self) -> bool:
        """Did every epoch re-enter (and hold) the bound before ending?"""
        return bool(self.epochs) and all(
            np.isfinite(e.retrack_rounds) for e in self.epochs
        )

    def regret_series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, regret)`` of the whole run against the
        piecewise-constant per-epoch optimum (regret is nan before the
        first epoch optimum exists)."""
        times = self.live.times
        costs = self.live.costs
        regret = np.full_like(costs, np.nan)
        for k in range(len(self.epoch_starts)):
            t0 = self.epoch_starts[k]
            t1 = (
                self.epoch_starts[k + 1]
                if k + 1 < len(self.epoch_starts)
                else np.inf
            )
            opt = self.epoch_optima[k]
            if opt > 0 and np.isfinite(opt):
                sel = (times >= t0) & (times < t1)
                regret[sel] = (costs[sel] - opt) / opt
        return times, regret


class TrackingSimulation:
    """Drive a :class:`LiveSimulation` along a demand trace.

    Parameters
    ----------
    inst:
        The base instance; its load vector is replaced by the trace's
        epoch-0 loads (topology and speeds persist across all epochs).
    trace:
        A registered trace name, a :class:`repro.tracking.LoadTrace`, or
        a precomputed ``[(t_rounds, loads), ...]`` list.
    config:
        Control-plane parameters (:class:`repro.livesim.LiveConfig`);
        ``gossip_mode="delta"`` makes the per-epoch re-gossip O(changes).
    seed:
        Single integer: derives both the trace stream and every live
        stream deterministically.
    rel_tol:
        The relative bound used for re-track times (the paper's 2 %).
    tail_rounds:
        How long the last epoch runs (default: the previous epoch's
        duration, or 20 rounds for single-epoch traces).
    compute_optimum:
        Solve the per-epoch offline optimum (warm-started coordinate
        descent chained from the previous epoch's optimum).  Disable for
        pure throughput measurements; regret metrics become nan.
    """

    def __init__(
        self,
        inst: Instance,
        trace: "LoadTrace | str | list[tuple[float, np.ndarray]]",
        *,
        config: LiveConfig | None = None,
        seed: int = 0,
        rel_tol: float = 0.02,
        scheduler: str = "auto",
        tail_rounds: float | None = None,
        compute_optimum: bool = True,
        optimum_tol: float = 1e-9,
        obs=None,
        profile: bool = False,
    ):
        if isinstance(trace, list):
            self.epochs_spec = [
                (float(t), np.asarray(l, dtype=np.float64)) for t, l in trace
            ]
        else:
            self.epochs_spec = trace_epochs(trace, inst.m, seed)
        self.rel_tol = float(rel_tol)
        self.compute_optimum = bool(compute_optimum)
        self.optimum_tol = float(optimum_tol)
        times = [t for t, _ in self.epochs_spec]
        if tail_rounds is None:
            tail_rounds = times[-1] - times[-2] if len(times) >= 2 else 20.0
        self.tail_rounds = float(tail_rounds)

        inst0 = inst.with_loads(self.epochs_spec[0][1])
        self.sim = LiveSimulation(
            inst0, config=config, seed=seed, scheduler=scheduler,
            obs=obs, profile=profile,
        )
        self.obs = self.sim.obs  # resolved context (may be process-global)
        self._interval = self.sim.config.agent_interval
        self._opt_state: AllocationState | None = None
        self._next = 0                 #: next epoch segment to process
        self._metrics: list[EpochMetrics] = []
        self._starts: list[float] = []
        self._optima: list[float] = []
        self._enter_epoch(0)

    # ------------------------------------------------------------------
    @property
    def n_epochs(self) -> int:
        return len(self.epochs_spec)

    @property
    def epochs_done(self) -> int:
        return len(self._metrics)

    def _solve_epoch_optimum(self, inst: Instance) -> float:
        """The epoch's offline optimum, warm-started from the previous
        epoch's optimum retargeted to the new demand (coordinate descent
        converges to the global optimum from any feasible start, so the
        warm start only buys speed, never accuracy)."""
        from ..core.dynamic import retarget_allocation  # lazy: cycle-free

        warm = (
            retarget_allocation(self._opt_state, inst)
            if self._opt_state is not None
            else None
        )
        self._opt_state = solve_coordinate_descent(
            inst, state=warm, tol=self.optimum_tol
        )
        return self._opt_state.total_cost()

    def _enter_epoch(self, k: int) -> None:
        """Apply epoch ``k``'s demand (k = 0 is baked into the sim) and
        point the live error metrics at its optimum."""
        t, loads = self.epochs_spec[k]
        if k > 0:
            self.sim.apply_demand(loads)
        if self.compute_optimum:
            self.sim.optimum_cost = self._solve_epoch_optimum(self.sim.inst)
            self.sim.optimum_loads = self._opt_state.loads.copy()
        self._starts.append(t * self._interval)
        self._optima.append(self.sim.optimum_cost)
        self._cost_mark = len(self.sim.cost_samples) - 1
        self._exch_mark = self.sim.agents.stats.exchanges
        if self.obs is not None:
            self.obs.metrics.counter("tracking.epochs").inc()
            tracer = self.obs.tracer
            if tracer is not None:
                tracer.instant(
                    "tracking.epoch_enter",
                    t * self._interval,
                    index=k,
                    optimum=float(self.sim.optimum_cost),
                )

    # ------------------------------------------------------------------
    def run(self, epochs: int | None = None) -> TrackingReport:
        """Advance ``epochs`` epoch segments (default: all remaining)
        and return the report so far.  Chunked calls compose exactly
        into one long run (asserted by the determinism suite)."""
        remaining = self.n_epochs - self._next
        todo = remaining if epochs is None else min(int(epochs), remaining)
        for _ in range(todo):
            k = self._next
            t_start = self.epochs_spec[k][0]
            t_end = (
                self.epochs_spec[k + 1][0]
                if k + 1 < self.n_epochs
                else t_start + self.tail_rounds
            )
            self.sim.run(until=t_end * self._interval)
            self._metrics.append(self._finish_epoch(k, t_start, t_end))
            self._next += 1
            if self._next < self.n_epochs:
                self._enter_epoch(self._next)
        return self.report()

    def _finish_epoch(self, k: int, t_start: float, t_end: float) -> EpochMetrics:
        samples = self.sim.cost_samples[self._cost_mark:]
        times = np.asarray([t for t, _ in samples])
        costs = np.asarray([c for _, c in samples])
        opt = self._optima[k]
        t0 = t_start * self._interval
        t1 = t_end * self._interval
        # ΣCi is a step function: ∫(C − C*)dt from the sampled anchors
        # (the run boundary sample at t1 closes the last step exactly).
        widths = np.diff(times)
        excess = float(np.sum((costs[:-1] - opt) * widths)) if opt > 0 else float("nan")
        duration = t1 - t0
        mean_regret = (
            excess / (opt * duration) if opt > 0 and duration > 0 else float("nan")
        )
        retrack = float("nan")
        if opt > 0 and np.isfinite(opt) and costs.size:
            errs = (costs - opt) / opt
            if errs[-1] <= self.rel_tol:
                above = np.flatnonzero(errs > self.rel_tol)
                idx = 0 if above.size == 0 else int(above[-1]) + 1
                retrack = (times[idx] - t0) / self._interval
        if self.obs is not None:
            if np.isfinite(retrack):
                self.obs.metrics.histogram("tracking.retrack_rounds").observe(
                    retrack
                )
            tracer = self.obs.tracer
            if tracer is not None:
                # One whole-epoch span on a dedicated lane: the timeline
                # backbone the per-protocol lanes sit under.
                tracer.span(
                    "tracking.epoch",
                    t0,
                    t1 - t0,
                    track=-1,
                    index=k,
                    retrack_rounds=retrack if np.isfinite(retrack) else None,
                )
        return EpochMetrics(
            index=k,
            t_start_rounds=t_start,
            duration_rounds=t_end - t_start,
            optimum_cost=opt,
            cost_at_shift=float(costs[0]) if costs.size else float("nan"),
            final_cost=float(costs[-1]) if costs.size else float("nan"),
            retrack_rounds=retrack,
            exchanges=self.sim.agents.stats.exchanges - self._exch_mark,
            excess_cost=excess,
            mean_regret=mean_regret,
        )

    def report(self) -> TrackingReport:
        """The tracking metrics accumulated so far."""
        return TrackingReport(
            rel_tol=self.rel_tol,
            epochs=list(self._metrics),
            live=self.sim.report(),
            epoch_starts=np.asarray(self._starts[: len(self._metrics) + 1]),
            epoch_optima=np.asarray(self._optima[: len(self._metrics) + 1]),
        )
