"""Load-trace sweeps over (scenario × trace × stateful solver) cells.

A :class:`TrackingCell` is one picklable unit of work: a scenario cell,
a registered trace family and a registered stateful solver.  Evaluation
replays the trace epoch by epoch through the solver session, computing
each epoch's offline optimum with the warm-chained coordinate-descent
solve, and returns a flat metrics row — so whole grids run through the
existing :class:`repro.engine.SweepEngine` machinery: any backend,
``--shard k/N`` sharding, resumable :class:`repro.engine.JsonlStore`
stores (see ``examples/sharded_sweep_coordinator.py``).

>>> from repro.tracking import tracking_sweep
>>> rows = tracking_sweep(["paper-planetlab"], traces=["drift"],
...                       solvers=("mine-warm", "mine-cold"),
...                       sizes=[16], seeds=[0])          # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dynamic import retarget_allocation
from ..core.qp import solve_coordinate_descent
from ..engine.registry import get_stateful_solver
from ..engine.sweep import SweepEngine
from ..workloads.cache import cached_instance
from ..workloads.runner import _instance_digest
from ..workloads.scenario import Scenario, get_scenario
from .traces import get_trace, trace_epochs

__all__ = ["TrackingCell", "evaluate_tracking_cell", "tracking_sweep"]


@dataclass(frozen=True)
class TrackingCell:
    """One (scenario, m, seed) × (trace, stateful solver) tracking run."""

    scenario: Scenario
    m: int
    seed: int
    trace: str                    #: registered trace-family name
    solver: str = "mine-warm"     #: registered stateful-solver name
    rel_tol: float = 0.02
    max_sweeps: int = 60
    exchange_budget: "int | None" = None
    strategy: str = "auto"
    optimum_tol: float = 1e-9

    def __post_init__(self) -> None:
        get_trace(self.trace)            # validate eagerly
        get_stateful_solver(self.solver)

    def key(self) -> str:
        """Stable store identity (instance digest guards against a
        same-named scenario being re-registered with other parameters,
        mirroring :meth:`repro.livesim.LiveCell.key`)."""
        return (
            f"track|{self.scenario.name}|m={self.m}|seed={self.seed}"
            f"|inst={_instance_digest(self.scenario, self.m, self.seed)}"
            f"|trace={self.trace}|solver={self.solver}|tol={self.rel_tol}"
            f"|sweeps={self.max_sweeps}|budget={self.exchange_budget}"
            f"|strategy={self.strategy}|opt_tol={self.optimum_tol}"
        )


def evaluate_tracking_cell(cell: TrackingCell) -> dict:
    """Replay one cell's trace through its stateful solver; flat row."""
    base = cached_instance(cell.scenario, cell.m, cell.seed)
    epochs = trace_epochs(cell.trace, cell.m, cell.seed)
    session = get_stateful_solver(cell.solver)(
        rel_tol=cell.rel_tol,
        max_sweeps=cell.max_sweeps,
        exchange_budget=cell.exchange_budget,
        strategy=cell.strategy,
    )
    opt_state = None
    errors, exchanges, to_bound, walls = [], [], [], []
    retracked = 0
    for k, (_t, loads) in enumerate(epochs):
        inst = base.with_loads(loads)
        warm = retarget_allocation(opt_state, inst) if opt_state is not None else None
        opt_state = solve_coordinate_descent(inst, state=warm, tol=cell.optimum_tol)
        opt_cost = opt_state.total_cost()
        if k == 0:
            res = session.start(inst, rng=cell.seed, optimum=opt_cost)
        else:
            res = session.step(inst, optimum=opt_cost)
        errors.append(res.relative_error(opt_cost))
        exchanges.append(res.metadata["exchanges"])
        to_bound.append(res.metadata["exchanges_to_bound"])
        walls.append(res.wall_time_s)
        retracked += bool(res.converged)
    to_bound_arr = np.asarray(to_bound, dtype=np.float64)
    steps = np.asarray(exchanges[1:], dtype=np.float64)  # epoch 0 is a cold
    return {                                             # start for everyone
        "scenario": cell.scenario.name,
        "m": cell.m,
        "seed": cell.seed,
        "trace": cell.trace,
        "solver": cell.solver,
        "epochs": len(epochs),
        "retracked_epochs": retracked,
        "all_retracked": retracked == len(epochs),
        "mean_error": float(np.mean(errors)),
        "max_error": float(np.max(errors)),
        "total_exchanges": int(np.sum(exchanges)),
        "mean_exchanges_per_epoch": float(np.mean(exchanges)),
        #: the tracking figure of merit: exchanges per *re-track* (the
        #: epochs that follow a demand shift; the initial solve is a
        #: cold start for every solver and is reported separately above)
        "mean_step_exchanges": float(steps.mean()) if steps.size else float("nan"),
        "mean_exchanges_to_bound": (
            float(np.nanmean(to_bound_arr))
            if np.isfinite(to_bound_arr).any()
            else float("nan")
        ),
        "solve_wall_s": float(np.sum(walls)),
    }


def tracking_sweep(
    scenarios,
    *,
    traces=("drift",),
    solvers=("mine-warm", "mine-cold"),
    sizes=None,
    seeds=(0,),
    rel_tol: float = 0.02,
    max_sweeps: int = 60,
    exchange_budget: "int | None" = None,
    backend: str = "serial",
    max_workers: "int | None" = None,
    store=None,
    shard=None,
) -> list[dict]:
    """Sweep tracking performance across a scenario × trace × solver grid.

    ``scenarios`` mixes names and :class:`Scenario` objects; ``sizes``
    of ``None`` uses each scenario's default ``m``.  Returns one metrics
    row per cell in grid order; execution, sharding and stores go
    through :class:`repro.engine.SweepEngine` exactly as every other
    sweep in the repo (out-of-shard pending cells come back ``None``).
    """
    if isinstance(scenarios, (str, Scenario)):
        scenarios = [scenarios]
    resolved = [s if isinstance(s, Scenario) else get_scenario(s) for s in scenarios]
    cells = [
        TrackingCell(
            scenario=sc,
            m=int(m),
            seed=int(seed),
            trace=trace,
            solver=solver,
            rel_tol=rel_tol,
            max_sweeps=max_sweeps,
            exchange_budget=exchange_budget,
        )
        for sc in resolved
        for m in (sizes if sizes is not None else (sc.m,))
        for seed in seeds
        for trace in traces
        for solver in solvers
    ]
    engine = SweepEngine(
        evaluate_tracking_cell,
        cells,
        backend=backend,
        max_workers=max_workers,
        store=store,
        key=lambda cell: cell.key(),
        shard=shard,
    )
    return engine.run()
