"""Experiment harness reproducing every table and figure of Section VI
and the appendix."""

from .common import (
    LARGE_SIZES,
    PAPER_AVG_LOADS,
    PAPER_SIZES,
    PEAK_TOTAL,
    Setting,
    make_instance,
    paper_settings,
)
from .convergence import convergence_table, figure2_traces, iterations_to_tolerance
from .rtt_validation import rtt_table
from .selfishness import selfishness_ratio, selfishness_table

__all__ = [
    "Setting",
    "make_instance",
    "paper_settings",
    "PAPER_SIZES",
    "PAPER_AVG_LOADS",
    "PEAK_TOTAL",
    "LARGE_SIZES",
    "convergence_table",
    "figure2_traces",
    "iterations_to_tolerance",
    "selfishness_table",
    "selfishness_ratio",
    "rtt_table",
]
