"""Convergence experiments — Tables I, II and Figure 2 of the paper.

Table I/II measure how many iterations of the distributed algorithm are
needed to bring ``ΣCi`` within 2 % (resp. 0.1 %) of the optimum, grouped
by network size and initial-load distribution.  Figure 2 plots the raw
``ΣCi`` trajectory for the peak distribution on large heterogeneous
networks.

Run as a module::

    python -m repro.experiments.convergence --table 1
    python -m repro.experiments.convergence --table 2 --backend process
    python -m repro.experiments.convergence --figure 2

Grid execution is delegated to :class:`repro.engine.SweepEngine`: every
cell (one :class:`~repro.experiments.common.Setting`) is self-contained
and deterministic, so ``--backend process`` fans the grid out over all
cores with results identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.distributed import MinEOptimizer
from ..core.qp import solve_coordinate_descent
from ..core.state import AllocationState
from ..engine import BACKENDS, SweepEngine
from .common import (
    LARGE_SIZES,
    PAPER_AVG_LOADS,
    PAPER_SIZES,
    Setting,
    make_instance,
    paper_settings,
    streaming_announcer,
)
from .report import format_grouped_table

__all__ = [
    "iterations_to_tolerance",
    "convergence_table",
    "figure2_traces",
    "TableCell",
]


@dataclass
class TableCell:
    """avg/max/std of iteration counts for one (size-group, load-kind)."""

    group: str
    load_kind: str
    average: float
    maximum: int
    std: float
    samples: int


def iterations_to_tolerance(
    setting: Setting,
    rel_tol: float,
    *,
    max_iterations: int = 30,
    rng_seed: int = 7,
    snapshot: bool = True,
) -> int:
    """Iterations the distributed algorithm needs to reach the given
    relative error versus the optimum.

    Like the paper ("the optimal solution ... was approximated by our
    distributed algorithm"), the reference optimum is obtained by running
    the distributed algorithm to a standstill, then polishing with
    warm-started coordinate descent; the iteration count is read off the
    recorded cost trajectory.
    """
    inst = make_instance(setting)
    state = AllocationState.initial(inst)
    # Snapshot partner selection models the paper's synchronous rounds:
    # every server chooses its partner from the loads as of the sweep's
    # start, so information propagates once per iteration.  (The fully
    # asynchronous variant converges even faster — see EXPERIMENTS.md.)
    optimizer = MinEOptimizer(
        state, rng=rng_seed, snapshot_partner_selection=snapshot
    )
    # Stall when per-sweep progress drops three orders of magnitude below
    # the tolerance being measured; the CD polish below supplies the true
    # optimum, so a premature stall only shows up as "not reached".
    trace = optimizer.run(
        max_iterations=max_iterations, stall_tol=rel_tol * 1e-3
    )
    opt = solve_coordinate_descent(inst, state=state, tol=1e-13).total_cost()
    if opt <= 0:
        return 0
    errors = trace.relative_errors(opt)
    hits = np.flatnonzero(errors <= rel_tol)
    # costs[0] is the initial allocation; index k = after iteration k.
    return int(hits[0]) if hits.size else max_iterations


def _size_group(m: int) -> str:
    return "m <= 50" if m <= 50 else f"m = {m}"


def _iterations_cell(cell: tuple[Setting, float, int]) -> int:
    """Picklable per-cell work unit for the sweep engine."""
    setting, rel_tol, max_iterations = cell
    return iterations_to_tolerance(setting, rel_tol, max_iterations=max_iterations)


def convergence_table(
    rel_tol: float,
    *,
    sizes: tuple[int, ...] = PAPER_SIZES,
    avg_loads: tuple[float, ...] = PAPER_AVG_LOADS,
    repetitions: int = 1,
    max_iterations: int = 30,
    progress: bool = False,
    backend: str = "serial",
    max_workers: int | None = None,
    store=None,
    shard: "str | tuple[int, int] | None" = None,
) -> list[TableCell]:
    """Compute Table I (``rel_tol=0.02``) or Table II (``rel_tol=0.001``).

    Iterations are aggregated over average loads, both network kinds and
    repetitions, exactly like the paper groups its rows.  ``backend``
    selects the :mod:`repro.engine` execution backend; every cell is
    deterministic in its :class:`Setting`, so parallel runs match serial
    ones exactly.  ``store``/``shard`` enable resumable and sharded
    grids (see :class:`SweepEngine`); with a shard, cells owned by other
    shards are excluded from the aggregation.
    """
    settings = list(paper_settings(
        sizes=sizes, avg_loads=avg_loads, repetitions=repetitions
    ))
    engine: SweepEngine = SweepEngine(
        _iterations_cell,
        [(s, rel_tol, max_iterations) for s in settings],
        backend=backend,
        max_workers=max_workers,
        store=store,
        shard=shard,
    )
    announce = streaming_announcer(
        settings,
        lambda setting, iters: f"  {setting.label():<60} -> {iters} iterations",
    )
    results = engine.run(progress=announce if progress else None)
    buckets: dict[tuple[str, str], list[int]] = {}
    for setting, iters in zip(settings, results):
        if iters is None:
            continue  # pending cell owned by another shard
        key = (_size_group(setting.m), setting.load_kind)
        buckets.setdefault(key, []).append(iters)
    cells = []
    for (group, kind), values in sorted(buckets.items()):
        arr = np.asarray(values, dtype=np.float64)
        cells.append(
            TableCell(
                group=group,
                load_kind=kind,
                average=float(arr.mean()),
                maximum=int(arr.max()),
                std=float(arr.std()),
                samples=arr.shape[0],
            )
        )
    return cells


def _figure2_cell(cell: tuple[int, int, int, bool]) -> list[float]:
    """Picklable per-size work unit: one Figure 2 cost trajectory."""
    m, iterations, rng_seed, snapshot = cell
    setting = Setting(m, "peak", 100_000.0 / m, "planetlab")
    inst = make_instance(setting)
    state = AllocationState.initial(inst)
    optimizer = MinEOptimizer(
        state, rng=rng_seed, snapshot_partner_selection=snapshot
    )
    trace = optimizer.run(max_iterations=iterations)
    return trace.costs


def figure2_traces(
    sizes: tuple[int, ...] = LARGE_SIZES,
    *,
    iterations: int = 20,
    rng_seed: int = 7,
    snapshot: bool = True,
    backend: str = "serial",
    max_workers: int | None = None,
    store=None,
    shard: "str | tuple[int, int] | None" = None,
) -> dict[int, list[float]]:
    """Figure 2: ``ΣCi`` per iteration for the peak distribution on large
    heterogeneous (PlanetLab-like) networks, no negative-cycle removal.

    ``snapshot=True`` (synchronous rounds) reproduces the paper's gradual
    exponential decrease; the asynchronous variant spreads the peak within
    a single sweep.  The large sizes are the heaviest cells in the repo —
    ``backend="process"`` runs them concurrently and ``shard`` splits
    them across machines (sizes owned by other shards are omitted from
    the returned dict)."""
    engine: SweepEngine = SweepEngine(
        _figure2_cell,
        [(m, iterations, rng_seed, snapshot) for m in sizes],
        backend=backend,
        max_workers=max_workers,
        store=store,
        shard=shard,
    )
    return {
        m: trace for m, trace in zip(sizes, engine.run()) if trace is not None
    }


def _render_table(rel_tol: float, cells: list[TableCell]) -> str:
    header = (
        f"Iterations of the distributed algorithm to reach "
        f"{rel_tol:.1%} relative error in ΣCi"
    )
    rows = [
        (c.group, c.load_kind, f"{c.average:.2f}", str(c.maximum), f"{c.std:.2f}")
        for c in cells
    ]
    return format_grouped_table(
        header, ("group", "load", "average", "max", "st. dev."), rows
    )


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table", type=int, choices=(1, 2))
    parser.add_argument("--figure", type=int, choices=(2,))
    parser.add_argument("--sizes", type=int, nargs="*")
    parser.add_argument("--repetitions", type=int, default=1)
    parser.add_argument("--quick", action="store_true", help="reduced grid")
    parser.add_argument("--backend", default="serial",
                        choices=BACKENDS)
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)

    if args.table:
        rel_tol = 0.02 if args.table == 1 else 0.001
        sizes = tuple(args.sizes) if args.sizes else (
            (20, 50, 100) if args.quick else PAPER_SIZES
        )
        avg_loads = (20, 200) if args.quick else PAPER_AVG_LOADS
        cells = convergence_table(
            rel_tol,
            sizes=sizes,
            avg_loads=avg_loads,
            repetitions=args.repetitions,
            progress=True,
            backend=args.backend,
            max_workers=args.workers,
        )
        print(_render_table(rel_tol, cells))
    if args.figure:
        sizes = tuple(args.sizes) if args.sizes else (
            (500, 1000) if args.quick else LARGE_SIZES
        )
        traces = figure2_traces(
            sizes, backend=args.backend, max_workers=args.workers
        )
        print("Figure 2: total processing time ΣCi per iteration (peak load)")
        for m, costs in traces.items():
            series = " ".join(f"{c:.4g}" for c in costs)
            print(f"m={m:5d}: {series}")


if __name__ == "__main__":
    main()
