"""RTT-vs-background-load validation — Table IV (appendix).

Re-runs the appendix experiment on the synthetic link model of
:mod:`repro.net.rtt_model` with the paper's exact statistical pipeline:
60 servers, 5 random neighbours each, 300 RTT samples per pair and
throughput level, relative deviation versus the 10 KB/s baseline, 5 % of
the largest deviations trimmed, mean (µ) and standard deviation (σ)
reported per throughput.

Run as a module::

    python -m repro.experiments.rtt_validation [--quick]
"""

from __future__ import annotations

from ..net.rtt_model import BackgroundLoadExperiment, DeviationRow
from .report import format_simple_table

__all__ = ["rtt_table", "render_table"]


def rtt_table(
    *,
    servers: int = 60,
    samples: int = 300,
    seed: int = 0,
) -> list[DeviationRow]:
    """Produce the Table IV rows on the synthetic substrate."""
    exp = BackgroundLoadExperiment(servers=servers, samples=samples, rng=seed)
    return exp.run()


def render_table(rows: list[DeviationRow]) -> str:
    body = [(r.label, f"{r.mu:+.2f}", f"{r.sigma:.2f}") for r in rows]
    return format_simple_table(
        "Relative RTT deviation vs background throughput (5% trimmed)",
        ("tb", "mu", "sigma"),
        body,
    )


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    rows = (
        rtt_table(servers=20, samples=60) if args.quick else rtt_table()
    )
    print(render_table(rows))


if __name__ == "__main__":
    main()
