"""Cost-of-selfishness experiments — Table III of the paper.

For every experimental cell the Nash equilibrium is approximated by
best-response dynamics (terminating when all organizations change their
distribution by less than 1 % in two consecutive rounds — Section VI-C)
and compared against the cooperative optimum.  Rows are grouped exactly
like Table III: {constant, uniform} speeds × {l_av ≤ 30, = 50, ≥ 200} ×
{homogeneous c=20, PlanetLab}.

Run as a module::

    python -m repro.experiments.selfishness [--quick] [--backend process]

Grid execution is delegated to :class:`repro.engine.SweepEngine`; each
cell is deterministic in its :class:`~repro.experiments.common.Setting`,
so the process backend reproduces serial results exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.game import best_response_dynamics
from ..core.qp import solve_coordinate_descent
from ..engine import BACKENDS, SweepEngine
from .common import Setting, make_instance, paper_settings, streaming_announcer
from .report import format_grouped_table

__all__ = ["selfishness_ratio", "selfishness_table", "RatioCell"]


@dataclass
class RatioCell:
    """avg/max/std of NE/OPT ratios for one Table III row."""

    speed_kind: str
    load_band: str
    network: str
    average: float
    maximum: float
    std: float
    samples: int


def selfishness_ratio(setting: Setting, *, rng_seed: int = 11) -> float:
    """``ΣCi`` at the (approximate) Nash equilibrium divided by the
    cooperative optimum for one experimental cell."""
    inst = make_instance(setting)
    ne, _ = best_response_dynamics(inst, rng=rng_seed, tol_change=0.01)
    opt = solve_coordinate_descent(inst)
    c_opt = opt.total_cost()
    if c_opt <= 0:
        return 1.0
    return max(1.0, ne.total_cost() / c_opt)


def _load_band(avg: float) -> str:
    if avg <= 30:
        return "lav <= 30"
    if avg <= 50:
        return "lav = 50"
    return "lav >= 200"


def selfishness_table(
    *,
    sizes: tuple[int, ...] = (20, 30, 50, 100),
    avg_loads: tuple[float, ...] = (10, 20, 50, 200, 1000),
    repetitions: int = 1,
    progress: bool = False,
    backend: str = "serial",
    max_workers: int | None = None,
    store=None,
    shard: "str | tuple[int, int] | None" = None,
) -> list[RatioCell]:
    """Compute the Table III grid.

    The paper uses uniform and exponential load distributions over its
    standard sizes; the peak distribution is excluded (a single owner has
    nothing to be selfish against in the l_av bands).  ``backend``
    selects the :mod:`repro.engine` execution backend; ``store``/``shard``
    make the grid resumable and shardable (cells owned by other shards
    are excluded from the aggregation)."""
    settings = [
        setting
        for speed_kind in ("constant", "uniform")
        for setting in paper_settings(
            sizes=sizes,
            load_kinds=("uniform", "exponential"),
            avg_loads=avg_loads,
            speed_kind=speed_kind,
            repetitions=repetitions,
        )
    ]
    engine: SweepEngine = SweepEngine(
        selfishness_ratio, settings, backend=backend, max_workers=max_workers,
        store=store, shard=shard,
    )
    announce = streaming_announcer(
        settings,
        lambda setting, ratio:
            f"  {setting.speed_kind:<9} {setting.label():<58} -> {ratio:.4f}",
    )
    results = engine.run(progress=announce if progress else None)
    buckets: dict[tuple[str, str, str], list[float]] = {}
    for setting, ratio in zip(settings, results):
        if ratio is None:
            continue  # pending cell owned by another shard
        key = (
            setting.speed_kind,
            _load_band(setting.avg_load),
            "cij = 20" if setting.network == "homogeneous" else "PL",
        )
        buckets.setdefault(key, []).append(ratio)
    order = {"lav <= 30": 0, "lav = 50": 1, "lav >= 200": 2}
    cells = []
    for (speed_kind, band, net), values in sorted(
        buckets.items(), key=lambda kv: (kv[0][0], order[kv[0][1]], kv[0][2])
    ):
        arr = np.asarray(values)
        cells.append(
            RatioCell(
                speed_kind=speed_kind,
                load_band=band,
                network=net,
                average=float(arr.mean()),
                maximum=float(arr.max()),
                std=float(arr.std()),
                samples=arr.shape[0],
            )
        )
    return cells


def render_table(cells: list[RatioCell]) -> str:
    rows = [
        (
            f"{c.speed_kind} s_i",
            c.load_band,
            c.network,
            f"{c.average:.3f}",
            f"{c.maximum:.3f}",
            f"{c.std:.3f}",
        )
        for c in cells
    ]
    return format_grouped_table(
        "Cost of selfishness: ΣCi(NE) / ΣCi(OPT)",
        ("speeds", "load band", "network", "avg", "max", "st. dev."),
        rows,
    )


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--repetitions", type=int, default=1)
    parser.add_argument("--backend", default="serial",
                        choices=BACKENDS)
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)
    exec_kw = dict(backend=args.backend, max_workers=args.workers)
    if args.quick:
        cells = selfishness_table(
            sizes=(20, 50), avg_loads=(20, 50, 200), progress=True, **exec_kw
        )
    else:
        cells = selfishness_table(
            repetitions=args.repetitions, progress=True, **exec_kw
        )
    print(render_table(cells))


if __name__ == "__main__":
    main()
