"""Shared experiment machinery for reproducing Section VI.

The paper's settings (Section VI-A):

* networks: *homogeneous* (``c_ij = 20``) and *PlanetLab* (measured RTTs in
  milliseconds; here the synthetic generator of
  :func:`repro.net.topology.planetlab_like_latency`);
* server speeds: uniform on ``[1, 5]`` (plus constant speeds for parts of
  Table III);
* initial loads: *uniform* and *exponential* distributions with average
  load ``l_av ∈ {10, 20, 50, 200, 1000}``, and a *peak* distribution with
  100 000 requests owned by a single server;
* sizes ``m ∈ {20, 30, 50, 100, 200, 300}`` plus the large-scale
  ``{500, …, 5000}`` of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal

import numpy as np

from ..core.instance import Instance
from ..net.topology import homogeneous_latency, planetlab_like_latency

__all__ = [
    "LoadKind",
    "NetworkKind",
    "SpeedKind",
    "Setting",
    "make_instance",
    "paper_settings",
    "PAPER_SIZES",
    "PAPER_AVG_LOADS",
    "PEAK_TOTAL",
    "LARGE_SIZES",
]

LoadKind = Literal["uniform", "exponential", "peak"]
NetworkKind = Literal["homogeneous", "planetlab"]
SpeedKind = Literal["uniform", "constant"]

PAPER_SIZES = (20, 30, 50, 100, 200, 300)
PAPER_AVG_LOADS = (10, 20, 50, 200, 1000)
PEAK_TOTAL = 100_000.0
LARGE_SIZES = (500, 1000, 2000, 3000, 5000)


@dataclass(frozen=True)
class Setting:
    """One experimental cell: a size, load distribution, average load,
    network kind and speed kind plus a replication seed."""

    m: int
    load_kind: LoadKind
    avg_load: float
    network: NetworkKind
    speed_kind: SpeedKind = "uniform"
    seed: int = 0

    def label(self) -> str:
        return (
            f"m={self.m} {self.load_kind}(lav={self.avg_load:g}) "
            f"{self.network} s={self.speed_kind} seed={self.seed}"
        )


def _make_loads(
    kind: LoadKind, m: int, avg: float, rng: np.random.Generator
) -> np.ndarray:
    if kind == "uniform":
        return rng.uniform(0.0, 2.0 * avg, size=m)
    if kind == "exponential":
        return rng.exponential(avg, size=m)
    if kind == "peak":
        n = np.zeros(m)
        n[int(rng.integers(0, m))] = PEAK_TOTAL
        return n
    raise ValueError(f"unknown load kind {kind!r}")


def make_instance(setting: Setting) -> Instance:
    """Materialize the instance for one experimental cell (deterministic in
    the setting's seed)."""
    rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=0xC0FFEE,
            spawn_key=(
                setting.m,
                hash(setting.load_kind) & 0xFFFF,
                int(setting.avg_load),
                hash(setting.network) & 0xFFFF,
                hash(setting.speed_kind) & 0xFFFF,
                setting.seed,
            ),
        )
    )
    if setting.speed_kind == "uniform":
        speeds = rng.uniform(1.0, 5.0, size=setting.m)
    else:
        speeds = np.ones(setting.m)
    loads = _make_loads(setting.load_kind, setting.m, setting.avg_load, rng)
    if setting.network == "homogeneous":
        latency = homogeneous_latency(setting.m, 20.0)
    else:
        latency = planetlab_like_latency(setting.m, rng=rng)
    return Instance(speeds, loads, latency)


def paper_settings(
    *,
    sizes: tuple[int, ...] = PAPER_SIZES,
    load_kinds: tuple[LoadKind, ...] = ("uniform", "exponential", "peak"),
    avg_loads: tuple[float, ...] = PAPER_AVG_LOADS,
    networks: tuple[NetworkKind, ...] = ("homogeneous", "planetlab"),
    speed_kind: SpeedKind = "uniform",
    repetitions: int = 1,
) -> Iterator[Setting]:
    """Iterate over the Section VI experimental grid.  The *peak*
    distribution ignores ``avg_loads`` (its total is fixed at 100 000)."""
    for m in sizes:
        for kind in load_kinds:
            avgs: tuple[float, ...] = (PEAK_TOTAL / m,) if kind == "peak" else avg_loads
            for avg in avgs:
                for net in networks:
                    for rep in range(repetitions):
                        yield Setting(m, kind, avg, net, speed_kind, rep)
