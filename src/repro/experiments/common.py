"""Shared experiment machinery for reproducing Section VI.

The paper's settings (Section VI-A):

* networks: *homogeneous* (``c_ij = 20``) and *PlanetLab* (measured RTTs in
  milliseconds; here the synthetic generator of
  :func:`repro.net.topology.planetlab_like_latency`);
* server speeds: uniform on ``[1, 5]`` (plus constant speeds for parts of
  Table III);
* initial loads: *uniform* and *exponential* distributions with average
  load ``l_av ∈ {10, 20, 50, 200, 1000}``, and a *peak* distribution with
  100 000 requests owned by a single server;
* sizes ``m ∈ {20, 30, 50, 100, 200, 300}`` plus the large-scale
  ``{500, …, 5000}`` of Figure 2.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Literal

import numpy as np

from ..core.instance import Instance
from ..net.topology import homogeneous_latency, planetlab_like_latency
from ..workloads.topologies import (
    fat_tree_latency,
    ring_of_clusters_latency,
    star_hub_latency,
)

__all__ = [
    "LoadKind",
    "NetworkKind",
    "SpeedKind",
    "Setting",
    "make_instance",
    "paper_settings",
    "scenario_instances",
    "streaming_announcer",
    "PAPER_SIZES",
    "PAPER_AVG_LOADS",
    "PEAK_TOTAL",
    "LARGE_SIZES",
]

LoadKind = Literal["uniform", "exponential", "peak"]
#: The paper's two networks plus the :mod:`repro.workloads` families.
NetworkKind = Literal[
    "homogeneous", "planetlab", "fattree", "ring-of-clusters", "star"
]
SpeedKind = Literal["uniform", "constant"]

PAPER_SIZES = (20, 30, 50, 100, 200, 300)
PAPER_AVG_LOADS = (10, 20, 50, 200, 1000)
PEAK_TOTAL = 100_000.0
LARGE_SIZES = (500, 1000, 2000, 3000, 5000)


@dataclass(frozen=True)
class Setting:
    """One experimental cell: a size, load distribution, average load,
    network kind and speed kind plus a replication seed."""

    m: int
    load_kind: LoadKind
    avg_load: float
    network: NetworkKind
    speed_kind: SpeedKind = "uniform"
    seed: int = 0

    def label(self) -> str:
        return (
            f"m={self.m} {self.load_kind}(lav={self.avg_load:g}) "
            f"{self.network} s={self.speed_kind} seed={self.seed}"
        )


def _make_loads(
    kind: LoadKind, m: int, avg: float, rng: np.random.Generator
) -> np.ndarray:
    if kind == "uniform":
        return rng.uniform(0.0, 2.0 * avg, size=m)
    if kind == "exponential":
        return rng.exponential(avg, size=m)
    if kind == "peak":
        n = np.zeros(m)
        n[int(rng.integers(0, m))] = PEAK_TOTAL
        return n
    raise ValueError(f"unknown load kind {kind!r}")


def make_instance(setting: Setting) -> Instance:
    """Materialize the instance for one experimental cell (deterministic in
    the setting's seed — ``crc32``, not the per-process-randomized builtin
    ``hash``, so the same cell is bit-identical across runs and machines)."""
    rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=0xC0FFEE,
            spawn_key=(
                setting.m,
                zlib.crc32(setting.load_kind.encode()) & 0xFFFF,
                int(setting.avg_load),
                zlib.crc32(setting.network.encode()) & 0xFFFF,
                zlib.crc32(setting.speed_kind.encode()) & 0xFFFF,
                setting.seed,
            ),
        )
    )
    if setting.speed_kind == "uniform":
        speeds = rng.uniform(1.0, 5.0, size=setting.m)
    else:
        speeds = np.ones(setting.m)
    loads = _make_loads(setting.load_kind, setting.m, setting.avg_load, rng)
    latency = _make_latency(setting.network, setting.m, rng)
    return Instance(speeds, loads, latency)


def _make_latency(
    network: NetworkKind, m: int, rng: np.random.Generator
) -> np.ndarray:
    if network == "homogeneous":
        return homogeneous_latency(m, 20.0)
    if network == "planetlab":
        return planetlab_like_latency(m, rng=rng)
    if network == "fattree":
        return fat_tree_latency(m, rng=rng)
    if network == "ring-of-clusters":
        return ring_of_clusters_latency(m, rng=rng)
    if network == "star":
        return star_hub_latency(m, rng=rng)
    raise ValueError(f"unknown network kind {network!r}")


def paper_settings(
    *,
    sizes: tuple[int, ...] = PAPER_SIZES,
    load_kinds: tuple[LoadKind, ...] = ("uniform", "exponential", "peak"),
    avg_loads: tuple[float, ...] = PAPER_AVG_LOADS,
    networks: tuple[NetworkKind, ...] = ("homogeneous", "planetlab"),
    speed_kind: SpeedKind = "uniform",
    repetitions: int = 1,
) -> Iterator[Setting]:
    """Iterate over the Section VI experimental grid.  The *peak*
    distribution ignores ``avg_loads`` (its total is fixed at 100 000)."""
    for m in sizes:
        for kind in load_kinds:
            avgs: tuple[float, ...] = (PEAK_TOTAL / m,) if kind == "peak" else avg_loads
            for avg in avgs:
                for net in networks:
                    for rep in range(repetitions):
                        yield Setting(m, kind, avg, net, speed_kind, rep)


def streaming_announcer(cells, render):
    """A per-result progress printer for engine-driven grids.

    :meth:`repro.engine.SweepEngine.run` invokes ``progress`` exactly
    once per result, in cell order (the engine's documented contract);
    this helper walks ``cells`` in lockstep so each result is announced
    next to the cell that produced it, while the grid is still running.
    Returns a callable for ``run(progress=...)``.
    """
    pending = iter(cells)

    def _announce(result) -> None:
        cell = next(pending)
        if result is None:
            return  # pending cell owned by another shard
        print(render(cell, result), flush=True)

    return _announce


def scenario_instances(
    names: str | Iterator[str] | tuple[str, ...] | list[str],
    *,
    sizes: tuple[int, ...] | None = None,
    seeds: tuple[int, ...] = (0,),
) -> Iterator[tuple[str, int, int, Instance]]:
    """Bridge the :mod:`repro.workloads` registry into experiment scripts:
    yield ``(name, m, seed, instance)`` for exactly the cells a
    :class:`~repro.workloads.ScenarioRunner` with the same arguments would
    execute (the enumeration is delegated to it), for scripts that want
    the raw instances instead of the metric table."""
    from ..workloads.runner import ScenarioRunner

    runner = ScenarioRunner(names, sizes=sizes, seeds=tuple(seeds))
    for sc, m, seed in runner.grid():
        yield sc.name, m, seed, sc.instance(m, seed=seed)
