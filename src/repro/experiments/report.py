"""Plain-text table rendering in the style of the paper's tables."""

from __future__ import annotations

__all__ = ["format_grouped_table", "format_simple_table"]


def format_simple_table(
    title: str, headers: tuple[str, ...], rows: list[tuple[str, ...]]
) -> str:
    """Render a fixed-width text table with a title line."""
    widths = [len(h) for h in headers]
    for row in rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    sep = "  "
    lines = [title]
    lines.append(sep.join(h.ljust(widths[k]) for k, h in enumerate(headers)))
    lines.append(sep.join("-" * w for w in widths))
    for row in rows:
        lines.append(sep.join(cell.ljust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)


def format_grouped_table(
    title: str, headers: tuple[str, ...], rows: list[tuple[str, ...]]
) -> str:
    """Like :func:`format_simple_table` but repeats the first column only
    when it changes (the grouped look of Tables I–III)."""
    out_rows: list[tuple[str, ...]] = []
    last_group = None
    for row in rows:
        group = row[0]
        shown = group if group != last_group else ""
        out_rows.append((shown,) + tuple(row[1:]))
        last_group = group
    return format_simple_table(title, headers, out_rows)
