"""Harness over the ``byzantine-*`` family: run one cell, sweep f.

:func:`run_byz` materializes a preset's instance (memoized through
:mod:`repro.workloads.cache`), attaches ``f`` adversaries, runs the
live control plane for the preset's round budget and reports the
relative convergence error against the offline optimum — the §VI
metric, now measured under attack.  :func:`error_vs_f` sweeps ``f`` to
draw the graceful-degradation curve: flat and under ``error_bound`` up
to ``f_max`` with the robust merge on, climbing (or livelocked) with it
off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..livesim.driver import LiveReport, LiveSimulation
from ..workloads.cache import cached_instance, cached_optimum
from ..workloads.scenario import get_scenario
from .scenarios import ByzPreset, get_byz_preset

__all__ = ["ByzRunResult", "run_byz", "error_vs_f"]


@dataclass
class ByzRunResult:
    """One (preset, f, merge mode) measurement."""

    preset: str
    f: int
    robust: bool
    seed: int
    error: float                 #: final relative error vs the optimum
    adversaries: tuple[int, ...]  #: compromised server ids (empty at f=0)
    optimum_cost: float
    report: LiveReport = field(repr=False)
    #: per-server suspicion (robust merge only, else ``None``)
    suspicion: np.ndarray | None = field(default=None, repr=False)

    @property
    def within_bound(self) -> bool:
        """Whether the run met its preset's acceptance bound (set by
        :func:`run_byz`)."""
        return bool(self.error <= self._bound)

    _bound: float = field(default=0.02, repr=False)

    def suspicion_ranks_adversaries(self) -> bool:
        """Whether the ``f`` most-suspected servers are exactly the
        compromised ones (vacuously true at f=0 or under legacy)."""
        if self.suspicion is None or not self.adversaries:
            return True
        top = np.argsort(self.suspicion)[::-1][: len(self.adversaries)]
        return set(int(s) for s in top) == set(self.adversaries)


def run_byz(
    preset: str | ByzPreset,
    *,
    f: int,
    robust: bool,
    seed: int = 0,
    rounds: float | None = None,
) -> ByzRunResult:
    """Run one cell of the Byzantine robustness grid."""
    p = get_byz_preset(preset) if isinstance(preset, str) else preset
    if f < 0:
        raise ValueError("f must be non-negative")
    sc = get_scenario(p.scenario)
    inst = cached_instance(sc, p.m, seed)
    _opt_state, opt_cost, _wall, _hit = cached_optimum(sc, p.m, seed)
    cfg = p.config_for(f, robust=robust)
    sim = LiveSimulation(inst, config=cfg, seed=seed, optimum=opt_cost)
    report = sim.run(rounds=p.rounds if rounds is None else rounds)
    adversaries = sim.byz.servers if sim.byz is not None else ()
    return ByzRunResult(
        preset=p.name,
        f=int(f),
        robust=bool(robust),
        seed=int(seed),
        error=float(report.final_error),
        adversaries=tuple(adversaries),
        optimum_cost=float(opt_cost),
        report=report,
        suspicion=report.suspicion,
        _bound=p.error_bound,
    )


def error_vs_f(
    preset: str | ByzPreset,
    *,
    fs: tuple[int, ...] | None = None,
    robust: bool = True,
    seed: int = 0,
    rounds: float | None = None,
) -> dict[int, float]:
    """Final convergence error for each ``f`` — the degradation curve.

    Defaults to ``f = 0 .. f_max + 2``: the tail past ``f_max`` is where
    even the robust merge is *expected* to break (colluding quorums),
    which the benchmark records rather than hides.
    """
    p = get_byz_preset(preset) if isinstance(preset, str) else preset
    if fs is None:
        fs = tuple(range(p.f_max + 3))
    return {
        int(f): run_byz(p, f=int(f), robust=robust, seed=seed, rounds=rounds).error
        for f in fs
    }
