"""The adversary plane: named gossip-misbehaviour models on a seeded
subset of servers.

A Byzantine server here is one whose *gossip plane* lies — its exchange
agent still follows the handshake protocol (the pair-sync computes
transfers on true state, so lies can misdirect partner selection and
stall convergence, but never corrupt an allocation directly).  Four
named models:

``"stale-repeater"``
    Freezes its view of the whole fleet at compromise time (the t = 0
    loads) and keeps re-gossiping the frozen entries with version clocks
    advancing *faster* than the honest +1-per-publish cadence — so under
    the legacy merge its stale rows win everywhere and the fleet's views
    freeze at the initial imbalance.
``"load-underreporter"``
    A freeloader: claims ``underreport_factor ×`` its true load for its
    own entry *and refuses every incoming exchange proposal* (accepting
    one would pair-sync on true state and expose the lie).  Every
    honest agent then chases the phantom idle server, gets rejected,
    and backs off — the honest pairs that *would* improve are never
    proposed.
``"value-fabricator"``
    Publishes honestly about itself but injects fabricated values for
    other origins each tick, versions bumped ahead so the forgeries win
    legacy merges.  The fabricated values are drawn once (per
    adversary, from its own stream) and replayed — *persistent* bias is
    what pins honest partner selection to the wrong pairs; freshly
    random noise each tick merely randomizes pairing, which still
    converges.
``"flapper"``
    Alternates honest and faulty phases of ``flap_rounds`` agent rounds
    (starting faulty), delegating faulty-phase behaviour to
    ``flap_inner`` — the hardest case for detection because suspicion
    accrues only half the time.

Determinism: the plane draws *only* from streams spawned off its own
entropy constant keyed by the run seed — the honest subsystems' streams
(gossip/agents/churn/traffic/drop) are untouched, so a run with
``f = 0`` (or no model at all) is bit-identical to a run without the
plane, asserted by the byz determinism suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.state import AllocationState
from ..livesim.gossip import AsyncGossip
from ..sim.events import Environment

__all__ = ["ByzantineModel", "AdversaryPlane", "ByzStats", "ADVERSARY_MODELS"]

ADVERSARY_MODELS = (
    "stale-repeater",
    "load-underreporter",
    "value-fabricator",
    "flapper",
)

#: Entropy constant of the adversary plane — separated from
#: ``_LIVESIM_ENTROPY`` (and every other engine stream) so attaching
#: adversaries never perturbs an honest stream.
_BYZ_ENTROPY = 0xB12A7E51


@dataclass(frozen=True)
class ByzantineModel:
    """Adversary configuration attached to :class:`repro.livesim.LiveConfig`.

    ``f`` servers are compromised — an explicit ``servers`` tuple, or a
    deterministic draw from the plane's entropy-separated stream.  All
    knobs are plain values, so the config pickles through the sweep
    backends like every other field.
    """

    model: str
    f: int = 1
    servers: tuple[int, ...] | None = None
    #: factor a load-underreporter applies to its claimed load
    underreport_factor: float = 0.1
    #: fabricated values are uniform on [0, fabricate_scale × mean load]
    fabricate_scale: float = 2.0
    #: origins forged per fabricator tick (None = the whole fleet)
    fabricate_count: int | None = None
    #: agent rounds per flapper phase (honest ↔ faulty)
    flap_rounds: float = 8.0
    #: faulty-phase behaviour of a flapper
    flap_inner: str = "stale-repeater"
    #: version advance per adversarial injection tick (honest cadence
    #: is +1 per publish; > 1 means lies win every legacy merge race)
    version_bump: int = 3
    #: adversary tick interval as a fraction of the gossip interval
    cadence_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.model not in ADVERSARY_MODELS:
            raise ValueError(
                f"unknown adversary model {self.model!r}; "
                f"expected one of {ADVERSARY_MODELS}"
            )
        if self.f < 0:
            raise ValueError("f must be non-negative")
        if self.servers is not None and len(self.servers) != self.f:
            raise ValueError(
                f"servers tuple has {len(self.servers)} entries but f={self.f}"
            )
        if not 0.0 <= self.underreport_factor < 1.0:
            raise ValueError("underreport_factor must be in [0, 1)")
        if self.fabricate_scale <= 0:
            raise ValueError("fabricate_scale must be positive")
        if self.fabricate_count is not None and self.fabricate_count < 1:
            raise ValueError("fabricate_count must be >= 1 (or None)")
        if self.flap_rounds <= 0:
            raise ValueError("flap_rounds must be positive")
        if self.flap_inner not in ("stale-repeater", "load-underreporter",
                                   "value-fabricator"):
            raise ValueError(
                f"flap_inner must be a non-flapper model, got {self.flap_inner!r}"
            )
        if self.version_bump < 1:
            raise ValueError("version_bump must be >= 1")
        if self.cadence_scale <= 0:
            raise ValueError("cadence_scale must be positive")


@dataclass
class ByzStats:
    """Counters of the adversary plane (bound as ``byz.*`` metrics)."""

    misreports: int = 0        #: own-entry lies published
    injections: int = 0        #: adversarial table-write ticks
    forged_entries: int = 0    #: entries forged across all ticks
    refusals: int = 0          #: exchange proposals refused (freeloaders)


class AdversaryPlane:
    """Schedules the misbehaviour of ``model.f`` compromised servers.

    Two attack surfaces, both through mode-correct :class:`AsyncGossip`
    hooks so the forged rows travel the normal wire protocol:

    * the gossip ``publish`` attribute is wrapped — a compromised
      server's own-entry publishes (periodic, demand refresh, rejoin
      announcements) turn into :meth:`AsyncGossip.misreport` lies;
    * a self-re-arming per-adversary tick (cadence ≈ the gossip
      interval, jitter from the adversary's own stream) forges entries
      about *other* origins via :meth:`AsyncGossip.inject`;
    * freeloader models additionally install an
      :attr:`ExchangeAgents.refuse` predicate, rejecting incoming
      exchange proposals while faulty.

    Down adversaries stay silent (their ticks no-op while ``alive`` is
    cleared), matching how honest churned servers behave.
    """

    def __init__(
        self,
        env: Environment,
        gossip: AsyncGossip,
        state: AllocationState,
        alive: np.ndarray,
        model: ByzantineModel,
        *,
        seed: int = 0,
        agent_interval: float,
        agents=None,
    ):
        m = gossip.inst.m
        if model.f > m:
            raise ValueError(f"f={model.f} adversaries need f <= m={m} servers")
        self.env = env
        self.gossip = gossip
        self.state = state
        self.alive = alive
        self.model = model
        self.agent_interval = float(agent_interval)
        self.stats = ByzStats()

        root = np.random.SeedSequence(
            entropy=_BYZ_ENTROPY, spawn_key=(int(seed),)
        )
        pick_seq, *adv_seqs = root.spawn(model.f + 1)
        if model.servers is not None:
            servers = [int(s) for s in model.servers]
            if any(not 0 <= s < m for s in servers):
                raise ValueError(f"adversary indices must be in [0, {m})")
            if len(set(servers)) != len(servers):
                raise ValueError("adversary servers must be distinct")
        else:
            pick = np.random.default_rng(pick_seq)
            servers = sorted(
                int(s) for s in pick.choice(m, size=model.f, replace=False)
            )
        self.servers: tuple[int, ...] = tuple(servers)
        self._is_adv = frozenset(servers)
        self._rngs = {a: np.random.default_rng(s)
                      for a, s in zip(servers, adv_seqs)}
        #: the whole-fleet load snapshot a stale-repeater keeps replaying
        self._frozen = state.loads.copy()
        self._mean_load0 = float(state.loads.mean())
        self._others = {
            a: np.array([j for j in range(m) if j != a], dtype=np.intp)
            for a in servers
        }
        # Fabricated tables are drawn once per adversary and replayed:
        # persistent bias pins honest partner selection; per-tick fresh
        # noise would merely randomize pairing (which still converges).
        self._fabricated = {
            a: rng.uniform(0.0, model.fabricate_scale * self._mean_load0, size=m)
            for a, rng in self._rngs.items()
        }

        # Wrap the gossip publish path.  ``publish`` is an instance
        # attribute (the representation-selected bound method), so the
        # wrap covers every later caller while the t = 0 bootstrap
        # (already done) stays honest — initial loads are common
        # knowledge in this protocol.
        self._honest_publish = gossip.publish
        gossip.publish = self._publish

        # Freeloaders also refuse incoming exchange proposals: accepting
        # one would pair-sync on true state and expose the lie.
        refuses = model.model == "load-underreporter" or (
            model.model == "flapper"
            and model.flap_inner == "load-underreporter"
        )
        if refuses and agents is not None:
            agents.refuse = self._refuse

        interval = gossip.interval * model.cadence_scale
        needs_tick = model.model in ("stale-repeater", "value-fabricator") or (
            model.model == "flapper"
            and model.flap_inner in ("stale-repeater", "value-fabricator")
        )
        if needs_tick:
            for a in servers:
                env.call_in(
                    interval * (0.5 + self._rngs[a].uniform()), self._tick, a
                )

    # ------------------------------------------------------------------
    def _faulty_phase(self) -> bool:
        """Flapper phase clock: faulty first, then alternating."""
        period = self.model.flap_rounds * self.agent_interval
        return (int(self.env.now / period) % 2) == 0

    def _active_model(self, a: int) -> str | None:
        """The misbehaviour server ``a`` exhibits *right now* (None =
        honest: not compromised, or a flapper in its honest phase)."""
        if a not in self._is_adv:
            return None
        model = self.model.model
        if model == "flapper":
            return self.model.flap_inner if self._faulty_phase() else None
        return model

    # ------------------------------------------------------------------
    def _refuse(self, acceptor: int, proposer: int) -> bool:
        if self._active_model(acceptor) == "load-underreporter":
            self.stats.refusals += 1
            return True
        return False

    def _publish(self, i: int) -> None:
        active = self._active_model(i)
        if active == "stale-repeater":
            claim: float | None = float(self._frozen[i])
        elif active == "load-underreporter":
            claim = self.model.underreport_factor * float(self.state.loads[i])
        else:  # honest server, fabricator (honest about itself), or None
            claim = None
        if claim is None:
            self._honest_publish(i)
        else:
            self.gossip.misreport(i, claim)
            self.stats.misreports += 1

    def _tick(self, a: int) -> None:
        model = self.model
        active = self._active_model(a)
        if self.alive[a] and active == "stale-repeater":
            ks = self._others[a]
            self.gossip.inject(
                a, ks, self._frozen[ks], version_bump=model.version_bump
            )
            self.stats.injections += 1
            self.stats.forged_entries += len(ks)
        elif self.alive[a] and active == "value-fabricator":
            others = self._others[a]
            count = model.fabricate_count
            if count is None or count >= others.size:
                ks = others
            else:
                ks = self._rngs[a].choice(others, size=count, replace=False)
            self.gossip.inject(
                a, ks, self._fabricated[a][ks], version_bump=model.version_bump
            )
            self.stats.injections += 1
            self.stats.forged_entries += len(ks)
        # Re-arm from the adversary's own stream either way, so a downed
        # or honest-phase adversary's future schedule stays fixed.
        self.env.call_in(
            self.gossip.interval
            * model.cadence_scale
            * (0.5 + self._rngs[a].uniform()),
            self._tick,
            a,
        )
