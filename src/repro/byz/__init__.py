"""``repro.byz`` — Byzantine-robust gossip experiments.

The livesim gossip plane (PR 5–7) trusts every entry by version: a
single server that lies about loads can freeze fleet views, livelock
every honest agent on a phantom idle server, or permanently poison
third-party entries.  This package supplies the other half of the
robustness story:

* :mod:`repro.byz.adversaries` — a deterministic adversary plane
  (:class:`ByzantineModel` / :class:`AdversaryPlane`) scheduled like
  churn, modelling stale-repeaters, load-underreporters,
  value-fabricators and flappers on entropy-separated RNG streams;
* :mod:`repro.byz.scenarios` — the ``byzantine-*`` preset family
  crossing adversary model × trust topology with per-preset ``f_max``
  budgets;
* :mod:`repro.byz.driver` — :func:`run_byz` / :func:`error_vs_f`,
  measuring convergence error against the offline optimum as ``f``
  grows, with the robust merge on or off.

The defense itself lives in :mod:`repro.livesim.gossip`
(``merge_mode="robust"``): quorum + trimmed-mean acceptance for relayed
claims, placement-floor clamps and pair-sync observations for
self-claims, and per-server suspicion scores surfaced as ``byz.*``
metrics.

>>> from repro.byz import run_byz
>>> r = run_byz("byzantine-stale", f=2, robust=True)   # doctest: +SKIP
>>> r.error <= 0.02, r.suspicion_ranks_adversaries()   # doctest: +SKIP
(True, True)
"""

from .adversaries import (
    ADVERSARY_MODELS,
    AdversaryPlane,
    ByzantineModel,
    ByzStats,
)
from .driver import ByzRunResult, error_vs_f, run_byz
from .scenarios import BYZ_PRESETS, ByzPreset, get_byz_preset, list_byz_presets

__all__ = [
    "ADVERSARY_MODELS",
    "AdversaryPlane",
    "ByzantineModel",
    "ByzStats",
    "ByzRunResult",
    "run_byz",
    "error_vs_f",
    "BYZ_PRESETS",
    "ByzPreset",
    "get_byz_preset",
    "list_byz_presets",
]
