"""The ``byzantine-*`` preset family: adversary model × trust topology.

A :class:`ByzPreset` fixes everything about a Byzantine robustness
experiment except the two axes swept by the harness — the number of
compromised servers ``f`` and whether the robust merge is on.  Presets
are sized for the acceptance suite (small fleets, bounded round
budgets): with the robust merge on, convergence error stays within
``error_bound`` of the offline optimum for every ``f <= f_max``; with
it off, the same adversaries measurably break convergence.

``f_max`` is where the quorum arithmetic says the defense holds: with
quorum ``q`` and ``t`` trimmed per side, up to ``t`` colluding liars
inside any one quorum are discarded outright, and the placement clamp +
pair-sync observations catch self-lies independently of ``f``.  Stale
repeaters share *identical* frozen values, so past ``f_max`` they can
dominate quorums while agreeing with each other — the breakdown the
``error_vs_f`` sweep exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..livesim.driver import LiveConfig
from .adversaries import ByzantineModel

__all__ = ["ByzPreset", "BYZ_PRESETS", "get_byz_preset", "list_byz_presets"]


@dataclass(frozen=True)
class ByzPreset:
    """One named Byzantine experiment (everything but ``f`` and the
    merge mode).

    ``scenario`` names a registered workload scenario — the trust axis
    comes for free by naming a ``TRUST_PRESETS`` entry, whose instance
    already carries the §II inf-latency restriction.
    """

    name: str
    scenario: str
    model: ByzantineModel            #: template; ``f`` is replaced per run
    m: int = 24
    f_max: int = 3                   #: robustness holds for f <= f_max
    rounds: float = 240.0            #: agent-round budget per run
    error_bound: float = 0.02        #: paper's 2 % acceptance bound
    live: LiveConfig = LiveConfig()  #: base control-plane config
    description: str = ""

    def __post_init__(self) -> None:
        if self.f_max < 1:
            raise ValueError("f_max must be >= 1")
        if self.f_max > self.m // 4:
            raise ValueError(
                f"f_max={self.f_max} is too aggressive for m={self.m}; "
                "the trimmed quorum needs an honest majority with slack"
            )
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if not 0 < self.error_bound < 1:
            raise ValueError("error_bound must be in (0, 1)")

    def model_for(self, f: int) -> ByzantineModel:
        """The preset's adversary model with ``f`` compromised servers."""
        return replace(self.model, f=int(f))

    def config_for(self, f: int, *, robust: bool) -> LiveConfig:
        """The resolved-later :class:`LiveConfig` of one (f, mode) run."""
        return replace(
            self.live,
            merge_mode="robust" if robust else "legacy",
            byzantine=self.model_for(f) if f > 0 else None,
        )


_REGISTRY: dict[str, ByzPreset] = {}


def _register(preset: ByzPreset) -> ByzPreset:
    if preset.name in _REGISTRY:
        raise ValueError(f"byz preset {preset.name!r} already registered")
    _REGISTRY[preset.name] = preset
    return preset


def get_byz_preset(name: str) -> ByzPreset:
    """Look up a ``byzantine-*`` preset by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown byz preset {name!r}; known: {known}") from None


def list_byz_presets() -> dict[str, str]:
    """``{name: description}`` of the registered family."""
    return {name: p.description for name, p in sorted(_REGISTRY.items())}


BYZ_PRESETS: tuple[ByzPreset, ...] = tuple(
    _register(p)
    for p in (
        ByzPreset(
            name="byzantine-stale",
            scenario="paper-planetlab",
            model=ByzantineModel(model="stale-repeater"),
            # Identical frozen tables collude inside quorums, so the
            # trimmed quorum (q=3, t=1) tolerates f < q colluders.
            f_max=2,
            description="Stale repeaters freeze fleet views on PlanetLab RTTs",
        ),
        ByzPreset(
            name="byzantine-underreport",
            scenario="paper-planetlab",
            model=ByzantineModel(model="load-underreporter", underreport_factor=0.0),
            description="Blackholes claim zero load, then refuse every exchange",
        ),
        ByzPreset(
            name="byzantine-fabricator",
            scenario="hub-heavytail",
            # Lure biased low: forged views systematically *hide* true
            # imbalance and funnel every proposal through the
            # apparent-idle server.  That serializes the fleet's
            # exchanges rather than stopping them — a slow-poison — so
            # the round budget is where legacy visibly lags: at 60
            # rounds the robust merge has long converged while the
            # legacy funnel is still ~2x outside the bound.
            model=ByzantineModel(model="value-fabricator", fabricate_scale=0.5),
            rounds=60.0,
            description="Fabricators poison third-party entries on the hub federation",
        ),
        ByzPreset(
            name="byzantine-flapper",
            scenario="paper-planetlab",
            model=ByzantineModel(model="flapper", flap_inner="stale-repeater"),
            f_max=2,
            description="Flappers alternate honest and stale-repeating phases",
        ),
        ByzPreset(
            name="byzantine-stale-random-trust",
            scenario="planetlab-random-trust",
            # The dense random trust graph spreads the frozen forgeries
            # fleet-wide fast; the attack runs at double cadence so the
            # views stay pinned past the error bound.
            model=ByzantineModel(
                model="stale-repeater", cadence_scale=0.5, version_bump=5
            ),
            f_max=2,
            description="Stale repeaters inside an Erdős–Rényi trust graph (restricted optimum)",
        ),
        ByzPreset(
            name="byzantine-underreport-delta",
            scenario="paper-planetlab",
            model=ByzantineModel(model="load-underreporter", underreport_factor=0.0),
            live=LiveConfig(gossip_mode="delta"),
            description="Blackhole underreporters against the delta wire format",
        ),
    )
)
