"""Negative-cycle removal via the appendix's transportation reduction.

A *negative cycle* in a partial solution is a sequence of servers that in
effect relay requests to one another; dismantling it keeps every server's
load intact while strictly reducing communication time.  The appendix
removes all of them at once with a min-cost max-flow instance:

* front vertex ``i_f`` for every server, supplied with
  ``out(ρ', i) = Σ_{j≠i} r_ij`` (requests ``i`` relays away);
* back vertex ``j_b`` demanding ``in(ρ', j) = Σ_{i≠j} r_ij`` (foreign
  requests ``j`` executes);
* arcs ``i_f → j_b`` with cost ``c_ij`` and infinite capacity — including
  the zero-cost ``i_f → i_b`` arcs, through which relayed requests
  *return home* and become self-executed (how 2-cycles dismantle).

The optimal flow re-wires who relays to whom at minimal total latency;
every server's load ``l_j`` is preserved exactly, and the self-execution
diagonal ``r_ii`` can only grow (requests return home, never leave it).
Afterwards no negative cycle can remain (one would contradict flow
optimality).
"""

from __future__ import annotations

import numpy as np

from ..core.state import AllocationState
from .bellman_ford import find_negative_cycle
from .graph import ResidualGraph
from .mincost import min_cost_flow

__all__ = [
    "solve_transportation",
    "remove_negative_cycles",
    "relay_graph_negative_cycle",
]


def solve_transportation(
    supply: np.ndarray, demand: np.ndarray, cost: np.ndarray, *, eps: float = 1e-9
) -> np.ndarray:
    """Solve a dense transportation problem: move ``supply[i]`` units from
    each source to meet ``demand[j]`` at each sink, minimizing
    ``Σ f_ij · cost[i, j]``.  Supplies and demands must balance.

    Returns the flow matrix ``f``.
    """
    supply = np.asarray(supply, dtype=np.float64)
    demand = np.asarray(demand, dtype=np.float64)
    cost = np.asarray(cost, dtype=np.float64)
    ns, nd = supply.shape[0], demand.shape[0]
    if cost.shape != (ns, nd):
        raise ValueError("cost matrix shape mismatch")
    total = supply.sum()
    if not np.isclose(total, demand.sum(), rtol=1e-9, atol=1e-6):
        raise ValueError("supply and demand must balance")
    if total <= eps:
        return np.zeros((ns, nd))

    src_idx = np.flatnonzero(supply > eps)
    dst_idx = np.flatnonzero(demand > eps)
    n = 2 + src_idx.size + dst_idx.size
    S, T = 0, 1
    g = ResidualGraph(n, src_idx.size + dst_idx.size + src_idx.size * dst_idx.size)
    arc_of: dict[tuple[int, int], int] = {}
    for a, i in enumerate(src_idx):
        g.add_edge(S, 2 + a, float(supply[i]), 0.0)
    for b, j in enumerate(dst_idx):
        g.add_edge(2 + src_idx.size + b, T, float(demand[j]), 0.0)
    for a, i in enumerate(src_idx):
        for b, j in enumerate(dst_idx):
            if np.isfinite(cost[i, j]):
                arc = g.add_edge(2 + a, 2 + src_idx.size + b, np.inf, float(cost[i, j]))
                arc_of[(int(i), int(j))] = arc

    res = min_cost_flow(g, S, T, max_flow=float(total), eps=eps)
    if res.flow < total - max(1e-6, 1e-9 * total):
        raise ValueError("transportation infeasible (disconnected by inf costs)")
    f = np.zeros((ns, nd))
    for (i, j), arc in arc_of.items():
        f[i, j] = g.flow_on(arc)
    return f


def remove_negative_cycles(state: AllocationState) -> float:
    """Re-wire all relays of the current allocation at minimum communication
    cost (appendix reduction).  Loads are preserved exactly; the return
    value is the (non-negative) communication cost saved."""
    inst = state.inst
    R = state.R
    m = inst.m
    diag = np.diag(R).copy()
    off = R.copy()
    np.fill_diagonal(off, 0.0)
    out_amt = off.sum(axis=1)  # out(ρ', i)
    in_amt = off.sum(axis=0)  # in(ρ', j)
    if out_amt.sum() <= 1e-12:
        return 0.0
    before = float((inst.latency * R).sum())
    # The zero-cost i_f → i_b arcs let relayed requests return home: flow
    # f_ii turns into self-execution (r_ii grows by f_ii) while the load
    # l_i = r_ii + Σ_k f_ki is preserved.  Without them a pure swap
    # (i → j → i, a Section IV-B negative 2-cycle) could never be
    # dismantled because out/in totals alone admit no other rewiring.
    flow = solve_transportation(out_amt, in_amt, inst.latency)
    new_R = flow
    new_R[np.arange(m), np.arange(m)] += diag
    after = float((inst.latency * new_R).sum())
    state.R = new_R
    state.refresh_loads()
    return before - after


def relay_graph_negative_cycle(state: AllocationState) -> list[int] | None:
    """Directly search the relay graph for a negative cycle (Section IV-B
    definition): arc ``i → j`` with weight ``+c_ij`` when ``i`` relays its
    own requests to ``j`` (``dir = 1``) and weight ``−c_ji`` when ``i``
    executes requests owned by ``j`` that it could hand back (``dir = −1``).
    Returns the server cycle or ``None``."""
    R = state.R
    m = state.inst.m
    c = state.inst.latency
    edges: list[tuple[int, int, float]] = []
    eps = 1e-9
    for i in range(m):
        for j in range(m):
            if i == j:
                continue
            if R[i, j] > eps:
                # i's own requests currently at j: j could return them to i
                # (dir = -1, gain c_ij) or i is sending them (dir = +1).
                edges.append((i, j, float(c[i, j])))
                edges.append((j, i, -float(c[i, j])))
    return find_negative_cycle(m, edges)
