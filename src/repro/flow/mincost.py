"""Minimum-cost maximum flow — successive shortest paths with potentials.

The appendix of the paper reduces negative-cycle removal to a min-cost
max-flow computation; this is a from-scratch solver.  The algorithm is the
classic successive-shortest-path method with Johnson potentials: every
augmentation runs Dijkstra on reduced costs (non-negative by induction),
then shifts the potentials by the computed distances.  With non-negative
arc costs (true for the transportation instances built from latency
matrices) no Bellman–Ford bootstrap is needed; otherwise one is run once.

Capacities and flow values are floats; augmentations below ``eps`` are
treated as exhausted supply to avoid infinite loops from round-off.
"""

from __future__ import annotations

import heapq

import numpy as np

from .bellman_ford import bellman_ford
from .graph import ResidualGraph

__all__ = ["min_cost_flow", "MinCostFlowResult"]


class MinCostFlowResult:
    """Total flow, total cost and per-arc flows of a solved instance."""

    __slots__ = ("flow", "cost", "arc_flows")

    def __init__(self, flow: float, cost: float, arc_flows: np.ndarray):
        self.flow = flow
        self.cost = cost
        self.arc_flows = arc_flows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MinCostFlowResult(flow={self.flow:.6g}, cost={self.cost:.6g})"


def _dijkstra(
    g: ResidualGraph, source: int, potential: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    dist = np.full(g.n, np.inf)
    dist[source] = 0.0
    pred_arc = np.full(g.n, -1, dtype=np.int64)
    heap = [(0.0, source)]
    done = np.zeros(g.n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for e in g.arcs_from(u):
            if g.cap[e] <= 1e-12:
                continue
            v = int(g.to[e])
            if done[v]:
                # Re-relaxing a finalized node (possible when round-off
                # leaves a residual arc with a slightly negative reduced
                # cost) would rewrite pred_arc after descendants already
                # point through v, creating a cycle in the predecessor
                # chain — the path walk-back would then never terminate.
                continue
            nd = d + g.cost[e] + potential[u] - potential[v]
            if nd < dist[v] - 1e-15:
                dist[v] = nd
                pred_arc[v] = e
                heapq.heappush(heap, (nd, v))
    return dist, pred_arc


def min_cost_flow(
    g: ResidualGraph,
    source: int,
    sink: int,
    *,
    max_flow: float = np.inf,
    eps: float = 1e-9,
) -> MinCostFlowResult:
    """Push up to ``max_flow`` units from ``source`` to ``sink`` at minimum
    cost.  The graph is mutated (residual capacities updated)."""
    n = g.n
    potential = np.zeros(n)
    if np.any(g.cost[: g.arc_count] < 0):
        # Bootstrap potentials with Bellman–Ford over arcs with capacity.
        edges = [
            (int(u), int(g.to[e]), float(g.cost[e]))
            for u in range(n)
            for e in g.arcs_from(u)
            if g.cap[e] > eps
        ]
        dist, _ = bellman_ford(n, edges, source)
        finite = np.isfinite(dist)
        potential[finite] = dist[finite]

    total_flow = 0.0
    total_cost = 0.0
    while total_flow < max_flow - eps:
        dist, pred_arc = _dijkstra(g, source, potential)
        if not np.isfinite(dist[sink]):
            break
        finite = np.isfinite(dist)
        potential[finite] += dist[finite]
        # Find bottleneck along the augmenting path.
        push = max_flow - total_flow
        v = sink
        while v != source:
            e = int(pred_arc[v])
            push = min(push, float(g.cap[e]))
            v = int(g.to[e ^ 1])
        if push <= eps:
            break
        v = sink
        while v != source:
            e = int(pred_arc[v])
            g.cap[e] -= push
            g.cap[e ^ 1] += push
            total_cost += push * float(g.cost[e])
            v = int(g.to[e ^ 1])
        total_flow += push

    arc_flows = g.cap[1 : g.arc_count : 2].copy()  # reverse caps = pushed flow
    return MinCostFlowResult(total_flow, total_cost, arc_flows)
