"""Bellman–Ford shortest paths and negative-cycle detection.

Used in two places:

* detecting *negative cycles* in the error/transfer graph of Section IV-B —
  a cycle of servers that effectively redirect requests to one another and
  can be dismantled without changing any load;
* computing initial potentials for the min-cost-flow solver when some arc
  costs are negative.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bellman_ford", "find_negative_cycle"]


def bellman_ford(
    n: int,
    edges: list[tuple[int, int, float]],
    source: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Shortest distances from ``source`` (or from a virtual super-source
    connected to every vertex with cost 0 when ``source is None``).

    Returns ``(dist, pred)``.  Raises ``ValueError`` when a negative cycle
    is reachable — callers that want the cycle itself should use
    :func:`find_negative_cycle`.
    """
    if source is None:
        dist = np.zeros(n)
    else:
        dist = np.full(n, np.inf)
        dist[source] = 0.0
    pred = np.full(n, -1, dtype=np.int64)
    for it in range(n):
        changed = False
        for u, v, w in edges:
            if dist[u] + w < dist[v] - 1e-15:
                dist[v] = dist[u] + w
                pred[v] = u
                changed = True
        if not changed:
            return dist, pred
    # One more relaxation round succeeded after n iterations ⇒ negative cycle.
    for u, v, w in edges:
        if dist[u] + w < dist[v] - 1e-15:
            raise ValueError("graph contains a negative cycle")
    return dist, pred


def find_negative_cycle(
    n: int, edges: list[tuple[int, int, float]], tol: float = 1e-12
) -> list[int] | None:
    """Return the vertices of some negative-weight cycle, or ``None``.

    Runs Bellman–Ford from a virtual source; if an edge still relaxes after
    ``n`` rounds, walking ``pred`` pointers ``n`` times lands inside a
    negative cycle, which is then extracted.
    """
    dist = np.zeros(n)
    pred = np.full(n, -1, dtype=np.int64)
    marked = -1
    for _ in range(n):
        marked = -1
        for u, v, w in edges:
            if dist[u] + w < dist[v] - tol:
                dist[v] = dist[u] + w
                pred[v] = u
                marked = v
        if marked == -1:
            return None
    # Walk back n steps to guarantee we are on the cycle.
    x = marked
    for _ in range(n):
        x = int(pred[x])
    cycle = [x]
    cur = int(pred[x])
    while cur != x:
        cycle.append(cur)
        cur = int(pred[cur])
    cycle.reverse()
    return cycle
