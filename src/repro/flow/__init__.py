"""Min-cost flow substrate (appendix: negative-cycle removal)."""

from .bellman_ford import bellman_ford, find_negative_cycle
from .graph import ResidualGraph
from .mincost import MinCostFlowResult, min_cost_flow
from .transportation import (
    relay_graph_negative_cycle,
    remove_negative_cycles,
    solve_transportation,
)

__all__ = [
    "ResidualGraph",
    "bellman_ford",
    "find_negative_cycle",
    "min_cost_flow",
    "MinCostFlowResult",
    "solve_transportation",
    "remove_negative_cycles",
    "relay_graph_negative_cycle",
]
