"""Adjacency-list residual graph used by the min-cost-flow solver."""

from __future__ import annotations

import numpy as np

__all__ = ["ResidualGraph"]


class ResidualGraph:
    """A directed graph with residual arcs for augmenting-path algorithms.

    Every arc is stored together with its reverse (capacity 0) so that
    pushing flow is an O(1) update of two mirrored entries.  Capacities and
    costs are floats — the transportation instances built from fractional
    allocations are inherently real-valued.
    """

    __slots__ = ("n", "head", "to", "next_arc", "cap", "cost", "arc_count")

    def __init__(self, n: int, max_arcs: int):
        self.n = n
        size = 2 * max_arcs
        self.head = np.full(n, -1, dtype=np.int64)
        self.to = np.empty(size, dtype=np.int64)
        self.next_arc = np.empty(size, dtype=np.int64)
        self.cap = np.empty(size, dtype=np.float64)
        self.cost = np.empty(size, dtype=np.float64)
        self.arc_count = 0

    def add_edge(self, u: int, v: int, capacity: float, cost: float) -> int:
        """Add arc ``u → v``; returns its index (reverse arc is ``idx ^ 1``)."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        idx = self.arc_count
        if idx + 2 > self.to.shape[0]:
            raise IndexError("residual graph arc budget exceeded")
        self.to[idx] = v
        self.cap[idx] = capacity
        self.cost[idx] = cost
        self.next_arc[idx] = self.head[u]
        self.head[u] = idx
        ridx = idx + 1
        self.to[ridx] = u
        self.cap[ridx] = 0.0
        self.cost[ridx] = -cost
        self.next_arc[ridx] = self.head[v]
        self.head[v] = ridx
        self.arc_count += 2
        return idx

    def arcs_from(self, u: int):
        """Iterate over arc indices leaving ``u`` (including residuals)."""
        e = self.head[u]
        while e != -1:
            yield int(e)
            e = self.next_arc[e]

    def flow_on(self, arc: int) -> float:
        """Flow currently pushed on a forward arc = residual of its mirror."""
        return float(self.cap[arc ^ 1])
