"""repro — network delay-aware load balancing in selfish and cooperative
distributed systems.

A complete reproduction of Skowron & Rzadca (IPDPS 2013): the model of
request-processing systems whose observed latency is the sum of network
delay and server congestion, the polynomial cooperative optimum, the
distributed Min-Error balancing algorithm with its error certificate, the
game-theoretic analysis of selfish organizations (price of anarchy), and
the supporting substrates (synthetic PlanetLab-like topologies, gossip
dissemination, min-cost-flow negative-cycle removal, a discrete-event
request simulator and the Section VII extensions).

Quickstart
----------
>>> import numpy as np, repro
>>> rng = np.random.default_rng(0)
>>> inst = repro.Instance(
...     speeds=rng.uniform(1, 5, 20),
...     loads=rng.exponential(50, 20),
...     latency=repro.planetlab_like_latency(20, rng=rng),
... )
>>> opt = repro.solve_optimal(inst)                    # cooperative optimum
>>> state = repro.AllocationState.initial(inst)
>>> trace = repro.MinEOptimizer(state, rng=0).run(     # distributed MinE
...     optimum=opt.total_cost(), rel_tol=0.02)
>>> ratio, ne, _ = repro.price_of_anarchy(inst, rng=0, optimum=opt)

Scenario sweeps (:mod:`repro.workloads`) replace hand-built instances with
named presets and run whole grids through every solver in one call:

>>> from repro.workloads import ScenarioRunner, get_scenario, list_scenarios
>>> sorted(list_scenarios())[:2]
['cdn-flashcrowd', 'datacenter-fattree']
>>> inst = get_scenario("cdn-flashcrowd").instance(m=30, seed=1)
>>> report = ScenarioRunner(
...     ["paper-planetlab", "cdn-flashcrowd"], sizes=[20, 30], seeds=[0, 1]
... ).run()
>>> len(report)  # one row per (scenario, size, seed)
8

Every algorithm is also reachable by name through the :mod:`repro.engine`
solver registry (one calling convention, one ``SolveResult`` return), and
grids execute on the engine's pluggable backends — ``run(backend=
"process")`` uses every core with bitwise-identical results, and a JSONL
result store makes long sweeps crash-safe and resumable:

>>> res = repro.get_solver("mine-exact").solve(inst, rng=0)
>>> report = ScenarioRunner(
...     ["cdn-flashcrowd"], sizes=[20]
... ).run(backend="process", store="sweep.jsonl")   # doctest: +SKIP
"""

from . import byz, obs
from .core import *  # noqa: F401,F403 - curated in core.__all__
from .core import __all__ as _core_all
from .engine import (
    JsonlStore,
    SolveResult,
    SweepEngine,
    get_evaluator,
    get_solver,
    get_stateful_solver,
    list_evaluators,
    list_solvers,
    list_stateful_solvers,
    register_evaluator,
    register_solver,
    register_stateful_solver,
)
from .flow import (
    min_cost_flow,
    remove_negative_cycles,
    solve_transportation,
)
from .gossip import GossipNetwork
from .livesim import (
    LIVE_PRESETS,
    LiveConfig,
    LiveReport,
    LiveSimulation,
    get_live_preset,
    live_sweep,
)
from .net import (
    BackgroundLoadExperiment,
    VivaldiEstimator,
    complete_latency_matrix,
    homogeneous_latency,
    planetlab_like_latency,
    random_speeds,
)
from .sim import simulate_snapshot, simulate_stream
from .tracking import (
    TrackingReport,
    TrackingSimulation,
    get_trace,
    list_traces,
    register_trace,
    tracking_sweep,
)
from .workloads import (
    Scenario,
    ScenarioReport,
    ScenarioResult,
    ScenarioRunner,
    get_scenario,
    list_scenarios,
    register_scenario,
)

__version__ = "1.1.0"

__all__ = list(_core_all) + [
    "byz",
    "obs",
    "min_cost_flow",
    "solve_transportation",
    "remove_negative_cycles",
    "GossipNetwork",
    "homogeneous_latency",
    "planetlab_like_latency",
    "random_speeds",
    "complete_latency_matrix",
    "BackgroundLoadExperiment",
    "VivaldiEstimator",
    "simulate_snapshot",
    "simulate_stream",
    "Scenario",
    "ScenarioReport",
    "ScenarioResult",
    "ScenarioRunner",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "SolveResult",
    "register_solver",
    "get_solver",
    "list_solvers",
    "register_evaluator",
    "get_evaluator",
    "list_evaluators",
    "SweepEngine",
    "JsonlStore",
    "LiveSimulation",
    "LiveConfig",
    "LiveReport",
    "LIVE_PRESETS",
    "get_live_preset",
    "live_sweep",
    "register_stateful_solver",
    "get_stateful_solver",
    "list_stateful_solvers",
    "TrackingSimulation",
    "TrackingReport",
    "register_trace",
    "get_trace",
    "list_traces",
    "tracking_sweep",
    "__version__",
]
