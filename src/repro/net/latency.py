"""Latency-matrix utilities.

The iPlane dataset the paper used "does not contain latencies for all pairs
of nodes, so we had to complement the data by calculating minimal
distances" — i.e. a metric closure by all-pairs shortest paths.  This
module reproduces that completion step (own Floyd–Warshall, cross-checked
against ``scipy.sparse.csgraph`` in the tests) plus validation helpers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "floyd_warshall",
    "complete_latency_matrix",
    "is_metric",
    "symmetrize",
]


def floyd_warshall(dist: np.ndarray) -> np.ndarray:
    """All-pairs shortest paths over a dense weight matrix (``inf`` =
    missing edge).  Vectorized over the intermediate vertex: ``O(n)`` numpy
    passes of ``O(n²)`` work each."""
    d = np.array(dist, dtype=np.float64)
    n = d.shape[0]
    if d.shape != (n, n):
        raise ValueError("distance matrix must be square")
    np.fill_diagonal(d, 0.0)
    # Deliberately NOT delegated to scipy.sparse.csgraph: instances are
    # promised bit-identical on any machine, and the C implementation's
    # different summation order can flip last-ulp minima.  (The two are
    # still cross-checked in the tests.)  The ``out=`` buffers keep the
    # n allocation-free O(n²) passes from thrashing the allocator at
    # fleet scale.
    via = np.empty_like(d)
    for k in range(n):
        # d = min(d, d[:, k, None] + d[None, k, :]) without temporaries.
        np.add(d[:, k, None], d[None, k, :], out=via)
        np.minimum(d, via, out=d)
    return d


def complete_latency_matrix(
    partial: np.ndarray, *, assume_symmetric: bool = True
) -> np.ndarray:
    """Fill missing entries (``nan`` or ``inf``) of a measured latency
    matrix with shortest-path distances through measured links, exactly as
    the paper completed the iPlane data.

    RTTs are symmetric, so by default a measurement in either direction
    covers both (``assume_symmetric``).  Raises if some pair remains
    unreachable.
    """
    d = np.array(partial, dtype=np.float64)
    d[np.isnan(d)] = np.inf
    if assume_symmetric:
        d = np.minimum(d, d.T)
    np.fill_diagonal(d, 0.0)
    full = floyd_warshall(d)
    if np.any(np.isinf(full)):
        raise ValueError("latency graph is disconnected; cannot complete")
    return full


def is_metric(c: np.ndarray, atol: float = 1e-9) -> bool:
    """Check the triangle inequality ``c_ij ≤ c_ik + c_kj`` for all triples
    (always true after :func:`complete_latency_matrix`)."""
    closed = floyd_warshall(c)
    return bool(np.all(c <= closed + atol))


def symmetrize(c: np.ndarray) -> np.ndarray:
    """Make a latency matrix symmetric by averaging directions."""
    return 0.5 * (c + c.T)
