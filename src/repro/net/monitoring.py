"""Latency monitoring via network coordinates (Vivaldi-style).

The paper assumes pairwise latencies are known, pointing to the latency-
monitoring literature ([9], [32]) for how to obtain them.  This module
implements that substrate: a decentralized spring-relaxation embedding
(Vivaldi, 2-D + height) that lets every node estimate the RTT to every
other node from a handful of direct measurements.  The MinE optimizer can
then run on *estimated* latencies — an ablation in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VivaldiEstimator"]


class VivaldiEstimator:
    """Decentralized network-coordinate latency estimation.

    Each node keeps a 2-D coordinate plus a non-negative *height*
    (modelling access-link delay); the predicted RTT between ``i`` and
    ``j`` is ``‖x_i − x_j‖ + h_i + h_j``.  Nodes repeatedly sample the true
    RTT to random peers and move their coordinate along the error spring.
    """

    def __init__(
        self,
        rtt: np.ndarray,
        *,
        rng: np.random.Generator | int | None = None,
        step: float = 0.25,
    ):
        rtt = np.asarray(rtt, dtype=np.float64)
        if rtt.ndim != 2 or rtt.shape[0] != rtt.shape[1]:
            raise ValueError("rtt must be a square matrix")
        self.rtt = rtt
        self.m = rtt.shape[0]
        self.rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self.step = step
        scale = float(np.median(rtt[rtt > 0])) if np.any(rtt > 0) else 1.0
        self.coords = self.rng.normal(0.0, 0.1 * scale, size=(self.m, 2))
        self.heights = np.full(self.m, 0.05 * scale)

    # ------------------------------------------------------------------
    def predict(self, i: int, j: int) -> float:
        """Predicted RTT between two nodes from current coordinates."""
        if i == j:
            return 0.0
        d = float(np.linalg.norm(self.coords[i] - self.coords[j]))
        return d + self.heights[i] + self.heights[j]

    def predicted_matrix(self) -> np.ndarray:
        diff = self.coords[:, None, :] - self.coords[None, :, :]
        d = np.sqrt((diff**2).sum(axis=-1))
        est = d + self.heights[:, None] + self.heights[None, :]
        np.fill_diagonal(est, 0.0)
        return est

    # ------------------------------------------------------------------
    def observe(self, i: int, j: int) -> None:
        """One measurement: node ``i`` pings ``j`` and adjusts its spring."""
        if i == j:
            return
        measured = float(self.rtt[i, j])
        predicted = self.predict(i, j)
        err = predicted - measured
        direction = self.coords[i] - self.coords[j]
        norm = float(np.linalg.norm(direction))
        if norm < 1e-12:
            direction = self.rng.normal(size=2)
            norm = float(np.linalg.norm(direction))
        unit = direction / norm
        # Move along the spring; split the residual with the height term.
        self.coords[i] -= self.step * err * 0.8 * unit
        self.heights[i] = max(0.0, self.heights[i] - self.step * err * 0.2)

    def round(self, probes_per_node: int = 4) -> None:
        """Every node probes ``probes_per_node`` random peers once."""
        for i in range(self.m):
            peers = self.rng.integers(0, self.m, size=probes_per_node)
            for j in peers:
                self.observe(i, int(j))

    def fit(self, rounds: int = 50, probes_per_node: int = 4) -> np.ndarray:
        """Run the relaxation and return the estimated latency matrix."""
        for _ in range(rounds):
            self.round(probes_per_node)
        return self.predicted_matrix()

    def relative_error(self) -> float:
        """Median relative prediction error over all distinct pairs."""
        est = self.predicted_matrix()
        mask = ~np.eye(self.m, dtype=bool) & (self.rtt > 0)
        rel = np.abs(est[mask] - self.rtt[mask]) / self.rtt[mask]
        return float(np.median(rel))
