"""Network substrate: topologies, latency completion, RTT models and
latency monitoring."""

from .latency import complete_latency_matrix, floyd_warshall, is_metric, symmetrize
from .monitoring import VivaldiEstimator
from .rtt_model import BackgroundLoadExperiment, DeviationRow, RttModel
from .topology import homogeneous_latency, planetlab_like_latency, random_speeds
from .trust import (
    is_trust_connected,
    k_nearest_trust,
    random_trust,
    restrict_latency,
    ring_trust,
)

__all__ = [
    "floyd_warshall",
    "complete_latency_matrix",
    "is_metric",
    "symmetrize",
    "homogeneous_latency",
    "planetlab_like_latency",
    "random_speeds",
    "RttModel",
    "BackgroundLoadExperiment",
    "DeviationRow",
    "VivaldiEstimator",
    "restrict_latency",
    "k_nearest_trust",
    "random_trust",
    "ring_trust",
    "is_trust_connected",
]
