"""Background-load RTT model — the substrate behind Table IV (appendix).

The paper validated its constant-latency assumption on PlanetLab: 60
servers each pick 5 random neighbours and blast background traffic at a
target throughput ``tb``; the observed RTT stays flat until roughly
0.2 MB/s per flow (≈ 8 Mb/s of ingress per server) and only then starts to
inflate, with large variance — and the deviation *drops again* at 5 MB/s
because the requested throughput is no longer achievable ("the server was
just sending data with the maximal achievable throughput").

Since PlanetLab is gone, this module provides a queueing-flavoured link
model with the same mechanics, on which the appendix experiment (and its
exact statistical pipeline: 300 samples per pair, per-pair relative
deviation versus the 10 KB/s baseline, 5 % trim, mean and std per ``tb``)
can be re-run:

* every server has a heterogeneous ingress capacity (log-normal, ~100 Mb/s
  class links) and an uplink cap; when the target throughput exceeds the
  fair uplink share, senders back off below the cap (congestion collapse),
  which produces the paper's non-monotone tail;
* RTT inflates like an M/M/1 waiting time in the receiver's ingress
  utilization once it crosses a knee, plus log-normal measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RttModel", "BackgroundLoadExperiment", "DeviationRow"]

BYTES_PER_MB = 1_000_000.0


@dataclass
class RttModel:
    """RTT of one directed pair under receiver ingress utilization.

    ``rtt = base · (1 + infl · max(0, u − knee)/(1 − min(u, u_max)))``
    multiplied by log-normal measurement noise; ``u`` is the receiver's
    ingress utilization.
    """

    base_ms: float
    knee: float = 0.3
    inflation: float = 0.35
    u_max: float = 0.9
    noise_sigma: float = 0.08

    def sample(
        self, utilization: float, rng: np.random.Generator, samples: int = 1
    ) -> np.ndarray:
        u = min(max(utilization, 0.0), self.u_max)
        queue = self.inflation * max(0.0, u - self.knee) / (1.0 - u)
        noise = rng.lognormal(0.0, self.noise_sigma, size=samples)
        return self.base_ms * (1.0 + queue) * noise


@dataclass
class DeviationRow:
    """One row of Table IV: background throughput, trimmed mean and std of
    the relative RTT deviation versus the 10 KB/s baseline."""

    throughput_bps: float
    mu: float
    sigma: float

    @property
    def label(self) -> str:
        t = self.throughput_bps
        if t < BYTES_PER_MB / 10:
            return f"{t / 1000:g} KB/s"
        return f"{t / BYTES_PER_MB:g} MB/s"


class BackgroundLoadExperiment:
    """The appendix experiment: 60 servers, 5 random neighbours each,
    background flows at increasing target throughput, 300 RTT samples per
    (pair, throughput)."""

    DEFAULT_THROUGHPUTS = (
        10e3, 20e3, 50e3, 100e3, 200e3, 500e3, 1e6, 2e6, 5e6,
    )

    def __init__(
        self,
        *,
        servers: int = 60,
        neighbors: int = 5,
        samples: int = 300,
        median_ingress_capacity_bps: float = 12.0e6,  # ~100 Mb/s class links
        capacity_sigma: float = 0.7,
        median_uplink_bps: float = 12.0e6,
        uplink_sigma: float = 0.15,
        collapse_exponent: float = 0.8,
        knee: float = 0.3,
        inflation: float = 0.12,
        rng: np.random.Generator | int | None = None,
    ):
        self.rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self.m = servers
        self.neighbors = neighbors
        self.samples = samples
        self.collapse_exponent = collapse_exponent
        self.knee = knee
        self.inflation = inflation
        self.ingress_capacity = self.rng.lognormal(
            np.log(median_ingress_capacity_bps), capacity_sigma, size=servers
        )
        self.uplink = self.rng.lognormal(
            np.log(median_uplink_bps), uplink_sigma, size=servers
        )
        # Random neighbour choice (directed), as in the appendix.
        self.neighbor_of = np.stack(
            [
                self.rng.choice(
                    [x for x in range(self.m) if x != i],
                    size=neighbors,
                    replace=False,
                )
                for i in range(self.m)
            ]
        )
        self.base_rtt = self.rng.lognormal(np.log(40.0), 0.6, size=(self.m, self.m))
        self.base_rtt = 0.5 * (self.base_rtt + self.base_rtt.T)
        np.fill_diagonal(self.base_rtt, 0.0)

    # ------------------------------------------------------------------
    def achieved_throughput(self, tb: float) -> np.ndarray:
        """Per-sender actual per-flow throughput for a requested ``tb``.

        The fair uplink share caps the flow, and over-requesting *reduces*
        throughput below the share (retransmission-style congestion
        collapse): ``actual = fair · (tb/fair)^(−e)`` once ``tb`` exceeds
        ``fair``.  This non-monotone achieved-throughput curve reproduces
        the Table IV dip at 5 MB/s — the paper notes that unattainable
        target rates degrade to "the maximal achievable throughput".
        """
        fair = self.uplink / self.neighbors
        ratio = tb / fair
        actual = np.where(
            ratio <= 1.0, tb, fair * np.power(np.maximum(ratio, 1.0), -self.collapse_exponent)
        )
        return actual

    def _utilization(self, tb: float) -> np.ndarray:
        """Per-server ingress utilization at background throughput ``tb``."""
        actual = self.achieved_throughput(tb)
        ingress = np.zeros(self.m)
        for i in range(self.m):
            ingress[self.neighbor_of[i]] += actual[i]
        return ingress / self.ingress_capacity

    def mean_rtts(self, tb: float) -> dict[tuple[int, int], float]:
        """Average of ``samples`` RTT measurements for every monitored
        (server, neighbour) pair at background throughput ``tb``."""
        util = self._utilization(tb)
        out: dict[tuple[int, int], float] = {}
        for i in range(self.m):
            for j in self.neighbor_of[i]:
                model = RttModel(
                    base_ms=float(self.base_rtt[i, j]),
                    knee=self.knee,
                    inflation=self.inflation,
                )
                rtts = model.sample(float(util[j]), self.rng, self.samples)
                out[(i, int(j))] = float(rtts.mean())
        return out

    def run(
        self, throughputs: tuple[float, ...] = DEFAULT_THROUGHPUTS
    ) -> list[DeviationRow]:
        """Produce the Table IV rows (relative deviation vs the smallest
        throughput, 5 % of the largest deviations trimmed)."""
        if len(throughputs) < 2:
            raise ValueError("need a baseline plus at least one load level")
        baseline = self.mean_rtts(throughputs[0])
        rows = []
        for tb in throughputs:
            cur = self.mean_rtts(tb)
            devs = np.array(
                [
                    (cur[p] - baseline[p]) / baseline[p]
                    for p in baseline
                    if baseline[p] > 0
                ]
            )
            keep = max(1, int(np.ceil(devs.shape[0] * 0.95)))
            trimmed = np.sort(devs)[:keep]  # drop the 5% largest deviations
            rows.append(
                DeviationRow(tb, float(trimmed.mean()), float(trimmed.std()))
            )
        return rows
