"""Neighbour-restricted relaying — the trust model of Section II.

"If we set some of the communication delays to infinity, we restrict the
basic model to the case when each organization is allowed to relay its
requests only to the given subset of the servers (its neighbors), which
models e.g. the trust relationship."

This module builds such restrictions: given a base latency matrix and a
trust graph (who may relay to whom), non-edges become ``inf``.  All
solvers in :mod:`repro.core` already honour infinite latencies (the
water-fill excludes them, Algorithm 1 never moves load profitably across
them), so restricted instances drop straight into the existing pipeline.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "restrict_latency",
    "k_nearest_trust",
    "random_trust",
    "ring_trust",
    "is_trust_connected",
]


def restrict_latency(latency: np.ndarray, allowed: np.ndarray) -> np.ndarray:
    """Set ``c_ij = inf`` wherever relaying ``i → j`` is not allowed.

    ``allowed`` is a boolean matrix; the diagonal is always allowed (an
    organization may run its own requests).
    """
    latency = np.asarray(latency, dtype=np.float64)
    allowed = np.asarray(allowed, dtype=bool)
    if allowed.shape != latency.shape:
        raise ValueError("allowed mask must match the latency matrix")
    out = np.where(allowed, latency, np.inf)
    np.fill_diagonal(out, 0.0)
    return out


def k_nearest_trust(
    latency: np.ndarray, k: int, *, symmetric: bool = False
) -> np.ndarray:
    """Each organization trusts its ``k`` lowest-latency peers (plus
    itself) — the CoralCDN-style proximity constraint.

    ``symmetric=True`` or-symmetrizes the mask (``i`` and ``j`` trust
    each other if either nominates the other): the live control plane's
    handshakes need both legs of a pair to be routable, so the livesim
    presets use the symmetric variant.
    """
    m = latency.shape[0]
    if not 0 <= k < m:
        raise ValueError(f"k must be in [0, {m - 1}]")
    allowed = np.zeros((m, m), dtype=bool)
    for i in range(m):
        order = np.argsort(latency[i])
        picked = [j for j in order if j != i][:k]
        allowed[i, picked] = True
        allowed[i, i] = True
    if symmetric:
        allowed = allowed | allowed.T
    return allowed


#: Entropy constant of :func:`random_trust` seeding — entropy-separated
#: from every other stochastic component, keyed by ``(m, seed)``.
_TRUST_ENTROPY = 0x5EC7B2A9


def random_trust(
    m: int,
    edge_probability: float,
    *,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    symmetric: bool = True,
) -> np.ndarray:
    """Erdős–Rényi trust graph (each ordered pair allowed independently
    with the given probability; symmetrized by default).

    Seeding follows the engine convention: ``seed`` derives an
    entropy-separated :class:`numpy.random.SeedSequence` keyed by
    ``(m, seed)``, so a trust draw never perturbs (and is never
    perturbed by) any other stream of the same run.  Passing an explicit
    ``rng`` Generator instead draws from it directly (the caller owns
    the stream); giving both is an error.
    """
    if rng is not None:
        if seed is not None:
            raise ValueError("give either seed= or rng=, not both")
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                "rng must be a numpy Generator; for integer seeding use "
                "the seed= keyword (entropy-separated engine convention)"
            )
    else:
        ss = np.random.SeedSequence(
            entropy=_TRUST_ENTROPY,
            spawn_key=(int(m), int(seed) if seed is not None else 0),
        )
        rng = np.random.default_rng(ss)
    allowed = rng.uniform(size=(m, m)) < edge_probability
    if symmetric:
        allowed = allowed | allowed.T
    np.fill_diagonal(allowed, True)
    return allowed


def ring_trust(m: int, hops: int = 1) -> np.ndarray:
    """Everyone trusts their ``hops`` ring neighbours on each side — the
    minimal connected restriction."""
    if hops < 1:
        raise ValueError("hops must be >= 1")
    allowed = np.zeros((m, m), dtype=bool)
    idx = np.arange(m)
    for d in range(1, hops + 1):
        allowed[idx, (idx + d) % m] = True
        allowed[idx, (idx - d) % m] = True
    np.fill_diagonal(allowed, True)
    return allowed


def is_trust_connected(allowed: np.ndarray) -> bool:
    """Whether load can (transitively) spread between any two servers.

    Note that relaying is single-hop in the model — this checks the
    weaker property that the *balancing process* (repeated pairwise
    exchanges returning requests to owners) can equalize load globally.
    """
    m = allowed.shape[0]
    seen = np.zeros(m, dtype=bool)
    stack = [0]
    seen[0] = True
    sym = allowed | allowed.T
    while stack:
        u = stack.pop()
        for v in np.flatnonzero(sym[u]):
            if not seen[v]:
                seen[v] = True
                stack.append(int(v))
    return bool(seen.all())
