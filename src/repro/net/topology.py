"""Topology generators for the two network kinds of Section VI-A.

* :func:`homogeneous_latency` — equal delay ``c_ij = 20`` between every
  pair (the paper's homogeneous setting).
* :func:`planetlab_like_latency` — a synthetic stand-in for the iPlane
  PlanetLab measurements (the original dataset is no longer available).
  Nodes are placed in geographic clusters ("sites") on a 2-D plane;
  pairwise RTT is a propagation term proportional to distance plus a
  site-local access delay and log-normal jitter.  A fraction of the
  entries is then deleted and re-derived by shortest-path completion —
  reproducing the paper's own data-preparation step and yielding the same
  qualitative structure: small intra-cluster RTTs (~1–10 ms), large
  inter-cluster RTTs (~20–200 ms), heterogeneous and metric.
"""

from __future__ import annotations

import numpy as np

from .latency import complete_latency_matrix, symmetrize

__all__ = ["homogeneous_latency", "planetlab_like_latency", "random_speeds"]


def homogeneous_latency(m: int, delay: float = 20.0) -> np.ndarray:
    """Constant-latency matrix: ``c_ij = delay`` for ``i ≠ j``."""
    c = np.full((m, m), float(delay))
    np.fill_diagonal(c, 0.0)
    return c


def planetlab_like_latency(
    m: int,
    *,
    rng: np.random.Generator | int | None = None,
    clusters: int | None = None,
    extent_ms: float = 150.0,
    access_ms: tuple[float, float] = (0.5, 3.0),
    jitter_sigma: float = 0.15,
    missing_fraction: float = 0.2,
) -> np.ndarray:
    """Generate a heterogeneous PlanetLab-like RTT matrix in milliseconds.

    Parameters
    ----------
    m:
        Number of nodes.
    clusters:
        Number of geographic sites (default ``max(2, m // 12)`` — PlanetLab
        hosts a handful of nodes per site).
    extent_ms:
        Propagation delay across the full map diagonal (~150 ms matches
        intercontinental RTTs).
    access_ms:
        Range of per-node access-link delays added to every path.
    jitter_sigma:
        Log-normal multiplicative jitter on each measured pair.
    missing_fraction:
        Fraction of pairs "not measured", filled by shortest-path
        completion as in the paper.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if m < 2:
        return np.zeros((m, m))
    k = clusters if clusters is not None else max(2, m // 12)
    centers = rng.uniform(0.0, 1.0, size=(k, 2))
    assign = rng.integers(0, k, size=m)
    pos = centers[assign] + rng.normal(0.0, 0.02, size=(m, 2))
    access = rng.uniform(access_ms[0], access_ms[1], size=m)

    diff = pos[:, None, :] - pos[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=-1))
    rtt = dist / np.sqrt(2.0) * extent_ms + access[:, None] + access[None, :]
    jitter = rng.lognormal(0.0, jitter_sigma, size=(m, m))
    rtt = rtt * jitter
    rtt = symmetrize(rtt)
    np.fill_diagonal(rtt, 0.0)

    if missing_fraction > 0:
        mask = rng.uniform(size=(m, m)) < missing_fraction
        mask = np.triu(mask, 1)
        mask = mask | mask.T
        rtt_missing = rtt.copy()
        rtt_missing[mask] = np.inf
        np.fill_diagonal(rtt_missing, 0.0)
        try:
            rtt = complete_latency_matrix(rtt_missing)
        except ValueError:
            # Dropping edges disconnected the graph (possible for tiny m):
            # keep the fully-measured matrix instead.
            pass
    return rtt


def random_speeds(
    m: int,
    *,
    rng: np.random.Generator | int | None = None,
    low: float = 1.0,
    high: float = 5.0,
) -> np.ndarray:
    """Server speeds uniform on ``[low, high]`` (Section VI-A uses [1, 5])."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    return rng.uniform(low, high, size=m)
