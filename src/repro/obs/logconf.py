"""Structured logging for the scripts and examples.

Library modules follow the stdlib idiom — a module-level

    log = logging.getLogger(__name__)

and no handler configuration at import time.  Entry points (the
``results/`` scripts, the examples) call :func:`configure` exactly once
to attach a handler; everything else inherits through the ``repro``
logger hierarchy.

:func:`configure` is idempotent *and* re-entrant: calling it again
replaces the previously installed handler (and re-evaluates
``sys.stdout``, so pytest's capture monkey-patching is honoured), which
keeps repeated in-process script runs — the smoke tests — from stacking
duplicate handlers.
"""

from __future__ import annotations

import json
import logging
import sys

__all__ = ["configure", "get_logger"]

#: The root of the package's logger hierarchy.
ROOT = "repro"

# The handler installed by the last configure() call, so a re-configure
# swaps it instead of stacking another.
_HANDLER: "logging.Handler | None" = None


class _JsonFormatter(logging.Formatter):
    """One JSON object per record: machine-readable script output."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True)


def configure(
    level: "int | str" = "INFO",
    *,
    json: bool = False,
    stream=None,
    name: str = ROOT,
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger hierarchy.

    ``stream`` defaults to the *current* ``sys.stdout`` (evaluated per
    call, not at import).  ``json=True`` swaps the human one-line format
    for one JSON object per record.  Returns the configured logger.
    """
    global _HANDLER
    logger = logging.getLogger(name)
    if _HANDLER is not None:
        logger.removeHandler(_HANDLER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    if json:
        handler.setFormatter(_JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
    logger.addHandler(handler)
    logger.setLevel(level if not isinstance(level, str) else level.upper())
    logger.propagate = False  # do not double-print through the root logger
    _HANDLER = handler
    return logger


def get_logger(name: str) -> logging.Logger:
    """``logging.getLogger`` with the package root prefixed when the
    caller passes a bare script name (keeps scripts inside the ``repro``
    hierarchy that :func:`configure` controls)."""
    if name != ROOT and not name.startswith(ROOT + "."):
        name = f"{ROOT}.{name}"
    return logging.getLogger(name)
