"""Deterministic sim-time trace spans with causal parent ids.

The tracer records *sim-time* spans and instants into a bounded ring and
exports them as JSON-lines or as Chrome trace-event JSON (loadable in
Perfetto / ``chrome://tracing``).  Three protocols thread causality
through it:

* gossip ``push`` → ``pull-reply`` → ``merge``,
* agent ``propose`` → ``accept``/``reject`` → ``apply`` (the exchange),
* request ``submit`` → ``route`` → ``service``/``drop`` → ``resubmit``.

**Determinism.**  Span ids are consecutive integers handed out in event
order.  Because the simulator pops events in a bit-identical
``(time, seq)`` order per seed, the id sequence — and hence every
``parent`` reference and the exported byte stream — is identical across
runs of the same seed.  Nothing here reads a wall clock, ``id()`` or a
random source, and the tracer never schedules events, so an instrumented
run replays the exact event trace of an uninstrumented one.

Cross-event causality uses the correlation table: the site that *knows*
the cause registers it under a protocol key (``("view", i)`` after a
gossip merge changed server *i*'s view; ``("xchg", token)`` when a
proposal goes out), and the downstream site looks the key up to set its
``parent``.  Keys are plain tuples of ints/strings — never object
identities.
"""

from __future__ import annotations

import json
from collections import deque

__all__ = ["Span", "Tracer"]


class Span:
    """One finished span (``dur >= 0``) or instant (``dur is None``)."""

    __slots__ = ("sid", "name", "ts", "dur", "parent", "track", "args")

    def __init__(self, sid, name, ts, dur, parent, track, args):
        self.sid = sid
        self.name = name
        self.ts = ts
        self.dur = dur
        self.parent = parent
        self.track = track
        self.args = args

    def to_dict(self) -> dict:
        d = {"sid": self.sid, "name": self.name, "ts": self.ts}
        if self.dur is not None:
            d["dur"] = self.dur
        if self.parent is not None:
            d["parent"] = self.parent
        if self.track is not None:
            d["track"] = self.track
        if self.args:
            d["args"] = self.args
        return d


class Tracer:
    """Bounded ring of deterministic spans plus the correlation table.

    ``capacity`` bounds memory: the oldest finished spans fall off the
    ring (open spans are unaffected — they live in a side table until
    ended).  ``track`` is the timeline lane (Chrome's ``tid``): by
    convention the server index for per-server protocol work, or a
    small negative constant for global lanes.
    """

    def __init__(self, capacity: int = 65536):
        self._ring: deque[Span] = deque(maxlen=int(capacity))
        self._seq = 0
        # open spans: sid -> (name, ts_begin, parent, track, args)
        self._open: dict[int, tuple] = {}
        # correlation: protocol key -> causing span id
        self._corr: dict[tuple, int] = {}
        self.dropped = 0  # finished spans evicted from the ring

    # -- recording ------------------------------------------------------
    def _next_sid(self) -> int:
        self._seq += 1
        return self._seq

    def _push(self, span: Span) -> None:
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(span)

    def span(self, name, ts, dur, *, parent=None, track=None, **args) -> int:
        """Record a complete span in one call; returns its id."""
        sid = self._next_sid()
        self._push(Span(sid, name, ts, dur, parent, track, args or None))
        return sid

    def instant(self, name, ts, *, parent=None, track=None, **args) -> int:
        """Record a zero-duration point event; returns its id."""
        sid = self._next_sid()
        self._push(Span(sid, name, ts, None, parent, track, args or None))
        return sid

    def begin(self, name, ts, *, parent=None, track=None, **args) -> int:
        """Open a span whose end is a later simulation event (message
        flight, request service); close it with :meth:`end`."""
        sid = self._next_sid()
        self._open[sid] = (name, ts, parent, track, args or None)
        return sid

    def end(self, sid: int, ts: float, **extra) -> None:
        """Close a span opened by :meth:`begin`.  Unknown / already
        closed ids are ignored (a dropped packet's flight span is simply
        abandoned)."""
        opened = self._open.pop(sid, None)
        if opened is None:
            return
        name, ts0, parent, track, args = opened
        if extra:
            args = {**(args or {}), **extra}
        self._push(Span(sid, name, ts0, ts - ts0, parent, track, args))

    def abandon(self, sid: int) -> None:
        """Discard an open span without recording it (lost message)."""
        self._open.pop(sid, None)

    # -- causality ------------------------------------------------------
    def bind(self, key: tuple, sid: int) -> None:
        """Register span ``sid`` as the current cause under ``key``."""
        self._corr[key] = sid

    def lookup(self, key: tuple):
        """The current causing span id for ``key`` (or ``None``)."""
        return self._corr.get(key)

    def take(self, key: tuple):
        """Pop-and-return the causing span id for ``key``."""
        return self._corr.pop(key, None)

    # -- reading / export ----------------------------------------------
    def spans(self) -> list[Span]:
        """The finished spans currently in the ring, in record order."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self._open.clear()
        self._corr.clear()
        self.dropped = 0
        # _seq deliberately NOT reset: ids stay unique per tracer life.

    def to_jsonl(self, path=None) -> str:
        """One JSON object per line, fixed key order — byte-identical
        across same-seed runs (the determinism suite asserts this)."""
        lines = [
            json.dumps(s.to_dict(), sort_keys=True, separators=(",", ":"))
            for s in self._ring
        ]
        text = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def to_chrome(self, path=None, *, time_unit_us: float = 1000.0) -> dict:
        """Chrome trace-event JSON (Perfetto-loadable).

        Sim time is unitless-milliseconds by repo convention, so the
        default scale maps 1 sim-time unit to 1000 trace µs.  Span ids
        and parents are carried in ``args`` (Perfetto shows them in the
        details pane); ``tid`` is the tracer's ``track`` lane.
        """
        events = []
        for s in self._ring:
            args = dict(s.args or {})
            args["sid"] = s.sid
            if s.parent is not None:
                args["parent"] = s.parent
            ev = {
                "name": s.name,
                "ph": "X" if s.dur is not None else "i",
                "ts": s.ts * time_unit_us,
                "pid": 1,
                "tid": s.track if s.track is not None else 0,
                "args": args,
            }
            if s.dur is not None:
                ev["dur"] = s.dur * time_unit_us
            else:
                ev["s"] = "t"  # instant scope: thread
            events.append(ev)
        doc = {"traceEvents": events, "displayTimeUnit": "ms"}
        if path is not None:
            with open(path, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
        return doc
