"""Opt-in wall-clock profiler for the event engine.

Answers the ROADMAP question "where do events/s go at m=2000": when
armed on an :class:`~repro.sim.events.Environment`, every executed
callback is timed with ``perf_counter`` and bucketed by *callback kind*
— the qualified name of the underlying function, so all bound-method
instances of ``AsyncGossip._tick`` land in one bucket regardless of
which object or scheduling produced them.

This is the one deliberately *non*-deterministic layer of ``repro.obs``
(wall time varies run to run); it therefore never feeds back into the
simulation and is off unless explicitly requested
(``LiveSimulation(..., profile=True)`` or ``env.set_profiler``).
Numbers are comparable across machines only after dividing by the
calibration throughput stored next to them in the bench JSON — see the
README's profiler caveats.
"""

from __future__ import annotations

__all__ = ["CallbackProfiler"]


class CallbackProfiler:
    """Per-callback-kind wall time and call counts.

    The engine's hot loop calls :meth:`add` once per executed callback;
    label resolution (``__qualname__`` of the unbound function) happens
    here, per call, because bound methods are fresh objects on every
    schedule and cannot be pre-keyed.
    """

    __slots__ = ("buckets", "enabled")

    def __init__(self):
        self.buckets: dict[str, list] = {}  # label -> [calls, seconds]
        self.enabled = True

    def add(self, fn, dt: float) -> None:
        label = getattr(getattr(fn, "__func__", fn), "__qualname__", None)
        if label is None:  # partials, odd callables
            label = repr(getattr(fn, "func", fn)).split(" at 0x")[0]
        bucket = self.buckets.get(label)
        if bucket is None:
            self.buckets[label] = [1, dt]
        else:
            bucket[0] += 1
            bucket[1] += dt

    # -- reading --------------------------------------------------------
    @property
    def total_calls(self) -> int:
        return sum(b[0] for b in self.buckets.values())

    @property
    def total_seconds(self) -> float:
        return sum(b[1] for b in self.buckets.values())

    def table(self) -> dict:
        """The events/s attribution table: per callback kind, calls,
        total seconds, share of profiled time, and the per-kind events/s
        this callback alone would sustain.  JSON-able; sorted by time
        descending so the first row is the hot spot."""
        total = self.total_seconds
        rows = []
        for label, (calls, seconds) in sorted(
            self.buckets.items(), key=lambda kv: -kv[1][1]
        ):
            rows.append(
                {
                    "kind": label,
                    "calls": calls,
                    "seconds": seconds,
                    "share": seconds / total if total > 0 else 0.0,
                    "events_per_sec": calls / seconds if seconds > 0 else None,
                }
            )
        return {
            "total_calls": self.total_calls,
            "total_seconds": total,
            "rows": rows,
        }

    def format_table(self, top: int = 12) -> str:
        """A fixed-width text rendering of :meth:`table` for reports."""
        t = self.table()
        lines = [
            f"{'callback kind':40s} {'calls':>9s} {'seconds':>9s} {'share':>6s}",
        ]
        for row in t["rows"][:top]:
            lines.append(
                f"{row['kind'][:40]:40s} {row['calls']:9d} "
                f"{row['seconds']:9.4f} {row['share']:5.1%}"
            )
        lines.append(
            f"{'TOTAL':40s} {t['total_calls']:9d} {t['total_seconds']:9.4f}"
        )
        return "\n".join(lines)

    def clear(self) -> None:
        self.buckets.clear()
