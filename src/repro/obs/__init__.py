"""repro.obs — deterministic tracing, unified metrics, and profiling.

One observability plane for the whole simulator stack, in three layers:

* :mod:`repro.obs.metrics` — typed counters/gauges/histograms under
  dotted names, with sim-time ring-buffer series and one
  ``snapshot()``/``to_json()`` export.  The per-layer Stats dataclasses
  stay as the hot-path record sites and are *bound* into the registry as
  facades.
* :mod:`repro.obs.trace` — sim-time spans with causal parent ids
  through gossip → agents → requests, exported as JSONL or Chrome
  trace-event JSON (Perfetto).  Bit-identical per seed.
* :mod:`repro.obs.profile` — opt-in wall-clock attribution of engine
  callback time by callback kind.

**No-op by default.**  Nothing records unless an
:class:`Observability` context is active; every instrumentation site in
the simulators guards on a plain attribute being ``None``, which keeps
disabled-mode overhead inside the perf gate (≤5 % target; measured in
``benchmarks/test_obs.py``).  Activate either explicitly::

    from repro import obs
    o = obs.Observability(trace=True)
    sim = LiveSimulation(inst, config=cfg, seed=7, obs=o)
    sim.run(rounds=100)
    o.metrics.to_json("metrics.json")
    o.tracer.to_chrome("trace.json")     # open in ui.perfetto.dev

or process-globally, which every simulation constructed afterwards picks
up::

    obs.enable(trace=True)
    ...
    obs.disable()
"""

from __future__ import annotations

from . import logconf
from .metrics import MetricsRegistry
from .profile import CallbackProfiler
from .trace import Tracer

__all__ = [
    "Observability",
    "enable",
    "disable",
    "get_active",
    "is_enabled",
    "logconf",
    "MetricsRegistry",
    "Tracer",
    "CallbackProfiler",
]


class Observability:
    """One observability context: a metrics registry plus (optionally) a
    tracer, shared by every component of the simulation it is handed to.

    ``trace=False`` keeps the span layer off while metrics stay live —
    the cheap configuration.  The cache workload's process-global
    counters are bound in on construction so every snapshot includes
    ``cache.*`` alongside the per-simulation subsystems.
    """

    def __init__(
        self,
        *,
        trace: bool = False,
        trace_capacity: int = 65536,
        series_interval: "float | None" = None,
    ):
        self.metrics = MetricsRegistry(series_interval=series_interval)
        self.tracer: "Tracer | None" = Tracer(trace_capacity) if trace else None
        # Bind the process-global cache counters (lazy import: obs is a
        # leaf package and must not create an import cycle).
        from ..workloads.cache import bind_obs as _bind_cache

        _bind_cache(self.metrics)

    def sample(self, now: float) -> None:
        """Record one sim-time sample of every series-carrying metric."""
        self.metrics.sample(now)

    def snapshot(self, *, series: bool = True) -> dict:
        """Metrics snapshot plus trace bookkeeping, one JSON-able dict."""
        out = self.metrics.snapshot(series=series)
        if self.tracer is not None:
            out["trace"] = {
                "spans": len(self.tracer),
                "dropped": self.tracer.dropped,
            }
        return out

    def to_json(self, path=None, *, series: bool = True) -> str:
        import json as _json

        text = _json.dumps(self.snapshot(series=series), indent=1, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text


# -- process-global activation ------------------------------------------
_ACTIVE: "Observability | None" = None


def enable(**kwargs) -> Observability:
    """Install a process-global :class:`Observability` (kwargs as for
    the constructor) that simulations constructed afterwards adopt as
    their default.  Returns it."""
    global _ACTIVE
    _ACTIVE = Observability(**kwargs)
    return _ACTIVE


def disable() -> None:
    """Remove the process-global context (the default state)."""
    global _ACTIVE
    _ACTIVE = None


def get_active() -> "Observability | None":
    """The process-global context, or ``None`` when disabled."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None
