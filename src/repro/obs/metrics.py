"""Typed metrics registry: counters, gauges and histograms by dotted name.

One surface for every counter in the repo.  Instruments are registered
under dotted names whose first segment is the owning subsystem
(``gossip.payload_bytes``, ``agents.exchanges``, ``net.drops``,
``sched.queue_depth``) and read out together through
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.to_json`.

Two kinds of instrument backing exist:

* **Owned instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) hold their own value and are mutated through
  ``inc`` / ``set`` / ``observe`` at the record site.
* **Bound instruments** (:meth:`MetricsRegistry.bind`) are thin facades
  over the numeric fields of an existing stats object — the per-layer
  ``GossipStats`` / ``NetStats`` / ``AgentStats`` / ``CacheStats``
  dataclasses keep their plain-attribute hot paths (``stats.merges += 1``
  costs exactly what it always did, observability on or off) while the
  registry reads the live values through ``getattr`` at snapshot and
  sample time.  Back-compat attributes are therefore preserved by
  construction.

**Sim-time series.**  Every instrument can carry a fixed-interval
ring-buffer series: :meth:`MetricsRegistry.sample` is called with the
current *sim* time at natural simulation checkpoints (cost samples, run
boundaries, epoch shifts) and records at most one point per interval
bucket per instrument.  Sampling never schedules events and never draws
randomness, so an instrumented run replays the exact event trace of an
uninstrumented one — the determinism suite asserts this on every preset.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from collections import deque
from typing import Any, Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "BoundCounter",
    "Series",
    "MetricsRegistry",
]


class Series:
    """Fixed-interval ring buffer of ``(bucket_start_time, value)`` points.

    ``record(t, v)`` maps ``t`` to the bucket ``floor(t / interval)``:
    repeated records within one bucket overwrite (the series keeps the
    *last* value seen in each interval), new buckets append, and the
    deque cap bounds memory for arbitrarily long runs.
    """

    __slots__ = ("interval", "_points", "_last_bucket")

    def __init__(self, interval: float, capacity: int = 512):
        if interval <= 0:
            raise ValueError("series interval must be positive")
        self.interval = float(interval)
        self._points: deque[tuple[float, float]] = deque(maxlen=int(capacity))
        self._last_bucket = None

    def record(self, t: float, value: float) -> None:
        bucket = int(t / self.interval)
        if bucket == self._last_bucket:
            self._points[-1] = (self._points[-1][0], value)
            return
        self._last_bucket = bucket
        self._points.append((bucket * self.interval, value))

    def points(self) -> list[tuple[float, float]]:
        return list(self._points)

    def __len__(self) -> int:
        return len(self._points)


class _Instrument:
    """Shared identity/series plumbing of all instrument kinds."""

    __slots__ = ("name", "series")
    kind = "instrument"

    def __init__(self, name: str):
        self.name = name
        self.series: Series | None = None

    @property
    def value(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    def sample(self, t: float) -> None:
        if self.series is not None:
            self.series.record(t, self.value)


class Counter(_Instrument):
    """A monotonically increasing count."""

    __slots__ = ("_value",)
    kind = "counter"

    def __init__(self, name: str):
        super().__init__(name)
        self._value = 0

    def inc(self, n: float = 1) -> None:
        self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Instrument):
    """A point-in-time value: set directly, or backed by a callable
    (``fn``) read lazily — e.g. the scheduler's live queue depth."""

    __slots__ = ("_value", "fn")
    kind = "gauge"

    def __init__(self, name: str, fn: Callable[[], float] | None = None):
        super().__init__(name)
        self._value = 0.0
        self.fn = fn

    def set(self, v: float) -> None:
        self._value = v

    @property
    def value(self) -> float:
        return self.fn() if self.fn is not None else self._value


#: Default histogram bucket bounds: a wide geometric ladder that covers
#: sub-millisecond service times and multi-second solver walls alike.
_DEFAULT_BOUNDS = tuple(10.0 ** (k / 2.0) for k in range(-12, 13))


class Histogram(_Instrument):
    """Count/sum/min/max plus fixed-bound bucket counts."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, bounds: tuple[float, ...] = _DEFAULT_BOUNDS):
        super().__init__(name)
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, v: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, v)] += 1
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def value(self) -> float:
        """Sampled series track the observation count."""
        return self.count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class BoundCounter(_Instrument):
    """A facade instrument whose value is a live attribute of an existing
    stats object — the migration path of the per-layer Stats dataclasses
    onto the registry without touching their hot-path increments."""

    __slots__ = ("_obj", "_field")
    kind = "counter"

    def __init__(self, name: str, obj: Any, field: str):
        super().__init__(name)
        self._obj = obj
        self._field = field

    @property
    def value(self) -> float:
        return getattr(self._obj, self._field)


class MetricsRegistry:
    """All instruments of one observability context, by dotted name.

    ``series_interval`` enables the sim-time ring-buffer series on every
    instrument (lazily, at first registration after it is set); leave it
    ``None`` and call :meth:`configure_series` once the simulation's
    natural interval is known (the driver uses its agent interval).
    """

    def __init__(
        self,
        *,
        series_interval: float | None = None,
        series_capacity: int = 512,
    ):
        self._instruments: dict[str, _Instrument] = {}
        self.series_interval = series_interval
        self.series_capacity = int(series_capacity)

    # ------------------------------------------------------------------
    def configure_series(self, interval: float, capacity: int | None = None) -> None:
        """Set the sampling interval (first caller wins: a tracking run's
        epochs must not re-bucket the series mid-flight) and retrofit a
        series onto already-registered instruments."""
        if self.series_interval is None:
            self.series_interval = float(interval)
            if capacity is not None:
                self.series_capacity = int(capacity)
            for inst in self._instruments.values():
                if inst.series is None:
                    inst.series = Series(self.series_interval, self.series_capacity)

    def _add(self, inst: _Instrument, overwrite: bool) -> _Instrument:
        prior = self._instruments.get(inst.name)
        if prior is not None and not overwrite:
            if type(prior) is not type(inst):
                raise ValueError(
                    f"metric {inst.name!r} already registered as {prior.kind}"
                )
            return prior
        if self.series_interval is not None:
            inst.series = Series(self.series_interval, self.series_capacity)
        self._instruments[inst.name] = inst
        return inst

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get-or-create the counter ``name``."""
        return self._add(Counter(name), overwrite=False)

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        """Get-or-create the gauge ``name`` (``fn`` rebinds the reader)."""
        return self._add(Gauge(name, fn), overwrite=fn is not None)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = _DEFAULT_BOUNDS
    ) -> Histogram:
        """Get-or-create the histogram ``name``."""
        return self._add(Histogram(name, bounds), overwrite=False)

    def bind(
        self,
        prefix: str,
        obj: Any,
        fields: "tuple[str, ...] | None" = None,
        rename: "dict[str, str] | None" = None,
    ) -> None:
        """Expose the numeric fields of a stats object as
        ``prefix.field`` counters (facade: values are read live).

        ``fields`` defaults to every public int/float attribute;
        ``rename`` maps attribute names to metric names.  Re-binding a
        prefix replaces the previous object (a fresh simulation's stats
        take over the names).
        """
        if fields is None:
            fields = tuple(
                k
                for k, v in vars(obj).items()
                if not k.startswith("_") and isinstance(v, (int, float))
            )
        rename = rename or {}
        for f in fields:
            name = f"{prefix}.{rename.get(f, f)}"
            self._add(BoundCounter(name, obj, f), overwrite=True)

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    # ------------------------------------------------------------------
    def sample(self, t: float) -> None:
        """Record one sim-time sample of every instrument that carries a
        series (at most one point per interval bucket)."""
        if self.series_interval is None:
            return
        for inst in self._instruments.values():
            inst.sample(t)

    def snapshot(self, *, series: bool = True) -> dict:
        """One JSON-able dict of everything the registry knows."""
        values: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        series_out: dict[str, dict] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                histograms[name] = inst.summary()
            else:
                values[name] = inst.value
            if series and inst.series is not None and len(inst.series):
                series_out[name] = {
                    "interval": inst.series.interval,
                    "points": [list(p) for p in inst.series.points()],
                }
        out: dict[str, Any] = {"metrics": values, "histograms": histograms}
        if series:
            out["series"] = series_out
        return out

    def to_json(self, path=None, *, series: bool = True) -> str:
        """Serialize :meth:`snapshot` (optionally also write it to
        ``path``); deterministic byte-for-byte for a deterministic run."""
        text = json.dumps(self.snapshot(series=series), indent=1, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text
