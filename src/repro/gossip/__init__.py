"""Gossip-based load dissemination substrate (Section IV)."""

from .protocol import GossipNetwork

__all__ = ["GossipNetwork"]
